// tlpbench: machine-readable benchmark pipeline driver (DESIGN.md §9).
//
//   tlpbench                         # run the full suite, write BENCH_<date>.json,
//                                    # check bench/baseline.json shape assertions
//   tlpbench --only table1,fig9      # subset by suite id
//   tlpbench --list                  # show the registered benches
//   tlpbench --seed 7 --max-edges 50000 --feature 64 --full
//                                    # global overrides forwarded to every bench
//   tlpbench --out results.json      # merged-report path
//   tlpbench --no-assert             # skip the baseline shape check
//   tlpbench --update-baseline       # refresh baseline.json's results snapshot
//                                    # (assertions are authored, never rewritten)
//   tlpbench --render-md EXPERIMENTS.md   # regenerate the experiments doc from
//                                         # the baseline snapshot (no benches run)
//   tlpbench --render-md             # ... to stdout
//   tlpbench --check-md EXPERIMENTS.md    # doc-drift gate: exit 1 unless the
//                                         # committed file is byte-identical
//
// Exit codes: 0 ok, 1 shape-assertion failure / drift / IO error, 2 usage.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "suite.hpp"
#include "report/render_md.hpp"
#include "report/shapes.hpp"

namespace {

using namespace tlp;

const std::vector<std::string> kFlags{
    "only", "list", "seed",     "max-edges",       "full",
    "feature", "out",  "baseline", "no-assert",       "update-baseline",
    "render-md", "from", "check-md", "timing-tier", "help"};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "tlpbench — run the bench suite, merge machine-readable results, check\n"
      "shape assertions, and (re)generate EXPERIMENTS.md.\n\n"
      "run mode:      tlpbench [--only a,b] [--seed S] [--max-edges N]\n"
      "               [--full] [--feature F] [--out PATH] [--baseline PATH]\n"
      "               [--no-assert] [--update-baseline]\n"
      "               [--timing-tier {mech,analytical}]  (analytical adds\n"
      "               @analytical twin records + cross-tier assertions)\n"
      "render mode:   tlpbench --render-md [PATH] [--from REPORT.json]\n"
      "doc gate:      tlpbench --check-md EXPERIMENTS.md\n"
      "introspection: tlpbench --list\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw report::JsonError{"cannot read " + path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

/// `git rev-parse --short HEAD`, or "unknown" outside a checkout.
std::string git_head() {
  std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out.empty() ? "unknown" : out;
}

struct Baseline {
  report::Report results;
  std::vector<report::ShapeAssertion> assertions;
  report::Json raw = report::Json::object();
};

Baseline load_baseline(const std::string& path) {
  Baseline b;
  b.raw = report::Json::parse(read_file(path));
  b.results = report::Report::from_json(b.raw.at("results"));
  b.assertions = report::assertions_from_json(b.raw);
  return b;
}

/// Prints the per-assertion verdicts; returns the number of failures.
int print_shape_outcomes(const std::vector<report::ShapeOutcome>& outcomes) {
  int failures = 0;
  std::printf("\n=== shape assertions ===\n");
  for (const report::ShapeOutcome& o : outcomes) {
    if (o.passed) {
      std::printf("  ok   %-42s %s\n", o.id.c_str(), o.detail.c_str());
    } else {
      ++failures;
      std::printf("  FAIL %-42s %s\n", o.id.c_str(), o.detail.c_str());
      if (!o.note.empty()) std::printf("       claim: %s\n", o.note.c_str());
    }
  }
  std::printf("%d/%zu assertions hold\n",
              static_cast<int>(outcomes.size()) - failures, outcomes.size());
  return failures;
}

/// Renders EXPERIMENTS.md content from a results snapshot + its assertions.
/// The same tier gate as run mode applies: analytical cross-tier assertions
/// are omitted when the snapshot holds no @analytical records, keeping the
/// rendered doc identical whether or not such assertions are authored.
std::string render_from_baseline(const Baseline& b) {
  const auto outcomes = report::evaluate_all(
      report::applicable_assertions(b.assertions, b.results), b.results);
  return report::render_experiments_md(b.results, outcomes);
}

std::string default_out_name() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[32];
  std::strftime(buf, sizeof(buf), "BENCH_%Y-%m-%d.json", &tm_buf);
  return buf;
}

int run_mode(const Args& args) {
  // Validate the tier eagerly so a typo dies with a usage diagnostic (exit
  // 2) before any bench runs; the value itself is just forwarded.
  (void)args.get_choice("timing-tier", "mech",
                        {"mech", "mechanistic", "analytical"});

  // Select benches.
  std::vector<const bench::BenchDef*> selected;
  if (args.has("only")) {
    for (const std::string& want : bench::split_csv(args.get("only", ""))) {
      const bench::BenchDef* found = nullptr;
      for (const bench::BenchDef* def : bench::all_benches()) {
        if (want == def->name) found = def;
      }
      if (found == nullptr) {
        std::fprintf(stderr, "error: unknown bench \"%s\" (see --list)\n",
                     want.c_str());
        return 2;
      }
      selected.push_back(found);
    }
  } else {
    selected = bench::all_benches();
  }
  if (selected.empty()) {
    // Mirror the shape evaluator's zero-match-is-failure rule: an empty
    // selection must fail loudly, not write an empty report that would pass
    // every (vacuously absent) assertion.
    std::fprintf(stderr,
                 "error: --only \"%s\" matched no benchmarks; nothing to run "
                 "(see --list)\n",
                 args.get("only", "").c_str());
    return 2;
  }

  // Forward the global overrides to every bench as its own argv.
  std::vector<std::string> fwd{"bench"};
  for (const char* flag : {"seed", "max-edges", "feature", "timing-tier"}) {
    if (args.has(flag))
      fwd.push_back("--" + std::string(flag) + "=" + args.get(flag, ""));
  }
  if (args.get_bool("full", false)) fwd.emplace_back("--full");
  std::vector<const char*> argv;
  argv.reserve(fwd.size());
  for (const std::string& s : fwd) argv.push_back(s.c_str());
  const Args bench_args(static_cast<int>(argv.size()), argv.data());

  report::Report merged;
  merged.seed = static_cast<std::uint64_t>(
      args.get_int_checked("seed", 42, 0));
  merged.git = git_head();

  // Harness wall-clock per bench: simulator-throughput telemetry for the CI
  // bench-smoke summary. Kept out of the deterministic `results` snapshot
  // (and thus out of baseline.json and EXPERIMENTS.md) — it lands in a
  // separate top-level "harness" object of the merged report only.
  std::vector<std::pair<std::string, double>> wall_ms;
  const auto suite_start = std::chrono::steady_clock::now();

  for (const bench::BenchDef* def : selected) {
    std::printf(">>> %s: %s\n", def->name, def->title);
    std::fflush(stdout);
    report::BenchResult result;
    result.name = def->name;
    result.title = def->title;
    bench::Reporter rep(&result);
    const auto bench_start = std::chrono::steady_clock::now();
    const int rc = def->fn(bench_args, rep);
    wall_ms.emplace_back(
        def->name,
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - bench_start)
            .count());
    if (rc != 0) {
      std::fprintf(stderr, "error: bench %s exited with %d\n", def->name, rc);
      return 1;
    }
    merged.benches.push_back(std::move(result));
  }
  const double total_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - suite_start)
          .count();

  const auto print_harness_timing = [&] {
    std::printf("\n=== harness timing (wall clock) ===\n");
    for (const auto& [name, ms] : wall_ms)
      std::printf("  %-8s %9.1f ms\n", name.c_str(), ms);
    std::printf("  total    %9.1f ms\n", total_wall_ms);
  };

  const std::string out_path = args.get("out", default_out_name());
  report::Json out_doc = merged.to_json();
  {
    report::Json per_bench = report::Json::object();
    for (const auto& [name, ms] : wall_ms) per_bench.set(name, ms);
    report::Json harness = report::Json::object();
    harness.set("wall_ms", std::move(per_bench));
    harness.set("total_wall_ms", total_wall_ms);
    out_doc.set("harness", std::move(harness));
  }
  if (!write_file(out_path, out_doc.dump())) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu benches, schema %s)\n", out_path.c_str(),
              merged.benches.size(), merged.schema.c_str());

  const std::string baseline_path =
      args.get("baseline", "bench/baseline.json");

  if (args.has("update-baseline")) {
    // Keep the authored assertions; replace only the results snapshot.
    report::Json doc = report::Json::object();
    doc.set("schema", report::kSchema);
    doc.set("results", merged.to_json());
    report::Json assertions = report::Json::array();
    try {
      const Baseline old = load_baseline(baseline_path);
      assertions = old.raw.at("assertions");
    } catch (const report::JsonError&) {
      // No existing baseline: start with an empty assertions array.
    }
    doc.set("assertions", assertions);
    if (!write_file(baseline_path, doc.dump())) {
      std::fprintf(stderr, "error: cannot write %s\n", baseline_path.c_str());
      return 1;
    }
    std::printf("updated %s (results snapshot at git %s)\n",
                baseline_path.c_str(), merged.git.c_str());
  }

  if (args.get_bool("no-assert", false)) {
    print_harness_timing();
    return 0;
  }

  Baseline baseline;
  try {
    baseline = load_baseline(baseline_path);
  } catch (const report::JsonError& e) {
    std::fprintf(stderr,
                 "error: cannot load baseline %s (%s); pass --no-assert to "
                 "skip the shape check\n",
                 baseline_path.c_str(), e.message.c_str());
    return 1;
  }

  // Evaluate against the *fresh* results: only assertions whose bench ran,
  // and only tier-gated assertions whose tier actually produced records
  // (analytical assertions are skipped on a mech-only run).
  std::vector<report::ShapeAssertion> applicable;
  for (const report::ShapeAssertion& a :
       report::applicable_assertions(baseline.assertions, merged)) {
    if (merged.find_bench(a.bench) != nullptr) applicable.push_back(a);
  }
  const auto outcomes = report::evaluate_all(applicable, merged);
  const int failures = print_shape_outcomes(outcomes);
  if (static_cast<std::size_t>(failures) < applicable.size() &&
      applicable.size() < baseline.assertions.size()) {
    std::printf("(%zu assertions skipped: bench not selected or timing tier "
                "not run)\n",
                baseline.assertions.size() - applicable.size());
  }
  // After the assertions so the CI job-summary capture (everything from
  // "shape assertions" onward) includes the timings.
  print_harness_timing();
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.get_bool("help", false)) {
    usage(stdout);
    return 0;
  }
  // The common flags plus every registered bench's extra flags (they pass
  // through Args to the bench's run(), e.g. serve's --requests).
  std::vector<std::string> known = kFlags;
  for (const bench::BenchDef* def : bench::all_benches()) {
    for (const std::string& f : bench::split_csv(def->extra_flags)) {
      known.push_back(f);
    }
  }
  for (const std::string& key : args.named_keys()) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (args.get_bool("list", false)) {
    std::printf("registered benches (tlpbench --only <name,...>):\n");
    for (const bench::BenchDef* def : bench::all_benches()) {
      std::printf("  %-8s %s\n", def->name, def->title);
    }
    std::printf("(micro_sim is standalone: google-benchmark, own JSON "
                "format)\n");
    return 0;
  }

  const std::string baseline_path =
      args.get("baseline", "bench/baseline.json");

  try {
    if (args.has("render-md") || args.has("check-md")) {
      Baseline b;
      if (args.has("from")) {
        b.results =
            report::Report::from_json(report::Json::parse(read_file(
                args.get("from", ""))));
        // Shape outcomes still come from the baseline's assertion set.
        try {
          b.assertions = load_baseline(baseline_path).assertions;
        } catch (const report::JsonError&) {
          // Render without assertions if no baseline is available.
        }
      } else {
        b = load_baseline(baseline_path);
      }
      const std::string md = render_from_baseline(b);

      if (args.has("check-md")) {
        const std::string path = args.get("check-md", "EXPERIMENTS.md");
        const std::string committed = read_file(path);
        if (committed != md) {
          std::fprintf(stderr,
                       "doc drift: %s differs from the generator output "
                       "(%zu vs %zu bytes).\nRegenerate with: "
                       "tools/tlpbench --render-md %s\n",
                       path.c_str(), committed.size(), md.size(),
                       path.c_str());
          return 1;
        }
        std::printf("%s matches the generator output (%zu bytes)\n",
                    path.c_str(), md.size());
        return 0;
      }

      const std::string target = args.get("render-md", "true");
      if (target == "true" || target == "-") {
        std::fputs(md.c_str(), stdout);
      } else if (!write_file(target, md)) {
        std::fprintf(stderr, "error: cannot write %s\n", target.c_str());
        return 1;
      } else {
        std::printf("wrote %s (%zu bytes)\n", target.c_str(), md.size());
      }
      return 0;
    }

    return run_mode(args);
  } catch (const report::JsonError& e) {
    std::fprintf(stderr, "error: %s\n", e.message.c_str());
    return 1;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
