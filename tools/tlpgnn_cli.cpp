// tlpgnn_cli — command-line front end for the library.
//
//   tlpgnn_cli run  [--system tlpgnn] [--model GCN] [--dataset PD]
//                   [--graph file.el] [--feature 32] [--heads 1]
//                   [--max-edges N] [--full] [--gpu-scale D] [--seed S]
//                   [--check] [--repeat R]
//                   [--timing-tier mech|analytical]
//                   [--memcheck] [--device-mem-gb G]
//                   [--oom-at N] [--fail-launch N]
//                   [--flip-at N] [--flip-bits B] [--flip-alloc I]
//   tlpgnn_cli gen  --out graph.el [--dataset RD | --vertices N --edges M
//                   --alpha A] [--max-edges N] [--format el|mtx|bin]
//   tlpgnn_cli info [--dataset PD | --graph file.el]
//
// `run` executes one graph convolution on any system and prints the
// Nsight-style profile; `gen` materializes dataset replicas to disk;
// `info` prints graph statistics.
//
// Fault-model flags (see DESIGN.md "Fault model & memory safety"):
//   --memcheck        run with guarded device memory (redzones, poison,
//                     use-after-free and write-race detection)
//   --device-mem-gb G cap simulated device memory at G GiB; OutOfMemory
//                     degrades the tlpgnn system to partitioned execution
//   --oom-at N        inject an allocation failure at the Nth device alloc
//   --fail-launch N   fail the Nth kernel launch
//   --flip-at N       flip --flip-bits random bits before the Nth launch,
//                     in allocation --flip-alloc (0-based; -1 = random)
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "models/reference.hpp"
#include "systems/system.hpp"

namespace {

using namespace tlp;

graph::Csr load_graph(const Args& args) {
  const std::string path = args.get("graph", "");
  if (!path.empty()) {
    if (path.size() > 4 && path.substr(path.size() - 4) == ".mtx")
      return graph::read_matrix_market_file(path);
    if (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
      return graph::read_binary_csr_file(path);
    return graph::read_edge_list_file(path);
  }
  const auto& ds = graph::dataset_by_abbr(args.get("dataset", "PD"));
  return graph::make_dataset(
      ds, {.max_edges = args.get_int_checked("max-edges", 500'000, 1),
           .full = args.get_bool("full", false),
           .seed = static_cast<std::uint64_t>(
               args.get_int_checked("seed", 42, 0))});
}

models::ModelKind parse_model(const Args& args) {
  const std::string name = args.get("model", "GCN");
  for (const auto k : models::kAllModels)
    if (name == models::model_name(k)) return k;
  TLP_CHECK_MSG(false, "unknown model '" << name << "' (GCN/GIN/Sage/GAT)");
  __builtin_unreachable();
}

sim::DeviceOptions device_options(const Args& args) {
  sim::DeviceOptions opts;
  if (args.get_bool("memcheck", false))
    opts.mem_mode = sim::MemoryMode::kGuarded;
  // --timing-tier {mech,analytical}: mechanistic (default, bit-pinned) or
  // the closed-form analytical fast tier (DESIGN.md §13). An unknown value
  // throws UsageError → exit 2.
  const std::string tier = args.get_choice(
      "timing-tier", "mech", {"mech", "mechanistic", "analytical"});
  (void)sim::timing_tier_from_name(tier, opts.timing_tier);
  // Strict parsing: a mistyped fault flag must die with a message naming the
  // flag, not silently inject nothing (or fault allocation #0 forever).
  constexpr std::int64_t kSeqMax = 1'000'000'000'000;
  opts.faults.oom_at_alloc = args.get_int_checked("oom-at", 0, 0, kSeqMax);
  opts.faults.fail_launch = args.get_int_checked("fail-launch", 0, 0, kSeqMax);
  opts.faults.flip_at_launch = args.get_int_checked("flip-at", 0, 0, kSeqMax);
  opts.faults.flip_bits =
      static_cast<int>(args.get_int_checked("flip-bits", 1, 1, 1 << 20));
  opts.faults.flip_alloc = args.get_int_checked("flip-alloc", -1, -1, kSeqMax);
  opts.faults.seed =
      static_cast<std::uint64_t>(args.get_int_checked("seed", 42, 0, kSeqMax));
  return opts;
}

int cmd_run(const Args& args) {
  const graph::Csr g = load_graph(args);
  const models::ModelKind kind = parse_model(args);
  const std::int64_t f = args.get_int_checked("feature", 32, 1, 1 << 16);
  const int heads = static_cast<int>(args.get_int_checked("heads", 1, 1, 64));
  const std::string sysname = args.get("system", "tlpgnn");
  const int repeat =
      static_cast<int>(args.get_int_checked("repeat", 1, 1, 1'000'000));

  Rng rng(static_cast<std::uint64_t>(args.get_int_checked("seed", 42, 0)));
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  const models::ConvSpec spec = models::ConvSpec::make(kind, f, rng, heads);

  const int gpu_scale =
      static_cast<int>(args.get_int_checked("gpu-scale", 1, 1, 1000));
  const double mem_gb =
      args.get_double_checked("device-mem-gb", 0.0, 0.0, 1e6);
  const std::int64_t mem_bytes =
      mem_gb > 0 ? static_cast<std::int64_t>(mem_gb * (1LL << 30)) : 0;

  std::printf("%s | %s | %s | F=%lld%s\n", sysname.c_str(),
              models::model_name(kind), g.summary().c_str(),
              static_cast<long long>(f),
              heads > 1 ? (" | heads=" + std::to_string(heads)).c_str() : "");

  Timer wall;
  systems::RunResult r;
  if (sysname == "tlpgnn") {
    // The library entry point: capacity enforcement plus the partitioned
    // OutOfMemory fallback live behind Engine::conv.
    EngineOptions eopts;
    eopts.gpu = sim::GpuSpec::v100_scaled(gpu_scale);
    eopts.device_memory_bytes = mem_bytes;
    eopts.device = device_options(args);
    Engine engine(eopts);
    for (int i = 0; i < repeat; ++i) r = engine.conv(g, feat, spec);
  } else {
    auto sys = systems::make_system(sysname);
    sim::GpuSpec spec_gpu = sim::GpuSpec::v100_scaled(gpu_scale);
    if (mem_bytes > 0) spec_gpu.memory_bytes = mem_bytes;
    sim::Device dev(spec_gpu, device_options(args));
    for (int i = 0; i < repeat; ++i) r = sys->run(dev, g, feat, spec);
  }
  const double host_s = wall.seconds();

  TextTable t({"metric", "value"});
  t.add_row({"kernel launches", std::to_string(r.kernel_launches)});
  t.add_row({"simulated GPU time", fixed(r.gpu_time_ms, 3) + " ms"});
  t.add_row({"measured time (Table 5 metric)", fixed(r.measured_ms, 3) + " ms"});
  t.add_row({"runtime incl. framework", fixed(r.runtime_ms, 3) + " ms"});
  if (r.preprocessing_ms > 0)
    t.add_row({"preprocessing (host)", fixed(r.preprocessing_ms, 3) + " ms"});
  t.add_row({"load traffic", human_bytes(r.metrics.bytes_load)});
  t.add_row({"store traffic", human_bytes(r.metrics.bytes_store)});
  t.add_row({"atomic traffic", human_bytes(r.metrics.bytes_atomic)});
  t.add_row({"DRAM traffic", human_bytes(r.metrics.bytes_dram)});
  t.add_row({"sectors / request", fixed(r.metrics.sectors_per_request, 2)});
  t.add_row({"L1 hit rate", pct(r.metrics.l1_hit_rate)});
  t.add_row({"scoreboard stall (cyc/instr)",
             fixed(r.metrics.scoreboard_stall, 1)});
  t.add_row({"SM utilization", pct(r.metrics.sm_utilization)});
  t.add_row({"achieved occupancy", pct(r.metrics.achieved_occupancy)});
  t.add_row({"peak device memory",
             human_bytes(static_cast<double>(r.peak_device_bytes))});
  t.add_row({"host wall time", fixed(host_s * 1e3, 1) + " ms"});
  if (r.degradation.degraded) {
    t.add_row({"degraded (OutOfMemory fallback)",
               std::to_string(r.degradation.partitions) + " partitions, " +
                   std::to_string(r.degradation.retries) + " retries"});
  }
  t.print();
  if (r.degradation.degraded)
    std::printf("degradation cause: %s\n", r.degradation.reason.c_str());

  if (args.get_bool("check", false)) {
    const tensor::Tensor ref = models::reference_conv(g, feat, spec);
    const bool ok = tensor::allclose(r.output, ref, 1e-3, 1e-4);
    std::printf("reference check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}

int cmd_gen(const Args& args) {
  const std::string out = args.get("out", "");
  TLP_CHECK_MSG(!out.empty(), "gen requires --out <path>");
  graph::Csr g;
  if (args.has("dataset")) {
    g = load_graph(args);
  } else {
    Rng rng(static_cast<std::uint64_t>(args.get_int_checked("seed", 42, 0)));
    g = graph::power_law(
        static_cast<graph::VertexId>(
            args.get_int_checked("vertices", 10'000, 1, 1LL << 40)),
        args.get_int_checked("edges", 100'000, 0, 1LL << 48),
        args.get_double_checked("alpha", 2.3, 0.1, 64.0), rng);
  }
  const std::string format = args.get("format", "el");
  if (format == "bin") {
    graph::write_binary_csr_file(out, g);
  } else {
    graph::write_edge_list_file(out, g);
  }
  std::printf("wrote %s: %s\n", out.c_str(), g.summary().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const graph::Csr g = load_graph(args);
  const graph::DegreeStats s = graph::degree_stats(g);
  std::printf("%s\n", g.summary().c_str());
  TextTable t({"degree stat", "value"});
  t.add_row({"min", std::to_string(s.min)});
  t.add_row({"median", fixed(s.median, 1)});
  t.add_row({"avg", fixed(s.avg, 2)});
  t.add_row({"p99", fixed(s.p99, 1)});
  t.add_row({"max", std::to_string(s.max)});
  t.add_row({"cv", fixed(s.cv, 3)});
  t.add_row({"gini", fixed(s.gini, 3)});
  t.print();
  std::printf("degree histogram (log2 buckets): ");
  for (const auto c : graph::degree_histogram(g))
    std::printf("%s ", human_count(static_cast<double>(c)).c_str());
  std::printf("\nhybrid heuristic would pick: %s assignment\n",
              (g.num_vertices() > 1'000'000 || g.avg_degree() > 50.0)
                  ? "software-pool"
                  : "hardware-dynamic");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tlp::Args args(argc, argv);
  const std::string cmd =
      args.positional().empty() ? "run" : args.positional()[0];
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    std::fprintf(stderr, "unknown command '%s' (run|gen|info)\n", cmd.c_str());
    return 2;
  } catch (const tlp::UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const tlp::CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
