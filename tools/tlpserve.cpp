// tlpserve — the resilient serving runtime, end to end (DESIGN.md §11).
//
//   tlpserve [--dataset PD | --graph file.el] [--max-edges N] [--seed S]
//            [--model GCN] [--feature 32] [--heads 1]
//            traffic:  [--requests 256] [--arrival poisson|bursty]
//                      [--mean-gap-ms 1.0] [--burst-len 32]
//                      [--burst-speedup 8] [--idle-gap-ms 20]
//                      [--zipf 0.8] [--hops 2] [--max-ego 512]
//                      [--deadline-ms D]
//   serving:  [--queue-cap 64] [--max-batch 8] [--batch-window-ms 2]
//             [--retries 2] [--backoff-ms 0.5] [--jitter 0.2]
//             [--fallback-attempts 2] [--partitions 2]
//             [--breaker-threshold 4] [--breaker-cooldown-ms 50]
//             [--gpu-scale 1] [--device-mem-gb G]
//   storm:    [--storm-at REQ] [--storm-oom-every N] [--storm-oom-burst L]
//             [--storm-launch-every N] [--storm-launch-burst L]
//             [--storm-stop-at REQ]
//   cache:    [--cache-policy presample|degree|none] [--cache-ratio 0.1]
//             [--cache-rounds 3]
//   output:   [--json PATH] [--verify] [--quiet]
//
// The cache flags attach a pre-sampling feature cache (DESIGN.md §12):
// --cache-policy picks how the pinned set is ranked, --cache-ratio the
// fraction of vertices pinned, --cache-rounds the warm-up sampling rounds.
// Served rows stay bit-identical to a cacheless run; only the latency /
// cache accounting changes. Without --cache-policy the gather stays free
// (the legacy pre-cache behavior, byte-for-byte).
//
// The storm flags arm a recurring FaultPlan right before the batch holding
// request REQ executes (and disarm it at --storm-stop-at). --verify re-runs
// the identical traffic with no storm and bit-compares every response that
// was served in both runs — the graceful-degradation contract: a fault storm
// may slow requests down or shed them, but a served embedding is always the
// bit-identical fault-free answer. Exit codes: 0 ok, 1 failure (including a
// --verify mismatch), 2 usage error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"

namespace {

using namespace tlp;

constexpr std::int64_t kSeqMax = 1'000'000'000'000;

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> kFlags{
      "dataset", "graph", "max-edges", "seed", "model", "feature", "heads",
      "requests", "arrival", "mean-gap-ms", "burst-len", "burst-speedup",
      "idle-gap-ms", "zipf", "hops", "max-ego", "deadline-ms",
      "queue-cap", "max-batch", "batch-window-ms", "retries", "backoff-ms",
      "jitter", "fallback-attempts", "partitions", "breaker-threshold",
      "breaker-cooldown-ms", "gpu-scale", "device-mem-gb",
      "storm-at", "storm-oom-every", "storm-oom-burst", "storm-launch-every",
      "storm-launch-burst", "storm-stop-at",
      "cache-policy", "cache-ratio", "cache-rounds",
      "json", "verify", "quiet", "help"};
  return kFlags;
}

graph::Csr load_graph(const Args& args) {
  const std::string path = args.get("graph", "");
  if (!path.empty()) return graph::read_edge_list_file(path);
  const auto& ds = graph::dataset_by_abbr(args.get("dataset", "PD"));
  return graph::make_dataset(
      ds, {.max_edges = args.get_int_checked("max-edges", 200'000, 1, kSeqMax),
           .full = false,
           .seed = static_cast<std::uint64_t>(
               args.get_int_checked("seed", 42, 0, kSeqMax))});
}

models::ModelKind parse_model(const Args& args) {
  const std::string name = args.get("model", "GCN");
  for (const auto k : models::kAllModels)
    if (name == models::model_name(k)) return k;
  TLP_CHECK_MSG(false, "unknown model '" << name << "' (GCN/GIN/Sage/GAT)");
  __builtin_unreachable();
}

serve::TrafficOptions traffic_options(const Args& args) {
  serve::TrafficOptions t;
  t.num_requests = args.get_int_checked("requests", 256, 0, 1'000'000);
  const std::string arrival = args.get("arrival", "poisson");
  if (arrival == "poisson") {
    t.arrival = serve::ArrivalProcess::kPoisson;
  } else if (arrival == "bursty") {
    t.arrival = serve::ArrivalProcess::kBursty;
  } else {
    TLP_CHECK_MSG(false,
                  "unknown --arrival '" << arrival << "' (poisson|bursty)");
  }
  t.mean_interarrival_ms =
      args.get_double_checked("mean-gap-ms", 1.0, 1e-6, 1e9);
  t.burst_len = args.get_int_checked("burst-len", 32, 1, 1'000'000);
  t.burst_speedup = args.get_double_checked("burst-speedup", 8.0, 1e-6, 1e9);
  t.gap_ms = args.get_double_checked("idle-gap-ms", 20.0, 0, 1e9);
  t.zipf_alpha = args.get_double_checked("zipf", 0.8, 0, 64);
  t.hops = static_cast<int>(args.get_int_checked("hops", 2, 0, 16));
  t.max_ego_vertices = args.get_int_checked("max-ego", 512, 1, kSeqMax);
  t.deadline_ms = args.get_double_checked("deadline-ms", 0, 0, 1e9);
  t.seed =
      static_cast<std::uint64_t>(args.get_int_checked("seed", 42, 0, kSeqMax));
  return t;
}

serve::ServerOptions server_options(const Args& args) {
  serve::ServerOptions s;
  s.queue_capacity = args.get_int_checked("queue-cap", 64, 1, 1'000'000);
  s.max_batch =
      static_cast<int>(args.get_int_checked("max-batch", 8, 1, 4096));
  s.batch_window_ms = args.get_double_checked("batch-window-ms", 2.0, 0, 1e9);
  s.retry.max_retries =
      static_cast<int>(args.get_int_checked("retries", 2, 0, 64));
  s.retry.base_delay_ms = args.get_double_checked("backoff-ms", 0.5, 0, 1e9);
  s.retry.jitter_frac = args.get_double_checked("jitter", 0.2, 0, 1);
  s.fallback.max_attempts =
      static_cast<int>(args.get_int_checked("fallback-attempts", 2, 1, 64));
  s.fallback.initial_partitions =
      static_cast<int>(args.get_int_checked("partitions", 2, 1, 1 << 20));
  s.breaker.failure_threshold = static_cast<int>(
      args.get_int_checked("breaker-threshold", 4, 1, 1'000'000));
  s.breaker.cooldown_ms =
      args.get_double_checked("breaker-cooldown-ms", 50.0, 0, 1e9);
  s.engine.gpu = sim::GpuSpec::v100_scaled(
      static_cast<int>(args.get_int_checked("gpu-scale", 1, 1, 1000)));
  const double mem_gb = args.get_double_checked("device-mem-gb", 0.0, 0, 1e6);
  if (mem_gb > 0) {
    s.engine.device_memory_bytes =
        static_cast<std::int64_t>(mem_gb * (1LL << 30));
  }

  // Fault storm: one recurring-fault window, optionally disarmed later.
  const std::int64_t storm_at =
      args.get_int_checked("storm-at", -1, -1, kSeqMax);
  if (storm_at >= 0) {
    serve::StormEvent on;
    on.at_request = storm_at;
    on.plan.oom_every = args.get_int_checked("storm-oom-every", 0, 0, kSeqMax);
    on.plan.oom_burst_len =
        args.get_int_checked("storm-oom-burst", 1, 1, kSeqMax);
    on.plan.launch_every =
        args.get_int_checked("storm-launch-every", 0, 0, kSeqMax);
    on.plan.launch_burst_len =
        args.get_int_checked("storm-launch-burst", 1, 1, kSeqMax);
    TLP_CHECK_MSG(on.plan.any(),
                  "--storm-at needs at least one of --storm-oom-every / "
                  "--storm-launch-every");
    s.storms.push_back(on);
    const std::int64_t stop =
        args.get_int_checked("storm-stop-at", -1, -1, kSeqMax);
    if (stop >= 0) {
      TLP_CHECK_MSG(stop > storm_at,
                    "--storm-stop-at " << stop << " must be after --storm-at "
                                       << storm_at);
      s.storms.push_back({stop, sim::FaultPlan{}});
    }
  } else {
    for (const char* f : {"storm-oom-every", "storm-launch-every",
                          "storm-stop-at"}) {
      TLP_CHECK_MSG(!args.has(f),
                    "--" << f << " requires --storm-at to anchor the storm");
    }
  }
  return s;
}

/// Parses the cache flags. --cache-policy anchors the group (mirrors the
/// storm flags): without it the other cache flags are rejected and the
/// server runs cacheless.
std::optional<serve::FeatureCacheOptions> cache_options(const Args& args) {
  if (!args.has("cache-policy")) {
    for (const char* f : {"cache-ratio", "cache-rounds"}) {
      TLP_CHECK_MSG(!args.has(f),
                    "--" << f << " requires --cache-policy to attach a cache");
    }
    return std::nullopt;
  }
  serve::FeatureCacheOptions c;
  c.policy = serve::cache_policy_from_name(args.get_choice(
      "cache-policy", "presample", {"presample", "degree", "none"}));
  c.cache_ratio = args.get_double_checked("cache-ratio", 0.10, 0, 1);
  c.warmup_rounds =
      static_cast<int>(args.get_int_checked("cache-rounds", 3, 0, 1024));
  return c;
}

void print_report(const serve::SloReport& r) {
  TextTable t({"SLO metric", "value"});
  t.add_row({"requests", std::to_string(r.total)});
  t.add_row({"ok / retried / degraded",
             std::to_string(r.ok) + " / " + std::to_string(r.retried) +
                 " / " + std::to_string(r.degraded)});
  t.add_row({"rejected / failed",
             std::to_string(r.rejected) + " / " + std::to_string(r.failed)});
  t.add_row({"p50 latency", fixed(r.p50_ms, 3) + " ms"});
  t.add_row({"p99 latency", fixed(r.p99_ms, 3) + " ms"});
  t.add_row({"mean / max latency",
             fixed(r.mean_ms, 3) + " / " + fixed(r.max_ms, 3) + " ms"});
  t.add_row({"throughput", fixed(r.throughput_rps, 1) + " req/s"});
  t.add_row({"makespan", fixed(r.makespan_ms, 2) + " ms"});
  t.add_row({"error rate", pct(r.error_rate)});
  t.add_row({"degradation rate", pct(r.degradation_rate)});
  t.add_row({"rejection rate", pct(r.rejection_rate)});
  t.add_row({"deadline misses", std::to_string(r.deadline_misses)});
  t.add_row({"direct / fallback attempts",
             std::to_string(r.direct_attempts) + " / " +
                 std::to_string(r.fallback_attempts)});
  t.add_row({"breaker opens", std::to_string(r.breaker_opens)});
  if (r.cache_policy != "off") {
    t.add_row({"cache policy / pinned rows",
               r.cache_policy + " / " + std::to_string(r.cache_pinned_rows)});
    t.add_row({"cache hit ratio", pct(r.cache_hit_ratio)});
    t.add_row({"cache hit / miss rows",
               std::to_string(r.cache_hit_rows) + " / " +
                   std::to_string(r.cache_miss_rows)});
    t.add_row({"cache gather time", fixed(r.cache_gather_ms, 3) + " ms"});
  }
  t.print();
}

std::string outcome_sequence(const std::vector<serve::Response>& responses) {
  std::string seq;
  seq.reserve(responses.size());
  for (const auto& r : responses) {
    seq.push_back(
        static_cast<char>(std::toupper(serve::outcome_name(r.outcome)[0])));
  }
  return seq;
}

/// Bit-compares responses served in both runs. A storm may change *which*
/// requests get served, never *what* a served request receives.
int verify_against_fault_free(const std::vector<serve::Response>& storm,
                              const std::vector<serve::Response>& clean) {
  std::int64_t compared = 0;
  std::int64_t mismatched = 0;
  for (std::size_t i = 0; i < storm.size(); ++i) {
    if (!storm[i].served() || !clean[i].served()) continue;
    ++compared;
    const auto& a = storm[i].output;
    const auto& b = clean[i].output;
    if (a.size() != b.size() ||
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
      ++mismatched;
      std::fprintf(stderr, "verify: req %lld output differs (%s vs %s)\n",
                   static_cast<long long>(storm[i].id),
                   serve::outcome_name(storm[i].outcome),
                   serve::outcome_name(clean[i].outcome));
    }
  }
  std::printf("verify: %lld served in both runs, %lld bitwise mismatches\n",
              static_cast<long long>(compared),
              static_cast<long long>(mismatched));
  return mismatched == 0 ? 0 : 1;
}

void print_usage(std::FILE* to) {
  std::fprintf(to, "tlpserve: request-driven serving over the simulator\n"
                   "flags:");
  for (const std::string& f : known_flags()) std::fprintf(to, " --%s", f.c_str());
  std::fprintf(to, "\n(see the header of tools/tlpserve.cpp for semantics)\n");
}

int run(const Args& args) {
  const graph::Csr g = load_graph(args);
  const models::ModelKind kind = parse_model(args);
  const std::int64_t f = args.get_int_checked("feature", 32, 1, 1 << 16);
  const int heads = static_cast<int>(args.get_int_checked("heads", 1, 1, 64));
  const bool quiet = args.get_bool("quiet", false);

  Rng rng(static_cast<std::uint64_t>(args.get_int_checked("seed", 42, 0,
                                                          kSeqMax)));
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  const models::ConvSpec spec = models::ConvSpec::make(kind, f, rng, heads);

  const serve::TrafficOptions topts = traffic_options(args);
  const serve::ServerOptions sopts = server_options(args);
  const std::vector<serve::Request> traffic =
      serve::generate_traffic(g, feat, topts);

  if (!quiet) {
    std::printf("tlpserve | %s | %s | %lld requests (%s arrivals)%s\n",
                models::model_name(kind), g.summary().c_str(),
                static_cast<long long>(topts.num_requests),
                topts.arrival == serve::ArrivalProcess::kPoisson ? "poisson"
                                                                 : "bursty",
                sopts.storms.empty() ? "" : " | fault storm armed");
  }

  const std::optional<serve::FeatureCacheOptions> copts = cache_options(args);
  std::optional<serve::FeatureCache> cache;
  if (copts) cache.emplace(g, feat, topts, *copts);

  serve::Server server(sopts, cache ? &*cache : nullptr);
  const serve::ServeResult res = server.run(traffic, spec);
  if (!quiet) print_report(res.report);

  int rc = 0;
  if (args.get_bool("verify", false)) {
    serve::ServerOptions clean_opts = sopts;
    clean_opts.storms.clear();
    // The twin gets its own cache (same deterministic pinned set) so its
    // stats do not pollute the storm run's accounting.
    std::optional<serve::FeatureCache> twin_cache;
    if (copts) twin_cache.emplace(g, feat, topts, *copts);
    serve::Server clean(clean_opts, twin_cache ? &*twin_cache : nullptr);
    const serve::ServeResult twin = clean.run(traffic, spec);
    rc = verify_against_fault_free(res.responses, twin.responses);
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    report::Json doc = report::Json::object();
    doc.set("schema", "tlpserve-v1");
    doc.set("model", models::model_name(kind));
    doc.set("requests", topts.num_requests);
    doc.set("storm", !sopts.storms.empty());
    doc.set("outcome_sequence", outcome_sequence(res.responses));
    doc.set("slo", res.report.to_json());
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << doc.dump();
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const tlp::Args args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(stdout);
    return 0;
  }
  for (const std::string& key : args.named_keys()) {
    if (std::find(known_flags().begin(), known_flags().end(), key) ==
        known_flags().end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  try {
    return run(args);
  } catch (const tlp::UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const tlp::CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
