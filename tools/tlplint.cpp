// tlplint — the tlpsan command-line front end.
//
// Runs every registered GNN system (or a --systems subset) on the stock
// synthetic lint graphs with an access trace attached, feeds the traces
// through the analysis passes, and reports the diagnostics:
//
//   tlplint                          # human-readable report, exit 0/1
//   tlplint --json report.json       # also write the machine-readable report
//   tlplint --baseline tools/tlplint_baseline.json
//                                    # gate: exit 1 on any NEW unsuppressed
//                                    # diagnostic not in the baseline
//   tlplint --update-baseline tools/tlplint_baseline.json
//                                    # refresh the checked-in baseline
//
// Without --baseline, the exit code is 1 when any unsuppressed error-severity
// diagnostic exists (useful locally); with --baseline, only *new* findings
// gate, so known paper-documented pathologies stay visible without breaking
// CI. See README.md ("Linting the kernels") for the workflow.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

namespace {

using tlp::analysis::Diagnostic;
using tlp::analysis::Severity;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "tlplint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "tlplint: cannot write " << path << "\n";
    std::exit(2);
  }
  out << content;
}

void print_report(const std::vector<Diagnostic>& diags) {
  tlp::TextTable table(
      {"severity", "rule", "system", "dataset", "kernel", "site", "count"});
  for (const Diagnostic& d : diags) {
    std::string site = d.site;
    if (!d.site2.empty()) site += " / " + d.site2;
    table.add_row({std::string(severity_name(d.severity)) +
                       (d.suppressed ? " (suppressed)" : ""),
                   d.rule, d.system, d.dataset, d.kernel, site,
                   std::to_string(d.count)});
  }
  if (table.num_rows() > 0) table.print();

  for (const Diagnostic& d : diags) {
    std::cout << "\n" << severity_name(d.severity) << " " << d.rule << " ["
              << d.system << "/" << d.dataset << "/" << d.kernel << "]";
    if (!d.location.empty()) std::cout << " at " << d.location;
    std::cout << "\n  " << d.message << "\n";
    if (d.suppressed)
      std::cout << "  suppressed: " << d.suppress_reason << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  tlp::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: tlplint [--systems=a,b,..] [--json PATH]\n"
        << "               [--baseline PATH | --update-baseline PATH]\n"
        << "Runs tlpsan over every registered system on the synthetic lint\n"
        << "graphs. Exits 1 on new-vs-baseline findings (with --baseline)\n"
        << "or on any unsuppressed error (without).\n";
    return 0;
  }

  std::vector<std::string> systems =
      tlp::analysis::lint_system_names();
  if (args.has("systems")) systems = split_csv(args.get("systems", ""));

  const std::vector<tlp::analysis::LintDataset> datasets =
      tlp::analysis::default_lint_datasets();

  std::cerr << "tlplint: analyzing " << systems.size() << " systems x "
            << datasets.size() << " datasets...\n";
  const tlp::analysis::LintReport report =
      tlp::analysis::lint_systems(systems, datasets);

  int errors = 0, warnings = 0, notes = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.suppressed || d.severity == Severity::kNote)
      ++notes;
    else if (d.severity == Severity::kError)
      ++errors;
    else
      ++warnings;
  }

  print_report(report.diagnostics);
  std::cout << "\ntlplint: " << report.runs << " runs, " << report.launches
            << " launches analyzed; " << errors << " errors, " << warnings
            << " warnings, " << notes << " notes (suppressed/informational)";
  if (report.trace_truncated) std::cout << " [trace truncated]";
  std::cout << "\n";

  const std::string json =
      tlp::analysis::to_json(report.diagnostics, report.trace_truncated);
  if (args.has("json")) write_file(args.get("json", ""), json);
  if (args.has("update-baseline")) {
    write_file(args.get("update-baseline", ""), json);
    std::cout << "tlplint: baseline updated ("
              << report.diagnostics.size() << " diagnostics)\n";
    return 0;
  }

  if (args.has("baseline")) {
    const std::vector<std::string> baseline_keys =
        tlp::analysis::keys_from_json(read_file(args.get("baseline", "")));
    const std::vector<Diagnostic> fresh =
        tlp::analysis::new_versus_baseline(report.diagnostics, baseline_keys);
    if (!fresh.empty()) {
      std::cout << "\ntlplint: " << fresh.size()
                << " NEW diagnostic(s) not in baseline:\n";
      for (const Diagnostic& d : fresh)
        std::cout << "  " << d.key() << "\n    " << d.message << "\n";
      std::cout << "If intended, refresh with: tlplint --update-baseline "
                << args.get("baseline", "") << "\n";
      return 1;
    }
    std::cout << "tlplint: no new diagnostics versus baseline ("
              << baseline_keys.size() << " baselined keys)\n";
    return 0;
  }

  return errors > 0 ? 1 : 0;
}
