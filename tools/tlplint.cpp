// tlplint — the tlpsan command-line front end.
//
// Runs every registered GNN system (or a --systems subset) on the stock
// synthetic lint graphs with an access trace attached, feeds the traces
// through both analysis-pass families, and reports the diagnostics:
//
//   tlplint                          # human-readable report, exit 0/1
//   tlplint --serve                  # also lint a served Server session
//   tlplint --json report.json       # also write the machine-readable report
//   tlplint --sarif report.sarif     # also write SARIF 2.1.0 (CI annotations)
//   tlplint --baseline tools/tlplint_baseline.json
//                                    # gate: exit 1 on any NEW unsuppressed
//                                    # diagnostic not in the baseline
//   tlplint --update-baseline tools/tlplint_baseline.json
//                                    # refresh the checked-in baseline
//   tlplint --fail-on warning        # non-baseline gate severity (default
//                                    # error; note/warning/error)
//   tlplint --strict                 # exit 1 if any trace was truncated
//   tlplint --max-trace-mb 64        # per-run trace byte budget
//
// Without --baseline, the exit code is 1 when any unsuppressed diagnostic at
// or above the --fail-on severity exists (useful locally); with --baseline,
// only *new* findings gate, so known paper-documented pathologies stay
// visible without breaking CI. --strict makes a truncated trace (TLP-META-000
// — incomplete coverage) failing in either mode. See README.md ("Linting the
// kernels") for the workflow.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

namespace {

using tlp::analysis::Diagnostic;
using tlp::analysis::Severity;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "tlplint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "tlplint: cannot write " << path << "\n";
    std::exit(2);
  }
  out << content;
}

Severity parse_fail_on(const std::string& s) {
  if (s == "note") return Severity::kNote;
  if (s == "warning") return Severity::kWarning;
  if (s == "error") return Severity::kError;
  std::cerr << "tlplint: --fail-on must be note, warning, or error (got '"
            << s << "')\n";
  std::exit(2);
}

void print_report(const std::vector<Diagnostic>& diags) {
  tlp::TextTable table(
      {"severity", "rule", "system", "dataset", "kernel", "site", "count"});
  for (const Diagnostic& d : diags) {
    std::string site = d.site;
    if (!d.site2.empty()) site += " / " + d.site2;
    table.add_row({std::string(severity_name(d.severity)) +
                       (d.suppressed ? " (suppressed)" : ""),
                   d.rule, d.system, d.dataset, d.kernel, site,
                   std::to_string(d.count)});
  }
  if (table.num_rows() > 0) table.print();

  for (const Diagnostic& d : diags) {
    std::cout << "\n" << severity_name(d.severity) << " " << d.rule << " ["
              << d.system << "/" << d.dataset << "/" << d.kernel << "]";
    if (!d.location.empty()) std::cout << " at " << d.location;
    std::cout << "\n  " << d.message << "\n";
    if (d.suppressed)
      std::cout << "  suppressed: " << d.suppress_reason << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  tlp::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: tlplint [--systems=a,b,..] [--serve] [--json PATH]\n"
        << "               [--sarif PATH] [--fail-on note|warning|error]\n"
        << "               [--strict] [--max-trace-mb N]\n"
        << "               [--baseline PATH | --update-baseline PATH]\n"
        << "Runs tlpsan over every registered system on the synthetic lint\n"
        << "graphs (--serve adds a served Server session with a fault\n"
        << "storm). Exits 1 on new-vs-baseline findings (with --baseline)\n"
        << "or on any unsuppressed finding at or above --fail-on severity\n"
        << "(without; default error). --strict also fails on a truncated\n"
        << "trace.\n";
    return 0;
  }

  std::vector<std::string> systems =
      tlp::analysis::lint_system_names();
  if (args.has("systems")) systems = split_csv(args.get("systems", ""));

  const std::vector<tlp::analysis::LintDataset> datasets =
      tlp::analysis::default_lint_datasets();

  tlp::analysis::PassOptions opt;
  opt.gpu = tlp::analysis::lint_gpu_spec();
  opt.trace_max_bytes =
      static_cast<std::size_t>(
          args.get_int_checked("max-trace-mb", 1024, 1, 1 << 20))
      << 20;
  const Severity fail_on = parse_fail_on(args.get("fail-on", "error"));
  const bool strict = args.get_bool("strict", false);

  std::cerr << "tlplint: analyzing " << systems.size() << " systems x "
            << datasets.size() << " datasets"
            << (args.has("serve") ? " + served session" : "") << "...\n";
  tlp::analysis::LintReport report =
      tlp::analysis::lint_systems(systems, datasets, opt);
  if (args.has("serve")) {
    tlp::analysis::LintReport serve = tlp::analysis::lint_serve(opt);
    report.diagnostics.insert(
        report.diagnostics.end(),
        std::make_move_iterator(serve.diagnostics.begin()),
        std::make_move_iterator(serve.diagnostics.end()));
    report.trace_truncated |= serve.trace_truncated;
    report.runs += serve.runs;
    report.launches += serve.launches;
    tlp::analysis::sort_diagnostics(report.diagnostics);
  }

  int errors = 0, warnings = 0, notes = 0;
  int gating = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.suppressed || d.severity == Severity::kNote)
      ++notes;
    else if (d.severity == Severity::kError)
      ++errors;
    else
      ++warnings;
    if (!d.suppressed && d.severity >= fail_on) ++gating;
  }

  print_report(report.diagnostics);
  std::cout << "\ntlplint: " << report.runs << " runs, " << report.launches
            << " launches analyzed; " << errors << " errors, " << warnings
            << " warnings, " << notes << " notes (suppressed/informational)";
  if (report.trace_truncated) std::cout << " [trace truncated]";
  std::cout << "\n";

  const std::string json =
      tlp::analysis::to_json(report.diagnostics, report.trace_truncated);
  if (args.has("json")) write_file(args.get("json", ""), json);
  if (args.has("sarif"))
    write_file(args.get("sarif", ""),
               tlp::analysis::to_sarif(report.diagnostics));
  if (args.has("update-baseline")) {
    write_file(args.get("update-baseline", ""), json);
    std::cout << "tlplint: baseline updated ("
              << report.diagnostics.size() << " diagnostics)\n";
    return 0;
  }

  // A truncated trace means the analysis covered a prefix, not the run:
  // under --strict that can never pass, baseline or not.
  int strict_rc = 0;
  if (strict && report.trace_truncated) {
    std::cout << "tlplint: trace truncated under --strict — coverage "
                 "incomplete (raise --max-trace-mb)\n";
    strict_rc = 1;
  }

  if (args.has("baseline")) {
    const std::vector<std::string> baseline_keys =
        tlp::analysis::keys_from_json(read_file(args.get("baseline", "")));
    const std::vector<Diagnostic> fresh =
        tlp::analysis::new_versus_baseline(report.diagnostics, baseline_keys);
    if (!fresh.empty()) {
      std::cout << "\ntlplint: " << fresh.size()
                << " NEW diagnostic(s) not in baseline:\n";
      for (const Diagnostic& d : fresh)
        std::cout << "  " << d.key() << "\n    " << d.message << "\n";
      std::cout << "If intended, refresh with: tlplint --update-baseline "
                << args.get("baseline", "") << "\n";
      return 1;
    }
    std::cout << "tlplint: no new diagnostics versus baseline ("
              << baseline_keys.size() << " baselined keys)\n";
    return strict_rc;
  }

  if (gating > 0) {
    std::cout << "tlplint: " << gating
              << " unsuppressed finding(s) at or above --fail-on "
              << severity_name(fail_on) << "\n";
    return 1;
  }
  return strict_rc;
}
