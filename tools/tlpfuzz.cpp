// tlpfuzz — differential & metamorphic fuzzing harness CLI.
//
//   tlpfuzz --iters 500 --seed 42        # fuzz campaign, exit 0/1
//   tlpfuzz --time-budget 30             # stop after ~30 s instead
//   tlpfuzz --expect-bugs                # self-check: seeded-bug kernels
//                                        # must ALL be caught (exit 1 if the
//                                        # harness misses one)
//   tlpfuzz --repro crash.el             # replay a minimized repro through
//                                        # every oracle and model
//   tlpfuzz --json report.json           # also write the JSON report
//   tlpfuzz --repro-dir repros           # minimize failures into .el files
//
// Exit codes: 0 all oracles held, 1 failures found (or, with --expect-bugs,
// a seeded bug was missed), 2 usage/environment error.
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "fuzz/fuzz.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "tlpfuzz: cannot write " << path << "\n";
    std::exit(2);
  }
  out << content;
}

void print_failures(const tlp::fuzz::FuzzReport& rep) {
  for (const tlp::fuzz::FailureRecord& f : rep.failures) {
    std::cout << "FAIL [" << f.failure.oracle << "/" << f.failure.subject
              << "] " << f.spec.summary() << "\n  " << f.failure.detail
              << "\n";
    if (!f.repro_file.empty()) {
      std::cout << "  minimized to |V|=" << f.minimized_vertices
                << " |E|=" << f.minimized_edges << " -> " << f.repro_file
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  tlp::Args args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: tlpfuzz [--iters N] [--seed S] [--time-budget SECONDS]\n"
        << "               [--repro FILE.el] [--expect-bugs]\n"
        << "               [--repro-dir DIR] [--json PATH] [--verbose]\n"
        << "Differential + metamorphic fuzzing of every kernel strategy,\n"
        << "framework replica, and fault plan against the CPU reference.\n";
    return 0;
  }

  tlp::fuzz::FuzzOptions opts;
  opts.seed = static_cast<std::uint64_t>(
      args.get_int_checked("seed", 42, 0));
  opts.iters = static_cast<std::uint64_t>(
      args.get_int_checked("iters", 500, 0, 100'000'000));
  opts.time_budget_s = args.get_double_checked("time-budget", 0.0, 0.0, 1e9);
  opts.repro_dir = args.get("repro-dir", "");
  opts.verbose = args.has("verbose");

  try {
    if (args.has("expect-bugs")) {
      const tlp::fuzz::ExpectBugsReport rep =
          tlp::fuzz::run_expect_bugs(2000, opts.verbose);
      for (const auto& m : rep.mutants) {
        std::cout << (m.caught ? "caught " : "MISSED ") << m.name;
        if (m.caught) {
          std::cout << "  (by: " << m.caught_by << ")";
          if (m.minimized_vertices >= 0) {
            std::cout << "  minimized |V|=" << m.minimized_vertices
                      << " |E|=" << m.minimized_edges;
          }
        }
        std::cout << "\n";
      }
      std::cout << "tlpfuzz: " << rep.mutants.size()
                << " seeded-bug kernels, "
                << (rep.all_caught() ? "all caught" : "SOME MISSED") << "\n";
      if (args.has("json"))
        write_file(args.get("json", ""), tlp::fuzz::report_to_json(rep));
      return rep.all_caught() ? 0 : 1;
    }

    tlp::fuzz::FuzzReport rep;
    if (args.has("repro")) {
      rep = tlp::fuzz::run_repro(args.get("repro", ""), opts);
      std::cout << "tlpfuzz: replayed " << args.get("repro", "") << " through "
                << rep.cases_run << " model/width combinations ("
                << rep.oracle_checks << " oracle checks)\n";
    } else {
      rep = tlp::fuzz::run_fuzz(opts);
      std::cout << "tlpfuzz: " << rep.cases_run << " cases, "
                << rep.oracle_checks << " oracle checks, "
                << rep.coverage_signatures << " coverage signatures, "
                << rep.failures.size() << " failures in " << rep.elapsed_s
                << " s (seed " << rep.seed << ")\n";
    }
    print_failures(rep);
    if (args.has("json"))
      write_file(args.get("json", ""), tlp::fuzz::report_to_json(rep));
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "tlpfuzz: fatal: " << e.what() << "\n";
    return 2;
  }
}
