#!/usr/bin/env python3
"""Documentation drift gate (CI `docs-check` job, DESIGN.md §12).

Two families of checks over the repo's hand-written markdown:

1. **Link integrity.** Every intra-repo markdown link — `[text](path)`,
   `[text](path#anchor)`, `[text](#anchor)` — must resolve: the target file
   exists (relative to the linking file), and the anchor matches a heading in
   the target under GitHub's slugging rules (lowercase, punctuation stripped,
   spaces to hyphens, `-1`/`-2`… suffixes for duplicates). External links
   (`http://`, `https://`, `mailto:`) are out of scope.

2. **Count claims.** Prose that states a number the repo can compute is
   re-derived from the tree and compared, so the docs cannot silently rot:
     - README's test-count line (`N test cases across M suites`) against the
       TEST/TEST_F/TEST_P macros and test_*.cpp files under tests/.

Exit status: 0 when clean, 1 with one line per finding otherwise. Run from
anywhere; the repo root is located from this file's path.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Hand-written markdown that must stay link-clean. EXPERIMENTS.md is
# generated (the bench-smoke drift gate owns it) but its links still have to
# resolve, so it is checked too.
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
]

# [text](target) — excluding images; target split on the first '#'.
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

# GitHub's anchor slug: drop everything but word chars, spaces, hyphens;
# lowercase; spaces to hyphens. Inline code/emphasis markers vanish with the
# punctuation strip, which matches GitHub's behavior for the headings used
# in this repo.
SLUG_STRIP_RE = re.compile(r"[^\w\- ]")


def github_slug(heading: str) -> str:
    slug = SLUG_STRIP_RE.sub("", heading.strip().lower())
    return slug.replace(" ", "-")


def heading_anchors(md_path: Path) -> set[str]:
    """All anchor slugs a file exposes, with GitHub's duplicate suffixing."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        base = github_slug(m.group(2))
        n = seen.get(base, 0)
        seen[base] = n + 1
        anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def extract_links(md_path: Path) -> list[tuple[int, str]]:
    """(line_number, target) for every non-image link outside code fences."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
        md_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            links.append((lineno, m.group(1)))
    return links


def check_links() -> list[str]:
    errors: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(path)
        return anchor_cache[path]

    for rel in DOCS:
        doc = REPO / rel
        if not doc.is_file():
            errors.append(f"{rel}: file listed in DOCS does not exist")
            continue
        for lineno, target in extract_links(doc):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = (doc.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"(no such file: {path_part})"
                    )
                    continue
            else:
                dest = doc  # bare '#anchor' points into the same file
            if anchor:
                if dest.suffix.lower() != ".md" or dest.is_dir():
                    continue  # anchors into non-markdown are not checkable
                if anchor.lower() not in anchors_of(dest):
                    errors.append(
                        f"{rel}:{lineno}: broken anchor '{target}' "
                        f"(no heading slugs to '#{anchor}' in "
                        f"{dest.relative_to(REPO)})"
                    )
    return errors


# README claims the test-suite scale on its ctest line; recompute both
# numbers from the tree. "Suites" = test_*.cpp binaries (one ctest entry
# each); "test cases" = TEST/TEST_F/TEST_P macro instantiations.
COUNT_CLAIM_RE = re.compile(r"(\d+)\s+test cases across\s+(\d+)\s+suites")
GTEST_MACRO_RE = re.compile(r"^\s*TEST(?:_F|_P)?\(", re.MULTILINE)


def check_counts() -> list[str]:
    errors: list[str] = []
    suites = sorted((REPO / "tests").glob("test_*.cpp"))
    n_suites = len(suites)
    n_cases = sum(
        len(GTEST_MACRO_RE.findall(p.read_text(encoding="utf-8")))
        for p in suites
    )

    readme = REPO / "README.md"
    claims = COUNT_CLAIM_RE.findall(readme.read_text(encoding="utf-8"))
    if not claims:
        errors.append(
            "README.md: no 'N test cases across M suites' claim found "
            f"(expected '{n_cases} test cases across {n_suites} suites')"
        )
    for cases, suite_count in claims:
        if int(cases) != n_cases or int(suite_count) != n_suites:
            errors.append(
                f"README.md: stale test count claim '{cases} test cases "
                f"across {suite_count} suites' — tree has {n_cases} test "
                f"cases across {n_suites} suites (regenerate the claim)"
            )
    return errors


def main() -> int:
    errors = check_links() + check_counts()
    for e in errors:
        print(e, file=sys.stderr)
    checked = ", ".join(rel for rel in DOCS if (REPO / rel).is_file())
    if errors:
        print(f"docs-check: {len(errors)} finding(s) in [{checked}]",
              file=sys.stderr)
        return 1
    print(f"docs-check: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
