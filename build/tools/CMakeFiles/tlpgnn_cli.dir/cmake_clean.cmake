file(REMOVE_RECURSE
  "CMakeFiles/tlpgnn_cli.dir/tlpgnn_cli.cpp.o"
  "CMakeFiles/tlpgnn_cli.dir/tlpgnn_cli.cpp.o.d"
  "tlpgnn_cli"
  "tlpgnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlpgnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
