# Empty dependencies file for tlpgnn_cli.
# This may be replaced when dependencies are built.
