file(REMOVE_RECURSE
  "CMakeFiles/multi_gpu_partition.dir/multi_gpu_partition.cpp.o"
  "CMakeFiles/multi_gpu_partition.dir/multi_gpu_partition.cpp.o.d"
  "multi_gpu_partition"
  "multi_gpu_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_gpu_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
