# Empty dependencies file for multi_gpu_partition.
# This may be replaced when dependencies are built.
