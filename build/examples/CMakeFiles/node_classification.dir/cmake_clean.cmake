file(REMOVE_RECURSE
  "CMakeFiles/node_classification.dir/node_classification.cpp.o"
  "CMakeFiles/node_classification.dir/node_classification.cpp.o.d"
  "node_classification"
  "node_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
