# Empty dependencies file for gat_attention.
# This may be replaced when dependencies are built.
