file(REMOVE_RECURSE
  "CMakeFiles/fig8_atomic_traffic.dir/fig8_atomic_traffic.cpp.o"
  "CMakeFiles/fig8_atomic_traffic.dir/fig8_atomic_traffic.cpp.o.d"
  "fig8_atomic_traffic"
  "fig8_atomic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_atomic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
