# Empty compiler generated dependencies file for fig8_atomic_traffic.
# This may be replaced when dependencies are built.
