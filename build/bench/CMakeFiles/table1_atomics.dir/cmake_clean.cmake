file(REMOVE_RECURSE
  "CMakeFiles/table1_atomics.dir/table1_atomics.cpp.o"
  "CMakeFiles/table1_atomics.dir/table1_atomics.cpp.o.d"
  "table1_atomics"
  "table1_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
