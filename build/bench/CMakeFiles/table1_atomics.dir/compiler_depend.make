# Empty compiler generated dependencies file for table1_atomics.
# This may be replaced when dependencies are built.
