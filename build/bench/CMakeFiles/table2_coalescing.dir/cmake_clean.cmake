file(REMOVE_RECURSE
  "CMakeFiles/table2_coalescing.dir/table2_coalescing.cpp.o"
  "CMakeFiles/table2_coalescing.dir/table2_coalescing.cpp.o.d"
  "table2_coalescing"
  "table2_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
