# Empty dependencies file for table2_coalescing.
# This may be replaced when dependencies are built.
