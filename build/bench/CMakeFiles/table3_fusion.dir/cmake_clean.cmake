file(REMOVE_RECURSE
  "CMakeFiles/table3_fusion.dir/table3_fusion.cpp.o"
  "CMakeFiles/table3_fusion.dir/table3_fusion.cpp.o.d"
  "table3_fusion"
  "table3_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
