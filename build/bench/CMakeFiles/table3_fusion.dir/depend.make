# Empty dependencies file for table3_fusion.
# This may be replaced when dependencies are built.
