file(REMOVE_RECURSE
  "CMakeFiles/table5_main.dir/table5_main.cpp.o"
  "CMakeFiles/table5_main.dir/table5_main.cpp.o.d"
  "table5_main"
  "table5_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
