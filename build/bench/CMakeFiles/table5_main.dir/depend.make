# Empty dependencies file for table5_main.
# This may be replaced when dependencies are built.
