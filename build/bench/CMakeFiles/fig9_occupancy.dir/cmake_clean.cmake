file(REMOVE_RECURSE
  "CMakeFiles/fig9_occupancy.dir/fig9_occupancy.cpp.o"
  "CMakeFiles/fig9_occupancy.dir/fig9_occupancy.cpp.o.d"
  "fig9_occupancy"
  "fig9_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
