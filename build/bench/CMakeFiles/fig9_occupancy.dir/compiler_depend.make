# Empty compiler generated dependencies file for fig9_occupancy.
# This may be replaced when dependencies are built.
