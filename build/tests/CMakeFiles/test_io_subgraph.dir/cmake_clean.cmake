file(REMOVE_RECURSE
  "CMakeFiles/test_io_subgraph.dir/test_io_subgraph.cpp.o"
  "CMakeFiles/test_io_subgraph.dir/test_io_subgraph.cpp.o.d"
  "test_io_subgraph"
  "test_io_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
