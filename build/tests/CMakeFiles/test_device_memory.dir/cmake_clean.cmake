file(REMOVE_RECURSE
  "CMakeFiles/test_device_memory.dir/test_device_memory.cpp.o"
  "CMakeFiles/test_device_memory.dir/test_device_memory.cpp.o.d"
  "test_device_memory"
  "test_device_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
