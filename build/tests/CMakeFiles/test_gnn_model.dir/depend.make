# Empty dependencies file for test_gnn_model.
# This may be replaced when dependencies are built.
