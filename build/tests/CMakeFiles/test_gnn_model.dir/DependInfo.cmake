
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gnn_model.cpp" "tests/CMakeFiles/test_gnn_model.dir/test_gnn_model.cpp.o" "gcc" "tests/CMakeFiles/test_gnn_model.dir/test_gnn_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/tlp_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/tlp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tlp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tlp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
