file(REMOVE_RECURSE
  "CMakeFiles/test_gnn_model.dir/test_gnn_model.cpp.o"
  "CMakeFiles/test_gnn_model.dir/test_gnn_model.cpp.o.d"
  "test_gnn_model"
  "test_gnn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
