file(REMOVE_RECURSE
  "libtlp_tensor.a"
)
