# Empty dependencies file for tlp_tensor.
# This may be replaced when dependencies are built.
