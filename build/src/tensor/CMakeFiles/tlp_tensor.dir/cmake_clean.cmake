file(REMOVE_RECURSE
  "CMakeFiles/tlp_tensor.dir/dense_ops.cpp.o"
  "CMakeFiles/tlp_tensor.dir/dense_ops.cpp.o.d"
  "CMakeFiles/tlp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tlp_tensor.dir/tensor.cpp.o.d"
  "libtlp_tensor.a"
  "libtlp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
