# Empty compiler generated dependencies file for tlp_core.
# This may be replaced when dependencies are built.
