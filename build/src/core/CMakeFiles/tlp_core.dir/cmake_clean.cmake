file(REMOVE_RECURSE
  "CMakeFiles/tlp_core.dir/engine.cpp.o"
  "CMakeFiles/tlp_core.dir/engine.cpp.o.d"
  "CMakeFiles/tlp_core.dir/gnn_model.cpp.o"
  "CMakeFiles/tlp_core.dir/gnn_model.cpp.o.d"
  "libtlp_core.a"
  "libtlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
