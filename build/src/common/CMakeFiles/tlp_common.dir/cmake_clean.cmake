file(REMOVE_RECURSE
  "CMakeFiles/tlp_common.dir/cli.cpp.o"
  "CMakeFiles/tlp_common.dir/cli.cpp.o.d"
  "CMakeFiles/tlp_common.dir/format.cpp.o"
  "CMakeFiles/tlp_common.dir/format.cpp.o.d"
  "CMakeFiles/tlp_common.dir/rng.cpp.o"
  "CMakeFiles/tlp_common.dir/rng.cpp.o.d"
  "CMakeFiles/tlp_common.dir/stats.cpp.o"
  "CMakeFiles/tlp_common.dir/stats.cpp.o.d"
  "CMakeFiles/tlp_common.dir/table.cpp.o"
  "CMakeFiles/tlp_common.dir/table.cpp.o.d"
  "libtlp_common.a"
  "libtlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
