# Empty compiler generated dependencies file for tlp_common.
# This may be replaced when dependencies are built.
