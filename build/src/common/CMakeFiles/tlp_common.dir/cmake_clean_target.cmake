file(REMOVE_RECURSE
  "libtlp_common.a"
)
