# Empty compiler generated dependencies file for tlp_kernels.
# This may be replaced when dependencies are built.
