
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/advisor_groups.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/advisor_groups.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/advisor_groups.cpp.o.d"
  "/root/repo/src/kernels/apply_edge.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/apply_edge.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/apply_edge.cpp.o.d"
  "/root/repo/src/kernels/apply_vertex.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/apply_vertex.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/apply_vertex.cpp.o.d"
  "/root/repo/src/kernels/conv_common.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/conv_common.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/conv_common.cpp.o.d"
  "/root/repo/src/kernels/edge_centric.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/edge_centric.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/edge_centric.cpp.o.d"
  "/root/repo/src/kernels/fused_gat.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/fused_gat.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/fused_gat.cpp.o.d"
  "/root/repo/src/kernels/gather_pull.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/gather_pull.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/gather_pull.cpp.o.d"
  "/root/repo/src/kernels/push_atomic.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/push_atomic.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/push_atomic.cpp.o.d"
  "/root/repo/src/kernels/spmm.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/spmm.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/spmm.cpp.o.d"
  "/root/repo/src/kernels/subwarp_pull.cpp" "src/kernels/CMakeFiles/tlp_kernels.dir/subwarp_pull.cpp.o" "gcc" "src/kernels/CMakeFiles/tlp_kernels.dir/subwarp_pull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tlp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tlp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tlp_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
