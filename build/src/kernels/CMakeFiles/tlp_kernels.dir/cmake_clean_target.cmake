file(REMOVE_RECURSE
  "libtlp_kernels.a"
)
