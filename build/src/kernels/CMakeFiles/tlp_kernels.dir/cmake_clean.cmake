file(REMOVE_RECURSE
  "CMakeFiles/tlp_kernels.dir/advisor_groups.cpp.o"
  "CMakeFiles/tlp_kernels.dir/advisor_groups.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/apply_edge.cpp.o"
  "CMakeFiles/tlp_kernels.dir/apply_edge.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/apply_vertex.cpp.o"
  "CMakeFiles/tlp_kernels.dir/apply_vertex.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/conv_common.cpp.o"
  "CMakeFiles/tlp_kernels.dir/conv_common.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/edge_centric.cpp.o"
  "CMakeFiles/tlp_kernels.dir/edge_centric.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/fused_gat.cpp.o"
  "CMakeFiles/tlp_kernels.dir/fused_gat.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/gather_pull.cpp.o"
  "CMakeFiles/tlp_kernels.dir/gather_pull.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/push_atomic.cpp.o"
  "CMakeFiles/tlp_kernels.dir/push_atomic.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/spmm.cpp.o"
  "CMakeFiles/tlp_kernels.dir/spmm.cpp.o.d"
  "CMakeFiles/tlp_kernels.dir/subwarp_pull.cpp.o"
  "CMakeFiles/tlp_kernels.dir/subwarp_pull.cpp.o.d"
  "libtlp_kernels.a"
  "libtlp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
