file(REMOVE_RECURSE
  "libtlp_sim.a"
)
