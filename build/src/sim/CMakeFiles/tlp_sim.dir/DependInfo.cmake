
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/tlp_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/counters.cpp" "src/sim/CMakeFiles/tlp_sim.dir/counters.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/counters.cpp.o.d"
  "/root/repo/src/sim/device_memory.cpp" "src/sim/CMakeFiles/tlp_sim.dir/device_memory.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/device_memory.cpp.o.d"
  "/root/repo/src/sim/gpu_spec.cpp" "src/sim/CMakeFiles/tlp_sim.dir/gpu_spec.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/tlp_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/warp.cpp" "src/sim/CMakeFiles/tlp_sim.dir/warp.cpp.o" "gcc" "src/sim/CMakeFiles/tlp_sim.dir/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
