# Empty compiler generated dependencies file for tlp_sim.
# This may be replaced when dependencies are built.
