file(REMOVE_RECURSE
  "CMakeFiles/tlp_sim.dir/cache.cpp.o"
  "CMakeFiles/tlp_sim.dir/cache.cpp.o.d"
  "CMakeFiles/tlp_sim.dir/counters.cpp.o"
  "CMakeFiles/tlp_sim.dir/counters.cpp.o.d"
  "CMakeFiles/tlp_sim.dir/device_memory.cpp.o"
  "CMakeFiles/tlp_sim.dir/device_memory.cpp.o.d"
  "CMakeFiles/tlp_sim.dir/gpu_spec.cpp.o"
  "CMakeFiles/tlp_sim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/tlp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/tlp_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/tlp_sim.dir/warp.cpp.o"
  "CMakeFiles/tlp_sim.dir/warp.cpp.o.d"
  "libtlp_sim.a"
  "libtlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
