# Empty compiler generated dependencies file for tlp_systems.
# This may be replaced when dependencies are built.
