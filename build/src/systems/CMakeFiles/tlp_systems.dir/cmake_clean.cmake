file(REMOVE_RECURSE
  "CMakeFiles/tlp_systems.dir/baseline_systems.cpp.o"
  "CMakeFiles/tlp_systems.dir/baseline_systems.cpp.o.d"
  "CMakeFiles/tlp_systems.dir/dgl_system.cpp.o"
  "CMakeFiles/tlp_systems.dir/dgl_system.cpp.o.d"
  "CMakeFiles/tlp_systems.dir/featgraph_system.cpp.o"
  "CMakeFiles/tlp_systems.dir/featgraph_system.cpp.o.d"
  "CMakeFiles/tlp_systems.dir/gnnadvisor_system.cpp.o"
  "CMakeFiles/tlp_systems.dir/gnnadvisor_system.cpp.o.d"
  "CMakeFiles/tlp_systems.dir/system.cpp.o"
  "CMakeFiles/tlp_systems.dir/system.cpp.o.d"
  "CMakeFiles/tlp_systems.dir/tlpgnn_system.cpp.o"
  "CMakeFiles/tlp_systems.dir/tlpgnn_system.cpp.o.d"
  "libtlp_systems.a"
  "libtlp_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
