file(REMOVE_RECURSE
  "libtlp_systems.a"
)
