file(REMOVE_RECURSE
  "libtlp_graph.a"
)
