file(REMOVE_RECURSE
  "CMakeFiles/tlp_graph.dir/builder.cpp.o"
  "CMakeFiles/tlp_graph.dir/builder.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/csr.cpp.o"
  "CMakeFiles/tlp_graph.dir/csr.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/datasets.cpp.o"
  "CMakeFiles/tlp_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/generators.cpp.o"
  "CMakeFiles/tlp_graph.dir/generators.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/io.cpp.o"
  "CMakeFiles/tlp_graph.dir/io.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/partition.cpp.o"
  "CMakeFiles/tlp_graph.dir/partition.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/reorder.cpp.o"
  "CMakeFiles/tlp_graph.dir/reorder.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/stats.cpp.o"
  "CMakeFiles/tlp_graph.dir/stats.cpp.o.d"
  "CMakeFiles/tlp_graph.dir/subgraph.cpp.o"
  "CMakeFiles/tlp_graph.dir/subgraph.cpp.o.d"
  "libtlp_graph.a"
  "libtlp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
