# Empty compiler generated dependencies file for tlp_graph.
# This may be replaced when dependencies are built.
