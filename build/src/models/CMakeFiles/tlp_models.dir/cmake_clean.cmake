file(REMOVE_RECURSE
  "CMakeFiles/tlp_models.dir/model.cpp.o"
  "CMakeFiles/tlp_models.dir/model.cpp.o.d"
  "CMakeFiles/tlp_models.dir/reference.cpp.o"
  "CMakeFiles/tlp_models.dir/reference.cpp.o.d"
  "libtlp_models.a"
  "libtlp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
