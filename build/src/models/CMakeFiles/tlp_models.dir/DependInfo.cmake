
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/model.cpp" "src/models/CMakeFiles/tlp_models.dir/model.cpp.o" "gcc" "src/models/CMakeFiles/tlp_models.dir/model.cpp.o.d"
  "/root/repo/src/models/reference.cpp" "src/models/CMakeFiles/tlp_models.dir/reference.cpp.o" "gcc" "src/models/CMakeFiles/tlp_models.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tlp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tlp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
