# tlpfuzz repro
# campaign: tlpfuzz --iters 6000 --seed 2026; cases 4445 and 5297
# bug: mutate_case shrank a ring's n below its degree k (m), so build_graph
#      called regular_ring(n=2, k=2) and tripped the `k < n` precondition
#      CHECK before any graph existed. Fixed by clamping k to [1, n-1] in
#      build_graph; this file is the clamped minimal case (ring n=2, k=1).
# vertices 2
1 0
0 1
