// Registry of every table/figure/ablation bench (bench_common.hpp explains
// the BenchDef contract). Each bench .cpp defines its BenchDef; suite.cpp
// aggregates them for the tools/tlpbench driver. micro_sim is deliberately
// absent: it is a google-benchmark binary with its own JSON format
// (--benchmark_format=json) and no paper table to assert shapes over.
#pragma once

#include <vector>

#include "bench_common.hpp"

namespace tlp::bench {

extern const BenchDef table1_bench;   // atomics study (Table 1)
extern const BenchDef table2_bench;   // coalescing study (Table 2)
extern const BenchDef table3_bench;   // kernel-fusion study (Table 3)
extern const BenchDef table5_bench;   // main system comparison (Table 5)
extern const BenchDef fig8_bench;     // GNNAdvisor atomic traffic (Fig 8)
extern const BenchDef fig9_bench;     // achieved occupancy (Fig 9)
extern const BenchDef fig10_bench;    // technique ablation (Fig 10)
extern const BenchDef fig11_bench;    // thread-count scaling (Fig 11)
extern const BenchDef fig12_bench;    // feature-size scaling (Fig 12)
extern const BenchDef tuning_bench;   // extension tuning ablations
extern const BenchDef serve_bench;    // serving SLO under fault storm
extern const BenchDef serve_cache_bench;  // feature-cache sweep (DESIGN §12)

/// All suite benches in EXPERIMENTS.md order.
const std::vector<const BenchDef*>& all_benches();

}  // namespace tlp::bench
