#include "suite.hpp"

namespace tlp::bench {

const std::vector<const BenchDef*>& all_benches() {
  static const std::vector<const BenchDef*> benches{
      &table1_bench, &table2_bench, &table3_bench, &table5_bench,
      &fig8_bench,   &fig9_bench,   &fig10_bench,  &fig11_bench,
      &fig12_bench,  &tuning_bench, &serve_bench,  &serve_cache_bench,
  };
  return benches;
}

}  // namespace tlp::bench
