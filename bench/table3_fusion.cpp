// Table 3 reproduction: kernel-launch study for GAT's graph convolution on
// the Reddit replica with feature size 32 (§3.3): DGL's 18-kernel pipeline
// vs a three-kernel implementation vs TLPGNN's fused one-kernel design.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "suite.hpp"
#include "systems/tlpgnn_system.hpp"

using namespace tlp;
using bench::BenchConfig;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/1'000'000, /*feature=*/32);
  rep.set_config(cfg);
  const auto& ds = graph::dataset_by_abbr("RD");
  const graph::Csr g = graph::make_dataset(ds, cfg.replica);
  const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
  const tensor::Tensor feat =
      bench::make_features(g, cfg.feature_size, cfg.seed);
  Rng rng(cfg.seed);
  const models::ConvSpec spec =
      models::ConvSpec::make(models::ModelKind::kGat, cfg.feature_size, rng);

  bench::print_header(
      "Table 3: kernel launches for GAT graph convolution (reddit replica, "
      "F=" + std::to_string(cfg.feature_size) + ")",
      "replica " + g.summary());

  std::vector<systems::RunResult> results;
  const auto device_for = [&](sim::TimingTier tier) {
    sim::DeviceOptions dopts;
    dopts.timing_tier = tier;
    return sim::Device(gpu, dopts);
  };
  // Mechanistic run + record (always, first); analytical twin record when
  // the fast tier is selected.
  const auto record_tiers = [&](const std::string& variant, auto&& runner) {
    results.push_back(runner(sim::TimingTier::kMechanistic));
    rep.add_run("", ds.abbr, variant, results.back());
    if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
      rep.add_run("", ds.abbr, variant + "@analytical",
                  runner(sim::TimingTier::kAnalytical));
    }
  };
  record_tiers("dgl", [&](sim::TimingTier tier) {
    sim::Device dev = device_for(tier);
    return systems::make_system("dgl")->run(dev, g, feat, spec);
  });
  record_tiers("three-kernel", [&](sim::TimingTier tier) {
    // Three-kernel implementation: TLPGNN's parallelism without fusion.
    systems::TlpgnnOptions opts;
    opts.fused_gat = false;
    opts.overhead.framework_ms_per_kernel = 1.2;  // framework-driven dispatch
    systems::TlpgnnSystem three(opts);
    sim::Device dev = device_for(tier);
    return three.run(dev, g, feat, spec);
  });
  record_tiers("one-kernel", [&](sim::TimingTier tier) {
    sim::Device dev = device_for(tier);
    return systems::make_system("tlpgnn")->run(dev, g, feat, spec);
  });

  TextTable t({"Metrics", "DGL", "Three-Kernel", "One-Kernel"});
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& r : results) cells.push_back(getter(r));
    t.add_row(std::move(cells));
  };
  row("GPU Kernel launch", [](const systems::RunResult& r) {
    return std::to_string(r.kernel_launches);
  });
  row("Runtime (ms)", [](const systems::RunResult& r) {
    return fixed(r.runtime_ms, 2);
  });
  row("GPU time (ms)", [](const systems::RunResult& r) {
    return fixed(r.gpu_time_ms, 2);
  });
  row("Runtime - GPU time (ms)", [](const systems::RunResult& r) {
    return fixed(r.runtime_ms - r.gpu_time_ms, 2);
  });
  row("Global mem usage", [](const systems::RunResult& r) {
    return human_bytes(static_cast<double>(r.peak_device_bytes));
  });
  row("Global mem traffics", [](const systems::RunResult& r) {
    return human_bytes(r.metrics.bytes_load + r.metrics.bytes_store +
                       r.metrics.bytes_atomic);
  });
  row("Stall long scoreboard (cyc/instr)", [](const systems::RunResult& r) {
    return fixed(r.metrics.scoreboard_stall, 1);
  });
  row("Average SM utilization", [](const systems::RunResult& r) {
    return pct(r.metrics.sm_utilization);
  });
  t.print();

  std::printf("\none-kernel speedup: %sx over DGL, %sx over three-kernel "
              "(paper: 7.5x / 4.6x)\n",
              fixed(results[0].runtime_ms / results[2].runtime_ms, 1).c_str(),
              fixed(results[1].runtime_ms / results[2].runtime_ms, 1).c_str());
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef table3_bench = {
    "table3", "kernel launches for GAT convolution (reddit replica)", &run,
    ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::table3_bench)
