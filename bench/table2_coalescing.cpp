// Table 2 reproduction: one-thread-per-vertex vs half-warp-per-vertex GCN
// aggregation (§3.2) — the coalesced-memory-access study — plus a full
// lanes-per-vertex sweep as an extension ablation.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/subwarp_pull.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;

namespace {

struct LpvResult {
  double runtime_ms;
  double sectors_per_request;
  double l1_hit;
  double scoreboard;
};

LpvResult run_lpv(const graph::Csr& g, const tensor::Tensor& feat, int lpv,
                  const sim::GpuSpec& gpu,
                  sim::TimingTier tier = sim::TimingTier::kMechanistic) {
  sim::DeviceOptions dopts;
  dopts.timing_tier = tier;
  sim::Device dev(gpu, dopts);
  const kernels::DeviceGraph dg = kernels::upload_graph(dev, g);
  const auto dfeat = kernels::upload_features(dev, feat);
  auto dout = dev.alloc_zeroed<float>(dg.n * feat.cols());
  kernels::SubwarpPullKernel k(dg, dfeat, dout, feat.cols(),
                               {models::ModelKind::kGcn, 0.0f}, lpv);
  dev.launch(k, {});
  const sim::Metrics m = dev.metrics();
  return {m.gpu_time_ms, m.sectors_per_request, m.l1_hit_rate,
          m.scoreboard_stall};
}

report::Record& record_lpv(bench::Reporter& rep, const std::string& variant,
                           const LpvResult& r) {
  return rep.add("", "PD", variant)
      .value("runtime_ms", r.runtime_ms)
      .value("sectors_per_request", r.sectors_per_request)
      .value("l1_hit_rate", r.l1_hit)
      .value("scoreboard_stall", r.scoreboard);
}

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/300'000, /*feature=*/128);
  rep.set_config(cfg);
  const auto& spec = graph::dataset_by_abbr("PD");
  const graph::Csr g = graph::make_dataset(spec, cfg.replica);
  const tensor::Tensor feat =
      bench::make_features(g, cfg.feature_size, cfg.seed);

  bench::print_header(
      "Table 2: coalesced memory access (GCN, pubmed replica, F=" +
          std::to_string(cfg.feature_size) + ")",
      "replica " + g.summary());

  const sim::GpuSpec gpu = bench::gpu_for(spec, cfg);
  // Mechanistic run + record (always); analytical twin record when the
  // fast tier is selected (mirrors bench::run_tiers for this kernel-level
  // bench that drives the Device directly).
  const auto measure = [&](int lpv, const std::string& variant) {
    const LpvResult m = run_lpv(g, feat, lpv, gpu);
    record_lpv(rep, variant, m);
    if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
      record_lpv(rep, variant + "@analytical",
                 run_lpv(g, feat, lpv, gpu, sim::TimingTier::kAnalytical));
    }
    return m;
  };
  const LpvResult one = measure(1, "one-thread");
  const LpvResult half = measure(16, "half-warp");

  TextTable t({"Metrics", "One Thread", "Half Warp"});
  t.add_row({"Runtime (ms)", fixed(one.runtime_ms, 3), fixed(half.runtime_ms, 3)});
  t.add_row({"Sector per request", fixed(one.sectors_per_request, 1),
             fixed(half.sectors_per_request, 1)});
  t.add_row({"L1 cache hit", pct(one.l1_hit), pct(half.l1_hit)});
  t.add_row({"Long scoreboard (cyc/instr)", fixed(one.scoreboard, 1),
             fixed(half.scoreboard, 1)});
  t.print();
  std::printf("\nhalf-warp speedup over one-thread: %sx (paper: 27.3x, "
              "sectors 9.2 vs 2.1)\n",
              fixed(one.runtime_ms / half.runtime_ms, 1).c_str());

  // Extension: the full sub-warp width sweep (1..32 lanes per vertex).
  std::printf("\nLanes-per-vertex sweep (extension ablation):\n");
  TextTable sweep({"lanes/vertex", "runtime (ms)", "sectors/req", "L1 hit"});
  for (const int lpv : {1, 2, 4, 8, 16, 32}) {
    const LpvResult r = measure(lpv, "lpv=" + std::to_string(lpv));
    sweep.add_row({std::to_string(lpv), fixed(r.runtime_ms, 3),
                   fixed(r.sectors_per_request, 1), pct(r.l1_hit)});
  }
  sweep.print();
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef table2_bench = {
    "table2", "coalesced memory access (GCN, pubmed replica)", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::table2_bench)
