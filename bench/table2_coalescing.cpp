// Table 2 reproduction: one-thread-per-vertex vs half-warp-per-vertex GCN
// aggregation (§3.2) — the coalesced-memory-access study — plus a full
// lanes-per-vertex sweep as an extension ablation.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/subwarp_pull.hpp"

using namespace tlp;
using bench::BenchConfig;

namespace {

struct LpvResult {
  double runtime_ms;
  double sectors_per_request;
  double l1_hit;
  double scoreboard;
};

LpvResult run_lpv(const graph::Csr& g, const tensor::Tensor& feat, int lpv,
                  const sim::GpuSpec& gpu) {
  sim::Device dev(gpu);
  const kernels::DeviceGraph dg = kernels::upload_graph(dev, g);
  const auto dfeat = kernels::upload_features(dev, feat);
  auto dout = dev.alloc_zeroed<float>(dg.n * feat.cols());
  kernels::SubwarpPullKernel k(dg, dfeat, dout, feat.cols(),
                               {models::ModelKind::kGcn, 0.0f}, lpv);
  dev.launch(k, {});
  const sim::Metrics m = dev.metrics();
  return {m.gpu_time_ms, m.sectors_per_request, m.l1_hit_rate,
          m.scoreboard_stall};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/300'000, /*feature=*/128);
  const auto& spec = graph::dataset_by_abbr("PD");
  graph::ReplicaOptions replica = cfg.replica;
  const graph::Csr g = graph::make_dataset(spec, replica);
  const tensor::Tensor feat =
      bench::make_features(g, cfg.feature_size, cfg.seed);

  bench::print_header(
      "Table 2: coalesced memory access (GCN, pubmed replica, F=" +
          std::to_string(cfg.feature_size) + ")",
      "replica " + g.summary());

  const sim::GpuSpec gpu = bench::gpu_for(spec, cfg);
  const LpvResult one = run_lpv(g, feat, 1, gpu);
  const LpvResult half = run_lpv(g, feat, 16, gpu);

  TextTable t({"Metrics", "One Thread", "Half Warp"});
  t.add_row({"Runtime (ms)", fixed(one.runtime_ms, 3), fixed(half.runtime_ms, 3)});
  t.add_row({"Sector per request", fixed(one.sectors_per_request, 1),
             fixed(half.sectors_per_request, 1)});
  t.add_row({"L1 cache hit", pct(one.l1_hit), pct(half.l1_hit)});
  t.add_row({"Long scoreboard (cyc/instr)", fixed(one.scoreboard, 1),
             fixed(half.scoreboard, 1)});
  t.print();
  std::printf("\nhalf-warp speedup over one-thread: %sx (paper: 27.3x, "
              "sectors 9.2 vs 2.1)\n",
              fixed(one.runtime_ms / half.runtime_ms, 1).c_str());

  // Extension: the full sub-warp width sweep (1..32 lanes per vertex).
  std::printf("\nLanes-per-vertex sweep (extension ablation):\n");
  TextTable sweep({"lanes/vertex", "runtime (ms)", "sectors/req", "L1 hit"});
  for (const int lpv : {1, 2, 4, 8, 16, 32}) {
    const LpvResult r = run_lpv(g, feat, lpv, gpu);
    sweep.add_row({std::to_string(lpv), fixed(r.runtime_ms, 3),
                   fixed(r.sectors_per_request, 1), pct(r.l1_hit)});
  }
  sweep.print();
  return 0;
}
