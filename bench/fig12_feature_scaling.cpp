// Figure 12 reproduction: scalability against feature size. Runtime
// normalized to feature size 16, swept to 512, on the four largest dataset
// replicas for all four models.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/100'000, /*feature=*/16);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);
  const std::vector<std::int64_t> sizes{16, 32, 64, 128, 256, 512};

  bench::print_header(
      "Figure 12: normalized runtime vs feature size",
      "runtime divided by the feature-16 runtime; four largest replicas");

  for (const ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage, ModelKind::kGat}) {
    std::printf("--- %s ---\n", models::model_name(kind));
    std::vector<std::string> header{"Data"};
    for (const auto f : sizes) header.push_back(std::to_string(f));
    TextTable t(header);
    for (const auto& ds : graph::all_datasets()) {
      if (!ds.big4) continue;
      const graph::Csr& g = graphs.get(ds.abbr);
      std::vector<std::string> cells{ds.abbr};
      double base = 0.0, base_ana = 0.0;
      for (const auto f : sizes) {
        const tensor::Tensor feat = bench::make_features(g, f, cfg.seed);
        Rng rng(cfg.seed);
        const models::ConvSpec spec = models::ConvSpec::make(kind, f, rng);
        const auto run_f = [&](sim::TimingTier tier) {
          sim::DeviceOptions dopts;
          dopts.timing_tier = tier;
          sim::Device dev(bench::gpu_for(ds, cfg), dopts);
          return systems::make_system("tlpgnn")
              ->run(dev, g, feat, spec)
              .gpu_time_ms;
        };
        const double ms = run_f(sim::TimingTier::kMechanistic);
        if (f == 16) base = ms;
        rep.add(models::model_name(kind), ds.abbr, "f=" + std::to_string(f))
            .value("normalized_runtime", ms / base)
            .value("gpu_time_ms", ms);
        if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
          const double ams = run_f(sim::TimingTier::kAnalytical);
          if (f == 16) base_ana = ams;
          rep.add(models::model_name(kind), ds.abbr,
                  "f=" + std::to_string(f) + "@analytical")
              .value("normalized_runtime", ams / base_ana)
              .value("gpu_time_ms", ams);
        }
        cells.push_back(fixed(ms / base, 1) + "x");
      }
      t.add_row(std::move(cells));
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "paper at F=512 (32x data of F=16): GCN 41.6x, GIN 40.4x, Sage 36.7x, "
      "GAT 27.3x slower — i.e. roughly linear; F=16 runs ~1.4x faster than "
      "F=32 despite half the warp being idle\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef fig12_bench = {"fig12", "scalability vs feature size", &run,
                              ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::fig12_bench)
