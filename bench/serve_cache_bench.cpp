// Pre-sampling feature-cache sweep for the serving tier (DESIGN.md §12,
// ROADMAP item 3).
//
// gSuite's methodology point (PAPERS.md): cache wins must be reported as
// curves, not single points. This bench sweeps the pinned-cache size for the
// presample and degree policies over the same seed-deterministic traffic and
// records hit ratio, latency percentiles, throughput, and gather-traffic
// reduction per point, plus a `none` policy (a cache with zero pinned rows)
// that pays the full miss cost — the comparable baseline of the sweep. An
// uncached reference run provides the bit-identity check: every cached
// response must be byte-identical to the cacheless one (the cache changes
// accounting, never outputs).
//
// The baseline shape assertions encode the cache contract: presample beats
// degree on hit ratio (sampled gather frequency sees the popularity
// permutation; static degree cannot), hit ratio rises and p99 falls
// monotonically with cache size, and the bitwise mismatch count is zero.
//
// Extra flag: --requests N (traffic length; default 120).
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"
#include "suite.hpp"

namespace tlp::bench {

namespace {

struct SweepPoint {
  std::string variant;
  serve::CachePolicy policy;
  double ratio;
};

int run(const Args& args, Reporter& rep) {
  const BenchConfig cfg = BenchConfig::from_args(args, 150'000, 16);
  rep.set_config(cfg);

  GraphCache graphs(cfg);
  const graph::Csr& g = graphs.get("PD");
  const tensor::Tensor feat = make_features(g, cfg.feature_size, cfg.seed);
  Rng rng(cfg.seed);
  const models::ConvSpec spec =
      models::ConvSpec::make(models::ModelKind::kGcn, cfg.feature_size, rng);

  serve::TrafficOptions topts;
  topts.num_requests = args.get_int_checked("requests", 120, 1, 100'000);
  topts.mean_interarrival_ms = 2.0;
  topts.hops = 1;
  topts.max_ego_vertices = 128;
  topts.seed = cfg.seed;
  const std::vector<serve::Request> traffic =
      serve::generate_traffic(g, feat, topts);

  serve::ServerOptions sopts;
  sopts.queue_capacity = 32;
  sopts.max_batch = 4;
  sopts.batch_window_ms = 1.0;

  print_header("Feature-cache sweep (pre-sampling vs degree vs none)",
               "dataset PD | " + g.summary() + " | " +
                   std::to_string(topts.num_requests) + " requests");

  // Uncached reference: the legacy free-gather path every cached run must
  // match bitwise.
  serve::Server reference(sopts);
  const serve::ServeResult base = reference.run(traffic, spec);

  const std::vector<SweepPoint> sweep{
      {"none", serve::CachePolicy::kNone, 0.0},
      {"degree_r05", serve::CachePolicy::kDegree, 0.05},
      {"degree_r10", serve::CachePolicy::kDegree, 0.10},
      {"degree_r20", serve::CachePolicy::kDegree, 0.20},
      {"presample_r05", serve::CachePolicy::kPresample, 0.05},
      {"presample_r10", serve::CachePolicy::kPresample, 0.10},
      {"presample_r20", serve::CachePolicy::kPresample, 0.20},
  };

  TextTable t({"variant", "pinned", "hit ratio", "gather ms", "p50 ms",
               "p99 ms", "req/s"});
  std::int64_t total_both = 0;
  std::int64_t total_mismatched = 0;
  for (const SweepPoint& pt : sweep) {
    serve::FeatureCacheOptions copts;
    copts.policy = pt.policy;
    copts.cache_ratio = pt.ratio;
    serve::FeatureCache cache(g, feat, topts, copts);
    serve::Server server(sopts, &cache);
    const serve::ServeResult res = server.run(traffic, spec);
    const serve::CacheStats& cs = cache.stats();

    // Bit-identity vs the uncached reference.
    std::int64_t both = 0;
    std::int64_t mismatched = 0;
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      const serve::Response& a = res.responses[i];
      const serve::Response& b = base.responses[i];
      if (!a.served() || !b.served()) continue;
      ++both;
      if (a.output.size() != b.output.size() ||
          std::memcmp(a.output.data(), b.output.data(),
                      a.output.size() * sizeof(float)) != 0) {
        ++mismatched;
      }
    }
    total_both += both;
    total_mismatched += mismatched;

    const std::int64_t gathered_bytes = cs.bytes_hit + cs.bytes_miss;
    const double reduction =
        gathered_bytes > 0 ? static_cast<double>(cs.bytes_hit) /
                                 static_cast<double>(gathered_bytes)
                           : 0.0;
    rep.add("serve_cache", "PD", pt.variant)
        .value("pinned_rows", static_cast<double>(cs.pinned_rows))
        .value("pinned_bytes", static_cast<double>(cs.pinned_bytes))
        .value("hit_rows", static_cast<double>(cs.hit_rows))
        .value("miss_rows", static_cast<double>(cs.miss_rows))
        .value("hit_ratio", cs.hit_ratio())
        .value("bytes_cache_hit", static_cast<double>(cs.bytes_hit))
        .value("bytes_cache_miss", static_cast<double>(cs.bytes_miss))
        .value("gather_reduction", reduction)
        .value("gather_ms", cs.gather_ms)
        .value("ok", static_cast<double>(res.report.ok))
        .value("unaccounted", static_cast<double>(res.report.unaccounted))
        .value("p50_ms", res.report.p50_ms)
        .value("p99_ms", res.report.p99_ms)
        .value("mean_ms", res.report.mean_ms)
        .value("throughput_rps", res.report.throughput_rps)
        .value("served_in_both", static_cast<double>(both))
        .value("mismatched", static_cast<double>(mismatched));

    t.add_row({pt.variant, std::to_string(cs.pinned_rows),
               fixed(cs.hit_ratio(), 3), fixed(cs.gather_ms, 3),
               fixed(res.report.p50_ms, 3), fixed(res.report.p99_ms, 3),
               fixed(res.report.throughput_rps, 1)});
  }

  // One aggregate record so a single zero assertion covers every variant.
  rep.add("serve_cache", "PD", "all_vs_uncached")
      .value("served_in_both", static_cast<double>(total_both))
      .value("mismatched", static_cast<double>(total_mismatched));

  t.print();
  std::printf("bit-identity: %lld served pairs, %lld mismatched\n",
              static_cast<long long>(total_both),
              static_cast<long long>(total_mismatched));
  return total_mismatched == 0 ? 0 : 1;
}

}  // namespace

const BenchDef serve_cache_bench{
    "serve_cache", "Feature-cache sweep (presample vs degree vs none)", run,
    "requests"};

}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::serve_cache_bench)
