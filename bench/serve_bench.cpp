// Serving SLO under a fault storm (DESIGN.md §11, ROADMAP item 3).
//
// Runs the same seed-deterministic traffic twice through the resilient
// serving runtime — once fault-free, once under a scheduled storm of
// recurring injected allocation faults — and records both SLO reports as
// tlpbench records. The baseline shape assertions encode the resilience
// contract: the fault-free run serves everything on the direct path (zero
// retried/degraded/failed), the storm run keeps 100% outcome accounting with
// a bounded error rate while actually exercising the retry and partitioned-
// fallback ladders, and every response served in both runs is bitwise
// identical (a storm may change *which* requests are served, never *what* a
// served request receives).
//
// Extra flag: --requests N (traffic length; default 120).
#include <cstring>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "suite.hpp"

namespace tlp::bench {

namespace {

void add_slo(Reporter& rep, const std::string& variant,
             const serve::SloReport& r) {
  rep.add("serving", "PD", variant)
      .value("ok", static_cast<double>(r.ok))
      .value("retried", static_cast<double>(r.retried))
      .value("degraded", static_cast<double>(r.degraded))
      .value("rejected", static_cast<double>(r.rejected))
      .value("failed", static_cast<double>(r.failed))
      .value("unaccounted", static_cast<double>(r.unaccounted))
      .value("p50_ms", r.p50_ms)
      .value("p99_ms", r.p99_ms)
      .value("mean_ms", r.mean_ms)
      .value("throughput_rps", r.throughput_rps)
      .value("error_rate", r.error_rate)
      .value("degradation_rate", r.degradation_rate)
      .value("rejection_rate", r.rejection_rate)
      .value("direct_attempts", static_cast<double>(r.direct_attempts))
      .value("fallback_attempts", static_cast<double>(r.fallback_attempts))
      .value("breaker_opens", static_cast<double>(r.breaker_opens));
}

int run(const Args& args, Reporter& rep) {
  const BenchConfig cfg = BenchConfig::from_args(args, 150'000, 16);
  rep.set_config(cfg);

  GraphCache graphs(cfg);
  const graph::Csr& g = graphs.get("PD");
  const tensor::Tensor feat =
      make_features(g, cfg.feature_size, cfg.seed);
  Rng rng(cfg.seed);
  const models::ConvSpec spec =
      models::ConvSpec::make(models::ModelKind::kGcn, cfg.feature_size, rng);

  serve::TrafficOptions topts;
  topts.num_requests = args.get_int_checked("requests", 120, 1, 100'000);
  topts.mean_interarrival_ms = 2.0;
  topts.hops = 1;
  topts.max_ego_vertices = 128;
  topts.seed = cfg.seed;
  const std::vector<serve::Request> traffic =
      serve::generate_traffic(g, feat, topts);

  serve::ServerOptions sopts;
  sopts.queue_capacity = 32;
  sopts.max_batch = 4;
  sopts.batch_window_ms = 1.0;

  print_header("Serving SLO under fault storm",
               "dataset PD | " + g.summary() + " | " +
                   std::to_string(topts.num_requests) + " requests");

  // Fault-free twin.
  serve::Server clean(sopts);
  const serve::ServeResult base = clean.run(traffic, spec);
  add_slo(rep, "fault_free", base.report);

  // Storm schedule: a short-burst phase that direct retries absorb, a
  // long-burst phase deep enough to exhaust the direct ladder and force the
  // partitioned fallback, then recovery. Burst lengths count *consecutive
  // failing attempts* (each failed attempt dies on its first allocation).
  serve::ServerOptions storm_opts = sopts;
  {
    serve::StormEvent retry_phase;  // 2-deep bursts: Retried outcomes
    retry_phase.at_request = topts.num_requests / 6;
    retry_phase.plan.oom_every = 48;
    retry_phase.plan.oom_burst_len = 2;
    serve::StormEvent degrade_phase;  // 4-deep bursts: Degraded outcomes
    degrade_phase.at_request = topts.num_requests / 2;
    degrade_phase.plan.oom_every = 40;
    degrade_phase.plan.oom_burst_len = 4;
    serve::StormEvent recovery;  // disarm: the tail serves clean
    recovery.at_request = (topts.num_requests * 5) / 6;
    storm_opts.storms = {retry_phase, degrade_phase, recovery};
  }
  serve::Server stormy(storm_opts);
  const serve::ServeResult storm = stormy.run(traffic, spec);
  add_slo(rep, "storm", storm.report);

  // The bit-identity contract, recorded as metrics the baseline asserts on.
  std::int64_t both = 0;
  std::int64_t mismatched = 0;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    const serve::Response& a = storm.responses[i];
    const serve::Response& b = base.responses[i];
    if (!a.served() || !b.served()) continue;
    ++both;
    if (a.output.size() != b.output.size() ||
        std::memcmp(a.output.data(), b.output.data(),
                    a.output.size() * sizeof(float)) != 0) {
      ++mismatched;
    }
  }
  rep.add("serving", "PD", "storm_vs_fault_free")
      .value("served_in_both", static_cast<double>(both))
      .value("mismatched", static_cast<double>(mismatched));

  TextTable t({"variant", "ok", "retried", "degraded", "rejected", "failed",
               "p50 ms", "p99 ms"});
  for (const auto* pr : {&base.report, &storm.report}) {
    t.add_row({pr == &base.report ? "fault_free" : "storm",
               std::to_string(pr->ok), std::to_string(pr->retried),
               std::to_string(pr->degraded), std::to_string(pr->rejected),
               std::to_string(pr->failed), fixed(pr->p50_ms, 3),
               fixed(pr->p99_ms, 3)});
  }
  t.print();
  std::printf("bit-identity: %lld served in both, %lld mismatched\n",
              static_cast<long long>(both), static_cast<long long>(mismatched));
  return mismatched == 0 ? 0 : 1;
}

}  // namespace

const BenchDef serve_bench{"serve",
                           "Serving SLO under fault storm (resilient runtime)",
                           run, "requests"};

}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::serve_bench)
