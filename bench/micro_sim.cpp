// google-benchmark micro suite for the simulator substrate itself: the §3
// mechanisms (coalescing, atomics, launches) at kernel-op granularity, plus
// host-side substrate throughput (generators, cache model).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/gather_pull.hpp"
#include "sim/cache.hpp"
#include "sim/device.hpp"

namespace {

using namespace tlp;

// --- warp-level memory ops --------------------------------------------------

struct WarpBench {
  sim::MemorySystem sys{sim::GpuSpec::v100()};
  sim::KernelRecord rec;
  sim::DevPtr<float> data;

  WarpBench() {
    sys.rec = &rec;
    data = sys.mem.alloc<float>(1 << 22);
  }
};

void BM_CoalescedLoad(benchmark::State& state) {
  WarpBench b;
  sim::WarpCtx warp(b.sys, 0);
  sim::WVec<std::int64_t> idx{};
  std::int64_t base = 0;
  for (auto _ : state) {
    for (int l = 0; l < sim::kWarpSize; ++l)
      idx[static_cast<std::size_t>(l)] = (base + l) & ((1 << 22) - 1);
    benchmark::DoNotOptimize(warp.load_f32(b.data, idx, sim::kFullMask));
    base += sim::kWarpSize;
  }
  state.counters["sectors/req"] =
      static_cast<double>(b.rec.sectors) / static_cast<double>(b.rec.requests);
}
BENCHMARK(BM_CoalescedLoad);

void BM_ScatteredLoad(benchmark::State& state) {
  WarpBench b;
  sim::WarpCtx warp(b.sys, 0);
  Rng rng(1);
  sim::WVec<std::int64_t> idx{};
  for (auto _ : state) {
    for (int l = 0; l < sim::kWarpSize; ++l)
      idx[static_cast<std::size_t>(l)] =
          static_cast<std::int64_t>(rng.next_below(1 << 22));
    benchmark::DoNotOptimize(warp.load_f32(b.data, idx, sim::kFullMask));
  }
  state.counters["sectors/req"] =
      static_cast<double>(b.rec.sectors) / static_cast<double>(b.rec.requests);
}
BENCHMARK(BM_ScatteredLoad);

void BM_AtomicAddConflicts(benchmark::State& state) {
  WarpBench b;
  sim::WarpCtx warp(b.sys, 0);
  const auto span = state.range(0);  // lanes spread over `span` addresses
  sim::WVec<std::int64_t> idx{};
  sim::WVec<float> val{};
  for (int l = 0; l < sim::kWarpSize; ++l)
    idx[static_cast<std::size_t>(l)] = l % span;
  for (auto _ : state) {
    warp.atomic_add_f32(b.data, idx, val, sim::kFullMask);
  }
  state.counters["stall_cyc"] =
      b.rec.atomic_stall_cycles / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AtomicAddConflicts)->Arg(1)->Arg(4)->Arg(32);

// --- cache model -------------------------------------------------------------

void BM_CacheHitPath(benchmark::State& state) {
  sim::SetAssocCache cache(128 << 10, 128, 4);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr = (addr + 128) & ((64 << 10) - 1);  // working set fits
  }
  state.counters["hit_rate"] = cache.hit_rate();
}
BENCHMARK(BM_CacheHitPath);

void BM_CacheThrash(benchmark::State& state) {
  sim::SetAssocCache cache(32 << 10, 128, 4);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.next_below(64ull << 20) & ~127ull));
  }
  state.counters["hit_rate"] = cache.hit_rate();
}
BENCHMARK(BM_CacheThrash);

// --- end-to-end kernel simulation throughput ---------------------------------

void BM_GatherPullKernelSim(benchmark::State& state) {
  Rng rng(3);
  const graph::Csr g = graph::power_law(
      static_cast<graph::VertexId>(state.range(0)), state.range(0) * 8, 2.2,
      rng);
  sim::Device dev;
  const kernels::DeviceGraph dg = kernels::upload_graph(dev, g);
  const tensor::Tensor h = tensor::Tensor::random(g.num_vertices(), 32, rng);
  const auto feat = kernels::upload_features(dev, h);
  auto out = dev.alloc_zeroed<float>(dg.n * 32);
  for (auto _ : state) {
    kernels::GatherPullKernel k(dg, feat, out, 32,
                                {models::ModelKind::kGin, 0.1f});
    dev.launch(k, {});
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["sim_ms_per_launch"] =
      dev.gpu_time_ms() / static_cast<double>(dev.metrics().kernel_launches);
}
BENCHMARK(BM_GatherPullKernelSim)->Arg(1000)->Arg(10000);

// --- graph substrate ----------------------------------------------------------

void BM_PowerLawGenerator(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::power_law(static_cast<graph::VertexId>(state.range(0)),
                         state.range(0) * 10, 2.2, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_PowerLawGenerator)->Arg(1000)->Arg(20000);

void BM_CsrReverse(benchmark::State& state) {
  Rng rng(5);
  const graph::Csr g = graph::power_law(20000, 200000, 2.2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.reversed());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CsrReverse);

}  // namespace

BENCHMARK_MAIN();
