// Figure 8 reproduction: memory traffic of GNNAdvisor's atomic writes for
// the GCN and GIN models over the seven datasets it supports. TLPGNN's
// column is identically zero — its pull design needs no atomics.
#include <cstdio>

#include "bench_common.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/250'000, /*feature=*/32);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);

  bench::print_header(
      "Figure 8: GNNAdvisor atomic-write traffic (F=" +
          std::to_string(cfg.feature_size) + ")",
      "seven GNNAdvisor-supported datasets; TLPGNN shown for contrast");

  TextTable t({"Data", "GCN atomic", "GIN atomic", "TLPGNN atomic"});
  for (const auto& ds : graph::all_datasets()) {
    if (!ds.advisor_supported) continue;
    const graph::Csr& g = graphs.get(ds.abbr);
    const tensor::Tensor feat =
        bench::make_features(g, cfg.feature_size, cfg.seed);
    const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
    systems::RunResult gcn, gin, tlp;
    const auto record = [&](systems::RunResult* keep,
                            const std::string& variant) {
      return [&, keep, variant](const systems::RunResult& r,
                                const std::string& suffix) {
        if (suffix.empty()) *keep = r;
        rep.add("", ds.abbr, variant + suffix)
            .value("bytes_atomic", r.metrics.bytes_atomic);
      };
    };
    bench::run_tiers(cfg, "gnnadvisor", ModelKind::kGcn, g, feat, gpu,
                     record(&gcn, "gnnadvisor-gcn"));
    bench::run_tiers(cfg, "gnnadvisor", ModelKind::kGin, g, feat, gpu,
                     record(&gin, "gnnadvisor-gin"));
    bench::run_tiers(cfg, "tlpgnn", ModelKind::kGcn, g, feat, gpu,
                     record(&tlp, "tlpgnn"));
    t.add_row({ds.abbr, human_bytes(gcn.metrics.bytes_atomic),
               human_bytes(gin.metrics.bytes_atomic),
               human_bytes(tlp.metrics.bytes_atomic)});
  }
  t.print();
  std::printf("\npaper: tens to hundreds of MB of atomic writes at full "
              "scale, growing with edge count; TLPGNN is exactly zero\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef fig8_bench = {
    "fig8", "GNNAdvisor atomic-write traffic vs TLPGNN", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::fig8_bench)
