// Tuning ablations for the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//   (a) warps-per-block for the hardware-dynamic assignment — the §5
//       "fewer warps = better balance but more scheduling overhead" knob;
//   (b) the software pool's grab size (Algorithm 1's `step`);
//   (c) GPU generation sensitivity — the same kernels on machine specs with
//       different SM counts and bandwidth.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/gather_pull.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

double run_once(const graph::Csr& g, const tensor::Tensor& feat,
                const sim::GpuSpec& gpu, const sim::LaunchConfig& cfg) {
  sim::Device dev(gpu);
  const kernels::DeviceGraph dg = kernels::upload_graph(dev, g);
  const auto dfeat = kernels::upload_features(dev, feat);
  auto dout = dev.alloc_zeroed<float>(dg.n * feat.cols());
  kernels::GatherPullKernel k(dg, dfeat, dout, feat.cols(),
                              {ModelKind::kGcn, 0.0f});
  dev.launch(k, cfg);
  return dev.gpu_time_ms();
}

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/200'000, /*feature=*/32);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);

  bench::print_header("Tuning ablations (GCN, F=" +
                          std::to_string(cfg.feature_size) + ")",
                      "design-choice sweeps beyond the paper's figures");

  // (a) warps per block, hardware-dynamic assignment.
  std::printf("(a) warps per block — balance vs dispatch overhead (§5):\n");
  {
    TextTable t({"Data", "1", "2", "4", "8", "16", "32"});
    for (const char* abbr : {"PD", "OA", "RD"}) {
      const auto& ds = graph::dataset_by_abbr(abbr);
      const graph::Csr& g = graphs.get(abbr);
      const tensor::Tensor feat =
          bench::make_features(g, cfg.feature_size, cfg.seed);
      const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
      std::vector<std::string> cells{abbr};
      for (const int wpb : {1, 2, 4, 8, 16, 32}) {
        sim::LaunchConfig lc;
        lc.warps_per_block = wpb;
        const double ms = run_once(g, feat, gpu, lc);
        rep.add("warps_per_block", abbr, "wpb=" + std::to_string(wpb))
            .value("gpu_time_ms", ms);
        cells.push_back(fixed(ms, 3));
      }
      t.add_row(std::move(cells));
    }
    t.print();
  }

  // (b) software-pool step size.
  std::printf("\n(b) pool grab size (Algorithm 1 step), software assignment:\n");
  {
    TextTable t({"Data", "1", "4", "16", "64", "256"});
    for (const char* abbr : {"OA", "CL", "RD"}) {
      const auto& ds = graph::dataset_by_abbr(abbr);
      const graph::Csr& g = graphs.get(abbr);
      const tensor::Tensor feat =
          bench::make_features(g, cfg.feature_size, cfg.seed);
      const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
      std::vector<std::string> cells{abbr};
      for (const int step : {1, 4, 16, 64, 256}) {
        sim::LaunchConfig lc;
        lc.assignment = sim::Assignment::kSoftwarePool;
        lc.pool_step = step;
        const double ms = run_once(g, feat, gpu, lc);
        rep.add("pool_step", abbr, "step=" + std::to_string(step))
            .value("gpu_time_ms", ms);
        cells.push_back(fixed(ms, 3));
      }
      t.add_row(std::move(cells));
    }
    t.print();
  }

  // (c) machine sensitivity: V100 vs a bandwidth-poor and an SM-rich spec.
  std::printf("\n(c) machine sweep — the same TLPGNN kernel across GPUs "
              "(F=256 to reach the bandwidth-bound regime):\n");
  {
    sim::GpuSpec v100 = sim::GpuSpec::v100();
    sim::GpuSpec narrow = v100;  // half the memory bandwidth
    narrow.dram_bytes_per_cycle /= 2;
    narrow.l2_bytes_per_cycle /= 2;
    sim::GpuSpec wide = v100;  // A100-flavored: more SMs, more bandwidth
    wide.num_sms = 108;
    wide.dram_bytes_per_cycle *= 1.7;
    wide.l2_bytes_per_cycle *= 1.5;
    wide.l2_bytes = 40 << 20;

    TextTable t({"Data", "V100", "half-bandwidth", "A100-like"});
    for (const char* abbr : {"OA", "CL", "RD"}) {
      const graph::Csr& g = graphs.get(abbr);
      const tensor::Tensor feat = bench::make_features(g, 256, cfg.seed);
      const double ms_v100 = run_once(g, feat, v100, {});
      const double ms_narrow = run_once(g, feat, narrow, {});
      const double ms_wide = run_once(g, feat, wide, {});
      rep.add("machine", abbr, "v100").value("gpu_time_ms", ms_v100);
      rep.add("machine", abbr, "half-bandwidth")
          .value("gpu_time_ms", ms_narrow);
      rep.add("machine", abbr, "a100-like").value("gpu_time_ms", ms_wide);
      t.add_row({abbr, fixed(ms_v100, 3), fixed(ms_narrow, 3),
                 fixed(ms_wide, 3)});
    }
    t.print();
  }
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef tuning_bench = {
    "tuning", "design-choice tuning ablations (extension)", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::tuning_bench)
