// Table 1 reproduction: push vs edge-centric vs GNNAdvisor vs pull for GCN
// over the Ovcar-8h replica with feature size 128. Prints the same metric
// rows the paper profiles with Nsight Compute (§3.1).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg = BenchConfig::from_args(args, /*max_edges=*/400'000,
                                                 /*feature=*/128);
  rep.set_config(cfg);
  const auto& spec = graph::dataset_by_abbr("OH");
  const graph::Csr g = graph::make_dataset(spec, cfg.replica);
  const tensor::Tensor feat =
      bench::make_features(g, cfg.feature_size, cfg.seed);

  bench::print_header(
      "Table 1: impact of atomic operations (GCN, ovcar-8h replica, F=" +
          std::to_string(cfg.feature_size) + ")",
      "replica " + g.summary());

  const std::vector<std::string> sysnames{"push", "edge", "gnnadvisor",
                                          "pull"};
  TextTable t({"Metrics", "Push", "Edge", "GnnA.", "Pull"});

  std::vector<systems::RunResult> results;
  const sim::GpuSpec gpu = bench::gpu_for(spec, cfg);
  for (const auto& name : sysnames) {
    bench::run_tiers(cfg, name, models::ModelKind::kGcn, g, feat, gpu,
                     [&](const systems::RunResult& r,
                         const std::string& suffix) {
                       if (suffix.empty()) results.push_back(r);
                       rep.add_run("", spec.abbr, name + suffix, r);
                     });
  }

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& r : results) cells.push_back(getter(r));
    t.add_row(std::move(cells));
  };
  row("Runtime (ms)", [](const systems::RunResult& r) {
    return fixed(r.measured_ms, 3);
  });
  row("Mem load traffics", [](const systems::RunResult& r) {
    return human_bytes(r.metrics.bytes_load);
  });
  row("Mem atomic store traffics", [](const systems::RunResult& r) {
    return human_bytes(r.metrics.bytes_atomic);
  });
  row("Stall long scoreboard (cyc/instr)", [](const systems::RunResult& r) {
    return fixed(r.metrics.scoreboard_stall, 1);
  });
  row("SM utilization", [](const systems::RunResult& r) {
    return pct(r.metrics.sm_utilization);
  });
  t.print();

  const double pull_ms = results[3].measured_ms;
  std::printf("\npull speedup: %sx over push, %sx over edge, %sx over GNNAdvisor\n",
              fixed(results[0].measured_ms / pull_ms, 2).c_str(),
              fixed(results[1].measured_ms / pull_ms, 2).c_str(),
              fixed(results[2].measured_ms / pull_ms, 2).c_str());
  std::printf("paper (V100, full scale): 1.8x / 1.6x / 5.8x; pull is atomic-free\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef table1_bench = {
    "table1", "impact of atomic operations (GCN, ovcar-8h replica)", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::table1_bench)
