// Figure 11 reproduction: scalability against thread count. The block count
// grows 1 -> 128 with 512 threads (16 warps) per block; speedup is reported
// relative to a single block, for the four largest dataset replicas and all
// four models.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "suite.hpp"
#include "systems/tlpgnn_system.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/300'000, /*feature=*/32);
  // Strong scaling needs many independent vertices per warp: the replicas
  // keep a large vertex population at the cost of density (see
  // ReplicaOptions::min_vertices).
  cfg.replica.min_vertices = args.get_int("min-vertices", 50'000);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);
  const std::vector<int> block_counts{1, 2, 4, 8, 16, 32, 64, 128};

  bench::print_header(
      "Figure 11: scalability vs thread count (512 threads/block, F=" +
          std::to_string(cfg.feature_size) + ")",
      "speedup over a single block; four largest dataset replicas");

  for (const ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage, ModelKind::kGat}) {
    std::printf("--- %s ---\n", models::model_name(kind));
    std::vector<std::string> header{"Data"};
    for (const int b : block_counts) header.push_back(std::to_string(b));
    TextTable t(header);
    for (const auto& ds : graph::all_datasets()) {
      if (!ds.big4) continue;
      const graph::Csr& g = graphs.get(ds.abbr);
      const tensor::Tensor feat =
          bench::make_features(g, cfg.feature_size, cfg.seed);
      Rng rng(cfg.seed);
      const models::ConvSpec spec =
          models::ConvSpec::make(kind, cfg.feature_size, rng);

      std::vector<std::string> cells{ds.abbr};
      double single = 0.0, single_ana = 0.0;
      const auto run_blocks = [&](int blocks, sim::TimingTier tier) {
        systems::TlpgnnOptions opts;
        opts.grid_blocks = blocks;
        systems::TlpgnnSystem sys(opts);
        // Strong scaling runs on the full V100: the question is whether the
        // kernel can occupy more of the real machine.
        sim::DeviceOptions dopts;
        dopts.timing_tier = tier;
        sim::Device dev(sim::GpuSpec::v100(), dopts);
        return sys.run(dev, g, feat, spec).gpu_time_ms;
      };
      for (const int blocks : block_counts) {
        const double ms = run_blocks(blocks, sim::TimingTier::kMechanistic);
        if (blocks == 1) single = ms;
        rep.add(models::model_name(kind), ds.abbr,
                "blocks=" + std::to_string(blocks))
            .value("speedup", single / ms)
            .value("gpu_time_ms", ms);
        if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
          const double ams = run_blocks(blocks, sim::TimingTier::kAnalytical);
          if (blocks == 1) single_ana = ams;
          rep.add(models::model_name(kind), ds.abbr,
                  "blocks=" + std::to_string(blocks) + "@analytical")
              .value("speedup", single_ana / ams)
              .value("gpu_time_ms", ams);
        }
        cells.push_back(fixed(single / ms, 1) + "x");
      }
      t.add_row(std::move(cells));
    }
    t.print();
    std::printf("\n");
  }
  std::printf("paper averages at 128 blocks: GCN 67.5x, GIN 62.5x, "
              "Sage 67.2x, GAT 45.3x\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef fig11_bench = {"fig11", "scalability vs thread count", &run,
                              "min-vertices"};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::fig11_bench)
