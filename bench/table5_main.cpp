// Table 5 reproduction: execution times of TLPGNN vs DGL, GNNAdvisor and
// FeatGraph for GCN / GIN / GraphSage / GAT across all 11 dataset replicas,
// feature size 32, plus the per-row speedup of TLPGNN over the best baseline
// and the paper-style averages.
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/250'000, /*feature=*/32);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);

  bench::print_header(
      "Table 5: execution times (ms) across systems, models and datasets "
      "(F=" + std::to_string(cfg.feature_size) + ")",
      "dataset replicas capped at " +
          human_count(static_cast<double>(cfg.replica.max_edges)) +
          " edges (use --full for paper scale); '-' mirrors the paper's "
          "support matrix");

  const std::vector<std::string> baselines{"dgl", "gnnadvisor", "featgraph"};
  // TLPGNN-vs-baseline speedup ratios, for the closing averages.
  std::map<std::string, std::vector<double>> speedups;

  for (const ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage, ModelKind::kGat}) {
    std::printf("--- %s ---\n", models::model_name(kind));
    TextTable t({"Data", "DGL", "GNNA.", "FeatG.", "TLPGNN", "Speedup"});
    for (const auto& ds : graph::all_datasets()) {
      const graph::Csr& g = graphs.get(ds.abbr);
      const tensor::Tensor feat =
          bench::make_features(g, cfg.feature_size, cfg.seed);
      Rng rng(cfg.seed);
      const models::ConvSpec spec =
          models::ConvSpec::make(kind, cfg.feature_size, rng);

      auto time_of = [&](const std::string& name, sim::TimingTier tier =
                                                      sim::TimingTier::
                                                          kMechanistic)
          -> std::optional<double> {
        auto sys = systems::make_system(name);
        if (!sys->supports(kind, ds.big4)) return std::nullopt;
        sim::DeviceOptions dopts;
        dopts.timing_tier = tier;
        sim::Device dev(bench::gpu_for(ds, cfg), dopts);
        return sys->run(dev, g, feat, spec).measured_ms;
      };

      std::map<std::string, std::optional<double>> times;
      for (const auto& name : baselines) times[name] = time_of(name);
      const double tlpgnn_ms = *time_of("tlpgnn");

      const std::string section = models::model_name(kind);
      // Mechanistic records first (byte-identical to a mech-only run), then
      // the analytical twins when the fast tier is selected.
      for (const auto& name : baselines) {
        if (times[name])
          rep.add(section, ds.abbr, name).value("measured_ms", *times[name]);
      }
      rep.add(section, ds.abbr, "tlpgnn").value("measured_ms", tlpgnn_ms);
      if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
        for (const auto& name : baselines) {
          if (const auto ms = time_of(name, sim::TimingTier::kAnalytical))
            rep.add(section, ds.abbr, name + "@analytical")
                .value("measured_ms", *ms);
        }
        rep.add(section, ds.abbr, "tlpgnn@analytical")
            .value("measured_ms",
                   *time_of("tlpgnn", sim::TimingTier::kAnalytical));
      }

      std::optional<double> best;
      for (const auto& name : baselines) {
        if (times[name] && (!best || *times[name] < *best)) best = *times[name];
        if (times[name])
          speedups[name].push_back(*times[name] / tlpgnn_ms);
      }
      auto cell = [&](const std::string& name) {
        return times[name] ? fixed(*times[name], 3) : std::string("-");
      };
      t.add_row({ds.abbr, cell("dgl"), cell("gnnadvisor"), cell("featgraph"),
                 fixed(tlpgnn_ms, 3),
                 best ? fixed(*best / tlpgnn_ms, 1) + "x" : "-"});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("Average TLPGNN speedups (geomean over all runs):\n");
  for (const auto& name : baselines) {
    if (speedups[name].empty()) continue;
    std::printf("  vs %-11s %sx\n", name.c_str(),
                fixed(geomean(speedups[name]), 2).c_str());
    rep.add("summary", "", name)
        .value("geomean_speedup", geomean(speedups[name]));
  }
  std::printf("paper (arithmetic means, V100 full scale): DGL 5.6x, "
              "GNNAdvisor 7.7x, FeatGraph 3.3x\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef table5_bench = {
    "table5", "execution times across systems, models and datasets", &run,
    ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::table5_bench)
