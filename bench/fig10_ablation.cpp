// Figure 10 reproduction: incremental technique benefits over an
// edge-centric baseline — two-level parallelism (TLP), hybrid dynamic
// workload assignment (+Hybrid), register caching (+Cache), and for GAT
// kernel fusion (+Fusion). One table per model, speedup vs baseline per
// dataset, geometric means at the bottom.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "suite.hpp"
#include "systems/tlpgnn_system.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

double run_stage(const graph::Csr& g, const tensor::Tensor& feat,
                 const models::ConvSpec& spec, bool hybrid, bool cache,
                 bool fusion, const sim::GpuSpec& gpu,
                 sim::TimingTier tier = sim::TimingTier::kMechanistic) {
  systems::TlpgnnOptions opts;
  opts.hybrid_assignment = hybrid;
  opts.register_cache = cache;
  opts.fused_gat = fusion;
  systems::TlpgnnSystem sys(opts);
  sim::DeviceOptions dopts;
  dopts.timing_tier = tier;
  sim::Device dev(gpu, dopts);
  return sys.run(dev, g, feat, spec).measured_ms;
}

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/150'000, /*feature=*/32);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);

  bench::print_header(
      "Figure 10: technique benefits over the edge-centric baseline (F=" +
          std::to_string(cfg.feature_size) + ")",
      "each column adds one technique; values are speedups vs baseline");

  for (const ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage, ModelKind::kGat}) {
    const bool is_gat = kind == ModelKind::kGat;
    std::printf("--- %s ---\n", models::model_name(kind));
    TextTable t(is_gat
                    ? std::vector<std::string>{"Data", "TLP", "+Hybrid",
                                               "+Cache", "+Fusion"}
                    : std::vector<std::string>{"Data", "TLP", "+Hybrid",
                                               "+Cache"});
    std::vector<std::vector<double>> cols(is_gat ? 4 : 3);
    for (const auto& ds : graph::all_datasets()) {
      const graph::Csr& g = graphs.get(ds.abbr);
      const tensor::Tensor feat =
          bench::make_features(g, cfg.feature_size, cfg.seed);
      Rng rng(cfg.seed);
      const models::ConvSpec spec =
          models::ConvSpec::make(kind, cfg.feature_size, rng);

      const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
      const auto run_base = [&](sim::TimingTier tier) {
        sim::DeviceOptions dopts;
        dopts.timing_tier = tier;
        sim::Device dev(gpu, dopts);
        return systems::make_system("edge")->run(dev, g, feat, spec)
            .measured_ms;
      };
      const double base = run_base(sim::TimingTier::kMechanistic);

      // Stage 1 (TLP): two-level parallelism only — static assignment, no
      // register caching, unfused GAT.
      std::vector<double> stages;
      stages.push_back(run_stage(g, feat, spec, false, false, false, gpu));
      // Stage 2 (+Hybrid): hybrid dynamic workload assignment.
      stages.push_back(run_stage(g, feat, spec, true, false, false, gpu));
      // Stage 3 (+Cache): register caching.
      stages.push_back(run_stage(g, feat, spec, true, true, false, gpu));
      // Stage 4 (+Fusion, GAT only): one fused kernel.
      if (is_gat) stages.push_back(run_stage(g, feat, spec, true, true, true, gpu));

      const std::vector<std::string> stage_names{"tlp", "+hybrid", "+cache",
                                                 "+fusion"};
      std::vector<std::string> cells{ds.abbr};
      for (std::size_t i = 0; i < stages.size(); ++i) {
        const double speedup = base / stages[i];
        cols[i].push_back(speedup);
        rep.add(models::model_name(kind), ds.abbr, stage_names[i])
            .value("speedup", speedup);
        cells.push_back(fixed(speedup, 2) + "x");
      }
      if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
        // Fast-tier twins: analytical speedups vs the analytical baseline,
        // so the cross-tier assertion checks whether the closed-form model
        // preserves the ablation's shape.
        const double base_a = run_base(sim::TimingTier::kAnalytical);
        const bool stage_flags[4][3] = {{false, false, false},
                                        {true, false, false},
                                        {true, true, false},
                                        {true, true, true}};
        for (std::size_t i = 0; i < stages.size(); ++i) {
          const double ms =
              run_stage(g, feat, spec, stage_flags[i][0], stage_flags[i][1],
                        stage_flags[i][2], gpu, sim::TimingTier::kAnalytical);
          rep.add(models::model_name(kind), ds.abbr,
                  stage_names[i] + "@analytical")
              .value("speedup", base_a / ms);
        }
      }
      t.add_row(std::move(cells));
    }
    const std::vector<std::string> stage_names{"tlp", "+hybrid", "+cache",
                                               "+fusion"};
    std::vector<std::string> avg{"geomean"};
    for (std::size_t i = 0; i < cols.size(); ++i) {
      rep.add(models::model_name(kind), "", stage_names[i])
          .value("geomean_speedup", geomean(cols[i]));
      avg.push_back(fixed(geomean(cols[i]), 2) + "x");
    }
    t.add_row(std::move(avg));
    t.print();
    std::printf("\n");
  }
  std::printf(
      "paper cumulative averages: GCN 12.9x, GIN 12.1x, Sage 11.3x, GAT 8.6x "
      "over the edge-centric baseline\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef fig10_bench = {
    "fig10", "technique benefits over the edge-centric baseline", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::fig10_bench)
