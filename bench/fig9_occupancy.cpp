// Figure 9 reproduction: achieved occupancy of the FeatGraph-like GCN
// implementation vs TLPGNN over all dataset replicas, with averages.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/250'000, /*feature=*/32);
  bench::GraphCache graphs(cfg);

  bench::print_header(
      "Figure 9: achieved occupancy, FeatGraph vs TLPGNN (GCN, F=" +
          std::to_string(cfg.feature_size) + ")",
      "occupancy = time-weighted resident warps / 64 per SM");

  TextTable t({"Data", "FeatGraph", "TLPGNN"});
  std::vector<double> fg_all, tlp_all;
  for (const auto& ds : graph::all_datasets()) {
    const graph::Csr& g = graphs.get(ds.abbr);
    const tensor::Tensor feat =
        bench::make_features(g, cfg.feature_size, cfg.seed);
    const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
    const auto fg =
        bench::run_system("featgraph", ModelKind::kGcn, g, feat, cfg.seed, gpu);
    const auto tlp =
        bench::run_system("tlpgnn", ModelKind::kGcn, g, feat, cfg.seed, gpu);
    fg_all.push_back(fg.metrics.achieved_occupancy);
    tlp_all.push_back(tlp.metrics.achieved_occupancy);
    t.add_row({ds.abbr, pct(fg_all.back()), pct(tlp_all.back())});
  }
  t.add_row({"Average", pct(mean(fg_all)), pct(mean(tlp_all))});
  t.print();
  std::printf("\npaper averages: FeatGraph 41.2%%, TLPGNN 68.2%%\n");
  return 0;
}
