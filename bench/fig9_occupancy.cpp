// Figure 9 reproduction: achieved occupancy of the FeatGraph-like GCN
// implementation vs TLPGNN over all dataset replicas, with averages.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "suite.hpp"

using namespace tlp;
using bench::BenchConfig;
using models::ModelKind;

namespace {

int run(const Args& args, bench::Reporter& rep) {
  const BenchConfig cfg =
      BenchConfig::from_args(args, /*max_edges=*/250'000, /*feature=*/32);
  rep.set_config(cfg);
  bench::GraphCache graphs(cfg);

  bench::print_header(
      "Figure 9: achieved occupancy, FeatGraph vs TLPGNN (GCN, F=" +
          std::to_string(cfg.feature_size) + ")",
      "occupancy = time-weighted resident warps / 64 per SM");

  TextTable t({"Data", "FeatGraph", "TLPGNN"});
  std::vector<double> fg_all, tlp_all;
  for (const auto& ds : graph::all_datasets()) {
    const graph::Csr& g = graphs.get(ds.abbr);
    const tensor::Tensor feat =
        bench::make_features(g, cfg.feature_size, cfg.seed);
    const sim::GpuSpec gpu = bench::gpu_for(ds, cfg);
    bench::run_tiers(cfg, "featgraph", ModelKind::kGcn, g, feat, gpu,
                     [&](const systems::RunResult& r,
                         const std::string& suffix) {
                       if (suffix.empty())
                         fg_all.push_back(r.metrics.achieved_occupancy);
                       rep.add("", ds.abbr, "featgraph" + suffix)
                           .value("achieved_occupancy",
                                  r.metrics.achieved_occupancy);
                     });
    bench::run_tiers(cfg, "tlpgnn", ModelKind::kGcn, g, feat, gpu,
                     [&](const systems::RunResult& r,
                         const std::string& suffix) {
                       if (suffix.empty())
                         tlp_all.push_back(r.metrics.achieved_occupancy);
                       rep.add("", ds.abbr, "tlpgnn" + suffix)
                           .value("achieved_occupancy",
                                  r.metrics.achieved_occupancy);
                     });
    t.add_row({ds.abbr, pct(fg_all.back()), pct(tlp_all.back())});
  }
  rep.add("summary", "", "featgraph")
      .value("mean_achieved_occupancy", mean(fg_all));
  rep.add("summary", "", "tlpgnn")
      .value("mean_achieved_occupancy", mean(tlp_all));
  t.add_row({"Average", pct(mean(fg_all)), pct(mean(tlp_all))});
  t.print();
  std::printf("\npaper averages: FeatGraph 41.2%%, TLPGNN 68.2%%\n");
  return 0;
}

}  // namespace

namespace tlp::bench {
const BenchDef fig9_bench = {
    "fig9", "achieved occupancy, FeatGraph vs TLPGNN", &run, ""};
}  // namespace tlp::bench

TLP_BENCH_MAIN(tlp::bench::fig9_bench)
