// Shared harness code for the per-table/per-figure benchmark binaries.
//
// Every binary runs with no arguments using scaled-down dataset replicas
// (see DESIGN.md §1) and accepts:
//   --max-edges N   replica edge cap (default varies per bench)
//   --full          paper-scale replicas (slow!)
//   --feature F     feature size override
//   --seed S        experiment seed
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "systems/system.hpp"

namespace tlp::bench {

struct BenchConfig {
  graph::ReplicaOptions replica;
  std::int64_t feature_size = 32;
  std::uint64_t seed = 42;

  static BenchConfig from_args(const Args& args,
                               std::int64_t default_max_edges,
                               std::int64_t default_feature) {
    BenchConfig cfg;
    cfg.replica.max_edges = args.get_int("max-edges", default_max_edges);
    cfg.replica.full = args.get_bool("full", false);
    cfg.replica.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    cfg.feature_size = args.get_int("feature", default_feature);
    cfg.seed = cfg.replica.seed;
    return cfg;
  }
};

/// Cache of replica graphs so multi-system benches build each one once.
class GraphCache {
 public:
  explicit GraphCache(const BenchConfig& cfg) : cfg_(cfg) {}

  const graph::Csr& get(const std::string& abbr) {
    auto it = cache_.find(abbr);
    if (it == cache_.end()) {
      it = cache_
               .emplace(abbr, graph::make_dataset(graph::dataset_by_abbr(abbr),
                                                  cfg_.replica))
               .first;
    }
    return it->second;
  }

 private:
  BenchConfig cfg_;
  std::map<std::string, graph::Csr> cache_;
};

/// GPU scale divisor matching a dataset replica's scale-down: a replica with
/// 1/k of the paper's edges runs on a machine with ~1/k of the V100's SMs,
/// caches, and bandwidth, so working-set:cache and compute:bandwidth ratios
/// — which decide who wins — match the full-scale experiment (DESIGN.md §1).
/// Clamped so at least 4 SMs remain.
inline int gpu_divisor(const graph::DatasetSpec& ds, const BenchConfig& cfg) {
  if (cfg.replica.full || ds.edges <= cfg.replica.max_edges) return 1;
  const double ratio =
      static_cast<double>(ds.edges) / static_cast<double>(cfg.replica.max_edges);
  return std::clamp(static_cast<int>(ratio), 1, 20);
}

inline sim::GpuSpec gpu_for(const graph::DatasetSpec& ds,
                            const BenchConfig& cfg) {
  return sim::GpuSpec::v100_scaled(gpu_divisor(ds, cfg));
}

/// Random features for a graph, deterministic per (seed, graph size).
inline tensor::Tensor make_features(const graph::Csr& g, std::int64_t f,
                                    std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(g.num_vertices()) << 20) ^
          static_cast<std::uint64_t>(f));
  return tensor::Tensor::random(g.num_vertices(), f, rng);
}

/// Runs `system_name` on one dataset replica and returns the result.
inline systems::RunResult run_system(const std::string& system_name,
                                     models::ModelKind kind,
                                     const graph::Csr& g,
                                     const tensor::Tensor& feat,
                                     std::uint64_t seed,
                                     const sim::GpuSpec& gpu = sim::GpuSpec::v100()) {
  Rng rng(seed);
  const models::ConvSpec spec =
      models::ConvSpec::make(kind, feat.cols(), rng);
  sim::Device dev(gpu);
  auto sys = systems::make_system(system_name);
  return sys->run(dev, g, feat, spec);
}

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), setup.c_str());
}

}  // namespace tlp::bench
