// Shared harness code for the per-table/per-figure benchmark binaries.
//
// Every binary runs with no arguments using scaled-down dataset replicas
// (see DESIGN.md §1) and accepts exactly this uniform flag set (unknown
// flags are an error, exit code 2):
//   --max-edges N   replica edge cap (default varies per bench)
//   --full          paper-scale replicas (slow!)
//   --feature F     feature size override
//   --seed S        experiment seed
//   --json PATH     also write the machine-readable tlpbench report
//   --help          print the flag set and exit
// plus any bench-specific flags listed in its BenchDef (e.g. fig11's
// --min-vertices). Each bench's entry point is `int run(const Args&,
// Reporter&)`, registered via a BenchDef + TLP_BENCH_MAIN so the same code
// serves both the standalone binary and the in-process `tools/tlpbench`
// suite driver (bench/suite.hpp).
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "report/report.hpp"
#include "sim/timing.hpp"
#include "systems/system.hpp"

namespace tlp::bench {

struct BenchConfig {
  graph::ReplicaOptions replica;
  std::int64_t feature_size = 32;
  std::uint64_t seed = 42;
  /// --timing-tier: "mech" (default) runs only the bit-pinned mechanistic
  /// tier; "analytical" additionally runs every configuration under the
  /// closed-form fast tier and records `variant@analytical` twins, which the
  /// tier-gated ratio_band assertions in bench/baseline.json validate
  /// (DESIGN.md §13). The mechanistic records are byte-identical either way.
  sim::TimingTier timing_tier = sim::TimingTier::kMechanistic;

  static BenchConfig from_args(const Args& args,
                               std::int64_t default_max_edges,
                               std::int64_t default_feature) {
    BenchConfig cfg;
    cfg.replica.max_edges = args.get_int("max-edges", default_max_edges);
    cfg.replica.full = args.get_bool("full", false);
    cfg.replica.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    cfg.feature_size = args.get_int("feature", default_feature);
    cfg.seed = cfg.replica.seed;
    const std::string tier = args.get_choice(
        "timing-tier", "mech", {"mech", "mechanistic", "analytical"});
    (void)sim::timing_tier_from_name(tier, cfg.timing_tier);
    return cfg;
  }
};

/// Cache of replica graphs so multi-system benches build each one once.
class GraphCache {
 public:
  explicit GraphCache(const BenchConfig& cfg) : cfg_(cfg) {}

  const graph::Csr& get(const std::string& abbr) {
    auto it = cache_.find(abbr);
    if (it == cache_.end()) {
      it = cache_
               .emplace(abbr, graph::make_dataset(graph::dataset_by_abbr(abbr),
                                                  cfg_.replica))
               .first;
    }
    return it->second;
  }

 private:
  BenchConfig cfg_;
  std::map<std::string, graph::Csr> cache_;
};

/// GPU scale divisor matching a dataset replica's scale-down: a replica with
/// 1/k of the paper's edges runs on a machine with ~1/k of the V100's SMs,
/// caches, and bandwidth, so working-set:cache and compute:bandwidth ratios
/// — which decide who wins — match the full-scale experiment (DESIGN.md §1).
/// Clamped so at least 4 SMs remain.
inline int gpu_divisor(const graph::DatasetSpec& ds, const BenchConfig& cfg) {
  if (cfg.replica.full || ds.edges <= cfg.replica.max_edges) return 1;
  const double ratio =
      static_cast<double>(ds.edges) / static_cast<double>(cfg.replica.max_edges);
  return std::clamp(static_cast<int>(ratio), 1, 20);
}

inline sim::GpuSpec gpu_for(const graph::DatasetSpec& ds,
                            const BenchConfig& cfg) {
  return sim::GpuSpec::v100_scaled(gpu_divisor(ds, cfg));
}

/// Random features for a graph, deterministic per (seed, graph size).
inline tensor::Tensor make_features(const graph::Csr& g, std::int64_t f,
                                    std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(g.num_vertices()) << 20) ^
          static_cast<std::uint64_t>(f));
  return tensor::Tensor::random(g.num_vertices(), f, rng);
}

/// Runs `system_name` on one dataset replica and returns the result.
inline systems::RunResult run_system(
    const std::string& system_name, models::ModelKind kind,
    const graph::Csr& g, const tensor::Tensor& feat, std::uint64_t seed,
    const sim::GpuSpec& gpu = sim::GpuSpec::v100(),
    sim::TimingTier tier = sim::TimingTier::kMechanistic) {
  Rng rng(seed);
  const models::ConvSpec spec =
      models::ConvSpec::make(kind, feat.cols(), rng);
  sim::DeviceOptions opts;
  opts.timing_tier = tier;
  sim::Device dev(gpu, opts);
  auto sys = systems::make_system(system_name);
  return sys->run(dev, g, feat, spec);
}

/// Runs one configuration under the mechanistic tier and — when the bench
/// was invoked with --timing-tier analytical — a second time under the
/// analytical tier. `record(result, suffix)` is called with suffix "" for
/// the mechanistic run (always, first, so mechanistic records stay
/// byte-identical to a mech-only run) and "@analytical" for the fast-tier
/// twin; benches append the suffix to the record's variant name, which is
/// what the tier-gated ratio_band assertions in bench/baseline.json match.
template <class RecordFn>
void run_tiers(const BenchConfig& cfg, const std::string& system_name,
               models::ModelKind kind, const graph::Csr& g,
               const tensor::Tensor& feat, const sim::GpuSpec& gpu,
               RecordFn&& record) {
  record(run_system(system_name, kind, g, feat, cfg.seed, gpu,
                    sim::TimingTier::kMechanistic),
         "");
  if (cfg.timing_tier == sim::TimingTier::kAnalytical) {
    record(run_system(system_name, kind, g, feat, cfg.seed, gpu,
                      sim::TimingTier::kAnalytical),
           "@analytical");
  }
}

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), setup.c_str());
}

/// Structured-result sink handed to every bench entry point. When the bench
/// runs without --json (and outside the suite driver) the reporter is
/// disabled and all records go to a scratch slot, so benches record
/// unconditionally.
class Reporter {
 public:
  Reporter() = default;
  explicit Reporter(report::BenchResult* out) : out_(out) {}

  [[nodiscard]] bool enabled() const { return out_ != nullptr; }

  /// Records the effective bench config (shown in the JSON and the rendered
  /// EXPERIMENTS.md provenance).
  void set_config(const BenchConfig& cfg) {
    if (out_ == nullptr) return;
    out_->config = report::Json::object();
    out_->config.set("max_edges", cfg.replica.max_edges);
    out_->config.set("full", cfg.replica.full);
    out_->config.set("feature", cfg.feature_size);
    out_->config.set("seed", static_cast<std::int64_t>(cfg.seed));
    // Only recorded when the fast tier ran, so mech-only reports stay
    // byte-identical to pre-analytical ones.
    if (cfg.timing_tier == sim::TimingTier::kAnalytical)
      out_->config.set("timing_tier", "analytical");
  }

  /// Starts a record for one measured configuration; chain `.value(...)`.
  report::Record& add(const std::string& section, const std::string& dataset,
                      const std::string& variant) {
    if (out_ == nullptr) {
      scratch_ = report::Record{};
      scratch_.variant = variant;
      return scratch_;
    }
    report::Record r;
    r.section = section;
    r.dataset = dataset;
    r.variant = variant;
    out_->records.push_back(std::move(r));
    return out_->records.back();
  }

  /// Records the uniform metric set of one system run: timings, traffic,
  /// and the derived Nsight-style ratios (see sim::Metrics for units).
  report::Record& add_run(const std::string& section,
                          const std::string& dataset,
                          const std::string& variant,
                          const systems::RunResult& r) {
    report::Record& rec = add(section, dataset, variant);
    rec.value("runtime_ms", r.runtime_ms)
        .value("measured_ms", r.measured_ms)
        .value("gpu_time_ms", r.gpu_time_ms)
        .value("kernel_launches", r.kernel_launches)
        .value("peak_device_bytes",
               static_cast<double>(r.peak_device_bytes))
        .value("bytes_load", r.metrics.bytes_load)
        .value("bytes_store", r.metrics.bytes_store)
        .value("bytes_atomic", r.metrics.bytes_atomic)
        .value("bytes_dram", r.metrics.bytes_dram)
        .value("sectors_per_request", r.metrics.sectors_per_request)
        .value("l1_hit_rate", r.metrics.l1_hit_rate)
        .value("scoreboard_stall", r.metrics.scoreboard_stall)
        .value("sm_utilization", r.metrics.sm_utilization)
        .value("achieved_occupancy", r.metrics.achieved_occupancy);
    return rec;
  }

 private:
  report::BenchResult* out_ = nullptr;
  report::Record scratch_;
};

/// One bench binary's registration: shared by its standalone main and the
/// tools/tlpbench suite driver (bench/suite.cpp holds the full table).
struct BenchDef {
  const char* name;         ///< suite id, e.g. "table1" (`tlpbench --only`)
  const char* title;        ///< one-line description
  int (*fn)(const Args& args, Reporter& rep);
  const char* extra_flags;  ///< comma-separated flags beyond the common set
};

/// Flags every bench accepts (kept in sync with the header comment above).
inline const std::vector<std::string>& common_flags() {
  static const std::vector<std::string> flags{"max-edges", "full",  "feature",
                                              "seed",      "json",  "help",
                                              "timing-tier"};
  return flags;
}

inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

/// Rejects flags outside the bench's allowed set; returns the offending flag.
inline std::string first_unknown_flag(const BenchDef& def, const Args& args) {
  std::vector<std::string> allowed = common_flags();
  for (const std::string& f : split_csv(def.extra_flags)) allowed.push_back(f);
  for (const std::string& key : args.named_keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      return key;
  }
  return "";
}

inline void print_usage(const BenchDef& def, std::FILE* to) {
  std::fprintf(to, "%s: %s\n", def.name, def.title);
  std::fprintf(to,
               "flags: --max-edges N  --full  --feature F  --seed S  "
               "--json PATH  --timing-tier {mech,analytical}  --help");
  for (const std::string& f : split_csv(def.extra_flags))
    std::fprintf(to, "  --%s", f.c_str());
  std::fprintf(to, "\n");
}

/// Shared main() body for the standalone bench binaries: validate flags, run,
/// and optionally write a one-bench tlpbench JSON document (--json PATH).
inline int standalone_main(const BenchDef& def, int argc, char** argv) {
  const Args args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(def, stdout);
    return 0;
  }
  const std::string unknown = first_unknown_flag(def, args);
  if (!unknown.empty()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", unknown.c_str());
    print_usage(def, stderr);
    return 2;
  }

  report::BenchResult result;
  result.name = def.name;
  result.title = def.title;
  Reporter rep(args.has("json") ? &result : nullptr);
  int rc = 0;
  try {
    rc = def.fn(args, rep);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (rc == 0 && args.has("json")) {
    report::Report doc;
    doc.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    doc.benches.push_back(std::move(result));
    const std::string path = args.get("json", "");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    out << doc.to_json().dump();
  }
  return rc;
}

// The suite library (tools/tlpbench) compiles every bench .cpp with
// TLP_BENCH_SUITE_BUILD defined, turning the per-binary main() off; the
// standalone executables compile the same file without it.
#ifdef TLP_BENCH_SUITE_BUILD
#define TLP_BENCH_MAIN(def)
#else
#define TLP_BENCH_MAIN(def)                     \
  int main(int argc, char** argv) {             \
    return tlp::bench::standalone_main(def, argc, argv); \
  }
#endif

}  // namespace tlp::bench
