// TLP-BAL-008 — inter-warp load imbalance (see passes.hpp).
//
// "Work" is measured as trace requests: every load/store/atomic a warp
// issues, scalar or vector. That is what the memory system actually
// retires, so it captures degree skew after whatever balancing the
// scheduler did — a warp-per-vertex kernel on a power-law graph shows the
// hub vertex's warp issuing orders of magnitude more requests than the
// median, while the software-pool kernel spreads the same total evenly.
#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/passes.hpp"

namespace tlp::analysis {

void BalancePass::run(const sim::KernelTrace& kt, const PassOptions& opt,
                      std::vector<Diagnostic>& out) const {
  struct WarpAgg {
    std::int64_t requests = 0;
    /// Requests per site, to name the busiest warp's dominant site.
    std::map<std::uint32_t, std::int64_t> by_site;
  };
  std::map<std::int64_t, WarpAgg> warps;
  std::int64_t total = 0;
  for (const sim::TraceAccess& a : kt.accesses) {
    WarpAgg& w = warps[a.warp];
    w.requests += 1;
    w.by_site[a.site] += 1;
    ++total;
  }
  if (static_cast<std::int64_t>(warps.size()) < opt.balance_min_warps ||
      total < opt.min_requests) {
    return;
  }

  const WarpAgg* busiest = nullptr;
  std::int64_t busiest_warp = -1;
  for (const auto& [warp, agg] : warps) {
    if (busiest == nullptr || agg.requests > busiest->requests) {
      busiest = &agg;
      busiest_warp = warp;
    }
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(warps.size());
  const double ratio = static_cast<double>(busiest->requests) / mean;
  if (ratio <= opt.balance_ratio) return;

  // Attribute the imbalance to the busiest warp's dominant access site so a
  // kernel that accepts the skew can suppress exactly there. std::map order
  // makes the smallest site id win ties, deterministically.
  std::uint32_t dom_site = 0;
  std::int64_t dom_count = -1;
  for (const auto& [site, n] : busiest->by_site) {
    if (n > dom_count) {
      dom_site = site;
      dom_count = n;
    }
  }

  Diagnostic d;
  d.rule = rule();
  d.severity = Severity::kWarning;
  d.kernel = kt.kernel;
  d.site_id = dom_site;
  d.metric = ratio;
  d.count = busiest->requests;
  std::ostringstream os;
  os << "inter-warp imbalance: warp " << busiest_warp << " issued "
     << busiest->requests << " memory requests, " << ratio
     << "x the per-warp mean of " << mean << " (over " << warps.size()
     << " warps) — the straggler warp bounds the kernel";
  d.message = os.str();
  out.push_back(std::move(d));
}

}  // namespace tlp::analysis
