#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace tlp::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::key() const {
  std::string k;
  k += rule;
  k += '|';
  k += system;
  k += '|';
  k += kernel;
  k += '|';
  k += site;
  if (!site2.empty()) {
    k += '|';
    k += site2;
  }
  return k;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.severity != b.severity)
                return static_cast<int>(a.severity) > static_cast<int>(b.severity);
              if (a.suppressed != b.suppressed) return !a.suppressed;
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.system != b.system) return a.system < b.system;
              if (a.dataset != b.dataset) return a.dataset < b.dataset;
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              return a.site < b.site;
            });
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags, bool truncated) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"tlplint\",\n  \"version\": 1,\n"
     << "  \"trace_truncated\": " << (truncated ? "true" : "false") << ",\n"
     << "  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << "    {\n"
       << "      \"key\": \"" << json_escape(d.key()) << "\",\n"
       << "      \"rule\": \"" << json_escape(d.rule) << "\",\n"
       << "      \"severity\": \"" << severity_name(d.severity) << "\",\n"
       << "      \"suppressed\": " << (d.suppressed ? "true" : "false")
       << ",\n";
    if (d.suppressed) {
      os << "      \"suppress_reason\": \"" << json_escape(d.suppress_reason)
         << "\",\n";
    }
    os << "      \"system\": \"" << json_escape(d.system) << "\",\n"
       << "      \"dataset\": \"" << json_escape(d.dataset) << "\",\n"
       << "      \"kernel\": \"" << json_escape(d.kernel) << "\",\n"
       << "      \"site\": \"" << json_escape(d.site) << "\",\n";
    if (!d.site2.empty())
      os << "      \"site2\": \"" << json_escape(d.site2) << "\",\n";
    if (!d.location.empty())
      os << "      \"location\": \"" << json_escape(d.location) << "\",\n";
    os << "      \"metric\": " << d.metric << ",\n"
       << "      \"count\": " << d.count << ",\n"
       << "      \"message\": \"" << json_escape(d.message) << "\"\n"
       << "    }" << (i + 1 < diags.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

namespace {

/// One-line rule summaries for the SARIF rules table.
const char* rule_description(const std::string& rule) {
  if (rule == kRuleMeta) return "trace truncated: analysis coverage incomplete";
  if (rule == kRuleRace) return "happens-before data race between warps";
  if (rule == kRuleCoalesce) return "uncoalesced global-memory access site";
  if (rule == kRuleDivergence) return "warp lane-activity imbalance";
  if (rule == kRuleAtomicContention) return "atomic-contention hotspot";
  if (rule == kRuleRedundantLoad)
    return "redundant load (register caching candidate)";
  if (rule == kRuleInit) return "device read before first write";
  if (rule == kRuleLifetime) return "dead or write-only device buffer";
  if (rule == kRuleBalance) return "inter-warp load imbalance";
  if (rule == kRuleReuse) return "reuse distance exceeds L2 capacity";
  return "tlpsan finding";
}

/// Splits "src/file.cpp:123" into a uri and a line; line 0 when absent.
void split_location(const std::string& loc, std::string& uri, int& line) {
  const std::size_t cut = loc.rfind(':');
  uri = loc;
  line = 0;
  if (cut == std::string::npos) return;
  const std::string tail = loc.substr(cut + 1);
  if (tail.empty() ||
      tail.find_first_not_of("0123456789") != std::string::npos) {
    return;
  }
  uri = loc.substr(0, cut);
  line = std::stoi(tail);
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  // Rules table: one reportingDescriptor per distinct rule id, sorted.
  std::set<std::string> rules;
  for (const Diagnostic& d : diags) rules.insert(d.rule);

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"tlplint\",\n"
     << "          \"version\": \"2.0.0\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/tlpgnn/tlpsan\",\n"
     << "          \"rules\": [\n";
  std::size_t ri = 0;
  for (const std::string& r : rules) {
    os << "            {\n"
       << "              \"id\": \"" << json_escape(r) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(rule_description(r)) << "\" }\n"
       << "            }" << (++ri < rules.size() ? "," : "") << '\n';
  }
  os << "          ]\n        }\n      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    // SARIF levels coincide with our severity names (error/warning/note).
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
       << "          \"level\": \"" << severity_name(d.severity) << "\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(d.message)
       << "\" },\n";
    if (!d.location.empty()) {
      std::string uri;
      int line = 0;
      split_location(d.location, uri, line);
      os << "          \"locations\": [\n"
         << "            {\n"
         << "              \"physicalLocation\": {\n"
         << "                \"artifactLocation\": { \"uri\": \""
         << json_escape(uri) << "\", \"uriBaseId\": \"SRCROOT\" }";
      if (line > 0) {
        os << ",\n                \"region\": { \"startLine\": " << line
           << " }";
      }
      os << "\n              }\n            }\n          ],\n";
    }
    if (d.suppressed) {
      os << "          \"suppressions\": [\n"
         << "            { \"kind\": \"inSource\", \"justification\": \""
         << json_escape(d.suppress_reason) << "\" }\n"
         << "          ],\n";
    }
    os << "          \"partialFingerprints\": { \"tlpKey/v1\": \""
       << json_escape(d.key()) << "\" },\n"
       << "          \"properties\": {\n"
       << "            \"system\": \"" << json_escape(d.system) << "\",\n"
       << "            \"dataset\": \"" << json_escape(d.dataset) << "\",\n"
       << "            \"kernel\": \"" << json_escape(d.kernel) << "\",\n"
       << "            \"site\": \"" << json_escape(d.site) << "\",\n"
       << "            \"metric\": " << d.metric << ",\n"
       << "            \"count\": " << d.count << "\n"
       << "          }\n"
       << "        }" << (i + 1 < diags.size() ? "," : "") << '\n';
  }
  os << "      ]\n    }\n  ]\n}\n";
  return os.str();
}

std::vector<std::string> keys_from_json(const std::string& json) {
  std::vector<std::string> keys;
  const std::string needle = "\"key\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    pos = json.find(':', pos);
    if (pos == std::string::npos) break;
    pos = json.find('"', pos);
    if (pos == std::string::npos) break;
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    keys.push_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return keys;
}

std::vector<Diagnostic> new_versus_baseline(
    const std::vector<Diagnostic>& diags,
    const std::vector<std::string>& baseline_keys) {
  const std::set<std::string> known(baseline_keys.begin(),
                                    baseline_keys.end());
  std::set<std::string> reported;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : diags) {
    if (d.suppressed) continue;
    const std::string k = d.key();
    if (known.count(k) != 0 || !reported.insert(k).second) continue;
    fresh.push_back(d);
  }
  return fresh;
}

}  // namespace tlp::analysis
