#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace tlp::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::key() const {
  std::string k;
  k += rule;
  k += '|';
  k += system;
  k += '|';
  k += kernel;
  k += '|';
  k += site;
  if (!site2.empty()) {
    k += '|';
    k += site2;
  }
  return k;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.severity != b.severity)
                return static_cast<int>(a.severity) > static_cast<int>(b.severity);
              if (a.suppressed != b.suppressed) return !a.suppressed;
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.system != b.system) return a.system < b.system;
              if (a.dataset != b.dataset) return a.dataset < b.dataset;
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              return a.site < b.site;
            });
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags, bool truncated) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"tlplint\",\n  \"version\": 1,\n"
     << "  \"trace_truncated\": " << (truncated ? "true" : "false") << ",\n"
     << "  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << "    {\n"
       << "      \"key\": \"" << json_escape(d.key()) << "\",\n"
       << "      \"rule\": \"" << json_escape(d.rule) << "\",\n"
       << "      \"severity\": \"" << severity_name(d.severity) << "\",\n"
       << "      \"suppressed\": " << (d.suppressed ? "true" : "false")
       << ",\n";
    if (d.suppressed) {
      os << "      \"suppress_reason\": \"" << json_escape(d.suppress_reason)
         << "\",\n";
    }
    os << "      \"system\": \"" << json_escape(d.system) << "\",\n"
       << "      \"dataset\": \"" << json_escape(d.dataset) << "\",\n"
       << "      \"kernel\": \"" << json_escape(d.kernel) << "\",\n"
       << "      \"site\": \"" << json_escape(d.site) << "\",\n";
    if (!d.site2.empty())
      os << "      \"site2\": \"" << json_escape(d.site2) << "\",\n";
    if (!d.location.empty())
      os << "      \"location\": \"" << json_escape(d.location) << "\",\n";
    os << "      \"metric\": " << d.metric << ",\n"
       << "      \"count\": " << d.count << ",\n"
       << "      \"message\": \"" << json_escape(d.message) << "\"\n"
       << "    }" << (i + 1 < diags.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

std::vector<std::string> keys_from_json(const std::string& json) {
  std::vector<std::string> keys;
  const std::string needle = "\"key\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    pos = json.find(':', pos);
    if (pos == std::string::npos) break;
    pos = json.find('"', pos);
    if (pos == std::string::npos) break;
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    keys.push_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return keys;
}

std::vector<Diagnostic> new_versus_baseline(
    const std::vector<Diagnostic>& diags,
    const std::vector<std::string>& baseline_keys) {
  const std::set<std::string> known(baseline_keys.begin(),
                                    baseline_keys.end());
  std::set<std::string> reported;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : diags) {
    if (d.suppressed) continue;
    const std::string k = d.key();
    if (known.count(k) != 0 || !reported.insert(k).second) continue;
    fresh.push_back(d);
  }
  return fresh;
}

}  // namespace tlp::analysis
