#include "analysis/pass.hpp"

#include <sstream>

#include "analysis/passes.hpp"

namespace tlp::analysis {

std::vector<std::unique_ptr<Pass>> default_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<RacePass>());
  passes.push_back(std::make_unique<CoalescingPass>());
  passes.push_back(std::make_unique<DivergencePass>());
  passes.push_back(std::make_unique<AtomicContentionPass>());
  passes.push_back(std::make_unique<RedundantLoadPass>());
  passes.push_back(std::make_unique<BalancePass>());
  return passes;
}

std::vector<std::unique_ptr<WholeTracePass>> default_whole_trace_passes() {
  std::vector<std::unique_ptr<WholeTracePass>> passes;
  passes.push_back(std::make_unique<InitPass>());
  passes.push_back(std::make_unique<LifetimePass>());
  passes.push_back(std::make_unique<ReusePass>());
  return passes;
}

namespace {

std::string site_location(const sim::AccessSite& s) {
  if (s.file.empty()) return {};
  std::ostringstream os;
  // Path tails keep diagnostics stable across checkout locations.
  const std::size_t cut = s.file.find("src/");
  os << (cut == std::string::npos ? s.file : s.file.substr(cut)) << ':'
     << s.line;
  return os.str();
}

}  // namespace

std::vector<Diagnostic> analyze_trace(const sim::AccessTrace& trace,
                                      const PassOptions& opt) {
  const auto passes = default_passes();
  const sim::SiteRegistry& reg = sim::SiteRegistry::instance();

  std::vector<Diagnostic> diags;
  for (const sim::KernelTrace& kt : trace.kernels()) {
    for (const auto& pass : passes) pass->run(kt, opt, diags);
  }

  if (trace.truncated()) {
    // A capped trace has holes; every whole-trace claim (lifetime,
    // initialization, reuse distance) would be built on missing accesses.
    // Skip the family and say so, loudly enough for --strict to gate on.
    Diagnostic d;
    d.rule = kRuleMeta;
    d.severity = Severity::kNote;
    d.kernel = "<run>";
    d.count = trace.dropped();
    std::ostringstream os;
    os << "trace truncated: " << trace.dropped()
       << " accesses dropped by the byte budget after " << trace.recorded()
       << " recorded — per-launch findings cover a prefix only and the "
          "whole-trace passes (INIT/LIFE/REUSE) were skipped";
    d.message = os.str();
    diags.push_back(std::move(d));
  } else {
    for (const auto& pass : default_whole_trace_passes()) {
      pass->run(trace, opt, diags);
    }
  }

  for (Diagnostic& d : diags) {
    const sim::AccessSite& site = reg.site(d.site_id);
    const sim::AccessSite& site2 = reg.site(d.site2_id);
    if (d.site.empty()) d.site = site.label;
    if (d.site2.empty() && d.site2_id != 0) d.site2 = site2.label;
    if (d.location.empty()) d.location = site_location(site);
    // A site that declares this rule expected downgrades the finding: still
    // reported, never gating. Either end of a race pair may carry the
    // suppression (the annotated baseline kernel, not its victim).
    const bool sup1 = site.suppresses(d.rule);
    const bool sup2 = d.site2_id != 0 && site2.suppresses(d.rule);
    if (sup1 || sup2) {
      d.suppressed = true;
      d.suppress_reason =
          sup1 ? site.suppress_reason : site2.suppress_reason;
      d.severity = Severity::kNote;
    }
  }
  return diags;
}

}  // namespace tlp::analysis
