// tlpsan diagnostics: the findings the analysis passes emit, their stable
// rule ids, JSON serialization, and the baseline-comparison logic behind the
// CI gate (`tlplint --baseline`).
//
// Every diagnostic carries a *stable key* — rule id, system, kernel, and the
// access-site labels involved — deliberately excluding addresses, counts,
// datasets, and line numbers, so a baseline survives incidental churn and the
// gate fires only when a genuinely new (rule, code location) pair appears.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tlp::analysis {

// Stable rule identifiers. New rules append; ids are never reused.
// TLP-META-000 is the analyzer's self-diagnostic (trace truncated: coverage
// incomplete), emitted by the driver rather than a pass.
inline constexpr const char* kRuleMeta = "TLP-META-000";
inline constexpr const char* kRuleRace = "TLP-RACE-001";
inline constexpr const char* kRuleCoalesce = "TLP-COAL-002";
inline constexpr const char* kRuleDivergence = "TLP-DIV-003";
inline constexpr const char* kRuleAtomicContention = "TLP-ATOM-004";
inline constexpr const char* kRuleRedundantLoad = "TLP-RED-005";
inline constexpr const char* kRuleInit = "TLP-INIT-006";
inline constexpr const char* kRuleLifetime = "TLP-LIFE-007";
inline constexpr const char* kRuleBalance = "TLP-BAL-008";
inline constexpr const char* kRuleReuse = "TLP-REUSE-009";

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  std::string rule;     ///< stable rule id, e.g. "TLP-RACE-001"
  Severity severity = Severity::kWarning;
  /// True when the primary site carries a TLP_SITE_SUPPRESS for this rule:
  /// the finding is reported (with the site's justification) but does not
  /// count against the diagnostics gate.
  bool suppressed = false;
  std::string suppress_reason;

  std::string system;   ///< GnnSystem::name(), filled by the driver
  std::string dataset;  ///< synthetic dataset label, filled by the driver
  std::string kernel;   ///< kernel launch name
  std::string site;     ///< primary access-site label
  std::string site2;    ///< second site (race partner), may be empty
  std::string location;  ///< file:line of the primary site, may be empty
  std::string message;  ///< human-readable finding
  double metric = 0;    ///< pass-specific quantity (sectors/request, ...)
  std::int64_t count = 0;  ///< occurrences folded into this diagnostic

  /// Access-site ids set by passes; analyze_trace resolves them to labels,
  /// locations, and suppressions. Not serialized.
  std::uint32_t site_id = 0;
  std::uint32_t site2_id = 0;

  /// Baseline identity (see file comment).
  [[nodiscard]] std::string key() const;
};

/// Sorts by severity (errors first), then rule, system, kernel, site.
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Machine-readable report: a JSON array of diagnostic objects. `truncated`
/// marks reports built from a capped trace (coverage incomplete).
std::string to_json(const std::vector<Diagnostic>& diags,
                    bool truncated = false);

/// SARIF 2.1.0 document (the static-analysis interchange format CI
/// annotation services ingest): one run, one rule entry per distinct rule
/// id, one result per diagnostic. Severity maps kError→"error",
/// kWarning→"warning", kNote→"note"; suppressed findings carry an inline
/// `suppressions` entry (kind "inSource") with the site's justification.
std::string to_sarif(const std::vector<Diagnostic>& diags);

/// Extracts the `key` fields from a JSON report produced by to_json (or a
/// hand-maintained baseline holding only `key` fields). Tolerant scanner,
/// not a full JSON parser; keys contain no escapes by construction.
std::vector<std::string> keys_from_json(const std::string& json);

/// The CI gate: diagnostics whose key is absent from `baseline_keys`,
/// ignoring suppressed findings. Duplicate keys compare as one.
std::vector<Diagnostic> new_versus_baseline(
    const std::vector<Diagnostic>& diags,
    const std::vector<std::string>& baseline_keys);

}  // namespace tlp::analysis
