// Chronological replay of a whole AccessTrace for the WholeTracePass
// family: interleaves the allocation-lifecycle events (MemEvent) with the
// per-launch access streams in the order they actually happened.
//
// MemEvents are stamped at record time with (launch, pos): the number of
// kernels begun and the number of accesses the current kernel had recorded.
// An event therefore precedes access i of kernel k iff it was stamped
// before that access existed — launch < k+1, or launch == k+1 with
// pos <= i. This reconstructs mid-kernel allocation (the software pool's
// counter) and the host work between launches exactly.
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace tlp::analysis {

/// Calls `on_event(const sim::MemEvent&)` and
/// `on_access(const sim::KernelTrace&, int kernel_index,
///            const sim::TraceAccess&)` in chronological order over the
/// whole trace.
template <class EventFn, class AccessFn>
void walk_trace(const sim::AccessTrace& trace, EventFn&& on_event,
                AccessFn&& on_access) {
  const auto& events = trace.events();
  const auto& kernels = trace.kernels();
  std::size_t e = 0;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const sim::KernelTrace& kt = kernels[k];
    for (std::size_t i = 0; i < kt.accesses.size(); ++i) {
      while (e < events.size() &&
             (events[e].launch < static_cast<std::int32_t>(k) + 1 ||
              (events[e].launch == static_cast<std::int32_t>(k) + 1 &&
               events[e].pos <= static_cast<std::int64_t>(i)))) {
        on_event(events[e]);
        ++e;
      }
      on_access(kt, static_cast<int>(k), kt.accesses[i]);
    }
  }
  while (e < events.size()) {
    on_event(events[e]);
    ++e;
  }
}

/// Iterates the active lanes of one warp request:
/// `fn(std::uint64_t addr, int bytes)`.
template <class LaneFn>
void for_each_lane(const sim::TraceAccess& a, LaneFn&& fn) {
  for (int l = 0; l < sim::kTraceWarpSize; ++l) {
    if (((a.mask >> l) & 1u) == 0) continue;
    fn(a.addr[static_cast<std::size_t>(l)], static_cast<int>(a.bytes));
  }
}

}  // namespace tlp::analysis
