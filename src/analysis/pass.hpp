// tlpsan pass framework: each pass inspects one kernel launch's access trace
// and emits diagnostics. Passes are pure trace consumers — they never touch
// the simulator — so they compose freely and are trivially testable against
// seeded kernels (tests/test_analysis.cpp).
//
// The five stock passes (default_passes):
//   RacePass             TLP-RACE-001  happens-before race detection
//   CoalescingPass       TLP-COAL-002  uncoalesced access sites
//   DivergencePass       TLP-DIV-003   lane-activity imbalance
//   AtomicContentionPass TLP-ATOM-004  hottest atomic addresses
//   RedundantLoadPass    TLP-RED-005   re-fetched addresses (register
//                                      caching candidates)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "sim/trace.hpp"

namespace tlp::analysis {

/// Tunable thresholds. Defaults are calibrated so the paper's *intended*
/// kernel properties pass cleanly and the known pathologies (edge-centric
/// column reads, push-kernel hub contention) fire.
struct PassOptions {
  // CoalescingPass: flag a site when its average sectors-per-request exceeds
  // `coalesce_ratio` x the perfectly coalesced sector count, over at least
  // `min_requests` vector requests.
  double coalesce_ratio = 4.0;
  std::int64_t min_requests = 16;

  // DivergencePass: flag a kernel whose vector requests average fewer than
  // `divergence_floor` of 32 lanes active (over >= min_requests requests).
  double divergence_floor = 0.5;

  // AtomicContentionPass: report the top `atomic_top_k` addresses; flag when
  // the hottest address absorbs >= `atomic_hot_ops` atomic lane-ops.
  int atomic_top_k = 3;
  std::int64_t atomic_hot_ops = 64;

  // RedundantLoadPass: flag a site once >= `redundant_loads` fetches hit an
  // address whose value the same warp already held with no intervening
  // store to it.
  std::int64_t redundant_loads = 64;
};

class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// The single rule id this pass emits.
  [[nodiscard]] virtual std::string rule() const = 0;

  /// Analyzes one kernel launch; appends findings to `out`. The driver fills
  /// system/dataset fields and applies site suppressions afterwards.
  virtual void run(const sim::KernelTrace& kt, const PassOptions& opt,
                   std::vector<Diagnostic>& out) const = 0;
};

/// All five stock passes, in rule-id order.
std::vector<std::unique_ptr<Pass>> default_passes();

/// Runs every pass over every kernel launch of `trace`, resolves site
/// suppressions (a diagnostic whose primary site expects its rule is marked
/// suppressed and downgraded to a note), and returns the combined findings.
std::vector<Diagnostic> analyze_trace(const sim::AccessTrace& trace,
                                      const PassOptions& opt = {});

}  // namespace tlp::analysis
