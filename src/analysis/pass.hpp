// tlpsan pass framework. Two pass families share one diagnostics pipeline:
//
//  - Pass: inspects ONE kernel launch's access trace. Launch-local
//    properties (races, coalescing, divergence, contention, per-warp
//    balance) need no cross-launch state.
//  - WholeTracePass: inspects the ENTIRE trace — every launch plus the
//    allocation-lifecycle events DeviceMemory records (MemEvent) — for
//    properties that only exist across launches: buffer lifetimes,
//    initialization state, reuse distance against the L2.
//
// Passes are pure trace consumers — they never touch the simulator — so they
// compose freely and are trivially testable against seeded kernels
// (tests/test_analysis.cpp).
//
// Per-launch passes (default_passes):
//   RacePass             TLP-RACE-001  happens-before race detection
//   CoalescingPass       TLP-COAL-002  uncoalesced access sites
//   DivergencePass       TLP-DIV-003   lane-activity imbalance
//   AtomicContentionPass TLP-ATOM-004  hottest atomic addresses
//   RedundantLoadPass    TLP-RED-005   re-fetched addresses (register
//                                      caching candidates)
//   BalancePass          TLP-BAL-008   inter-warp load imbalance
//
// Whole-trace passes (default_whole_trace_passes):
//   InitPass             TLP-INIT-006  read-before-first-write
//   LifetimePass         TLP-LIFE-007  dead / write-only buffers
//   ReusePass            TLP-REUSE-009 reuse-distance thrashing vs the L2
//
// The driver (analyze_trace) additionally emits TLP-META-000 when the trace
// was truncated by its byte budget: coverage is incomplete and the
// whole-trace family skips entirely (lifetime claims over a trace with holes
// would be fabrications).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/trace.hpp"

namespace tlp::analysis {

/// Tunable thresholds. Defaults are calibrated so the paper's *intended*
/// kernel properties pass cleanly and the known pathologies (edge-centric
/// column reads, push-kernel hub contention, warp-per-vertex degree skew)
/// fire.
struct PassOptions {
  // CoalescingPass: flag a site when its average sectors-per-request exceeds
  // `coalesce_ratio` x the perfectly coalesced sector count, over at least
  // `min_requests` vector requests.
  double coalesce_ratio = 4.0;
  std::int64_t min_requests = 16;

  // DivergencePass: flag a kernel whose vector requests average fewer than
  // `divergence_floor` of 32 lanes active (over >= min_requests requests).
  double divergence_floor = 0.5;

  // AtomicContentionPass: report the top `atomic_top_k` addresses; flag when
  // the hottest address absorbs >= `atomic_hot_ops` atomic lane-ops.
  int atomic_top_k = 3;
  std::int64_t atomic_hot_ops = 64;

  // RedundantLoadPass: flag a site once >= `redundant_loads` fetches hit an
  // address whose value the same warp already held with no intervening
  // store to it.
  std::int64_t redundant_loads = 64;

  // BalancePass: flag a kernel whose busiest warp issues more than
  // `balance_ratio` x the mean per-warp request count, over at least
  // `balance_min_warps` warps and `min_requests` total requests — the
  // paper's warp-per-vertex balance claim, inverted.
  double balance_ratio = 8.0;
  std::int64_t balance_min_warps = 8;

  // ReusePass: flag a site when at least `reuse_miss_frac` of its reuses
  // have an LRU stack distance exceeding the L2 (`gpu.l2_bytes`), over at
  // least `reuse_min_reuses` reused lines — reuse the cache can never
  // capture.
  double reuse_miss_frac = 0.5;
  std::int64_t reuse_min_reuses = 64;

  // Cache geometry the whole-trace passes reason against (ReusePass). The
  // lint driver passes the scaled replica it simulates on.
  sim::GpuSpec gpu = sim::GpuSpec::v100();

  // Driver knob (lint_systems / lint_serve, tlplint --max-trace-mb): byte
  // budget of each run's AccessTrace. Exceeding it truncates the trace,
  // which downgrades analysis to the per-launch prefix + TLP-META-000.
  std::size_t trace_max_bytes = std::size_t{1} << 30;
};

class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// The single rule id this pass emits.
  [[nodiscard]] virtual std::string rule() const = 0;

  /// Analyzes one kernel launch; appends findings to `out`. The driver fills
  /// system/dataset fields and applies site suppressions afterwards.
  virtual void run(const sim::KernelTrace& kt, const PassOptions& opt,
                   std::vector<Diagnostic>& out) const = 0;
};

/// A pass over the whole trace: every launch in order plus the
/// allocation-lifecycle events (MemEvent) DeviceMemory recorded. The only
/// family that can reason about buffers across launches.
class WholeTracePass {
 public:
  virtual ~WholeTracePass() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// The single rule id this pass emits.
  [[nodiscard]] virtual std::string rule() const = 0;

  /// Analyzes the full trace; appends findings to `out`. Never called on a
  /// truncated trace (the driver skips the family and emits TLP-META-000
  /// instead).
  virtual void run(const sim::AccessTrace& trace, const PassOptions& opt,
                   std::vector<Diagnostic>& out) const = 0;
};

/// The per-launch stock passes, in rule-id order.
std::vector<std::unique_ptr<Pass>> default_passes();

/// The whole-trace stock passes, in rule-id order.
std::vector<std::unique_ptr<WholeTracePass>> default_whole_trace_passes();

/// Runs both pass families over `trace` — every per-launch pass on every
/// kernel launch, then every whole-trace pass on the trace as a whole —
/// resolves site suppressions (a diagnostic whose primary site expects its
/// rule is marked suppressed and downgraded to a note), and returns the
/// combined findings. A truncated trace skips the whole-trace family and
/// yields a TLP-META-000 note instead.
std::vector<Diagnostic> analyze_trace(const sim::AccessTrace& trace,
                                      const PassOptions& opt = {});

}  // namespace tlp::analysis
