// Concrete tlpsan passes. See pass.hpp for the framework contract and
// DESIGN.md §7 for the methodology; tests instantiate these directly.
#pragma once

#include "analysis/pass.hpp"

namespace tlp::analysis {

/// TLP-RACE-001 — happens-before race detection over the access trace.
///
/// Happens-before structure: within one launch, warps synchronize with
/// nothing, so each warp's accesses form one totally ordered thread and any
/// two accesses from different warps are concurrent; the implicit device
/// synchronization between launches is a barrier that joins every warp's
/// vector clock, ordering all of launch k before all of launch k+1. Under
/// that structure a full vector-clock comparison (FastTrack-style epochs)
/// collapses to: concurrent iff same launch and different warp — which is
/// what the per-word shadow state below implements, per launch.
///
/// Conflicts on a word (two accesses, different warps, at least one a write,
/// not both atomic) are classified and reported with *both* access sites:
///   plain-write / plain-write   error  (lost update)
///   atomic / plain-write mix    error  (atomicity does not protect the
///                                       plain side)
///   plain-write / read          error  (torn or stale read)
///   atomic-write / read         warning (formally racy; sometimes a
///                                        deliberate monotonic read)
/// Atomic/atomic pairs are ordered by the L2 atomic units: not a race.
class RacePass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "race"; }
  [[nodiscard]] std::string rule() const override { return kRuleRace; }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-COAL-002 — uncoalesced access sites: average 32 B sectors per warp
/// request far above the perfectly coalesced count (§4.3's coalescing
/// property, Table 2's metric), aggregated per static access site.
class CoalescingPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "coalescing"; }
  [[nodiscard]] std::string rule() const override { return kRuleCoalesce; }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-DIV-003 — lane-activity imbalance: the kernel's vector requests leave
/// most lanes inactive (§4.2's divergence concern). Scalar broadcast
/// accesses are exempt by construction.
class DivergencePass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "divergence"; }
  [[nodiscard]] std::string rule() const override { return kRuleDivergence; }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-ATOM-004 — atomic-contention hotspots: the top-k most hammered
/// addresses and a serialization estimate (the atomic units retire
/// conflicting lane-ops one at a time — Observation I's traffic).
class AtomicContentionPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override {
    return "atomic-contention";
  }
  [[nodiscard]] std::string rule() const override {
    return kRuleAtomicContention;
  }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-RED-005 — redundant loads: a warp re-fetches a word it already loaded
/// *within the same work item* with no intervening store to it by anyone —
/// exactly the loads §6's register caching eliminates (Figure 7a vs 7b).
class RedundantLoadPass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "redundant-load"; }
  [[nodiscard]] std::string rule() const override {
    return kRuleRedundantLoad;
  }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-BAL-008 — inter-warp load imbalance: one warp issues balance_ratio x
/// the mean per-warp request count. The paper's central scheduling claim
/// (§4.1) is that warp-per-vertex with FA+TM hides degree skew; this pass
/// measures the skew that actually reached the memory system. The
/// diagnostic's site is the dominant access site of the busiest warp, so a
/// kernel that accepts the skew can suppress at the gather it happens in.
class BalancePass final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "balance"; }
  [[nodiscard]] std::string rule() const override { return kRuleBalance; }
  void run(const sim::KernelTrace& kt, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-INIT-006 — read-before-first-write: a kernel loads bytes of a traced
/// allocation that no host write (upload / fill via a mutable view) and no
/// device store initialized first. Uses the MemEvent shadow state; accesses
/// to addresses with no alloc event (buffers created before the trace was
/// attached) are skipped — provenance unknown is not provenance bad.
/// Atomics are read-modify-write: an atomic to an uninitialized word counts
/// as an uninitialized read.
class InitPass final : public WholeTracePass {
 public:
  [[nodiscard]] std::string name() const override { return "init"; }
  [[nodiscard]] std::string rule() const override { return kRuleInit; }
  void run(const sim::AccessTrace& trace, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-LIFE-007 — buffer-lifetime defects across the whole run: allocations
/// no kernel ever touched (dead weight against the Table 3 memory metric),
/// and write-only buffers — device-written but never device-read nor
/// downloaded (a const host view) before dying — whose stores were wasted
/// bandwidth. Reported per allocation site, aggregated over the run's
/// reset epochs.
class LifetimePass final : public WholeTracePass {
 public:
  [[nodiscard]] std::string name() const override { return "lifetime"; }
  [[nodiscard]] std::string rule() const override { return kRuleLifetime; }
  void run(const sim::AccessTrace& trace, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

/// TLP-REUSE-009 — reuse-distance thrashing: per-site LRU stack distance of
/// 128 B line reuses, measured over the whole run and compared against
/// PassOptions::gpu.l2_bytes. A site most of whose reuses are farther apart
/// than the L2 can hold re-pays DRAM for data it already fetched — the
/// §4.3/§6 locality claims, quantified. Distances are computed exactly
/// (Fenwick tree over last-touch timestamps); DeviceMemory::reset() events
/// clear the stack (a recycled byte offset is a different buffer).
class ReusePass final : public WholeTracePass {
 public:
  [[nodiscard]] std::string name() const override { return "reuse"; }
  [[nodiscard]] std::string rule() const override { return kRuleReuse; }
  void run(const sim::AccessTrace& trace, const PassOptions& opt,
           std::vector<Diagnostic>& out) const override;
};

}  // namespace tlp::analysis
