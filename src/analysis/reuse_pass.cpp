// TLP-REUSE-009 — reuse-distance thrashing (see passes.hpp).
//
// For every reuse of a 128 B line the pass computes the exact LRU stack
// distance: the number of *distinct* lines touched since that line's
// previous touch. A fully-associative LRU cache of C lines hits a reuse iff
// its stack distance is < C, so distance x line_bytes > l2_bytes means the
// L2 could not have held the data no matter the replacement luck — the
// reuse is guaranteed DRAM traffic.
//
// Exact distances come from the classic Fenwick-tree formulation (Bennett &
// Kruskal): timestamps of each line's most recent touch are marked in a
// bit-indexed tree; the distance of a reuse at time t of a line last
// touched at time p is the number of marks in (p, t). Two walks over the
// trace: the first counts line-touches to size the tree, the second
// computes distances. O(N log N), deterministic.
//
// DeviceMemory::reset() recycles byte offsets, so the last-touch map is
// cleared at every reset event: an address reused across a reset is a
// different buffer, not a reuse. (Stale marks left in the tree predate the
// reset and therefore never land inside a post-reset (p, t) window.)
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/trace_walk.hpp"

namespace tlp::analysis {

namespace {

constexpr std::uint64_t kLineBytes = 128;

/// Fenwick tree over touch timestamps; supports point +/-1 and prefix sum.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }

  /// Sum of marks at timestamps [0, i].
  [[nodiscard]] std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int32_t> tree_;
};

/// Unique lines touched by one warp request, ascending. A lane access can
/// straddle a line boundary; both lines count.
void request_lines(const sim::TraceAccess& a,
                   std::vector<std::uint64_t>& lines) {
  lines.clear();
  for_each_lane(a, [&](std::uint64_t addr, int bytes) {
    lines.push_back(addr / kLineBytes);
    const std::uint64_t last =
        (addr + static_cast<std::uint64_t>(bytes) - 1) / kLineBytes;
    if (last != addr / kLineBytes) lines.push_back(last);
  });
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
}

}  // namespace

void ReusePass::run(const sim::AccessTrace& trace, const PassOptions& opt,
                    std::vector<Diagnostic>& out) const {
  // Walk 1: count line-touches to size the timestamp space.
  std::size_t touches = 0;
  std::vector<std::uint64_t> lines;
  walk_trace(
      trace, [](const sim::MemEvent&) {},
      [&](const sim::KernelTrace&, int, const sim::TraceAccess& a) {
        request_lines(a, lines);
        touches += lines.size();
      });
  if (touches == 0) return;

  // Walk 2: exact stack distances, aggregated per access site.
  struct SiteAgg {
    std::int64_t reuses = 0;
    std::int64_t far_reuses = 0;  ///< distance x line > L2
    std::int64_t sum_distance = 0;
    std::int64_t max_distance = 0;
  };
  std::map<std::uint32_t, SiteAgg> by_site;
  Fenwick marks(touches);
  std::unordered_map<std::uint64_t, std::size_t> last_touch;
  last_touch.reserve(1 << 12);
  const std::int64_t l2_lines = std::max<std::int64_t>(
      1, opt.gpu.l2_bytes / static_cast<std::int64_t>(kLineBytes));
  std::size_t t = 0;

  walk_trace(
      trace,
      [&](const sim::MemEvent& ev) {
        if (ev.kind == sim::MemEvent::Kind::kReset) last_touch.clear();
      },
      [&](const sim::KernelTrace&, int, const sim::TraceAccess& a) {
        request_lines(a, lines);
        SiteAgg& agg = by_site[a.site];
        for (const std::uint64_t line : lines) {
          auto it = last_touch.find(line);
          if (it != last_touch.end()) {
            const std::size_t prev = it->second;
            // Distinct lines touched strictly between prev and now.
            const std::int64_t distance =
                marks.prefix(t - 1) - marks.prefix(prev);
            agg.reuses += 1;
            agg.sum_distance += distance;
            agg.max_distance = std::max(agg.max_distance, distance);
            if (distance >= l2_lines) agg.far_reuses += 1;
            marks.add(prev, -1);
            it->second = t;
          } else {
            last_touch.emplace(line, t);
          }
          marks.add(t, +1);
          ++t;
        }
      });

  for (const auto& [site, agg] : by_site) {
    if (agg.reuses < opt.reuse_min_reuses) continue;
    const double far_frac = static_cast<double>(agg.far_reuses) /
                            static_cast<double>(agg.reuses);
    if (far_frac < opt.reuse_miss_frac) continue;
    Diagnostic d;
    d.rule = rule();
    d.severity = Severity::kWarning;
    d.kernel = "<run>";
    d.site_id = site;
    d.metric = far_frac;
    d.count = agg.reuses;
    std::ostringstream os;
    os << "reuse-distance thrashing: " << agg.far_reuses << " of "
       << agg.reuses << " line reuses (" << far_frac * 100.0
       << "%) have stack distance >= " << l2_lines
       << " lines (L2 capacity " << opt.gpu.l2_bytes
       << " B); mean distance "
       << static_cast<double>(agg.sum_distance) /
              static_cast<double>(agg.reuses)
       << ", max " << agg.max_distance
       << " — this working set re-pays DRAM for data it already fetched";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace tlp::analysis
