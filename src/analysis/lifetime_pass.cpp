// TLP-INIT-006 (read-before-first-write) and TLP-LIFE-007 (dead /
// write-only buffers) — the two buffer shadow-state passes. Both replay the
// whole trace chronologically (trace_walk.hpp), maintaining the set of live
// traced allocations; they differ only in what they record per buffer.
//
// Accesses landing outside every traced allocation are skipped by design:
// buffers created before the trace was attached have unknown provenance,
// and "unknown" must not be reported as "uninitialized" or "dead".
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/trace_walk.hpp"

namespace tlp::analysis {

namespace {

struct Buffer {
  std::uint32_t site = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  /// Shadow init state, one flag per payload byte (InitPass only).
  std::vector<bool> init;
  std::int64_t device_loads = 0;
  std::int64_t device_stores = 0;  ///< plain stores + atomics
  bool host_read = false;          ///< downloaded via a const view
  bool host_written = false;       ///< uploaded / filled via a mutable view
};

/// Live traced allocations of the current reset epoch, keyed by payload
/// start for interval lookup. The bump arena never overlaps live payloads,
/// so "greatest offset <= addr, addr within bytes" is exact.
class LiveSet {
 public:
  /// Retired buffers (freed, reset, or still live at trace end) in
  /// retirement order.
  std::deque<Buffer> retired;

  void alloc(const sim::MemEvent& ev, bool track_init) {
    Buffer b;
    b.site = ev.site;
    b.offset = ev.offset;
    b.bytes = ev.bytes;
    if (track_init) b.init.assign(static_cast<std::size_t>(ev.bytes), false);
    if (ev.bytes == 0) return;  // owns no addresses; nothing to observe
    live_[ev.offset] = std::move(b);
  }

  void free(const sim::MemEvent& ev) {
    auto it = live_.find(ev.offset);
    if (it == live_.end()) return;  // allocated before the trace attached
    retired.push_back(std::move(it->second));
    live_.erase(it);
  }

  void reset() {
    for (auto& [off, b] : live_) retired.push_back(std::move(b));
    live_.clear();
  }

  void finish() { reset(); }

  /// Buffer containing `addr`, or nullptr.
  Buffer* find(std::uint64_t addr) {
    auto it = live_.upper_bound(addr);
    if (it == live_.begin()) return nullptr;
    --it;
    Buffer& b = it->second;
    return addr < b.offset + b.bytes ? &b : nullptr;
  }

  /// Applies `fn(Buffer&, first_byte, last_byte)` to every live buffer
  /// overlapping [offset, offset+bytes); byte indices are buffer-relative.
  template <class Fn>
  void for_overlap(std::uint64_t offset, std::uint64_t bytes, Fn&& fn) {
    if (bytes == 0) return;
    const std::uint64_t end = offset + bytes;
    auto it = live_.upper_bound(offset);
    if (it != live_.begin()) --it;
    for (; it != live_.end() && it->second.offset < end; ++it) {
      Buffer& b = it->second;
      if (b.offset + b.bytes <= offset) continue;
      const std::uint64_t lo = offset > b.offset ? offset - b.offset : 0;
      const std::uint64_t hi =
          (end < b.offset + b.bytes ? end - b.offset : b.bytes);
      fn(b, lo, hi);
    }
  }

 private:
  std::map<std::uint64_t, Buffer> live_;
};

}  // namespace

void InitPass::run(const sim::AccessTrace& trace, const PassOptions& opt,
                   std::vector<Diagnostic>& out) const {
  (void)opt;
  LiveSet live;

  // Aggregated per (reading site, buffer site): lane-reads of bytes nothing
  // initialized, plus the first kernel it happened in for the message.
  struct Agg {
    std::int64_t lanes = 0;
    std::string first_kernel;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Agg> uninit;

  walk_trace(
      trace,
      [&](const sim::MemEvent& ev) {
        switch (ev.kind) {
          case sim::MemEvent::Kind::kAlloc:
            live.alloc(ev, /*track_init=*/true);
            break;
          case sim::MemEvent::Kind::kFree:
            live.free(ev);
            break;
          case sim::MemEvent::Kind::kHostWrite:
            // Upload / fill: the whole viewed range becomes initialized.
            live.for_overlap(ev.offset, ev.bytes,
                             [](Buffer& b, std::uint64_t lo, std::uint64_t hi) {
                               for (std::uint64_t i = lo; i < hi; ++i) {
                                 b.init[static_cast<std::size_t>(i)] = true;
                               }
                             });
            break;
          case sim::MemEvent::Kind::kHostRead:
            break;
          case sim::MemEvent::Kind::kReset:
            live.reset();
            break;
        }
      },
      [&](const sim::KernelTrace& kt, int, const sim::TraceAccess& a) {
        for_each_lane(a, [&](std::uint64_t addr, int bytes) {
          Buffer* b = live.find(addr);
          if (b == nullptr) return;  // untracked provenance
          const std::size_t lo = static_cast<std::size_t>(addr - b->offset);
          const std::size_t hi =
              std::min<std::size_t>(lo + static_cast<std::size_t>(bytes),
                                    b->init.size());
          // An atomic is a read-modify-write: it both consumes the previous
          // value (checked) and defines the new one (marked below).
          if (a.kind != sim::AccessKind::kStore) {
            bool bad = false;
            for (std::size_t i = lo; i < hi; ++i) {
              if (!b->init[i]) {
                bad = true;
                break;
              }
            }
            if (bad) {
              Agg& agg = uninit[{a.site, b->site}];
              if (agg.lanes == 0) agg.first_kernel = kt.kernel;
              ++agg.lanes;
            }
          }
          if (a.kind != sim::AccessKind::kLoad) {
            for (std::size_t i = lo; i < hi; ++i) b->init[i] = true;
          }
        });
      });

  for (const auto& [key, agg] : uninit) {
    Diagnostic d;
    d.rule = rule();
    d.severity = Severity::kError;
    d.kernel = "<run>";
    d.site_id = key.first;
    d.site2_id = key.second;
    d.metric = static_cast<double>(agg.lanes);
    d.count = agg.lanes;
    std::ostringstream os;
    os << "read before first write: " << agg.lanes
       << " lane-reads of bytes no host transfer and no device store "
          "initialized (first in kernel '"
       << agg.first_kernel << "') — the kernel consumes garbage";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

void LifetimePass::run(const sim::AccessTrace& trace, const PassOptions& opt,
                       std::vector<Diagnostic>& out) const {
  (void)opt;
  LiveSet live;

  walk_trace(
      trace,
      [&](const sim::MemEvent& ev) {
        switch (ev.kind) {
          case sim::MemEvent::Kind::kAlloc:
            live.alloc(ev, /*track_init=*/false);
            break;
          case sim::MemEvent::Kind::kFree:
            live.free(ev);
            break;
          case sim::MemEvent::Kind::kHostWrite:
            live.for_overlap(ev.offset, ev.bytes,
                             [](Buffer& b, std::uint64_t, std::uint64_t) {
                               b.host_written = true;
                             });
            break;
          case sim::MemEvent::Kind::kHostRead:
            // A download is a legitimate consumer: the buffer's stores fed
            // the host, not a kernel — still not write-only.
            live.for_overlap(ev.offset, ev.bytes,
                             [](Buffer& b, std::uint64_t, std::uint64_t) {
                               b.host_read = true;
                             });
            break;
          case sim::MemEvent::Kind::kReset:
            live.reset();
            break;
        }
      },
      [&](const sim::KernelTrace&, int, const sim::TraceAccess& a) {
        for_each_lane(a, [&](std::uint64_t addr, int) {
          Buffer* b = live.find(addr);
          if (b == nullptr) return;
          // Atomics count on both sides: they read and write the word.
          if (a.kind != sim::AccessKind::kStore) ++b->device_loads;
          if (a.kind != sim::AccessKind::kLoad) ++b->device_stores;
        });
      });
  live.finish();

  // Classify every retired buffer; aggregate per (site, class) so one leaky
  // call site reports once however many epochs repeated it.
  struct Agg {
    std::int64_t buffers = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::pair<std::uint32_t, int>, Agg> classes;  // 0=dead, 1=wo
  for (const Buffer& b : live.retired) {
    if (b.bytes == 0) continue;
    int cls;
    if (b.device_loads == 0 && b.device_stores == 0 && !b.host_read) {
      // Never consumed by anything: pure dead weight against the Table 3
      // memory metric (plus wasted H2D bandwidth if it was uploaded).
      cls = 0;
    } else if (b.device_stores > 0 && b.device_loads == 0 && !b.host_read) {
      // Written by kernels, read by nobody — every store was wasted
      // bandwidth.
      cls = 1;
    } else {
      continue;
    }
    Agg& agg = classes[{b.site, cls}];
    agg.buffers += 1;
    agg.bytes += b.bytes;
  }

  for (const auto& [key, agg] : classes) {
    Diagnostic d;
    d.rule = rule();
    d.severity = Severity::kWarning;
    d.kernel = "<run>";
    d.site_id = key.first;
    d.site2 = key.second == 0 ? "dead" : "write-only";
    d.metric = static_cast<double>(agg.bytes);
    d.count = agg.buffers;
    std::ostringstream os;
    if (key.second == 0) {
      os << "dead buffer: " << agg.buffers << " allocation(s) totalling "
         << agg.bytes
         << " B were never touched by a kernel nor downloaded — wasted "
            "device memory";
    } else {
      os << "write-only buffer: " << agg.buffers
         << " allocation(s) totalling " << agg.bytes
         << " B were stored to but never read by a kernel nor downloaded — "
            "wasted store bandwidth";
    }
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace tlp::analysis
