// tlpsan driver: runs the framework replicas on small synthetic graphs with
// an access trace attached and feeds the trace through the analysis passes.
// This is the engine behind the `tlplint` CLI and the CI diagnostics gate.
#pragma once

#include <string>
#include <vector>

#include "analysis/pass.hpp"
#include "graph/csr.hpp"

namespace tlp::analysis {

/// One synthetic lint workload. Small on purpose: traces are per-lane, and
/// the pathologies the passes hunt (races, uncoalesced column reads, hub
/// contention) already manifest at a few thousand vertices.
struct LintDataset {
  std::string name;
  graph::Csr graph;
  std::int64_t feature_size = 64;
  std::uint64_t seed = 7;
};

/// The stock lint workloads: a power-law graph (hub contention, skewed
/// degrees) and an R-MAT graph (community structure, degree-1 tails that
/// exercise divergence). Both deterministic.
std::vector<LintDataset> default_lint_datasets();

/// Every registered system name, lint order (paper's baselines + TLPGNN).
std::vector<std::string> lint_system_names();

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  bool trace_truncated = false;
  int runs = 0;            ///< (system, dataset, model) combinations executed
  std::int64_t launches = 0;  ///< kernel launches analyzed
};

/// Runs each named system on each dataset (GCN everywhere, GAT where the
/// system supports it), traces every launch, and runs all passes. Throws
/// CheckError on unknown system names.
LintReport lint_systems(const std::vector<std::string>& systems,
                        const std::vector<LintDataset>& datasets,
                        const PassOptions& opt = {});

}  // namespace tlp::analysis
