// tlpsan driver: runs the framework replicas on small synthetic graphs with
// an access trace attached and feeds the trace through the analysis passes.
// This is the engine behind the `tlplint` CLI and the CI diagnostics gate.
#pragma once

#include <string>
#include <vector>

#include "analysis/pass.hpp"
#include "graph/csr.hpp"

namespace tlp::analysis {

/// One synthetic lint workload. Small on purpose: traces are per-lane, and
/// the pathologies the passes hunt (races, uncoalesced column reads, hub
/// contention) already manifest at a few thousand vertices.
struct LintDataset {
  std::string name;
  graph::Csr graph;
  std::int64_t feature_size = 64;
  std::uint64_t seed = 7;
};

/// The stock lint workloads: a power-law graph (hub contention, skewed
/// degrees) and an R-MAT graph (community structure, degree-1 tails that
/// exercise divergence). Both deterministic.
std::vector<LintDataset> default_lint_datasets();

/// Every registered system name, lint order (paper's baselines + TLPGNN).
std::vector<std::string> lint_system_names();

/// The GPU replica the lint drivers simulate on: the 1/16 scaled V100 of the
/// bench methodology (EXPERIMENTS.md). Scaling matters to the analysis, not
/// just the runtime: the full V100's 6 MB L2 swallows every lint-sized
/// working set, which would leave TLP-REUSE-009 vacuously silent — on the
/// scaled replica the same capacity relationships exist at a size the lint
/// matrix can afford to trace.
sim::GpuSpec lint_gpu_spec();

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  bool trace_truncated = false;
  int runs = 0;            ///< (system, dataset, model) combinations executed
  std::int64_t launches = 0;  ///< kernel launches analyzed
};

/// Runs each named system on each dataset (GCN everywhere, GAT where the
/// system supports it), traces every launch, and runs all passes. The
/// simulated device uses `opt.gpu` (the tlplint CLI passes lint_gpu_spec()),
/// so the reuse pass judges the same cache the trace ran against. Throws
/// CheckError on unknown system names.
LintReport lint_systems(const std::vector<std::string>& systems,
                        const std::vector<LintDataset>& datasets,
                        const PassOptions& opt = {});

/// Lints the serving tier (`tlplint --serve`): runs a small deterministic
/// serve::Server session — Poisson traffic over a power-law graph, dynamic
/// batching, plus a mid-run OOM fault storm so the retry and partitioned
/// fallback paths execute — with the trace attached to the server's device,
/// then analyzes it like any other run. Diagnostics carry system "serve"
/// and dataset "pl1k-storm".
LintReport lint_serve(const PassOptions& opt = {});

}  // namespace tlp::analysis
