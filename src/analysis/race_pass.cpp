#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>

#include "analysis/passes.hpp"

namespace tlp::analysis {

namespace {

enum class RaceCat : std::uint8_t {
  kPlainPlain,   ///< two plain stores
  kAtomicPlain,  ///< atomic and plain store mixed
  kWriteRead,    ///< plain store concurrent with a read
  kAtomicRead,   ///< atomic write concurrent with a plain read
};

const char* cat_name(RaceCat c) {
  switch (c) {
    case RaceCat::kPlainPlain:
      return "plain write / plain write";
    case RaceCat::kAtomicPlain:
      return "atomic / plain write mix";
    case RaceCat::kWriteRead:
      return "plain write / read";
    case RaceCat::kAtomicRead:
      return "atomic write / plain read";
  }
  return "?";
}

/// Per-4B-word shadow: the last-writer epoch plus up to two distinct reader
/// warps since that write. Two readers suffice: a third reader can only race
/// with a writer that the recorded ones already race with.
struct WordShadow {
  std::int64_t w_warp = -1;
  std::uint32_t w_site = 0;
  bool w_atomic = false;
  std::array<std::int64_t, 2> r_warp{-1, -1};
  std::array<std::uint32_t, 2> r_site{0, 0};
};

/// One aggregated finding: a (site, site, category) triple.
struct RaceAgg {
  std::int64_t count = 0;
  std::uint64_t example_addr = 0;
  std::int64_t warp_a = -1, warp_b = -1;
};

struct RaceState {
  std::unordered_map<std::uint64_t, WordShadow> shadow;
  // Ordered map keeps diagnostic order deterministic.
  std::map<std::tuple<std::uint32_t, std::uint32_t, RaceCat>, RaceAgg> found;

  void report(RaceCat cat, std::uint32_t prev_site, std::int64_t prev_warp,
              std::uint32_t cur_site, std::int64_t cur_warp,
              std::uint64_t word) {
    RaceAgg& agg = found[{cur_site, prev_site, cat}];
    if (agg.count++ == 0) {
      agg.example_addr = word << 2;
      agg.warp_a = prev_warp;
      agg.warp_b = cur_warp;
    }
  }

  void on_read(std::uint64_t word, std::int64_t warp, std::uint32_t site) {
    WordShadow& ws = shadow[word];
    if (ws.w_warp != -1 && ws.w_warp != warp) {
      report(ws.w_atomic ? RaceCat::kAtomicRead : RaceCat::kWriteRead,
             ws.w_site, ws.w_warp, site, warp, word);
    }
    if (ws.r_warp[0] == warp || ws.r_warp[1] == warp) return;
    if (ws.r_warp[0] == -1) {
      ws.r_warp[0] = warp;
      ws.r_site[0] = site;
    } else if (ws.r_warp[1] == -1) {
      ws.r_warp[1] = warp;
      ws.r_site[1] = site;
    }
  }

  void on_write(std::uint64_t word, std::int64_t warp, std::uint32_t site,
                bool atomic) {
    WordShadow& ws = shadow[word];
    if (ws.w_warp != -1 && ws.w_warp != warp && !(ws.w_atomic && atomic)) {
      report(ws.w_atomic || atomic ? RaceCat::kAtomicPlain
                                   : RaceCat::kPlainPlain,
             ws.w_site, ws.w_warp, site, warp, word);
    }
    for (int i = 0; i < 2; ++i) {
      if (ws.r_warp[i] != -1 && ws.r_warp[i] != warp) {
        report(atomic ? RaceCat::kAtomicRead : RaceCat::kWriteRead,
               ws.r_site[static_cast<std::size_t>(i)],
               ws.r_warp[static_cast<std::size_t>(i)], site, warp, word);
      }
    }
    ws.w_warp = warp;
    ws.w_site = site;
    ws.w_atomic = atomic;
    ws.r_warp = {-1, -1};
    ws.r_site = {0, 0};
  }
};

}  // namespace

void RacePass::run(const sim::KernelTrace& kt, const PassOptions& /*opt*/,
                   std::vector<Diagnostic>& out) const {
  RaceState state;
  for (const sim::TraceAccess& a : kt.accesses) {
    const int words = a.bytes >= 4 ? a.bytes / 4 : 1;
    for (int l = 0; l < sim::kTraceWarpSize; ++l) {
      if (((a.mask >> l) & 1u) == 0) continue;
      const std::uint64_t word0 = a.addr[static_cast<std::size_t>(l)] >> 2;
      for (int wd = 0; wd < words; ++wd) {
        const std::uint64_t word = word0 + static_cast<std::uint64_t>(wd);
        switch (a.kind) {
          case sim::AccessKind::kLoad:
            state.on_read(word, a.warp, a.site);
            break;
          case sim::AccessKind::kStore:
            state.on_write(word, a.warp, a.site, /*atomic=*/false);
            break;
          case sim::AccessKind::kAtomic:
            state.on_write(word, a.warp, a.site, /*atomic=*/true);
            break;
        }
      }
    }
  }

  for (const auto& [key, agg] : state.found) {
    const auto [cur_site, prev_site, cat] = key;
    Diagnostic d;
    d.rule = rule();
    d.severity =
        cat == RaceCat::kAtomicRead ? Severity::kWarning : Severity::kError;
    d.kernel = kt.kernel;
    d.site_id = cur_site;
    d.site2_id = prev_site;
    d.metric = static_cast<double>(agg.count);
    d.count = agg.count;
    std::ostringstream os;
    os << "cross-warp race (" << cat_name(cat) << "): warps " << agg.warp_a
       << " and " << agg.warp_b << " touch byte address " << agg.example_addr
       << " concurrently (same launch, no ordering); " << agg.count
       << " conflicting word(s)";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace tlp::analysis
