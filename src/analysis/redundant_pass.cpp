#include <cstddef>
#include <functional>
#include <map>
#include <sstream>
#include <unordered_map>

#include "analysis/passes.hpp"

namespace tlp::analysis {

namespace {

struct PairHash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p)
      const {
    return std::hash<std::uint64_t>()(p.first * 0x9e3779b97f4a7c15ull ^
                                      p.second);
  }
};

/// Last load of a word by one (warp, item) register scope.
struct LastLoad {
  std::int64_t seq = -1;   ///< global lane-op sequence of that load
  std::uint32_t site = 0;  ///< site that issued it
};

}  // namespace

void RedundantLoadPass::run(const sim::KernelTrace& kt, const PassOptions& opt,
                            std::vector<Diagnostic>& out) const {
  // word -> global sequence of the last store/atomic touching it (any warp).
  std::unordered_map<std::uint64_t, std::int64_t> store_seq;
  // (scope key, word) -> last load. Scope = (warp, item): the lifetime of
  // the registers §6's caching would hold the value in. Combining warp and
  // item into one 64-bit key is safe for the synthetic lint workloads (both
  // far below 2^32).
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, LastLoad,
                     PairHash>
      last_load;
  // (refetch site, first-load site) -> redundant fetch count.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> redundant;

  std::int64_t seq = 0;
  for (const sim::TraceAccess& a : kt.accesses) {
    const std::uint64_t scope =
        (static_cast<std::uint64_t>(a.warp) << 32) ^
        static_cast<std::uint64_t>(a.item + 1);
    const int words = a.bytes >= 4 ? a.bytes / 4 : 1;
    for (int l = 0; l < sim::kTraceWarpSize; ++l) {
      if (((a.mask >> l) & 1u) == 0) continue;
      const std::uint64_t word0 = a.addr[static_cast<std::size_t>(l)] >> 2;
      for (int wd = 0; wd < words; ++wd) {
        const std::uint64_t word = word0 + static_cast<std::uint64_t>(wd);
        ++seq;
        if (a.kind != sim::AccessKind::kLoad) {
          store_seq[word] = seq;
          continue;
        }
        LastLoad& ll = last_load[{scope, word}];
        if (ll.seq >= 0) {
          const auto it = store_seq.find(word);
          if (it == store_seq.end() || it->second < ll.seq) {
            redundant[{a.site, ll.site}] += 1;
          }
        }
        ll.seq = seq;
        ll.site = a.site;
      }
    }
  }

  for (const auto& [sites, count] : redundant) {
    if (count < opt.redundant_loads) continue;
    Diagnostic d;
    d.rule = rule();
    d.severity = Severity::kWarning;
    d.kernel = kt.kernel;
    d.site_id = sites.first;
    d.site2_id = sites.second;
    d.metric = static_cast<double>(count);
    d.count = count;
    std::ostringstream os;
    os << "redundant load: " << count << " fetches of words the same warp "
       << "already loaded in the same work item with no intervening store — "
       << "candidates for register caching (§6, Figure 7a)";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace tlp::analysis
