#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "analysis/passes.hpp"

namespace tlp::analysis {

namespace {

struct HotAddr {
  std::uint64_t addr = 0;
  std::int64_t ops = 0;
  std::uint32_t site = 0;  ///< site issuing the most ops on this address
};

}  // namespace

void AtomicContentionPass::run(const sim::KernelTrace& kt,
                               const PassOptions& opt,
                               std::vector<Diagnostic>& out) const {
  // Lane-op histogram over atomic target addresses, with per-address
  // majority-site attribution (first site wins ties — deterministic because
  // the trace order is).
  struct Counts {
    std::int64_t ops = 0;
    std::unordered_map<std::uint32_t, std::int64_t> by_site;
  };
  std::unordered_map<std::uint64_t, Counts> hist;
  std::int64_t total_ops = 0;
  for (const sim::TraceAccess& a : kt.accesses) {
    if (a.kind != sim::AccessKind::kAtomic) continue;
    for (int l = 0; l < sim::kTraceWarpSize; ++l) {
      if (((a.mask >> l) & 1u) == 0) continue;
      Counts& c = hist[a.addr[static_cast<std::size_t>(l)]];
      c.ops += 1;
      c.by_site[a.site] += 1;
      ++total_ops;
    }
  }
  if (hist.empty()) return;

  std::vector<HotAddr> hot;
  hot.reserve(hist.size());
  for (const auto& [addr, c] : hist) {
    HotAddr h{addr, c.ops, 0};
    std::int64_t best = -1;
    for (const auto& [site, n] : c.by_site) {
      if (n > best || (n == best && site < h.site)) {
        best = n;
        h.site = site;
      }
    }
    hot.push_back(h);
  }
  std::sort(hot.begin(), hot.end(), [](const HotAddr& a, const HotAddr& b) {
    return a.ops != b.ops ? a.ops > b.ops : a.addr < b.addr;
  });

  const HotAddr& worst = hot.front();
  if (worst.ops < opt.atomic_hot_ops) return;

  Diagnostic d;
  d.rule = rule();
  d.severity = Severity::kWarning;
  d.kernel = kt.kernel;
  d.site_id = worst.site;
  d.metric = static_cast<double>(worst.ops);
  d.count = total_ops;
  std::ostringstream os;
  os << "atomic contention: hottest address absorbs " << worst.ops
     << " of " << total_ops << " atomic lane-ops (serialized by the L2 "
     << "atomic units — worst-case " << worst.ops
     << "-deep replay chain); top addresses:";
  const int k = std::min<int>(opt.atomic_top_k, static_cast<int>(hot.size()));
  for (int i = 0; i < k; ++i)
    os << " [" << hot[static_cast<std::size_t>(i)].addr << "]x"
       << hot[static_cast<std::size_t>(i)].ops;
  d.message = os.str();
  out.push_back(std::move(d));
}

}  // namespace tlp::analysis
