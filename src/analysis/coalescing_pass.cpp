#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/passes.hpp"

namespace tlp::analysis {

namespace {

struct SiteAgg {
  std::int64_t requests = 0;
  std::int64_t sectors = 0;
  std::int64_t ideal_sectors = 0;
  std::int64_t useful_bytes = 0;
};

}  // namespace

void CoalescingPass::run(const sim::KernelTrace& kt, const PassOptions& opt,
                         std::vector<Diagnostic>& out) const {
  // Aggregate vector requests per static access site; unannotated accesses
  // pool under site 0 so they are still covered, just less precisely named.
  std::map<std::uint32_t, SiteAgg> by_site;
  for (const sim::TraceAccess& a : kt.accesses) {
    if (a.scalar) continue;  // a broadcast load is one sector by design
    const int lanes = a.active_lanes();
    if (lanes == 0) continue;
    SiteAgg& agg = by_site[a.site];
    agg.requests += 1;
    agg.sectors += a.sectors();
    // Perfect coalescing packs the active lanes' elements densely:
    // ceil(lanes * bytes / 32) sectors.
    agg.ideal_sectors += (static_cast<std::int64_t>(lanes) * a.bytes + 31) / 32;
    agg.useful_bytes += static_cast<std::int64_t>(lanes) * a.bytes;
  }

  for (const auto& [site, agg] : by_site) {
    if (agg.requests < opt.min_requests) continue;
    const double per_req =
        static_cast<double>(agg.sectors) / static_cast<double>(agg.requests);
    const double ideal_per_req = static_cast<double>(agg.ideal_sectors) /
                                 static_cast<double>(agg.requests);
    if (static_cast<double>(agg.sectors) <=
        opt.coalesce_ratio * static_cast<double>(agg.ideal_sectors)) {
      continue;
    }
    Diagnostic d;
    d.rule = rule();
    d.severity = Severity::kWarning;
    d.kernel = kt.kernel;
    d.site_id = site;
    d.metric = per_req;
    d.count = agg.requests;
    std::ostringstream os;
    os << "uncoalesced access: " << per_req << " sectors/request (perfectly "
       << "coalesced would be " << ideal_per_req << ") over " << agg.requests
       << " requests — each 32 B sector delivers "
       << static_cast<double>(agg.useful_bytes) /
              std::max<double>(1.0, static_cast<double>(agg.sectors))
       << " useful bytes";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

void DivergencePass::run(const sim::KernelTrace& kt, const PassOptions& opt,
                         std::vector<Diagnostic>& out) const {
  std::int64_t requests = 0;
  std::int64_t lanes = 0;
  for (const sim::TraceAccess& a : kt.accesses) {
    if (a.scalar) continue;
    requests += 1;
    lanes += a.active_lanes();
  }
  if (requests < opt.min_requests) return;
  const double activity = static_cast<double>(lanes) /
                          (static_cast<double>(requests) *
                           static_cast<double>(sim::kTraceWarpSize));
  if (activity >= opt.divergence_floor) return;

  Diagnostic d;
  d.rule = rule();
  d.severity = Severity::kWarning;
  d.kernel = kt.kernel;
  d.metric = activity;
  d.count = requests;
  std::ostringstream os;
  os << "warp divergence: vector requests average "
     << activity * sim::kTraceWarpSize << " of 32 active lanes over "
     << requests << " requests — most lanes idle through the memory system";
  d.message = os.str();
  out.push_back(std::move(d));
}

}  // namespace tlp::analysis
