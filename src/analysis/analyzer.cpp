#include "analysis/analyzer.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "systems/system.hpp"
#include "tensor/tensor.hpp"

namespace tlp::analysis {

std::vector<LintDataset> default_lint_datasets() {
  std::vector<LintDataset> ds;
  {
    Rng rng(101);
    ds.push_back({"pl2k", graph::power_law(2048, 16384, 2.2, rng), 64, 13});
  }
  {
    Rng rng(202);
    ds.push_back({"rmat1k", graph::rmat(1024, 8192, rng), 64, 17});
  }
  return ds;
}

std::vector<std::string> lint_system_names() {
  return {"tlpgnn", "dgl", "gnnadvisor", "featgraph", "push", "edge", "pull"};
}

LintReport lint_systems(const std::vector<std::string>& systems,
                        const std::vector<LintDataset>& datasets,
                        const PassOptions& opt) {
  LintReport report;
  for (const std::string& name : systems) {
    for (const LintDataset& ds : datasets) {
      auto sys = systems::make_system(name);
      Rng rng(ds.seed);
      const tensor::Tensor feat =
          tensor::Tensor::random(ds.graph.num_vertices(), ds.feature_size,
                                 rng);
      // GCN runs everywhere; GAT adds the fused/softmax pipelines on the
      // systems that support it. Together they launch every kernel family.
      for (const models::ModelKind kind :
           {models::ModelKind::kGcn, models::ModelKind::kGat}) {
        if (!sys->supports(kind, /*big_graph=*/false)) continue;
        Rng spec_rng(ds.seed + 1);
        const models::ConvSpec spec =
            models::ConvSpec::make(kind, ds.feature_size, spec_rng);
        sim::Device dev;
        sim::AccessTrace trace;
        dev.attach_trace(&trace);
        (void)sys->run(dev, ds.graph, feat, spec);
        dev.attach_trace(nullptr);

        std::vector<Diagnostic> diags = analyze_trace(trace, opt);
        for (Diagnostic& d : diags) {
          d.system = sys->name();
          d.dataset = ds.name;
        }
        report.diagnostics.insert(report.diagnostics.end(),
                                  std::make_move_iterator(diags.begin()),
                                  std::make_move_iterator(diags.end()));
        report.trace_truncated |= trace.truncated();
        report.launches += static_cast<std::int64_t>(trace.kernels().size());
        ++report.runs;
      }
    }
  }
  sort_diagnostics(report.diagnostics);
  return report;
}

}  // namespace tlp::analysis
