#include "analysis/analyzer.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "models/model.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"
#include "sim/device.hpp"
#include "systems/system.hpp"
#include "tensor/tensor.hpp"

namespace tlp::analysis {

std::vector<LintDataset> default_lint_datasets() {
  std::vector<LintDataset> ds;
  {
    Rng rng(101);
    ds.push_back({"pl2k", graph::power_law(2048, 16384, 2.2, rng), 64, 13});
  }
  {
    Rng rng(202);
    ds.push_back({"rmat1k", graph::rmat(1024, 8192, rng), 64, 17});
  }
  return ds;
}

std::vector<std::string> lint_system_names() {
  return {"tlpgnn", "dgl", "gnnadvisor", "featgraph", "push", "edge", "pull"};
}

sim::GpuSpec lint_gpu_spec() { return sim::GpuSpec::v100_scaled(16); }

LintReport lint_systems(const std::vector<std::string>& systems,
                        const std::vector<LintDataset>& datasets,
                        const PassOptions& opt) {
  LintReport report;
  for (const std::string& name : systems) {
    for (const LintDataset& ds : datasets) {
      auto sys = systems::make_system(name);
      Rng rng(ds.seed);
      const tensor::Tensor feat =
          tensor::Tensor::random(ds.graph.num_vertices(), ds.feature_size,
                                 rng);
      // GCN runs everywhere; GAT adds the fused/softmax pipelines on the
      // systems that support it. Together they launch every kernel family.
      for (const models::ModelKind kind :
           {models::ModelKind::kGcn, models::ModelKind::kGat}) {
        if (!sys->supports(kind, /*big_graph=*/false)) continue;
        Rng spec_rng(ds.seed + 1);
        const models::ConvSpec spec =
            models::ConvSpec::make(kind, ds.feature_size, spec_rng);
        sim::Device dev(opt.gpu);
        sim::AccessTrace trace(opt.trace_max_bytes);
        dev.attach_trace(&trace);
        (void)sys->run(dev, ds.graph, feat, spec);
        dev.attach_trace(nullptr);

        std::vector<Diagnostic> diags = analyze_trace(trace, opt);
        for (Diagnostic& d : diags) {
          d.system = sys->name();
          d.dataset = ds.name;
        }
        report.diagnostics.insert(report.diagnostics.end(),
                                  std::make_move_iterator(diags.begin()),
                                  std::make_move_iterator(diags.end()));
        report.trace_truncated |= trace.truncated();
        report.launches += static_cast<std::int64_t>(trace.kernels().size());
        ++report.runs;
      }
    }
  }
  sort_diagnostics(report.diagnostics);
  return report;
}

LintReport lint_serve(const PassOptions& opt) {
  // Small deterministic session: enough traffic to batch, one OOM storm so
  // the retry + partitioned-fallback ladder executes under trace (otherwise
  // the fallback gather path would ship unlinted), then calm again.
  Rng graph_rng(303);
  const graph::Csr g = graph::power_law(1024, 8192, 2.2, graph_rng);
  Rng feat_rng(304);
  const tensor::Tensor feat =
      tensor::Tensor::random(g.num_vertices(), 32, feat_rng);
  Rng spec_rng(305);
  const models::ConvSpec spec =
      models::ConvSpec::make(models::ModelKind::kGcn, 32, spec_rng);

  serve::TrafficOptions topts;
  topts.num_requests = 24;
  topts.arrival = serve::ArrivalProcess::kPoisson;
  topts.mean_interarrival_ms = 1.0;
  topts.zipf_alpha = 0.8;
  topts.hops = 1;
  topts.max_ego_vertices = 96;
  topts.seed = 11;
  const std::vector<serve::Request> traffic =
      serve::generate_traffic(g, feat, topts);

  serve::ServerOptions sopts;
  sopts.engine.gpu = opt.gpu;
  {
    serve::StormEvent storm;
    storm.at_request = 8;
    storm.plan.oom_every = 60;
    storm.plan.oom_burst_len = 4;
    sopts.storms.push_back(storm);
    serve::StormEvent calm;
    calm.at_request = 16;  // empty plan ends the storm
    sopts.storms.push_back(calm);
  }

  // The pre-sampling feature cache serves this session too, with its own
  // trace: the cache device's arena offsets overlap the engine's, so the
  // two traces must stay separate for the passes' interval bookkeeping. Its
  // trace is attached at construction so the pinned region's allocation
  // (TLP_SITE "serve_feature_cache") is tracked — a regression that stops
  // gathering from the region shows up as a TLP-LIFE-007 dead buffer.
  sim::AccessTrace cache_trace(opt.trace_max_bytes);
  serve::FeatureCacheOptions copts;
  copts.cache_ratio = 0.10;
  serve::FeatureCache cache(g, feat, topts, copts, &cache_trace);

  serve::Server server(sopts, &cache);
  sim::AccessTrace trace(opt.trace_max_bytes);
  server.engine().device().attach_trace(&trace);
  (void)server.run(traffic, spec);
  server.engine().device().attach_trace(nullptr);
  cache.device().attach_trace(nullptr);

  LintReport report;
  std::vector<Diagnostic> diags = analyze_trace(trace, opt);
  std::vector<Diagnostic> cache_diags = analyze_trace(cache_trace, opt);
  diags.insert(diags.end(), std::make_move_iterator(cache_diags.begin()),
               std::make_move_iterator(cache_diags.end()));
  for (Diagnostic& d : diags) {
    d.system = "serve";
    d.dataset = "pl1k-storm";
  }
  report.diagnostics = std::move(diags);
  report.trace_truncated = trace.truncated() || cache_trace.truncated();
  report.launches = static_cast<std::int64_t>(trace.kernels().size());
  report.runs = 1;
  sort_diagnostics(report.diagnostics);
  return report;
}

}  // namespace tlp::analysis
