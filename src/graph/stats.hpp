// Degree-distribution analysis: drives the hybrid workload heuristic and the
// dataset-replica calibration tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tlp::graph {

struct DegreeStats {
  EdgeOffset min = 0;
  EdgeOffset max = 0;
  double avg = 0.0;
  double median = 0.0;
  double p99 = 0.0;
  double cv = 0.0;    ///< coefficient of variation — workload imbalance proxy
  double gini = 0.0;  ///< degree-skew measure in [0,1)
};

DegreeStats degree_stats(const Csr& g);

/// Order-sensitive 64-bit FNV-1a digest of the graph structure (vertex count,
/// indptr, indices). Used by the golden-hash seed-stability tests and by
/// tlpfuzz to prove generators are bit-stable across runs and platforms.
std::uint64_t fingerprint(const Csr& g);

/// Histogram of log2(degree) buckets: h[i] counts vertices whose degree is in
/// [2^i, 2^(i+1)); h[0] also includes degree-0 and degree-1 vertices.
std::vector<std::int64_t> degree_histogram(const Csr& g);

}  // namespace tlp::graph
