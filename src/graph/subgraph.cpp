#include "graph/subgraph.hpp"

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace tlp::graph {

LocalGraph extract_partition(const Csr& g, std::span<const int> part, int p) {
  TLP_CHECK(part.size() == static_cast<std::size_t>(g.num_vertices()));
  LocalGraph out;
  std::vector<VertexId> to_local(static_cast<std::size_t>(g.num_vertices()), -1);

  // Owned vertices first, preserving global order.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] == p) {
      to_local[static_cast<std::size_t>(v)] =
          static_cast<VertexId>(out.to_global.size());
      out.to_global.push_back(v);
    }
  }
  out.num_owned = static_cast<VertexId>(out.to_global.size());

  // Halo: sources of owned vertices' in-edges that live elsewhere.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] != p) continue;
    for (const VertexId u : g.neighbors(v)) {
      if (to_local[static_cast<std::size_t>(u)] < 0) {
        to_local[static_cast<std::size_t>(u)] =
            static_cast<VertexId>(out.to_global.size());
        out.to_global.push_back(u);
      }
    }
  }

  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] != p) continue;
    const VertexId lv = to_local[static_cast<std::size_t>(v)];
    for (const VertexId u : g.neighbors(v)) {
      edges.push_back({to_local[static_cast<std::size_t>(u)], lv});
    }
  }
  out.csr = build_csr(static_cast<VertexId>(out.to_global.size()),
                      std::move(edges), {.dedup = false});
  return out;
}

LocalGraph induced_subgraph(const Csr& g, const std::vector<bool>& keep) {
  TLP_CHECK(keep.size() == static_cast<std::size_t>(g.num_vertices()));
  LocalGraph out;
  std::vector<VertexId> to_local(static_cast<std::size_t>(g.num_vertices()), -1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (keep[static_cast<std::size_t>(v)]) {
      to_local[static_cast<std::size_t>(v)] =
          static_cast<VertexId>(out.to_global.size());
      out.to_global.push_back(v);
    }
  }
  out.num_owned = static_cast<VertexId>(out.to_global.size());
  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!keep[static_cast<std::size_t>(v)]) continue;
    for (const VertexId u : g.neighbors(v)) {
      if (keep[static_cast<std::size_t>(u)]) {
        edges.push_back({to_local[static_cast<std::size_t>(u)],
                         to_local[static_cast<std::size_t>(v)]});
      }
    }
  }
  out.csr = build_csr(static_cast<VertexId>(out.to_global.size()),
                      std::move(edges), {.dedup = false});
  return out;
}

}  // namespace tlp::graph
