#include "graph/partition.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/reorder.hpp"

namespace tlp::graph {

PartitionResult partition_greedy(const Csr& g, int k) {
  TLP_CHECK(k >= 1);
  const VertexId n = g.num_vertices();
  PartitionResult out;
  out.part.assign(static_cast<std::size_t>(n), -1);
  out.part_edges.assign(static_cast<std::size_t>(k), 0);

  const Permutation order = degree_desc_order(g);
  std::vector<EdgeOffset> affinity(static_cast<std::size_t>(k));
  for (const VertexId v : order) {
    std::fill(affinity.begin(), affinity.end(), 0);
    for (const VertexId u : g.neighbors(v)) {
      const int p = out.part[static_cast<std::size_t>(u)];
      if (p >= 0) affinity[static_cast<std::size_t>(p)]++;
    }
    // Score: locality bonus minus load penalty, in edge units.
    int best = 0;
    double best_score = -1e300;
    const double avg_load =
        static_cast<double>(g.num_edges()) / static_cast<double>(k);
    for (int p = 0; p < k; ++p) {
      const double score =
          static_cast<double>(affinity[static_cast<std::size_t>(p)]) -
          static_cast<double>(out.part_edges[static_cast<std::size_t>(p)]) /
              std::max(1.0, avg_load) * static_cast<double>(g.degree(v));
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    out.part[static_cast<std::size_t>(v)] = best;
    out.part_edges[static_cast<std::size_t>(best)] += g.degree(v);
  }

  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (out.part[static_cast<std::size_t>(u)] !=
          out.part[static_cast<std::size_t>(v)])
        out.cut_edges++;
    }
  }
  return out;
}

double edge_balance(const PartitionResult& r) {
  if (r.part_edges.empty()) return 1.0;
  EdgeOffset max_e = 0, total = 0;
  for (const EdgeOffset e : r.part_edges) {
    max_e = std::max(max_e, e);
    total += e;
  }
  if (total == 0) return 1.0;
  const double meanv =
      static_cast<double>(total) / static_cast<double>(r.part_edges.size());
  return static_cast<double>(max_e) / meanv;
}

}  // namespace tlp::graph
