#include "graph/csr.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/format.hpp"

namespace tlp::graph {

Csr::Csr(std::vector<EdgeOffset> indptr, std::vector<VertexId> indices)
    : indptr_(std::move(indptr)), indices_(std::move(indices)) {
  validate();
}

EdgeOffset Csr::max_degree() const {
  EdgeOffset best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

Csr Csr::reversed() const {
  const VertexId n = num_vertices();
  std::vector<EdgeOffset> rptr(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId u : indices_) rptr[static_cast<std::size_t>(u) + 1]++;
  for (std::size_t i = 1; i < rptr.size(); ++i) rptr[i] += rptr[i - 1];
  std::vector<VertexId> ridx(indices_.size());
  std::vector<EdgeOffset> cursor(rptr.begin(), rptr.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : neighbors(v)) {
      ridx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    }
  }
  Csr out;
  out.indptr_ = std::move(rptr);
  out.indices_ = std::move(ridx);
  // Row contents are appended in increasing source order, so rows stay sorted.
  return out;
}

bool Csr::rows_sorted() const {
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto ns = neighbors(v);
    if (!std::is_sorted(ns.begin(), ns.end())) return false;
  }
  return true;
}

void Csr::validate() const {
  TLP_CHECK_MSG(!indptr_.empty(), "CSR indptr must have at least one entry");
  TLP_CHECK(indptr_.front() == 0);
  for (std::size_t i = 1; i < indptr_.size(); ++i)
    TLP_CHECK_MSG(indptr_[i] >= indptr_[i - 1], "indptr not monotone at " << i);
  TLP_CHECK(indptr_.back() == static_cast<EdgeOffset>(indices_.size()));
  const auto n = static_cast<VertexId>(indptr_.size() - 1);
  for (const VertexId u : indices_)
    TLP_CHECK_MSG(u >= 0 && u < n, "neighbor id " << u << " out of range");
}

std::string Csr::summary() const {
  std::ostringstream os;
  os << "|V|=" << human_count(static_cast<double>(num_vertices()))
     << ", |E|=" << human_count(static_cast<double>(num_edges()))
     << ", avg deg=" << fixed(avg_degree(), 1);
  return os.str();
}

}  // namespace tlp::graph
