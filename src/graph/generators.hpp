// Synthetic graph generators.
//
// The paper evaluates on 11 real datasets; this repo replicates each with a
// generator calibrated to its vertex count, edge count, and degree skew (see
// graph/datasets.hpp and DESIGN.md §1). Generators here are also used
// directly by tests and microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace tlp::graph {

/// G(n, m): m distinct uniform random directed edges (no self loops).
Csr erdos_renyi(VertexId n, EdgeOffset m, Rng& rng);

/// Chung–Lu model with a power-law expected-degree sequence of exponent
/// `alpha` (typical social graphs: 2.0–2.5). Produces ~m edges total.
/// `max_degree` caps any vertex's in-degree (0 = uncapped) — real GNN
/// benchmark graphs (e.g. the GraphSAGE Reddit crawl) have bounded hubs,
/// roughly tens of times the average degree.
Csr power_law(VertexId n, EdgeOffset m, double alpha, Rng& rng,
              EdgeOffset max_degree = 0);

/// Recursive-matrix (R-MAT) generator; n is rounded up to a power of two.
/// Default (a,b,c) = (0.57, 0.19, 0.19) matches Graph500 skew.
Csr rmat(VertexId n, EdgeOffset m, Rng& rng, double a = 0.57, double b = 0.19,
         double c = 0.19);

/// k-regular ring lattice: v connects to its k nearest predecessors.
Csr regular_ring(VertexId n, int k);

/// Star: all of 1..n-1 point at vertex 0 (maximum imbalance fixture).
Csr star(VertexId n);

/// Directed path 0 -> 1 -> ... -> n-1.
Csr path(VertexId n);

/// 2-D grid with 4-neighborhood, rows*cols vertices, symmetric.
Csr grid2d(VertexId rows, VertexId cols);

/// Complete directed graph on n vertices (no self loops). Test-sized only.
Csr complete(VertexId n);

}  // namespace tlp::graph
