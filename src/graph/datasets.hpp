// Registry of the 11 graph benchmarks from Table 4 of the paper, replicated
// with calibrated synthetic generators (see DESIGN.md §1 for the
// substitution rationale). Each replica preserves the dataset's average
// degree and degree skew; by default the vertex count is scaled down so the
// whole evaluation fits a single-core simulator run, and `full = true`
// reproduces paper-scale vertex/edge counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"

namespace tlp::graph {

struct DatasetSpec {
  const char* name;   ///< full dataset name, e.g. "Reddit"
  const char* abbr;   ///< paper abbreviation, e.g. "RD"
  std::int64_t vertices;  ///< paper vertex count
  std::int64_t edges;     ///< paper edge count
  double alpha;  ///< power-law exponent of the replica's degree skew
  bool big4;     ///< one of CL/ON/RD/OT (used by Figures 11–12)
  /// GNNAdvisor crashed on the four largest graphs in the paper ("illegal
  /// CUDA memory access"); the replica system mirrors that support matrix.
  bool advisor_supported;

  [[nodiscard]] double avg_degree() const {
    return static_cast<double>(edges) / static_cast<double>(vertices);
  }
};

/// All 11 datasets in Table 4 order (sorted by edge count).
std::span<const DatasetSpec> all_datasets();

/// Lookup by abbreviation ("CS", "RD", ...). Throws CheckError if unknown.
const DatasetSpec& dataset_by_abbr(const std::string& abbr);

struct ReplicaOptions {
  /// Cap on replica edge count; vertex count shrinks proportionally so the
  /// average degree is preserved. Ignored when full == true.
  std::int64_t max_edges = 1'000'000;
  /// Floor on the replica's vertex count. When it binds, the replica trades
  /// density for population — needed by strong-scaling experiments
  /// (Figure 11), which require many independent vertices per warp.
  std::int64_t min_vertices = 0;
  bool full = false;
  std::uint64_t seed = 42;
};

/// Builds the synthetic replica graph for a dataset.
Csr make_dataset(const DatasetSpec& spec, const ReplicaOptions& opts = {});

}  // namespace tlp::graph
