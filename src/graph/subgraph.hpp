// Partition-local subgraph extraction — the data layout a multi-GPU
// deployment (the paper's §1 future work) would ship to each device: owned
// vertices first, then the halo vertices whose features must be received
// from other devices before the convolution.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace tlp::graph {

struct LocalGraph {
  /// Local CSR: rows [0, num_owned) are the owned vertices' in-edges with
  /// neighbor ids in local space; halo vertices have empty rows.
  Csr csr;
  /// local id -> global id, size = csr.num_vertices().
  std::vector<VertexId> to_global;
  /// Owned vertices come first in the local id space.
  VertexId num_owned = 0;

  [[nodiscard]] VertexId num_halo() const {
    return csr.num_vertices() - num_owned;
  }
};

/// Extracts partition `p`'s local graph from a global pull-CSR and a vertex
/// assignment (part[v] in [0, k)).
LocalGraph extract_partition(const Csr& g, std::span<const int> part, int p);

/// Induced subgraph over `keep`: kept vertices are relabeled densely in id
/// order; edges with a dropped endpoint disappear. Returns the local graph
/// and the local->global map.
LocalGraph induced_subgraph(const Csr& g, const std::vector<bool>& keep);

}  // namespace tlp::graph
