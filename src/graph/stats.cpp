#include "graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/stats.hpp"

namespace tlp::graph {

DegreeStats degree_stats(const Csr& g) {
  DegreeStats out;
  const VertexId n = g.num_vertices();
  if (n == 0) return out;
  std::vector<double> degs(static_cast<std::size_t>(n));
  out.min = g.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const EdgeOffset d = g.degree(v);
    degs[static_cast<std::size_t>(v)] = static_cast<double>(d);
    out.min = std::min(out.min, d);
    out.max = std::max(out.max, d);
  }
  out.avg = mean(degs);
  out.cv = coeff_variation(degs);
  out.median = percentile(degs, 0.5);
  out.p99 = percentile(degs, 0.99);
  out.gini = gini(std::move(degs));
  return out;
}

std::uint64_t fingerprint(const Csr& g) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(g.num_vertices()));
  for (const EdgeOffset o : g.indptr()) mix(static_cast<std::uint64_t>(o));
  for (const VertexId u : g.indices()) mix(static_cast<std::uint64_t>(u));
  return h;
}

std::vector<std::int64_t> degree_histogram(const Csr& g) {
  std::vector<std::int64_t> hist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto d = static_cast<std::uint64_t>(g.degree(v));
    const int bucket = d <= 1 ? 0 : 64 - std::countl_zero(d) - 1;
    if (static_cast<std::size_t>(bucket) >= hist.size())
      hist.resize(static_cast<std::size_t>(bucket) + 1, 0);
    hist[static_cast<std::size_t>(bucket)]++;
  }
  return hist;
}

}  // namespace tlp::graph
