#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace tlp::graph {

namespace {

// Duplicate edges are kept (multigraph semantics): replicas must preserve the
// paper datasets' *edge counts*, which drive traversal work and traffic, and a
// repeated neighbor simply contributes twice to the aggregation — every kernel
// strategy handles that identically.
constexpr BuildOptions kGenBuild{.dedup = false, .drop_self_loops = true};

}  // namespace

Csr erdos_renyi(VertexId n, EdgeOffset m, Rng& rng) {
  TLP_CHECK(n >= 2 && m >= 0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<EdgeOffset>(edges.size()) < m) {
    const auto s = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto d = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (s != d) edges.push_back({s, d});
  }
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr power_law(VertexId n, EdgeOffset m, double alpha, Rng& rng,
              EdgeOffset max_degree) {
  TLP_CHECK(n >= 2 && m >= 0 && alpha > 1.0);
  // Chung–Lu: endpoint i drawn with probability proportional to
  // w_i = (i+1)^(-gamma), gamma = 1/(alpha-1). Cumulative weights + binary
  // search keeps the generator exact for any gamma.
  const double gamma = 1.0 / (alpha - 1.0);
  std::vector<double> cum(static_cast<std::size_t>(n));
  double total = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -gamma);
    cum[static_cast<std::size_t>(i)] = total;
  }
  auto draw = [&]() -> VertexId {
    const double u = rng.next_double() * total;
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    return static_cast<VertexId>(std::min<std::ptrdiff_t>(
        it - cum.begin(), static_cast<std::ptrdiff_t>(n) - 1));
  };
  // Relabel through a random permutation: Chung–Lu ranks are degree-sorted,
  // and real datasets do not store vertices in degree order — without the
  // shuffle every hub would sit in one contiguous id range, which is
  // adversarial for chunked workload assignment.
  std::vector<VertexId> label(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) label[static_cast<std::size_t>(i)] = i;
  for (VertexId i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(label[static_cast<std::size_t>(i)], label[j]);
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  std::vector<EdgeOffset> indeg(static_cast<std::size_t>(n), 0);
  while (static_cast<EdgeOffset>(edges.size()) < m) {
    // Skewed destinations model hub vertices; uniform sources keep the source
    // side well-mixed like real social/citation graphs. Saturated hubs are
    // redirected to a uniform destination, truncating the tail the way real
    // crawled/subsampled benchmark graphs do.
    VertexId d = label[static_cast<std::size_t>(draw())];
    if (max_degree > 0 && indeg[static_cast<std::size_t>(d)] >= max_degree) {
      d = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (max_degree > 0 && indeg[static_cast<std::size_t>(d)] >= max_degree)
        continue;
    }
    const auto s = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (s != d) {
      edges.push_back({s, d});
      indeg[static_cast<std::size_t>(d)]++;
    }
  }
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr rmat(VertexId n, EdgeOffset m, Rng& rng, double a, double b, double c) {
  TLP_CHECK(n >= 2 && m >= 0);
  TLP_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  int scale = 0;
  while ((VertexId{1} << scale) < n) ++scale;
  const VertexId size = VertexId{1} << scale;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<EdgeOffset>(edges.size()) < m) {
    VertexId src = 0, dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.next_double();
      if (u < a) {
        // top-left quadrant: neither bit set
      } else if (u < a + b) {
        dst |= VertexId{1} << bit;
      } else if (u < a + b + c) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    if (src != dst && src < size && dst < size) edges.push_back({src, dst});
  }
  return build_csr(size, std::move(edges), kGenBuild);
}

Csr regular_ring(VertexId n, int k) {
  TLP_CHECK(n >= 2 && k >= 1 && k < n);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (VertexId v = 0; v < n; ++v) {
    for (int j = 1; j <= k; ++j) {
      const VertexId u = static_cast<VertexId>((v - j + n) % n);
      edges.push_back({u, v});
    }
  }
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr star(VertexId n) {
  TLP_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (VertexId v = 1; v < n; ++v) edges.push_back({v, 0});
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr path(VertexId n) {
  TLP_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, static_cast<VertexId>(v + 1)});
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr grid2d(VertexId rows, VertexId cols) {
  TLP_CHECK(rows >= 1 && cols >= 1);
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        edges.push_back({id(r, c), id(r + 1, c)});
        edges.push_back({id(r + 1, c), id(r, c)});
      }
      if (c + 1 < cols) {
        edges.push_back({id(r, c), id(r, c + 1)});
        edges.push_back({id(r, c + 1), id(r, c)});
      }
    }
  }
  return build_csr(n, std::move(edges), kGenBuild);
}

Csr complete(VertexId n) {
  TLP_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1));
  for (VertexId s = 0; s < n; ++s)
    for (VertexId d = 0; d < n; ++d)
      if (s != d) edges.push_back({s, d});
  return build_csr(n, std::move(edges), kGenBuild);
}

}  // namespace tlp::graph
