// Vertex reordering — the preprocessing step GNNAdvisor-style systems rely on
// (and whose cost TLPGNN avoids, §1 of the paper). The replica of GNNAdvisor
// runs degree-based reordering before building its neighbor groups; the
// benchmark harness reports the preprocessing time separately, mirroring the
// paper's discussion of "heavy pre-processing".
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace tlp::graph {

/// perm[new_id] == old_id. Applying a permutation relabels every vertex.
using Permutation = std::vector<VertexId>;

/// Identity permutation of size n.
Permutation identity_order(VertexId n);

/// Vertices sorted by descending in-degree (hubs first). Stable.
Permutation degree_desc_order(const Csr& g);

/// BFS order from vertex 0 over the undirected closure; unreachable vertices
/// are appended in id order. Approximates locality-improving reorderings like
/// Rabbit/RCM used by GNN preprocessing pipelines.
Permutation bfs_order(const Csr& g);

/// Relabels the graph: new vertex i is old vertex perm[i]; neighbor ids are
/// rewritten and rows re-sorted.
Csr apply_permutation(const Csr& g, const Permutation& perm);

/// True iff perm is a bijection on [0, n).
bool is_permutation(const Permutation& perm, VertexId n);

}  // namespace tlp::graph
