#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace tlp::graph {

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TLP_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  TLP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  return out;
}

constexpr std::uint64_t kBinaryMagic = 0x54'4c'50'43'53'52'31'00ULL;  // "TLPCSR1"

/// Largest vertex id any text loader accepts (VertexId is 32-bit signed; ids
/// at or above this would silently wrap when narrowed).
constexpr long long kMaxVertexId =
    static_cast<long long>(std::numeric_limits<VertexId>::max());

}  // namespace

Csr read_edge_list(std::istream& in, VertexId num_vertices) {
  std::vector<Edge> edges;
  VertexId max_id = -1;
  std::string line;
  long long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long s = 0, d = 0;
    TLP_CHECK_MSG(static_cast<bool>(ls >> s >> d),
                  "malformed edge-list line " << lineno << ": '" << line
                                              << "'");
    TLP_CHECK_MSG(s >= 0 && d >= 0,
                  "negative vertex id on edge-list line " << lineno << ": '"
                                                          << line << "'");
    TLP_CHECK_MSG(s <= kMaxVertexId && d <= kMaxVertexId,
                  "vertex id overflows 32-bit id space on edge-list line "
                      << lineno << ": '" << line << "'");
    edges.push_back({static_cast<VertexId>(s), static_cast<VertexId>(d)});
    max_id = std::max({max_id, static_cast<VertexId>(s), static_cast<VertexId>(d)});
  }
  const VertexId n = num_vertices > 0 ? num_vertices : max_id + 1;
  TLP_CHECK_MSG(n > max_id, "num_vertices " << n
                                            << " too small for max edge id "
                                            << max_id);
  return build_csr(std::max<VertexId>(n, 1), std::move(edges),
                   {.dedup = false});
}

Csr read_edge_list_file(const std::string& path, VertexId num_vertices) {
  auto in = open_in(path);
  return read_edge_list(in, num_vertices);
}

void write_edge_list(std::ostream& out, const Csr& g) {
  out << "# tlpgnn edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) out << u << ' ' << v << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Csr& g) {
  auto out = open_out(path);
  write_edge_list(out, g);
}

Csr read_matrix_market(std::istream& in) {
  std::string line;
  long long lineno = 0;
  TLP_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                "empty MatrixMarket stream");
  ++lineno;
  TLP_CHECK_MSG(line.rfind("%%MatrixMarket", 0) == 0,
                "missing MatrixMarket banner on line 1: '" << line << "'");
  const bool symmetric = line.find("symmetric") != std::string::npos;
  // Skip remaining comments.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hs(line);
  long long rows = 0, cols = 0, nnz = 0;
  TLP_CHECK_MSG(static_cast<bool>(hs >> rows >> cols >> nnz),
                "malformed MatrixMarket size line " << lineno << ": '" << line
                                                    << "'");
  TLP_CHECK_MSG(rows >= 0 && cols >= 0 && nnz >= 0,
                "negative MatrixMarket dimensions on line "
                    << lineno << ": '" << line << "'");
  TLP_CHECK_MSG(rows == cols, "adjacency matrix must be square, got "
                                  << rows << " x " << cols << " on line "
                                  << lineno);
  TLP_CHECK_MSG(rows <= kMaxVertexId,
                "MatrixMarket dimension " << rows
                                          << " overflows 32-bit id space");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (long long i = 0; i < nnz; ++i) {
    TLP_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                  "truncated MatrixMarket body: expected " << nnz
                      << " entries, stream ended after " << i);
    ++lineno;
    std::istringstream ls(line);
    long long r = 0, c = 0;
    TLP_CHECK_MSG(static_cast<bool>(ls >> r >> c),
                  "malformed MatrixMarket entry on line " << lineno << ": '"
                                                          << line << "'");
    TLP_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                  "MatrixMarket index (" << r << ", " << c
                      << ") out of range for " << rows << " x " << cols
                      << " matrix on line " << lineno);
    // Row r has an entry in column c: edge c-1 -> r-1 (A[r][c] != 0 means
    // r aggregates from c in the usual adjacency-times-features reading).
    edges.push_back({static_cast<VertexId>(c - 1), static_cast<VertexId>(r - 1)});
    if (symmetric && r != c)
      edges.push_back({static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1)});
  }
  return build_csr(static_cast<VertexId>(rows), std::move(edges),
                   {.dedup = false});
}

Csr read_matrix_market_file(const std::string& path) {
  auto in = open_in(path);
  return read_matrix_market(in);
}

void write_binary_csr(std::ostream& out, const Csr& g) {
  const std::uint64_t magic = kBinaryMagic;
  const std::int64_t n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.indptr().data()),
            static_cast<std::streamsize>(g.indptr().size_bytes()));
  out.write(reinterpret_cast<const char*>(g.indices().data()),
            static_cast<std::streamsize>(g.indices().size_bytes()));
  TLP_CHECK_MSG(out.good(), "binary CSR write failed");
}

void write_binary_csr_file(const std::string& path, const Csr& g) {
  auto out = open_out(path);
  write_binary_csr(out, g);
}

Csr read_binary_csr(std::istream& in) {
  std::uint64_t magic = 0;
  std::int64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  TLP_CHECK_MSG(in.gcount() == sizeof(magic),
                "truncated binary CSR stream: header shorter than magic");
  TLP_CHECK_MSG(magic == kBinaryMagic,
                "not a tlpgnn binary CSR stream (bad magic)");
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  TLP_CHECK_MSG(in.gcount() == sizeof(n),
                "truncated binary CSR header: missing vertex count");
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  TLP_CHECK_MSG(in.gcount() == sizeof(m),
                "truncated binary CSR header: missing edge count");
  TLP_CHECK_MSG(n >= 0 && m >= 0, "corrupt binary CSR header: negative counts ("
                                      << n << " vertices, " << m << " edges)");
  TLP_CHECK_MSG(n <= kMaxVertexId,
                "binary CSR vertex count " << n
                                           << " overflows 32-bit id space");
  std::vector<EdgeOffset> indptr(static_cast<std::size_t>(n) + 1);
  std::vector<VertexId> indices(static_cast<std::size_t>(m));
  const auto indptr_bytes =
      static_cast<std::streamsize>(indptr.size() * sizeof(EdgeOffset));
  in.read(reinterpret_cast<char*>(indptr.data()), indptr_bytes);
  TLP_CHECK_MSG(in.gcount() == indptr_bytes,
                "truncated binary CSR body: got " << in.gcount()
                    << " of " << indptr_bytes << " indptr bytes");
  const auto indices_bytes =
      static_cast<std::streamsize>(indices.size() * sizeof(VertexId));
  in.read(reinterpret_cast<char*>(indices.data()), indices_bytes);
  TLP_CHECK_MSG(in.gcount() == indices_bytes,
                "truncated binary CSR body: got " << in.gcount()
                    << " of " << indices_bytes << " indices bytes");
  // Csr's constructor validates monotone indptr and in-range indices, turning
  // in-range-but-corrupt payloads into descriptive CheckErrors as well.
  return Csr(std::move(indptr), std::move(indices));
}

Csr read_binary_csr_file(const std::string& path) {
  auto in = open_in(path);
  return read_binary_csr(in);
}

}  // namespace tlp::graph
