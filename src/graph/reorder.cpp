#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace tlp::graph {

Permutation identity_order(VertexId n) {
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), VertexId{0});
  return perm;
}

Permutation degree_desc_order(const Csr& g) {
  Permutation perm = identity_order(g.num_vertices());
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  return perm;
}

Permutation bfs_order(const Csr& g) {
  const VertexId n = g.num_vertices();
  const Csr rev = g.reversed();
  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<VertexId> frontier;
  for (VertexId root = 0; root < n; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    seen[static_cast<std::size_t>(root)] = true;
    frontier.push(root);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      order.push_back(v);
      auto visit = [&](VertexId u) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = true;
          frontier.push(u);
        }
      };
      for (const VertexId u : g.neighbors(v)) visit(u);
      for (const VertexId u : rev.neighbors(v)) visit(u);
    }
  }
  return order;
}

Csr apply_permutation(const Csr& g, const Permutation& perm) {
  const VertexId n = g.num_vertices();
  TLP_CHECK(is_permutation(perm, n));
  // inverse[old_id] == new_id
  std::vector<VertexId> inverse(static_cast<std::size_t>(n));
  for (VertexId newid = 0; newid < n; ++newid)
    inverse[static_cast<std::size_t>(perm[static_cast<std::size_t>(newid)])] = newid;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (VertexId v = 0; v < n; ++v) {
    const VertexId nv = inverse[static_cast<std::size_t>(v)];
    for (const VertexId u : g.neighbors(v))
      edges.push_back({inverse[static_cast<std::size_t>(u)], nv});
  }
  return build_csr(n, std::move(edges), {.dedup = false});
}

bool is_permutation(const Permutation& perm, VertexId n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const VertexId v : perm) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace tlp::graph
