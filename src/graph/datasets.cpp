#include "graph/datasets.hpp"

#include <algorithm>
#include <array>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace tlp::graph {

namespace {

// Skew exponents: citation networks are moderately skewed (~2.4); social and
// co-purchase graphs have heavy hubs (~2.05–2.2); molecular/chemical graphs
// (DD, Ovcar-8h) are near-regular, modelled with a steep exponent.
constexpr std::array<DatasetSpec, 11> kDatasets{{
    {"Citeseer", "CS", 3'300, 9'200, 2.6, false, true},
    {"Cora", "CR", 2'700, 10'500, 2.6, false, true},
    {"Pubmed", "PD", 19'700, 88'600, 2.4, false, true},
    {"Ogbn-arxiv", "OA", 169'000, 1'100'000, 2.3, false, true},
    {"PPI", "PI", 56'000, 1'600'000, 2.2, false, true},
    {"DD", "DD", 334'000, 1'600'000, 3.5, false, true},
    {"Ovcar-8h", "OH", 1'800'000, 3'900'000, 3.5, false, true},
    {"Collab", "CL", 372'000, 24'900'000, 2.2, true, false},
    {"Ogbn-protein", "ON", 132'000, 79'000'000, 2.1, true, false},
    {"Reddit", "RD", 232'000, 114'000'000, 2.05, true, false},
    {"Ogbn-product", "OT", 2'400'000, 123'700'000, 2.2, true, false},
}};

}  // namespace

std::span<const DatasetSpec> all_datasets() { return kDatasets; }

const DatasetSpec& dataset_by_abbr(const std::string& abbr) {
  for (const auto& d : kDatasets) {
    if (abbr == d.abbr) return d;
  }
  TLP_CHECK_MSG(false, "unknown dataset abbreviation '" << abbr << "'");
  __builtin_unreachable();
}

Csr make_dataset(const DatasetSpec& spec, const ReplicaOptions& opts) {
  std::int64_t v = spec.vertices;
  std::int64_t e = spec.edges;
  if (!opts.full && e > opts.max_edges) {
    const double ratio = static_cast<double>(opts.max_edges) /
                         static_cast<double>(e);
    v = std::max<std::int64_t>(64, static_cast<std::int64_t>(
                                       static_cast<double>(v) * ratio));
    e = opts.max_edges;
  }
  if (!opts.full && opts.min_vertices > 0) {
    v = std::min(spec.vertices, std::max(v, opts.min_vertices));
  }
  // Seed is mixed with the dataset name so each replica is an independent
  // stream but still reproducible from a single experiment seed.
  std::uint64_t mix = opts.seed;
  for (const char* p = spec.abbr; *p; ++p) mix = mix * 131 + static_cast<unsigned char>(*p);
  Rng rng(mix);
  // Real benchmark graphs have truncated tails (crawled or subsampled);
  // cap hubs at ~50x the average degree so no single vertex dominates.
  const auto avg = std::max<std::int64_t>(1, e / std::max<std::int64_t>(1, v));
  const EdgeOffset cap = 50 * avg;
  return power_law(static_cast<VertexId>(v), e, spec.alpha, rng, cap);
}

}  // namespace tlp::graph
