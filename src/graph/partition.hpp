// Greedy edge-balanced vertex partitioning — the METIS-style substrate the
// paper names as the enabler for its future-work multi-GPU deployment (§1,
// "Limitations"). The examples use it to show how a TLPGNN workload would be
// sharded across devices.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace tlp::graph {

struct PartitionResult {
  /// part[v] in [0, k) for every vertex.
  std::vector<int> part;
  /// Number of edges whose endpoints land in different parts.
  EdgeOffset cut_edges = 0;
  /// Total in-edges per part (the balance objective).
  std::vector<EdgeOffset> part_edges;
};

/// Assigns vertices to k parts, greedily placing heavy (high in-degree)
/// vertices first onto the currently lightest part, with a locality bonus for
/// the part holding most of the vertex's already-placed neighbors.
PartitionResult partition_greedy(const Csr& g, int k);

/// Edge balance = max(part_edges) / mean(part_edges); 1.0 is perfect.
double edge_balance(const PartitionResult& r);

}  // namespace tlp::graph
