// Compressed sparse row graph — the on-host representation every kernel
// strategy consumes. Convolution kernels aggregate over *incoming* edges
// (pull direction), so `indices[indptr[v]..indptr[v+1])` lists the in-
// neighbors of v unless stated otherwise.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tlp::graph {

using VertexId = std::int32_t;
using EdgeOffset = std::int64_t;

class Csr {
 public:
  Csr() = default;

  /// Takes ownership of prebuilt arrays. indptr.size() == n+1, sorted rows.
  Csr(std::vector<EdgeOffset> indptr, std::vector<VertexId> indices);

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(indptr_.empty() ? 0 : indptr_.size() - 1);
  }
  [[nodiscard]] EdgeOffset num_edges() const {
    return indptr_.empty() ? 0 : indptr_.back();
  }
  [[nodiscard]] double avg_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

  [[nodiscard]] EdgeOffset degree(VertexId v) const {
    return indptr_[static_cast<std::size_t>(v) + 1] -
           indptr_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] EdgeOffset max_degree() const;

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {indices_.data() + indptr_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  [[nodiscard]] std::span<const EdgeOffset> indptr() const { return indptr_; }
  [[nodiscard]] std::span<const VertexId> indices() const { return indices_; }

  /// Graph with every edge direction flipped (in-CSR <-> out-CSR).
  [[nodiscard]] Csr reversed() const;

  /// True if each row's neighbor list is sorted ascending.
  [[nodiscard]] bool rows_sorted() const;

  /// Throws CheckError on malformed structure (bad indptr monotonicity or
  /// out-of-range indices).
  void validate() const;

  /// "|V|=…, |E|=…, avg deg=…" summary for logging.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<EdgeOffset> indptr_;
  std::vector<VertexId> indices_;
};

}  // namespace tlp::graph
