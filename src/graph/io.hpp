// Graph file I/O: plain edge lists and MatrixMarket coordinate files — the
// formats the paper's datasets ship in — plus a compact binary CSR format
// for fast reloads of large replicas.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace tlp::graph {

/// Plain text edge list: one "src dst" pair per line; '#' or '%' lines are
/// comments. Vertex count is max id + 1 unless `num_vertices` > 0.
Csr read_edge_list(std::istream& in, VertexId num_vertices = 0);
Csr read_edge_list_file(const std::string& path, VertexId num_vertices = 0);

/// Writes "src dst" per edge, one line each, in CSR (destination-major)
/// order with a header comment.
void write_edge_list(std::ostream& out, const Csr& g);
void write_edge_list_file(const std::string& path, const Csr& g);

/// MatrixMarket coordinate format (1-based indices). `general` symmetry is
/// read as directed edges; `symmetric` entries are mirrored. Values, if
/// present, are ignored (pattern graphs).
Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path);

/// Binary CSR: magic, counts, then raw indptr/indices. Not portable across
/// endianness — a cache format, not an interchange format.
void write_binary_csr(std::ostream& out, const Csr& g);
void write_binary_csr_file(const std::string& path, const Csr& g);
Csr read_binary_csr(std::istream& in);
Csr read_binary_csr_file(const std::string& path);

}  // namespace tlp::graph
