#include "graph/builder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tlp::graph {

Csr build_csr(VertexId num_vertices, std::vector<Edge> edges,
              const BuildOptions& opts) {
  TLP_CHECK(num_vertices >= 0);
  for (const Edge& e : edges) {
    TLP_CHECK_MSG(e.src >= 0 && e.src < num_vertices && e.dst >= 0 &&
                      e.dst < num_vertices,
                  "edge (" << e.src << "," << e.dst << ") out of range");
  }
  if (opts.drop_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (opts.symmetrize) {
    const std::size_t m = edges.size();
    edges.reserve(2 * m);
    for (std::size_t i = 0; i < m; ++i)
      edges.push_back({edges[i].dst, edges[i].src});
  }
  if (opts.add_self_loops) {
    for (VertexId v = 0; v < num_vertices; ++v) edges.push_back({v, v});
  }
  // Pull CSR: group by destination, then by source within a row.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  });
  if (opts.dedup) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  std::vector<EdgeOffset> indptr(static_cast<std::size_t>(num_vertices) + 1, 0);
  std::vector<VertexId> indices;
  indices.reserve(edges.size());
  for (const Edge& e : edges) {
    indptr[static_cast<std::size_t>(e.dst) + 1]++;
    indices.push_back(e.src);
  }
  for (std::size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];
  return Csr(std::move(indptr), std::move(indices));
}

std::vector<Edge> to_edge_list(const Csr& pull_csr) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(pull_csr.num_edges()));
  for (VertexId v = 0; v < pull_csr.num_vertices(); ++v) {
    for (const VertexId u : pull_csr.neighbors(v)) edges.push_back({u, v});
  }
  return edges;
}

}  // namespace tlp::graph
