// Edge-list to CSR construction with the cleanup passes real loaders need:
// sorting, duplicate removal, self-loop handling, and symmetrization.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tlp::graph {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

struct BuildOptions {
  bool dedup = true;          ///< drop duplicate (src,dst) pairs
  bool drop_self_loops = false;
  bool add_self_loops = false;  ///< ensure (v,v) present for every v
  bool symmetrize = false;      ///< add the reverse of every edge
};

/// Builds the *pull-direction* CSR: row v holds sources of edges into v.
/// Edges are interpreted as src -> dst messages.
Csr build_csr(VertexId num_vertices, std::vector<Edge> edges,
              const BuildOptions& opts = {});

/// Expands a CSR back to an edge list (dst-major order), useful for tests and
/// for edge-centric kernels that want a COO view.
std::vector<Edge> to_edge_list(const Csr& pull_csr);

}  // namespace tlp::graph
