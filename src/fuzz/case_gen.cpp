#include "fuzz/case_gen.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace tlp::fuzz {

using graph::Csr;
using graph::EdgeOffset;
using graph::VertexId;
using models::ModelKind;

const char* shape_name(GraphShape s) {
  switch (s) {
    case GraphShape::kChungLu: return "chung_lu";
    case GraphShape::kErdosRenyi: return "erdos_renyi";
    case GraphShape::kRmat: return "rmat";
    case GraphShape::kStar: return "star";
    case GraphShape::kChain: return "chain";
    case GraphShape::kClique: return "clique";
    case GraphShape::kRing: return "ring";
    case GraphShape::kGrid: return "grid";
    case GraphShape::kIsolated: return "isolated";
    case GraphShape::kSingle: return "single";
    case GraphShape::kSelfLoops: return "self_loops";
    case GraphShape::kDuplicateEdges: return "dup_edges";
  }
  return "?";
}

namespace {

const char* assignment_name(sim::Assignment a) {
  switch (a) {
    case sim::Assignment::kHardwareDynamic: return "hw";
    case sim::Assignment::kStaticChunk: return "static";
    case sim::Assignment::kSoftwarePool: return "pool";
  }
  return "?";
}

/// Feature widths biased toward the interesting boundaries: 1, warp-width
/// multiples, and off-by-one neighbors of the 32-wide chunk size.
constexpr std::int64_t kFeatureWidths[] = {1, 2, 3, 7, 8,  16,  31,
                                           32, 33, 48, 64, 100, 128};

void draw_shape_dims(CaseSpec& c, Rng& rng) {
  switch (c.shape) {
    case GraphShape::kChungLu:
      c.n = static_cast<VertexId>(4 + rng.next_below(297));
      c.m = static_cast<EdgeOffset>(rng.next_below(
          static_cast<std::uint64_t>(c.n) * 8 + 1));
      c.alpha = 2.0 + rng.next_double();
      break;
    case GraphShape::kErdosRenyi:
      c.n = static_cast<VertexId>(2 + rng.next_below(299));
      c.m = static_cast<EdgeOffset>(rng.next_below(
          static_cast<std::uint64_t>(c.n) * 6 + 1));
      break;
    case GraphShape::kRmat:
      c.n = static_cast<VertexId>(4 + rng.next_below(253));
      c.m = static_cast<EdgeOffset>(rng.next_below(
          static_cast<std::uint64_t>(c.n) * 6 + 1));
      break;
    case GraphShape::kStar:
      c.n = static_cast<VertexId>(2 + rng.next_below(199));
      c.m = 0;
      break;
    case GraphShape::kChain:
      c.n = static_cast<VertexId>(1 + rng.next_below(200));
      c.m = 0;
      break;
    case GraphShape::kClique:
      c.n = static_cast<VertexId>(2 + rng.next_below(31));
      c.m = 0;
      break;
    case GraphShape::kRing:
      c.n = static_cast<VertexId>(4 + rng.next_below(197));
      c.m = static_cast<EdgeOffset>(1 + rng.next_below(
          std::min<std::uint64_t>(8, static_cast<std::uint64_t>(c.n) - 1)));
      break;
    case GraphShape::kGrid:
      c.n = static_cast<VertexId>(2 + rng.next_below(11));  // rows
      c.m = static_cast<EdgeOffset>(2 + rng.next_below(11));  // cols
      break;
    case GraphShape::kIsolated:
      c.n = static_cast<VertexId>(1 + rng.next_below(100));
      c.m = 0;
      break;
    case GraphShape::kSingle:
      c.n = 1;
      c.m = static_cast<EdgeOffset>(rng.next_below(2));  // 1 = add self loop
      break;
    case GraphShape::kSelfLoops:
      c.n = static_cast<VertexId>(2 + rng.next_below(99));
      c.m = static_cast<EdgeOffset>(rng.next_below(
          static_cast<std::uint64_t>(c.n) * 4 + 1));
      break;
    case GraphShape::kDuplicateEdges:
      c.n = static_cast<VertexId>(2 + rng.next_below(99));
      c.m = static_cast<EdgeOffset>(1 + rng.next_below(
          static_cast<std::uint64_t>(c.n) * 3 + 1));
      break;
  }
}

void draw_model_and_launch(CaseSpec& c, Rng& rng) {
  c.f = kFeatureWidths[rng.next_below(std::size(kFeatureWidths))];
  c.model = models::kAllModels[rng.next_below(4)];
  c.heads = 1;
  if (c.model == ModelKind::kGat) {
    for (const int h : {4, 2}) {
      if (c.f % h == 0 && rng.next_bool(0.4)) {
        c.heads = h;
        break;
      }
    }
  }
  c.edge_weights = c.model != ModelKind::kGat && rng.next_bool(0.2);

  constexpr sim::Assignment kAssignments[] = {
      sim::Assignment::kHardwareDynamic, sim::Assignment::kStaticChunk,
      sim::Assignment::kSoftwarePool};
  c.launch.assignment = kAssignments[rng.next_below(3)];
  constexpr int kWpb[] = {4, 8, 16};
  c.launch.warps_per_block = kWpb[rng.next_below(3)];
  constexpr int kStep[] = {1, 8, 16};
  c.launch.pool_step = kStep[rng.next_below(3)];
  c.launch.grid_blocks =
      rng.next_bool(0.15) ? static_cast<int>(1 + rng.next_below(8)) : 0;
}

}  // namespace

std::string CaseSpec::summary() const {
  std::ostringstream os;
  os << "case " << id << " seed=0x" << std::hex << seed << std::dec << " "
     << shape_name(shape) << " n=" << n << " m=" << m << " f=" << f << " "
     << models::model_name(model);
  if (heads > 1) os << " heads=" << heads;
  if (edge_weights) os << " ew";
  os << " " << assignment_name(launch.assignment)
     << " wpb=" << launch.warps_per_block;
  if (launch.grid_blocks > 0) os << " grid=" << launch.grid_blocks;
  return os.str();
}

CaseSpec generate_case(std::uint64_t id, Rng& rng) {
  CaseSpec c;
  c.id = id;
  c.seed = rng.next_u64();
  // Derive every case field from the case's own seed so the amount of fuzz
  // stream consumed per case is exactly one draw.
  Rng cr(c.seed);
  c.shape = static_cast<GraphShape>(cr.next_below(kNumGraphShapes));
  draw_shape_dims(c, cr);
  draw_model_and_launch(c, cr);
  return c;
}

CaseSpec mutate_case(const CaseSpec& base, std::uint64_t id, Rng& rng) {
  CaseSpec c = base;
  c.id = id;
  c.seed = rng.next_u64();
  Rng cr(c.seed);
  // Keep the shape (that is what earned the corpus slot); re-draw the sizes
  // around the base and re-roll model/launch so the same structure is
  // exercised under different configs.
  switch (cr.next_below(3)) {
    case 0:  // resize
      draw_shape_dims(c, cr);
      break;
    case 1:  // grow/shrink the existing dims
      c.n = std::max<graph::VertexId>(
          c.shape == GraphShape::kSingle ? 1 : 2,
          static_cast<graph::VertexId>(static_cast<double>(c.n) *
                                       (0.5 + cr.next_double())));
      break;
    default:
      break;  // structure unchanged; only model/launch below
  }
  draw_model_and_launch(c, cr);
  return c;
}

Csr build_graph(const CaseSpec& c) {
  Rng rng(c.seed ^ 0x67aff5ULL);
  switch (c.shape) {
    case GraphShape::kChungLu:
      return graph::power_law(c.n, c.m, c.alpha, rng);
    case GraphShape::kErdosRenyi: {
      // erdos_renyi draws distinct pairs; keep m under the possible maximum.
      const EdgeOffset cap =
          static_cast<EdgeOffset>(c.n) * (static_cast<EdgeOffset>(c.n) - 1) / 2;
      return graph::erdos_renyi(c.n, std::min(c.m, cap), rng);
    }
    case GraphShape::kRmat:
      return graph::rmat(c.n, c.m, rng);
    case GraphShape::kStar:
      return graph::star(c.n);
    case GraphShape::kChain:
      // draw_shape_dims can roll n = 1 for chains, but graph::path (like
      // every structured generator) requires n >= 2. Clamp here rather than
      // changing the draw range: the fuzz stream (and so every existing
      // case) must stay bit-identical for a fixed seed. (Found by the same
      // campaign as the ring clamp above: chain n=1, case 1324.)
      return graph::path(std::max<VertexId>(2, c.n));
    case GraphShape::kClique:
      return graph::complete(c.n);
    case GraphShape::kRing:
      // For rings `m` doubles as the per-vertex degree k, which must stay in
      // [1, n). mutate_case's grow/shrink arm rescales n without touching m,
      // so a shrunk ring can arrive here with k >= n — clamp like the
      // erdos_renyi cap above instead of tripping regular_ring's CHECK.
      // (Found by the 6 k-iteration fuzz campaign: ring n=2 m=2, case 4445.)
      return graph::regular_ring(
          c.n, static_cast<int>(std::clamp<EdgeOffset>(
                   c.m, 1, static_cast<EdgeOffset>(c.n) - 1)));
    case GraphShape::kGrid:
      return graph::grid2d(c.n, static_cast<VertexId>(c.m));
    case GraphShape::kIsolated:
      return graph::build_csr(c.n, {});
    case GraphShape::kSingle:
      return c.m > 0
                 ? graph::build_csr(1, {{0, 0}}, {.dedup = false})
                 : graph::build_csr(1, {});
    case GraphShape::kSelfLoops: {
      std::vector<graph::Edge> edges;
      for (EdgeOffset e = 0; e < c.m; ++e) {
        edges.push_back(
            {static_cast<VertexId>(rng.next_below(
                 static_cast<std::uint64_t>(c.n))),
             static_cast<VertexId>(rng.next_below(
                 static_cast<std::uint64_t>(c.n)))});
      }
      return graph::build_csr(c.n, std::move(edges),
                              {.dedup = false, .add_self_loops = true});
    }
    case GraphShape::kDuplicateEdges: {
      std::vector<graph::Edge> edges;
      for (EdgeOffset e = 0; e < c.m; ++e) {
        const auto s = static_cast<VertexId>(
            rng.next_below(static_cast<std::uint64_t>(c.n)));
        auto d = static_cast<VertexId>(
            rng.next_below(static_cast<std::uint64_t>(c.n)));
        if (d == s) d = (d + 1) % c.n;
        edges.push_back({s, d});
        edges.push_back({s, d});  // guaranteed duplicate
      }
      return graph::build_csr(c.n, std::move(edges),
                              {.dedup = false, .drop_self_loops = true});
    }
  }
  TLP_CHECK(false);
  return {};
}

tensor::Tensor make_features(const CaseSpec& c, const Csr& g) {
  Rng rng(c.seed ^ 0xfea75ULL);
  return tensor::Tensor::random(g.num_vertices(), c.f, rng);
}

models::ConvSpec make_conv_spec(const CaseSpec& c, const Csr& g) {
  Rng rng(c.seed ^ 0x5bec5ULL);
  models::ConvSpec spec = models::ConvSpec::make(c.model, c.f, rng, c.heads);
  if (c.edge_weights) {
    spec.edge_weights.resize(static_cast<std::size_t>(g.num_edges()));
    for (auto& w : spec.edge_weights) w = rng.next_float() * 2.0f;
  }
  return spec;
}

std::uint64_t coverage_key(const CaseSpec& c, const Csr& g) {
  auto log2_bucket = [](std::int64_t v) -> std::uint64_t {
    std::uint64_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  };
  std::uint64_t key = static_cast<std::uint64_t>(c.shape);
  key = key * 31 + log2_bucket(g.num_vertices());
  key = key * 31 + log2_bucket(g.num_edges());
  key = key * 31 + log2_bucket(g.num_vertices() > 0 ? g.max_degree() : 0);
  key = key * 31 + log2_bucket(c.f);
  key = key * 31 + static_cast<std::uint64_t>(c.model);
  key = key * 31 + static_cast<std::uint64_t>(c.launch.assignment);
  key = key * 31 + static_cast<std::uint64_t>(c.edge_weights);
  return key;
}

}  // namespace tlp::fuzz
