#include "fuzz/minimize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"

namespace tlp::fuzz {

using graph::Csr;
using graph::Edge;
using graph::EdgeOffset;
using graph::VertexId;

namespace {

struct Budget {
  const FailurePredicate& pred;
  std::uint64_t max_evals;
  std::uint64_t evals = 0;

  [[nodiscard]] bool exhausted() const { return evals >= max_evals; }
  bool fails(const Csr& g) {
    ++evals;
    return pred(g);
  }
};

/// One greedy ddmin sweep over the vertex set: at each granularity, keep
/// removing the first chunk whose removal preserves the failure.
void reduce_vertices(Csr& cur, Budget& b) {
  for (VertexId chunk = std::max<VertexId>(1, cur.num_vertices() / 2);
       chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed && !b.exhausted()) {
      removed = false;
      const VertexId n = cur.num_vertices();
      if (n <= 1 || chunk >= n) break;
      for (VertexId lo = 0; lo < n && !b.exhausted(); lo += chunk) {
        std::vector<bool> keep(static_cast<std::size_t>(n), true);
        for (VertexId i = lo; i < std::min<VertexId>(lo + chunk, n); ++i) {
          keep[static_cast<std::size_t>(i)] = false;
        }
        Csr cand = graph::induced_subgraph(cur, keep).csr;
        if (b.fails(cand)) {
          cur = std::move(cand);
          removed = true;
          break;  // rescan from the front at the same granularity
        }
      }
    }
    if (chunk == 1) break;
  }
}

/// Same sweep over the edge multiset (the vertex count stays fixed).
void reduce_edges(Csr& cur, Budget& b) {
  const VertexId n = cur.num_vertices();
  std::vector<Edge> edges = graph::to_edge_list(cur);
  auto rebuild = [n](const std::vector<Edge>& es) {
    return graph::build_csr(n, es, {.dedup = false});
  };
  for (std::size_t chunk = std::max<std::size_t>(1, edges.size() / 2);
       chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed && !b.exhausted()) {
      removed = false;
      if (edges.empty() || chunk > edges.size()) break;
      for (std::size_t lo = 0; lo + chunk <= edges.size() && !b.exhausted();
           lo += chunk) {
        std::vector<Edge> cand_edges;
        cand_edges.reserve(edges.size() - chunk);
        cand_edges.insert(cand_edges.end(), edges.begin(),
                          edges.begin() + static_cast<std::ptrdiff_t>(lo));
        cand_edges.insert(
            cand_edges.end(),
            edges.begin() + static_cast<std::ptrdiff_t>(lo + chunk),
            edges.end());
        Csr cand = rebuild(cand_edges);
        if (b.fails(cand)) {
          edges = std::move(cand_edges);
          cur = rebuild(edges);
          removed = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }
}

}  // namespace

MinimizeResult minimize_graph(const Csr& start,
                              const FailurePredicate& still_fails,
                              std::uint64_t max_evals) {
  MinimizeResult res;
  res.start_vertices = start.num_vertices();
  res.start_edges = start.num_edges();
  Budget b{still_fails, max_evals};
  TLP_CHECK_MSG(b.fails(start),
                "minimize_graph: the starting graph does not fail");
  Csr cur = start;
  // Alternate vertex and edge sweeps until a full round makes no progress:
  // dropping edges isolates vertices that the next vertex sweep can drop.
  while (!b.exhausted()) {
    const VertexId n_before = cur.num_vertices();
    const EdgeOffset m_before = cur.num_edges();
    reduce_vertices(cur, b);
    reduce_edges(cur, b);
    reduce_vertices(cur, b);
    if (cur.num_vertices() == n_before && cur.num_edges() == m_before) break;
  }
  res.graph = std::move(cur);
  res.evals = b.evals;
  return res;
}

void write_repro(const std::string& path, const Csr& g) {
  std::ofstream out(path);
  TLP_CHECK_MSG(out.good(), "cannot open repro file for writing: " << path);
  out << "# tlpfuzz repro\n";
  out << "# vertices " << g.num_vertices() << "\n";
  for (const Edge& e : graph::to_edge_list(g)) {
    out << e.src << " " << e.dst << "\n";
  }
  TLP_CHECK_MSG(out.good(), "failed writing repro file: " << path);
}

Csr load_repro(const std::string& path) {
  std::ifstream in(path);
  TLP_CHECK_MSG(in.good(), "cannot open repro file: " << path);
  // Honor the "# vertices N" header so isolated tail vertices survive the
  // round trip; plain edge lists without it still load (n = max id + 1).
  VertexId n = 0;
  std::string line;
  std::ostringstream body;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag, key;
    if (line.rfind("#", 0) == 0 && (ls >> tag >> key) && key == "vertices") {
      std::int64_t v = 0;
      if (ls >> v) n = static_cast<VertexId>(v);
      continue;
    }
    body << line << "\n";
  }
  std::istringstream edges(body.str());
  return graph::read_edge_list(edges, n);
}

}  // namespace tlp::fuzz
