// Differential and metamorphic oracles for one fuzz case.
//
// Differential: every kernel strategy and every framework replica must match
// models::reference_conv within float-accumulation tolerance. Metamorphic:
// properties that must hold exactly — relabeling vertices permutes the
// output (equivariance), the partition count never changes a single bit of
// the partitioned system's result, re-running a launch is deterministic, the
// launch policy does not change functional results, profiler counters stay
// inside physical bounds, and injected faults either degrade bit-identically
// (OOM) or surface as the typed error (launch failure).
#pragma once

#include <string>
#include <vector>

#include "fuzz/case_gen.hpp"
#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/counters.hpp"
#include "tensor/tensor.hpp"

namespace tlp::fuzz {

struct CaseContext {
  CaseSpec spec;
  graph::Csr g;
  tensor::Tensor h;
  models::ConvSpec conv;
  tensor::Tensor ref;  ///< reference_conv(g, h, conv)

  /// Builds graph/features/spec/reference for a case.
  static CaseContext make(const CaseSpec& c);
};

struct OracleFailure {
  std::string oracle;   ///< which invariant broke ("kernel_diff", ...)
  std::string subject;  ///< kernel/system under test
  std::string detail;   ///< human-readable mismatch description
};

/// Comparison used by the differential oracles; rejects NaN/Inf mismatches
/// in addition to the tolerance band.
bool outputs_close(const tensor::Tensor& got, const tensor::Tensor& ref,
                   std::string* detail);

/// Every applicable kernel strategy vs the reference.
std::vector<OracleFailure> check_kernels(const CaseContext& cx);
/// Every registered framework replica vs the reference.
std::vector<OracleFailure> check_systems(const CaseContext& cx);
/// Vertex-reorder equivariance of the TLPGNN system.
std::vector<OracleFailure> check_reorder(const CaseContext& cx);
/// systems/partitioned: output bit-identical for k in {2, 3, 7} and to the
/// unpartitioned run.
std::vector<OracleFailure> check_partitions(const CaseContext& cx);
/// Same launch twice => bit-identical output and identical counters.
std::vector<OracleFailure> check_determinism(const CaseContext& cx);
/// All three Assignment policies produce bit-identical functional output.
std::vector<OracleFailure> check_assignments(const CaseContext& cx);
/// Fault-plan behaviour: injected OOM degrades bit-identically; an injected
/// launch failure surfaces as tlp::LaunchFailure; injected bit flips never
/// crash the harness.
std::vector<OracleFailure> check_faults(const CaseContext& cx);
/// Serving determinism: the same (traffic seed, FaultPlan storm schedule)
/// replays to a byte-identical outcome sequence and SLO report, with 100%
/// outcome accounting, and every response served under the storm is bitwise
/// equal to its fault-free counterpart.
std::vector<OracleFailure> check_serving(const CaseContext& cx);

/// Profiler-counter sanity for one run's aggregated metrics (occupancy and
/// utilization within [0,1], rates within bounds, DRAM traffic not exceeding
/// the L2-side total). Appended by the other oracles after each run.
void check_metrics(const std::string& subject, const sim::Metrics& m,
                   std::vector<OracleFailure>* out);

/// Names of all oracles above, for report bookkeeping.
const std::vector<std::string>& oracle_names();

}  // namespace tlp::fuzz
