#include "fuzz/oracles.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "fuzz/kernel_runners.hpp"
#include "graph/reorder.hpp"
#include "models/reference.hpp"
#include "serve/server.hpp"
#include "sim/device.hpp"
#include "systems/partitioned.hpp"
#include "systems/system.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp::fuzz {

using graph::Csr;
using systems::RunResult;
using tensor::Tensor;

namespace {

constexpr double kRtol = 1e-3;
constexpr double kAtol = 1e-4;

bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  return std::memcmp(fa.data(), fb.data(), fa.size_bytes()) == 0;
}

/// Runs `fn`, converting any escaped exception into an OracleFailure so one
/// crashing subject does not abort the whole fuzz iteration.
template <class Fn>
void guarded(const std::string& oracle, const std::string& subject,
             std::vector<OracleFailure>* out, Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    out->push_back({oracle, subject, std::string("exception: ") + e.what()});
  } catch (...) {
    out->push_back({oracle, subject, "unknown exception"});
  }
}

}  // namespace

CaseContext CaseContext::make(const CaseSpec& c) {
  CaseContext cx;
  cx.spec = c;
  cx.g = build_graph(c);
  cx.h = make_features(c, cx.g);
  cx.conv = make_conv_spec(c, cx.g);
  cx.ref = models::reference_conv(cx.g, cx.h, cx.conv);
  return cx;
}

bool outputs_close(const Tensor& got, const Tensor& ref, std::string* detail) {
  if (got.rows() != ref.rows() || got.cols() != ref.cols()) {
    if (detail) {
      std::ostringstream os;
      os << "shape (" << got.rows() << "," << got.cols() << ") vs ref ("
         << ref.rows() << "," << ref.cols() << ")";
      *detail = os.str();
    }
    return false;
  }
  const auto fg = got.flat();
  const auto fr = ref.flat();
  for (std::size_t i = 0; i < fg.size(); ++i) {
    // allclose's tolerance comparison is false for NaN operands in a way
    // that *accepts* them; reject non-finite disagreements explicitly.
    if (std::isfinite(fg[i]) != std::isfinite(fr[i]) ||
        std::isnan(fg[i]) != std::isnan(fr[i])) {
      if (detail) {
        std::ostringstream os;
        os << "non-finite mismatch at flat index " << i << ": got " << fg[i]
           << " vs ref " << fr[i];
        *detail = os.str();
      }
      return false;
    }
  }
  if (!tensor::allclose(got, ref, kRtol, kAtol)) {
    if (detail) {
      std::ostringstream os;
      os << "max |diff| " << tensor::max_abs_diff(got, ref) << " exceeds rtol "
         << kRtol << " atol " << kAtol;
      *detail = os.str();
    }
    return false;
  }
  return true;
}

void check_metrics(const std::string& subject, const sim::Metrics& m,
                   std::vector<OracleFailure>* out) {
  auto fail = [&](const std::string& detail) {
    out->push_back({"metrics", subject, detail});
  };
  auto in_unit = [&](const char* name, double v) {
    if (!(v >= 0.0 && v <= 1.0 + 1e-9)) {
      std::ostringstream os;
      os << name << " = " << v << " outside [0, 1]";
      fail(os.str());
    }
  };
  if (m.kernel_launches <= 0) return;  // nothing ran; nothing to bound
  in_unit("achieved_occupancy", m.achieved_occupancy);
  in_unit("sm_utilization", m.sm_utilization);
  in_unit("l1_hit_rate", m.l1_hit_rate);
  if (!(m.gpu_time_ms > 0.0)) fail("gpu_time_ms not positive");
  if (m.scoreboard_stall < 0.0) fail("scoreboard_stall negative");
  for (const auto& [name, v] :
       {std::pair<const char*, double>{"bytes_load", m.bytes_load},
        {"bytes_store", m.bytes_store},
        {"bytes_atomic", m.bytes_atomic},
        {"bytes_dram", m.bytes_dram}}) {
    if (v < 0.0) {
      std::ostringstream os;
      os << name << " negative (" << v << ")";
      fail(os.str());
    }
  }
  // DRAM sits below L2: its traffic cannot exceed what reached L2.
  const double l2_side = m.bytes_load + m.bytes_store + m.bytes_atomic;
  if (m.bytes_dram > l2_side * (1.0 + 1e-9) + 1.0) {
    std::ostringstream os;
    os << "bytes_dram " << m.bytes_dram << " exceeds L2-side traffic "
       << l2_side;
    fail(os.str());
  }
  // A warp request touches between 1 and 32 sectors.
  if (m.sectors_per_request != 0.0 &&
      (m.sectors_per_request < 1.0 - 1e-9 ||
       m.sectors_per_request > 32.0 + 1e-9)) {
    std::ostringstream os;
    os << "sectors_per_request " << m.sectors_per_request << " outside [1, 32]";
    fail(os.str());
  }
}

std::vector<OracleFailure> check_kernels(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  const std::int64_t out_bytes = cx.ref.size() * 4;
  for (const KernelRunner& k : kernel_runners()) {
    if (!k.supports(cx.conv)) continue;
    guarded("kernel_diff", k.name, &out, [&] {
      sim::Device dev;
      const Tensor got = k.run(dev, cx.g, cx.h, cx.conv, cx.spec.launch);
      std::string detail;
      if (!outputs_close(got, cx.ref, &detail)) {
        out.push_back({"kernel_diff", k.name, detail});
      }
      const sim::Metrics m = dev.metrics();
      check_metrics(k.name, m, &out);
      // Compulsory store traffic: every output element is written at least
      // once, so store bytes can never undercut the output matrix itself.
      if (m.kernel_launches > 0 && m.bytes_store < out_bytes) {
        std::ostringstream os;
        os << "bytes_store " << m.bytes_store
           << " below compulsory output bytes " << out_bytes;
        out.push_back({"metrics", k.name, os.str()});
      }
    });
  }
  return out;
}

std::vector<OracleFailure> check_systems(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  const std::int64_t out_bytes = cx.ref.size() * 4;
  for (const char* cname : {"tlpgnn", "dgl", "gnnadvisor", "featgraph",
                            "push", "edge", "pull"}) {
    const std::string name = cname;
    guarded("system_diff", name, &out, [&] {
      auto sys = systems::make_system(name);
      if (!sys->supports(cx.conv.kind, /*big_graph=*/false)) return;
      // Only the TLPGNN path implements per-edge weights; the replicas
      // reject them by contract.
      if (cx.conv.has_edge_weights() && name != "tlpgnn") return;
      // Multi-head GAT is implemented by the fused kernel only, which backs
      // the TLPGNN system and the pull micro baseline.
      if (cx.conv.kind == models::ModelKind::kGat && cx.conv.gat.heads > 1 &&
          name != "tlpgnn" && name != "pull") {
        return;
      }
      sim::Device dev;
      const RunResult r = sys->run(dev, cx.g, cx.h, cx.conv);
      std::string detail;
      if (!outputs_close(r.output, cx.ref, &detail)) {
        out.push_back({"system_diff", name, detail});
      }
      check_metrics(name, r.metrics, &out);
      if (r.metrics.kernel_launches > 0 && r.metrics.bytes_store < out_bytes) {
        std::ostringstream os;
        os << "bytes_store " << r.metrics.bytes_store
           << " below compulsory output bytes " << out_bytes;
        out.push_back({"metrics", name, os.str()});
      }
      if (r.runtime_ms + 1e-12 < r.measured_ms ||
          r.measured_ms + 1e-12 < r.gpu_time_ms) {
        out.push_back({"metrics", name,
                       "time hierarchy violated (runtime >= measured >= gpu)"});
      }
    });
  }
  return out;
}

std::vector<OracleFailure> check_reorder(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  // Permuting the vertex ids permutes spec.edge_weights' edge order too;
  // restrict the oracle to the weight-free case where the convolution is a
  // pure function of the (graph, features) pair.
  if (cx.conv.has_edge_weights()) return out;
  const graph::VertexId n = cx.g.num_vertices();
  Rng prng(cx.spec.seed ^ 0x5e02de2ULL);
  graph::Permutation random_perm = graph::identity_order(n);
  for (graph::VertexId i = n - 1; i > 0; --i) {
    const auto j = static_cast<graph::VertexId>(
        prng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(random_perm[static_cast<std::size_t>(i)],
              random_perm[static_cast<std::size_t>(j)]);
  }
  const std::pair<const char*, graph::Permutation> perms[] = {
      {"degree_desc", graph::degree_desc_order(cx.g)},
      {"bfs", graph::bfs_order(cx.g)},
      {"random", std::move(random_perm)},
  };
  for (const auto& [pname, perm] : perms) {
    guarded("reorder", pname, &out, [&, pname = pname, &perm = perm] {
      const Csr pg = graph::apply_permutation(cx.g, perm);
      Tensor ph(n, cx.h.cols());
      for (graph::VertexId i = 0; i < n; ++i) {
        const auto src = cx.h.row(perm[static_cast<std::size_t>(i)]);
        std::copy(src.begin(), src.end(), ph.row(i).begin());
      }
      systems::TlpgnnSystem sys;
      sim::Device dev;
      const RunResult r = sys.run(dev, pg, ph, cx.conv);
      // Un-permute the output back to the original labeling.
      Tensor unperm(n, cx.ref.cols());
      for (graph::VertexId i = 0; i < n; ++i) {
        const auto src = r.output.row(i);
        std::copy(src.begin(), src.end(),
                  unperm.row(perm[static_cast<std::size_t>(i)]).begin());
      }
      std::string detail;
      if (!outputs_close(unperm, cx.ref, &detail)) {
        out.push_back({"reorder", pname,
                       "output not equivariant under " + std::string(pname) +
                           " relabeling: " + detail});
      }
    });
  }
  return out;
}

std::vector<OracleFailure> check_partitions(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  if (cx.g.num_vertices() < 2) return out;  // run_partitioned requires k >= 2
  systems::TlpgnnSystem sys;
  Tensor base;
  guarded("partition", "unpartitioned", &out, [&] {
    sim::Device dev;
    base = sys.run(dev, cx.g, cx.h, cx.conv).output;
  });
  if (base.rows() == 0 && cx.g.num_vertices() > 0) return out;  // base failed
  for (const int k : {2, 3, 7}) {
    if (k > cx.g.num_vertices()) continue;
    guarded("partition", "k=" + std::to_string(k), &out, [&] {
      sim::Device dev;
      const RunResult r =
          systems::run_partitioned(sys, dev, cx.g, cx.h, cx.conv, k);
      if (!bit_identical(r.output, base)) {
        out.push_back({"partition", "k=" + std::to_string(k),
                       "partitioned output not bit-identical to the "
                       "unpartitioned run (max |diff| " +
                           std::to_string(tensor::max_abs_diff(r.output,
                                                               base)) +
                           ")"});
      }
      check_metrics("partitioned k=" + std::to_string(k), r.metrics, &out);
    });
  }
  return out;
}

std::vector<OracleFailure> check_determinism(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  guarded("determinism", "tlpgnn", &out, [&] {
    systems::TlpgnnSystem sys;
    sim::Device d1, d2;
    const RunResult r1 = sys.run(d1, cx.g, cx.h, cx.conv);
    const RunResult r2 = sys.run(d2, cx.g, cx.h, cx.conv);
    if (!bit_identical(r1.output, r2.output)) {
      out.push_back({"determinism", "tlpgnn",
                     "two identical launches produced different outputs"});
    }
    const sim::Metrics &m1 = r1.metrics, &m2 = r2.metrics;
    if (m1.gpu_time_ms != m2.gpu_time_ms ||
        m1.bytes_load != m2.bytes_load ||
        m1.bytes_store != m2.bytes_store ||
        m1.bytes_atomic != m2.bytes_atomic ||
        m1.bytes_dram != m2.bytes_dram ||
        m1.achieved_occupancy != m2.achieved_occupancy ||
        m1.kernel_launches != m2.kernel_launches) {
      out.push_back({"determinism", "tlpgnn",
                     "two identical launches produced different counters"});
    }
  });
  return out;
}

std::vector<OracleFailure> check_assignments(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  // Work items are independent, so the assignment policy may change timing
  // but never a single output bit. Exercise the first real strategy that can
  // express the model.
  const KernelRunner* runner = nullptr;
  for (const KernelRunner& k : kernel_runners()) {
    if (k.supports(cx.conv)) {
      runner = &k;
      break;
    }
  }
  if (runner == nullptr) return out;
  guarded("assignment", runner->name, &out, [&] {
    Tensor base;
    bool first = true;
    for (const sim::Assignment a :
         {sim::Assignment::kHardwareDynamic, sim::Assignment::kStaticChunk,
          sim::Assignment::kSoftwarePool}) {
      sim::LaunchConfig cfg = cx.spec.launch;
      cfg.assignment = a;
      sim::Device dev;
      Tensor got = runner->run(dev, cx.g, cx.h, cx.conv, cfg);
      if (first) {
        base = std::move(got);
        first = false;
      } else if (!bit_identical(got, base)) {
        out.push_back({"assignment", runner->name,
                       "output depends on the launch assignment policy"});
      }
    }
  });
  return out;
}

std::vector<OracleFailure> check_faults(const CaseContext& cx) {
  std::vector<OracleFailure> out;

  // Clean engine baseline (also covers Engine::conv vs reference).
  Tensor base;
  guarded("faults", "engine_clean", &out, [&] {
    Engine clean;
    const RunResult r = clean.conv(cx.g, cx.h, cx.conv);
    if (r.degradation.degraded) {
      out.push_back({"faults", "engine_clean",
                     "clean engine reported degradation"});
    }
    std::string detail;
    if (!outputs_close(r.output, cx.ref, &detail)) {
      out.push_back({"faults", "engine_clean", detail});
    }
    base = r.output;
  });
  if (base.rows() != cx.ref.rows()) return out;  // baseline failed; stop here

  // Injected OOM must degrade to a bit-identical partitioned run.
  if (cx.g.num_vertices() >= 4) {
    guarded("faults", "oom_degrade", &out, [&] {
      EngineOptions opts;
      opts.device.faults.oom_at_alloc = 1;
      Engine faulty(opts);
      const RunResult r = faulty.conv(cx.g, cx.h, cx.conv);
      if (!r.degradation.degraded) {
        out.push_back({"faults", "oom_degrade",
                       "injected OOM did not trigger degradation"});
      } else if (!bit_identical(r.output, base)) {
        out.push_back({"faults", "oom_degrade",
                       "degraded output not bit-identical to the clean run"});
      }
    });
  }

  // An injected launch failure must surface as tlp::LaunchFailure.
  guarded("faults", "launch_failure", &out, [&] {
    EngineOptions opts;
    opts.device.faults.fail_launch = 1;
    Engine faulty(opts);
    try {
      (void)faulty.conv(cx.g, cx.h, cx.conv);
      out.push_back({"faults", "launch_failure",
                     "injected launch fault did not raise LaunchFailure"});
    } catch (const LaunchFailure&) {
      // expected
    }
  });

  // ECC-style corruption in the feature buffer must not crash and must keep
  // the output shape. GCN only: its allocation order (indptr, indices, norm,
  // features) pins the feature buffer at index 3.
  if (cx.conv.kind == models::ModelKind::kGcn && !cx.conv.has_edge_weights() &&
      cx.h.size() > 0) {
    guarded("faults", "bit_flip", &out, [&] {
      EngineOptions opts;
      opts.device.faults.flip_at_launch = 1;
      opts.device.faults.flip_bits = 4;
      opts.device.faults.flip_alloc = 3;
      Engine faulty(opts);
      const RunResult r = faulty.conv(cx.g, cx.h, cx.conv);
      if (r.output.rows() != cx.ref.rows() ||
          r.output.cols() != cx.ref.cols()) {
        out.push_back({"faults", "bit_flip",
                       "bit-flipped run changed the output shape"});
      }
    });
  }
  return out;
}

std::vector<OracleFailure> check_serving(const CaseContext& cx) {
  std::vector<OracleFailure> out;
  if (cx.g.num_vertices() < 4) return out;  // too small to batch meaningfully

  // Per-request subgraphs do not preserve global edge order, so the server
  // rejects edge-weighted specs; strip the weights for this oracle.
  models::ConvSpec spec = cx.conv;
  spec.edge_weights.clear();

  serve::TrafficOptions topts;
  topts.num_requests = 10;
  topts.mean_interarrival_ms = 0.5;
  topts.hops = 1;
  topts.max_ego_vertices = 64;
  topts.seed = cx.spec.seed;
  const std::vector<serve::Request> traffic =
      serve::generate_traffic(cx.g, cx.h, topts);

  serve::ServerOptions sopts;
  sopts.queue_capacity = 16;
  sopts.max_batch = 4;
  sopts.batch_window_ms = 1.0;
  serve::StormEvent storm;
  storm.at_request = 3;
  storm.plan.oom_every = 16;
  storm.plan.oom_burst_len = 3;
  sopts.storms = {storm};

  const auto outcomes = [](const serve::ServeResult& r) {
    std::string s;
    for (const auto& resp : r.responses) s += serve::outcome_name(resp.outcome);
    return s;
  };

  guarded("serving", "determinism", &out, [&] {
    serve::Server a(sopts);
    serve::Server b(sopts);
    const serve::ServeResult ra = a.run(traffic, spec);
    const serve::ServeResult rb = b.run(traffic, spec);
    if (outcomes(ra) != outcomes(rb)) {
      out.push_back({"serving", "determinism",
                     "outcome sequence differs across identical replays: " +
                         outcomes(ra) + " vs " + outcomes(rb)});
    }
    if (ra.report.to_json().dump() != rb.report.to_json().dump()) {
      out.push_back({"serving", "determinism",
                     "SLO report not byte-identical across replays"});
    }
    for (std::size_t i = 0; i < ra.responses.size(); ++i) {
      if (ra.responses[i].output != rb.responses[i].output) {
        out.push_back({"serving", "determinism",
                       "served output differs across replays at req " +
                           std::to_string(i)});
        break;
      }
    }
    if (ra.report.unaccounted != 0) {
      out.push_back({"serving", "accounting",
                     std::to_string(ra.report.unaccounted) +
                         " requests unaccounted in the SLO report"});
    }

    // Graceful degradation contract: whatever the storm did, a served
    // response is the bit-identical fault-free answer.
    serve::ServerOptions clean_opts = sopts;
    clean_opts.storms.clear();
    serve::Server clean(clean_opts);
    const serve::ServeResult rc = clean.run(traffic, spec);
    if (rc.report.degraded != 0 || rc.report.failed != 0 ||
        rc.report.retried != 0) {
      out.push_back({"serving", "fault_free",
                     "fault-free run reported retries/degradation/failures"});
    }
    for (std::size_t i = 0; i < ra.responses.size(); ++i) {
      if (!ra.responses[i].served() || !rc.responses[i].served()) continue;
      const auto& sa = ra.responses[i].output;
      const auto& sc = rc.responses[i].output;
      if (sa.size() != sc.size() ||
          std::memcmp(sa.data(), sc.data(), sa.size() * sizeof(float)) != 0) {
        out.push_back({"serving", "bit_identity",
                       "storm-served output for req " + std::to_string(i) +
                           " differs from the fault-free run"});
        break;
      }
    }
  });
  return out;
}

const std::vector<std::string>& oracle_names() {
  static const std::vector<std::string> kNames = {
      "kernel_diff", "system_diff", "reorder",    "partition",
      "determinism", "assignment",  "metrics",    "faults",
      "serving"};
  return kNames;
}

}  // namespace tlp::fuzz
