// Kernel strategies under differential test, behind one uniform signature.
//
// Each runner drives one kernel strategy end to end on a fresh simulated
// device — upload, compose the launches the strategy needs (pre-zero fills,
// epilogues), download — and returns the convolution output to compare
// against models::reference_conv. mutant_runners() returns the same shape of
// object for the deliberately broken kernels the --expect-bugs self-check
// mode must catch; those carry expected_bug = true.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "sim/kernel.hpp"
#include "tensor/tensor.hpp"

namespace tlp::fuzz {

struct KernelRunner {
  std::string name;
  /// True for the seeded-bug mutants: the harness must FLAG these.
  bool expected_bug = false;
  /// Whether this strategy can express the given convolution.
  std::function<bool(const models::ConvSpec&)> supports;
  /// Runs the strategy; `cfg` is the launch policy under test.
  std::function<tensor::Tensor(sim::Device&, const graph::Csr&,
                               const tensor::Tensor&,
                               const models::ConvSpec&,
                               const sim::LaunchConfig&)>
      run;
};

/// The real strategies: gather_pull (both register-cache variants),
/// subwarp_pull at several widths, the SpMM pipeline, push_atomic,
/// edge_centric, and fused_gat.
const std::vector<KernelRunner>& kernel_runners();

/// Deliberately broken kernels, each encoding one classic GNN-kernel bug
/// (row-bound off-by-one, dropped self term, swapped norm, truncated feature
/// tail, unguarded zero-degree mean).
const std::vector<KernelRunner>& mutant_runners();

}  // namespace tlp::fuzz
