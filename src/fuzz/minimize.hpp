// Shrinking minimizer: reduces a failing graph to a small reproducer.
//
// Delta-debugging over the graph structure: first remove chunks of vertices
// (via graph::induced_subgraph, so surviving edges keep their relative
// order), then remove chunks of edges, re-checking the caller's failure
// predicate after every candidate reduction. The result is the smallest
// graph the search found that still fails, suitable for writing out as a
// `.el` edge-list repro.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "graph/csr.hpp"

namespace tlp::fuzz {

/// Returns true when the candidate graph still triggers the failure under
/// investigation. Must be deterministic; the minimizer calls it many times.
using FailurePredicate = std::function<bool(const graph::Csr&)>;

struct MinimizeResult {
  graph::Csr graph;          ///< smallest still-failing graph found
  std::uint64_t evals = 0;   ///< predicate evaluations spent
  graph::VertexId start_vertices = 0;
  graph::EdgeOffset start_edges = 0;
};

/// ddmin-style reduction of `start` under `still_fails`. `start` must itself
/// satisfy the predicate. `max_evals` bounds the search cost.
MinimizeResult minimize_graph(const graph::Csr& start,
                              const FailurePredicate& still_fails,
                              std::uint64_t max_evals = 2000);

/// Writes a minimized graph as a plain edge-list repro file ("# tlpfuzz
/// repro" header, "src dst" lines, isolated tail vertices preserved via an
/// explicit vertex-count comment honored by load_repro).
void write_repro(const std::string& path, const graph::Csr& g);

/// Loads a repro file written by write_repro (plain edge lists written by
/// other tools load too; vertex count defaults to max id + 1).
graph::Csr load_repro(const std::string& path);

}  // namespace tlp::fuzz
