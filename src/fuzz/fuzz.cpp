#include "fuzz/fuzz.hpp"

#include <chrono>
#include <filesystem>
#include <iostream>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fuzz/kernel_runners.hpp"
#include "fuzz/minimize.hpp"
#include "models/reference.hpp"
#include "sim/device.hpp"
#include "systems/system.hpp"

namespace tlp::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(ch) << std::dec;
        } else {
          os << ch;
        }
    }
  }
  return os.str();
}

/// Runs the oracle battery for one case. The cheap differential oracles run
/// every iteration; the more expensive metamorphic ones rotate so a long
/// campaign still covers all of them densely.
std::vector<OracleFailure> run_oracles(const CaseContext& cx, std::uint64_t id,
                                       std::uint64_t* checks) {
  std::vector<OracleFailure> fails;
  auto add = [&](std::vector<OracleFailure> v) {
    ++*checks;
    fails.insert(fails.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
  };
  add(check_kernels(cx));
  add(check_systems(cx));
  if (id % 3 == 0) add(check_reorder(cx));
  if (id % 4 == 0) add(check_partitions(cx));
  if (id % 5 == 0) add(check_determinism(cx));
  if (id % 5 == 1) add(check_assignments(cx));
  if (id % 6 == 0) add(check_faults(cx));
  if (id % 7 == 0) add(check_serving(cx));
  return fails;
}

/// Predicate for the minimizer: does `runner` still disagree with the
/// reference on this graph (features/weights re-derived per candidate)?
FailurePredicate kernel_predicate(const CaseSpec& spec,
                                  const KernelRunner& runner) {
  return [spec, &runner](const graph::Csr& g2) -> bool {
    if (g2.num_vertices() <= 0) return false;
    try {
      const tensor::Tensor h2 = make_features(spec, g2);
      const models::ConvSpec conv2 = make_conv_spec(spec, g2);
      if (!runner.supports(conv2)) return false;
      const tensor::Tensor ref2 = models::reference_conv(g2, h2, conv2);
      sim::Device dev;
      const tensor::Tensor got =
          runner.run(dev, g2, h2, conv2, spec.launch);
      std::string detail;
      return !outputs_close(got, ref2, &detail);
    } catch (...) {
      return true;  // a crash is also a failure worth preserving
    }
  };
}

FailurePredicate system_predicate(const CaseSpec& spec,
                                  const std::string& name) {
  return [spec, name](const graph::Csr& g2) -> bool {
    if (g2.num_vertices() <= 0) return false;
    try {
      const tensor::Tensor h2 = make_features(spec, g2);
      const models::ConvSpec conv2 = make_conv_spec(spec, g2);
      auto sys = systems::make_system(name);
      if (!sys->supports(conv2.kind, false)) return false;
      if (conv2.has_edge_weights() && name != "tlpgnn") return false;
      const tensor::Tensor ref2 = models::reference_conv(g2, h2, conv2);
      sim::Device dev;
      const systems::RunResult r = sys->run(dev, g2, h2, conv2);
      std::string detail;
      return !outputs_close(r.output, ref2, &detail);
    } catch (...) {
      return true;
    }
  };
}

/// Minimizes the failing case's graph and writes an `.el` repro. Best
/// effort: any error just leaves the record without a repro file.
void minimize_failure(const CaseContext& cx, const FuzzOptions& opts,
                      FailureRecord* rec) {
  FailurePredicate pred;
  if (rec->failure.oracle == "kernel_diff") {
    for (const KernelRunner& k : kernel_runners()) {
      if (k.name == rec->failure.subject) pred = kernel_predicate(cx.spec, k);
    }
  } else if (rec->failure.oracle == "system_diff") {
    pred = system_predicate(cx.spec, rec->failure.subject);
  }
  if (!pred) return;
  try {
    if (!pred(cx.g)) return;  // not reproducible in isolation; skip
    const MinimizeResult m =
        minimize_graph(cx.g, pred, opts.minimize_evals);
    rec->minimized_vertices = m.graph.num_vertices();
    rec->minimized_edges = m.graph.num_edges();
    std::filesystem::create_directories(opts.repro_dir);
    std::ostringstream name;
    name << "case_" << cx.spec.id << "_" << rec->failure.subject << ".el";
    const std::string path =
        (std::filesystem::path(opts.repro_dir) / name.str()).string();
    write_repro(path, m.graph);
    rec->repro_file = path;
  } catch (const std::exception&) {
    // leave the record un-minimized
  }
}

CaseSpec battery_case(GraphShape shape, graph::VertexId n,
                      graph::EdgeOffset m, std::int64_t f,
                      models::ModelKind model, std::uint64_t seed) {
  CaseSpec c;
  c.shape = shape;
  c.n = n;
  c.m = m;
  c.f = f;
  c.model = model;
  c.seed = seed;
  return c;
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opts) {
  const auto t0 = Clock::now();
  FuzzReport rep;
  rep.seed = opts.seed;
  rep.iters_requested = opts.iters;
  for (const std::string& name : oracle_names()) rep.failure_counts[name] = 0;

  Rng stream(opts.seed);
  std::vector<CaseSpec> corpus;
  std::set<std::uint64_t> coverage;
  std::uint64_t minimized = 0;

  for (std::uint64_t id = 0; id < opts.iters; ++id) {
    if (opts.time_budget_s > 0 && seconds_since(t0) > opts.time_budget_s) {
      break;
    }
    CaseSpec c;
    if (!corpus.empty() && id % 3 == 2) {
      const std::uint64_t pick = stream.next_below(corpus.size());
      c = mutate_case(corpus[static_cast<std::size_t>(pick)], id, stream);
    } else {
      c = generate_case(id, stream);
    }
    ++rep.cases_run;

    std::vector<OracleFailure> fails;
    CaseContext cx;
    bool built = false;
    try {
      cx = CaseContext::make(c);
      built = true;
    } catch (const std::exception& e) {
      fails.push_back({"case_build", shape_name(c.shape),
                       std::string("exception: ") + e.what()});
    }
    if (built) {
      if (coverage.insert(coverage_key(c, cx.g)).second) corpus.push_back(c);
      fails = run_oracles(cx, id, &rep.oracle_checks);
    }
    if (opts.verbose) {
      std::cout << c.summary() << (fails.empty() ? "" : "  <-- FAIL")
                << std::endl;
    }
    for (OracleFailure& f : fails) {
      ++rep.failure_counts[f.oracle];
      FailureRecord rec;
      rec.spec = c;
      rec.failure = std::move(f);
      if (built && !opts.repro_dir.empty() && minimized < opts.max_minimized &&
          (rec.failure.oracle == "kernel_diff" ||
           rec.failure.oracle == "system_diff")) {
        minimize_failure(cx, opts, &rec);
        if (!rec.repro_file.empty()) ++minimized;
      }
      rep.failures.push_back(std::move(rec));
    }
  }
  rep.coverage_signatures = coverage.size();
  rep.corpus_size = corpus.size();
  rep.elapsed_s = seconds_since(t0);
  return rep;
}

FuzzReport run_repro(const std::string& path, const FuzzOptions& opts) {
  const auto t0 = Clock::now();
  FuzzReport rep;
  rep.seed = opts.seed;
  for (const std::string& name : oracle_names()) rep.failure_counts[name] = 0;

  const graph::Csr g = load_repro(path);
  std::uint64_t id = 0;
  for (const models::ModelKind kind : models::kAllModels) {
    // 32 and 33 straddle the chunk boundary — the widths where feature-tail
    // bugs live.
    for (const std::int64_t f : {std::int64_t{32}, std::int64_t{33}}) {
      CaseSpec c;
      c.id = id;
      c.seed = opts.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1));
      c.n = g.num_vertices();
      c.m = g.num_edges();
      c.f = f;
      c.model = kind;
      CaseContext cx;
      cx.spec = c;
      cx.g = g;
      cx.h = make_features(c, g);
      cx.conv = make_conv_spec(c, g);
      cx.ref = models::reference_conv(g, cx.h, cx.conv);

      std::vector<OracleFailure> fails;
      auto add = [&](std::vector<OracleFailure> v) {
        ++rep.oracle_checks;
        fails.insert(fails.end(), std::make_move_iterator(v.begin()),
                     std::make_move_iterator(v.end()));
      };
      add(check_kernels(cx));
      add(check_systems(cx));
      add(check_reorder(cx));
      add(check_partitions(cx));
      add(check_determinism(cx));
      add(check_assignments(cx));
      if (kind == models::ModelKind::kGcn && f == 32) add(check_faults(cx));

      ++rep.cases_run;
      if (opts.verbose) {
        std::cout << "repro " << path << " " << models::model_name(kind)
                  << " f=" << f << (fails.empty() ? "" : "  <-- FAIL")
                  << std::endl;
      }
      for (OracleFailure& fl : fails) {
        ++rep.failure_counts[fl.oracle];
        FailureRecord rec;
        rec.spec = c;
        rec.failure = std::move(fl);
        rep.failures.push_back(std::move(rec));
      }
      ++id;
    }
  }
  rep.iters_requested = rep.cases_run;
  rep.elapsed_s = seconds_since(t0);
  return rep;
}

ExpectBugsReport run_expect_bugs(std::uint64_t minimize_evals, bool verbose) {
  ExpectBugsReport rep;
  // Deterministic battery chosen so every seeded bug class has at least one
  // case that exposes it: a hub (row bounds, norms), a chain (self terms), a
  // 33-wide power-law graph (feature tail), all-isolated vertices under Sage
  // (zero-degree mean), and a ring (control).
  const CaseSpec battery[] = {
      battery_case(GraphShape::kStar, 24, 0, 16, models::ModelKind::kGcn,
                   0xeb1ULL),
      battery_case(GraphShape::kChain, 16, 0, 8, models::ModelKind::kGin,
                   0xeb2ULL),
      battery_case(GraphShape::kChungLu, 64, 256, 33, models::ModelKind::kGcn,
                   0xeb3ULL),
      battery_case(GraphShape::kIsolated, 8, 0, 8, models::ModelKind::kSage,
                   0xeb4ULL),
      battery_case(GraphShape::kRing, 32, 4, 16, models::ModelKind::kGcn,
                   0xeb5ULL),
  };
  for (const KernelRunner& mutant : mutant_runners()) {
    ExpectBugsReport::MutantResult mr;
    mr.name = mutant.name;
    for (const CaseSpec& c : battery) {
      const CaseContext cx = CaseContext::make(c);
      if (!mutant.supports(cx.conv)) continue;
      try {
        sim::Device dev;
        const tensor::Tensor got =
            mutant.run(dev, cx.g, cx.h, cx.conv, c.launch);
        std::string detail;
        if (!outputs_close(got, cx.ref, &detail)) {
          mr.caught = true;
          mr.detail = detail;
        }
      } catch (const std::exception& e) {
        mr.caught = true;
        mr.detail = std::string("exception: ") + e.what();
      }
      if (mr.caught) {
        mr.caught_by = c.summary();
        const FailurePredicate pred = kernel_predicate(c, mutant);
        try {
          if (pred(cx.g)) {
            const MinimizeResult m =
                minimize_graph(cx.g, pred, minimize_evals);
            mr.minimized_vertices = m.graph.num_vertices();
            mr.minimized_edges = m.graph.num_edges();
          }
        } catch (const std::exception&) {
          // minimization is best-effort; "caught" already stands
        }
        break;
      }
    }
    if (verbose) {
      std::cout << mr.name << ": "
                << (mr.caught ? "caught by " + mr.caught_by : "MISSED")
                << std::endl;
    }
    rep.mutants.push_back(std::move(mr));
  }
  return rep;
}

std::string report_to_json(const FuzzReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"tlpfuzz\",\n";
  os << "  \"mode\": \"fuzz\",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"iters_requested\": " << r.iters_requested << ",\n";
  os << "  \"cases_run\": " << r.cases_run << ",\n";
  os << "  \"oracle_checks\": " << r.oracle_checks << ",\n";
  os << "  \"coverage_signatures\": " << r.coverage_signatures << ",\n";
  os << "  \"corpus_size\": " << r.corpus_size << ",\n";
  os << "  \"elapsed_s\": " << r.elapsed_s << ",\n";
  os << "  \"failure_counts\": {";
  bool first = true;
  for (const auto& [name, count] : r.failure_counts) {
    os << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << count;
    first = false;
  }
  os << "},\n";
  os << "  \"failures\": [";
  first = true;
  for (const FailureRecord& f : r.failures) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"case\": \"" << json_escape(f.spec.summary())
       << "\", \"oracle\": \"" << json_escape(f.failure.oracle)
       << "\", \"subject\": \"" << json_escape(f.failure.subject)
       << "\", \"detail\": \"" << json_escape(f.failure.detail) << "\"";
    if (!f.repro_file.empty()) {
      os << ", \"repro\": \"" << json_escape(f.repro_file)
         << "\", \"minimized_vertices\": " << f.minimized_vertices
         << ", \"minimized_edges\": " << f.minimized_edges;
    }
    os << "}";
  }
  os << (r.failures.empty() ? "" : "\n  ") << "],\n";
  os << "  \"ok\": " << (r.ok() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

std::string report_to_json(const ExpectBugsReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"tlpfuzz\",\n";
  os << "  \"mode\": \"expect-bugs\",\n";
  os << "  \"mutants\": [";
  bool first = true;
  for (const auto& m : r.mutants) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(m.name) << "\", \"caught\": "
       << (m.caught ? "true" : "false") << ", \"caught_by\": \""
       << json_escape(m.caught_by) << "\", \"detail\": \""
       << json_escape(m.detail)
       << "\", \"minimized_vertices\": " << m.minimized_vertices
       << ", \"minimized_edges\": " << m.minimized_edges << "}";
  }
  os << (r.mutants.empty() ? "" : "\n  ") << "],\n";
  os << "  \"all_caught\": " << (r.all_caught() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace tlp::fuzz
