// tlpfuzz driver: coverage-guided differential fuzzing of the whole stack.
//
// Each iteration draws a CaseSpec (or mutates a corpus entry that previously
// produced a new coverage signature), materializes graph + features + model,
// and runs the oracle battery from fuzz/oracles.hpp. Failing cases are
// shrunk with fuzz/minimize.hpp into `.el` repro files that `tlpfuzz
// --repro` replays. `run_expect_bugs` is the self-check mode: it runs the
// deliberately broken kernels from fuzz/kernel_runners.hpp through the same
// oracles and reports which ones the harness caught (all of them, or the
// harness itself has a bug).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/case_gen.hpp"
#include "fuzz/oracles.hpp"
#include "graph/csr.hpp"

namespace tlp::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 42;
  std::uint64_t iters = 500;
  /// Wall-clock budget in seconds; 0 disables. Whichever of iters /
  /// time_budget_s is hit first ends the run.
  double time_budget_s = 0;
  /// Directory for minimized `.el` repro files; empty disables minimization.
  std::string repro_dir;
  /// Predicate-evaluation budget per minimization.
  std::uint64_t minimize_evals = 2000;
  /// At most this many failing cases are minimized (minimization re-runs the
  /// failing subject hundreds of times).
  std::uint64_t max_minimized = 5;
  bool verbose = false;
};

/// One recorded failure, flattened to (case, oracle, subject).
struct FailureRecord {
  CaseSpec spec;
  OracleFailure failure;
  std::string repro_file;  ///< non-empty if a minimized repro was written
  graph::VertexId minimized_vertices = -1;
  graph::EdgeOffset minimized_edges = -1;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::uint64_t iters_requested = 0;
  std::uint64_t cases_run = 0;
  std::uint64_t oracle_checks = 0;  ///< oracle invocations across all cases
  std::uint64_t coverage_signatures = 0;
  std::uint64_t corpus_size = 0;
  double elapsed_s = 0;
  /// Failures per oracle name (zero entries included for every oracle).
  std::map<std::string, std::uint64_t> failure_counts;
  std::vector<FailureRecord> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the fuzz loop. Deterministic for a fixed (seed, iters) pair as long
/// as no time budget interrupts it.
FuzzReport run_fuzz(const FuzzOptions& opts);

/// Replays a minimized repro graph through the differential oracles for
/// every model kind at the boundary feature widths.
FuzzReport run_repro(const std::string& path, const FuzzOptions& opts);

/// Self-check: every seeded-bug mutant must be caught by the deterministic
/// battery, and the row-bound mutant's failing graph must minimize small.
struct ExpectBugsReport {
  struct MutantResult {
    std::string name;
    bool caught = false;
    std::string caught_by;  ///< battery case that flagged it
    std::string detail;
    graph::VertexId minimized_vertices = -1;
    graph::EdgeOffset minimized_edges = -1;
  };
  std::vector<MutantResult> mutants;

  [[nodiscard]] bool all_caught() const {
    for (const auto& m : mutants) {
      if (!m.caught) return false;
    }
    return !mutants.empty();
  }
};

ExpectBugsReport run_expect_bugs(std::uint64_t minimize_evals = 2000,
                                 bool verbose = false);

std::string report_to_json(const FuzzReport& r);
std::string report_to_json(const ExpectBugsReport& r);

}  // namespace tlp::fuzz
