#include "fuzz/kernel_runners.hpp"

#include <array>

#include "common/check.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/edge_centric.hpp"
#include "kernels/fused_gat.hpp"
#include "kernels/gather_pull.hpp"
#include "kernels/push_atomic.hpp"
#include "kernels/spmm.hpp"
#include "kernels/subwarp_pull.hpp"

namespace tlp::fuzz {

using graph::Csr;
using kernels::DeviceCoo;
using kernels::DeviceGraph;
using models::ConvSpec;
using models::ModelKind;
using sim::Device;
using sim::LaunchConfig;
using tensor::Tensor;

namespace {

bool simple_conv(const ConvSpec& spec) {
  return spec.kind != ModelKind::kGat;
}

bool simple_unweighted(const ConvSpec& spec) {
  return simple_conv(spec) && !spec.has_edge_weights();
}

/// Shared device setup: uploaded pull graph, features, and a zeroed output.
struct Uploaded {
  DeviceGraph dg;
  sim::DevPtr<float> dfeat;
  sim::DevPtr<float> dout;
  std::int64_t f = 0;

  Uploaded(Device& dev, const Csr& g, const Tensor& h) : f(h.cols()) {
    dev.reset_all();
    dg = kernels::upload_graph(dev, g);
    dfeat = kernels::upload_features(dev, h);
    dout = dev.alloc_zeroed<float>(dg.n * f);
  }

  [[nodiscard]] Tensor download(Device& dev) const {
    return kernels::download_features(dev, dout, dg.n, f);
  }
};

Tensor run_gather_pull(Device& dev, const Csr& g, const Tensor& h,
                       const ConvSpec& spec, const LaunchConfig& cfg,
                       bool cache) {
  Uploaded up(dev, g, h);
  sim::DevPtr<float> dew{};
  if (spec.has_edge_weights()) dew = dev.upload<float>(spec.edge_weights);
  kernels::GatherPullKernel k(up.dg, up.dfeat, up.dout, up.f,
                              {spec.kind, spec.gin_eps}, cache, dew);
  dev.launch(k, cfg);
  return up.download(dev);
}

Tensor run_subwarp(Device& dev, const Csr& g, const Tensor& h,
                   const ConvSpec& spec, const LaunchConfig& cfg, int lpv) {
  Uploaded up(dev, g, h);
  kernels::SubwarpPullKernel k(up.dg, up.dfeat, up.dout, up.f,
                               {spec.kind, spec.gin_eps}, lpv);
  dev.launch(k, cfg);
  return up.download(dev);
}

Tensor run_spmm_pipeline(Device& dev, const Csr& g, const Tensor& h,
                         const ConvSpec& spec, const LaunchConfig& cfg) {
  Uploaded up(dev, g, h);
  switch (spec.kind) {
    case ModelKind::kGcn: {
      kernels::SpmmKernel agg(up.dg, up.dfeat, up.dout, up.f,
                              kernels::SpmmKernel::Weighting::kGcnNormPair);
      dev.launch(agg, cfg);
      kernels::AddScaledSelfKernel self(
          up.dfeat, up.dout, up.f,
          kernels::AddScaledSelfKernel::Mode::kNormSquared, up.dg);
      dev.launch(self, cfg);
      break;
    }
    case ModelKind::kGin: {
      kernels::SpmmKernel agg(up.dg, up.dfeat, up.dout, up.f,
                              kernels::SpmmKernel::Weighting::kSum);
      dev.launch(agg, cfg);
      kernels::AddScaledSelfKernel self(
          up.dfeat, up.dout, up.f, kernels::AddScaledSelfKernel::Mode::kConst,
          up.dg, 1.0f + spec.gin_eps);
      dev.launch(self, cfg);
      break;
    }
    case ModelKind::kSage: {
      kernels::SpmmKernel agg(up.dg, up.dfeat, up.dout, up.f,
                              kernels::SpmmKernel::Weighting::kMean);
      dev.launch(agg, cfg);
      break;
    }
    case ModelKind::kGat:
      TLP_CHECK(false);
  }
  return up.download(dev);
}

Tensor run_push(Device& dev, const Csr& g, const Tensor& h,
                const ConvSpec& spec, const LaunchConfig& cfg) {
  dev.reset_all();
  const std::int64_t f = h.cols();
  // Push walks the out-CSR but GCN weights come from in-degree norms.
  const std::vector<float> pull_norm = models::gcn_norm(g);
  const Csr out_csr = g.reversed();
  const DeviceGraph dg_out = kernels::upload_graph(dev, out_csr, &pull_norm);
  const DeviceGraph dg_pull = kernels::upload_graph(dev, g);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, h);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg_out.n * f);
  {
    kernels::FillRowsKernel fill(dout, dg_out.n, f, 0.0f);
    dev.launch(fill, cfg);
  }
  kernels::PushKernel push(dg_out, dfeat, dout, f, {spec.kind, spec.gin_eps});
  dev.launch(push, cfg);
  if (spec.kind == ModelKind::kSage) {
    kernels::RowScaleKernel rescale(dout, dout, f,
                                    kernels::RowScaleKernel::Mode::kByInvDegree,
                                    dg_pull, {});
    dev.launch(rescale, cfg);
  }
  return kernels::download_features(dev, dout, dg_out.n, f);
}

Tensor run_edge_centric(Device& dev, const Csr& g, const Tensor& h,
                        const ConvSpec& spec, const LaunchConfig& cfg) {
  Uploaded up(dev, g, h);
  const DeviceCoo coo = kernels::upload_coo(dev, g);
  kernels::EdgeCentricAggKernel agg(coo, up.dg.norm, up.dfeat, up.dout, up.f,
                                    {spec.kind, spec.gin_eps});
  dev.launch(agg, cfg);
  switch (spec.kind) {
    case ModelKind::kGcn: {
      kernels::AddScaledSelfKernel self(
          up.dfeat, up.dout, up.f,
          kernels::AddScaledSelfKernel::Mode::kNormSquared, up.dg);
      dev.launch(self, cfg);
      break;
    }
    case ModelKind::kGin: {
      kernels::AddScaledSelfKernel self(
          up.dfeat, up.dout, up.f, kernels::AddScaledSelfKernel::Mode::kConst,
          up.dg, 1.0f + spec.gin_eps);
      dev.launch(self, cfg);
      break;
    }
    case ModelKind::kSage: {
      kernels::RowScaleKernel rescale(
          up.dout, up.dout, up.f, kernels::RowScaleKernel::Mode::kByInvDegree,
          up.dg, {});
      dev.launch(rescale, cfg);
      break;
    }
    case ModelKind::kGat:
      TLP_CHECK(false);
  }
  return up.download(dev);
}

Tensor run_fused_gat(Device& dev, const Csr& g, const Tensor& h,
                     const ConvSpec& spec, const LaunchConfig& cfg) {
  Uploaded up(dev, g, h);
  const models::GatHalves halves = models::gat_halves(h, spec.gat);
  const sim::DevPtr<float> dsh = dev.upload<float>(halves.src);
  const sim::DevPtr<float> ddh = dev.upload<float>(halves.dst);
  kernels::FusedGatKernel k(up.dg, up.dfeat, dsh, ddh, up.dout, up.f,
                            spec.gat.leaky_slope, spec.gat.heads);
  dev.launch(k, cfg);
  return up.download(dev);
}

// ---------------------------------------------------------------------------
// Seeded-bug mutants (--expect-bugs).
// ---------------------------------------------------------------------------

enum class BugKind {
  kRowBoundOffByOne,  ///< walks [start, end-1): drops each row's last edge
  kMissingSelfTerm,   ///< GCN/GIN epilogue forgets the self term
  kSwappedNorm,       ///< GCN uses norm_v^2 instead of norm_u * norm_v
  kFeatureTailDrop,   ///< ignores the final partial 32-wide feature chunk
  kUnguardedMean,     ///< Sage divides by degree without the deg>0 guard
};

/// A warp-per-vertex pull kernel that is correct except for one injected
/// bug. Mirrors GatherPullKernel's cached variant closely enough that the
/// minimizer exercises realistic access patterns while shrinking.
class BuggyPullKernel final : public sim::WarpKernel {
 public:
  BuggyPullKernel(DeviceGraph g, sim::DevPtr<float> feat,
                  sim::DevPtr<float> out, std::int64_t f,
                  kernels::SimpleConv conv, BugKind bug)
      : g_(g), feat_(feat), out_(out), f_(f), conv_(conv), bug_(bug) {}

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "buggy_pull"; }

  void run_item(sim::WarpCtx& warp, std::int64_t v) override {
    const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
    std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
    if (bug_ == BugKind::kRowBoundOffByOne && end > start) --end;

    int chunks = kernels::num_chunks(f_);
    if (bug_ == BugKind::kFeatureTailDrop && f_ % sim::kWarpSize != 0)
      --chunks;  // the partial tail chunk is never aggregated or stored

    const bool is_gcn = conv_.kind == ModelKind::kGcn;
    const float norm_v = is_gcn ? warp.load_scalar_f32(g_.norm, v) : 0.0f;
    std::array<sim::WVec<float>, kernels::kMaxChunks> acc{};

    for (std::int64_t e = start; e < end; ++e) {
      const std::int32_t u = warp.load_scalar_i32(g_.indices, e);
      float w = 1.0f;
      if (is_gcn) {
        w = bug_ == BugKind::kSwappedNorm
                ? norm_v * norm_v
                : warp.load_scalar_f32(g_.norm, u) * norm_v;
        warp.charge_alu(1);
      }
      for (int c = 0; c < chunks; ++c) {
        const sim::Mask m = kernels::chunk_mask(f_, c);
        const sim::WVec<float> x =
            warp.load_f32(feat_, kernels::chunk_idx(u, f_, c), m);
        auto& a = acc[static_cast<std::size_t>(c)];
        for (int l = 0; l < sim::kWarpSize; ++l)
          a[static_cast<std::size_t>(l)] += w * x[static_cast<std::size_t>(l)];
        warp.charge_alu(1);
      }
    }

    const std::int64_t true_deg =
        warp.load_scalar_i64(g_.indptr, v + 1) - start;
    for (int c = 0; c < chunks; ++c) {
      const sim::Mask m = kernels::chunk_mask(f_, c);
      auto& a = acc[static_cast<std::size_t>(c)];
      switch (conv_.kind) {
        case ModelKind::kGcn:
        case ModelKind::kGin: {
          if (bug_ != BugKind::kMissingSelfTerm) {
            const float scale = conv_.kind == ModelKind::kGcn
                                    ? norm_v * norm_v
                                    : 1.0f + conv_.gin_eps;
            const sim::WVec<float> self =
                warp.load_f32(feat_, kernels::chunk_idx(v, f_, c), m);
            for (int l = 0; l < sim::kWarpSize; ++l)
              a[static_cast<std::size_t>(l)] +=
                  scale * self[static_cast<std::size_t>(l)];
            warp.charge_alu(2);
          }
          break;
        }
        case ModelKind::kSage: {
          if (bug_ == BugKind::kUnguardedMean) {
            // 0/0 on isolated vertices: the NaN the oracle must flag.
            const float inv = 1.0f / static_cast<float>(true_deg);
            for (auto& x : a) x *= inv;
          } else if (true_deg > 0) {
            const float inv = 1.0f / static_cast<float>(true_deg);
            for (auto& x : a) x *= inv;
          }
          warp.charge_alu(1);
          break;
        }
        case ModelKind::kGat:
          TLP_CHECK(false);
      }
      warp.store_f32(out_, kernels::chunk_idx(v, f_, c), a, m);
    }
  }

 private:
  DeviceGraph g_;
  sim::DevPtr<float> feat_;
  sim::DevPtr<float> out_;
  std::int64_t f_;
  kernels::SimpleConv conv_;
  BugKind bug_;
};

KernelRunner make_mutant(std::string name, BugKind bug,
                         std::function<bool(const ConvSpec&)> supports) {
  KernelRunner r;
  r.name = std::move(name);
  r.expected_bug = true;
  r.supports = std::move(supports);
  r.run = [bug](Device& dev, const Csr& g, const Tensor& h,
                const ConvSpec& spec, const LaunchConfig& cfg) {
    Uploaded up(dev, g, h);
    BuggyPullKernel k(up.dg, up.dfeat, up.dout, up.f,
                      {spec.kind, spec.gin_eps}, bug);
    dev.launch(k, cfg);
    return up.download(dev);
  };
  return r;
}

}  // namespace

const std::vector<KernelRunner>& kernel_runners() {
  static const std::vector<KernelRunner> runners = [] {
    std::vector<KernelRunner> r;
    r.push_back({"gather_pull", false, simple_conv,
                 [](Device& dev, const Csr& g, const Tensor& h,
                    const ConvSpec& spec, const LaunchConfig& cfg) {
                   return run_gather_pull(dev, g, h, spec, cfg, true);
                 }});
    r.push_back({"gather_pull_nocache", false, simple_conv,
                 [](Device& dev, const Csr& g, const Tensor& h,
                    const ConvSpec& spec, const LaunchConfig& cfg) {
                   return run_gather_pull(dev, g, h, spec, cfg, false);
                 }});
    for (const int lpv : {1, 4, 16}) {
      r.push_back({"subwarp_pull_lpv" + std::to_string(lpv), false,
                   simple_unweighted,
                   [lpv](Device& dev, const Csr& g, const Tensor& h,
                         const ConvSpec& spec, const LaunchConfig& cfg) {
                     return run_subwarp(dev, g, h, spec, cfg, lpv);
                   }});
    }
    r.push_back({"spmm_pipeline", false, simple_unweighted, run_spmm_pipeline});
    r.push_back({"push_atomic", false, simple_unweighted, run_push});
    r.push_back({"edge_centric", false, simple_unweighted, run_edge_centric});
    r.push_back({"fused_gat", false,
                 [](const ConvSpec& spec) {
                   return spec.kind == ModelKind::kGat;
                 },
                 run_fused_gat});
    return r;
  }();
  return runners;
}

const std::vector<KernelRunner>& mutant_runners() {
  static const std::vector<KernelRunner> mutants = [] {
    std::vector<KernelRunner> r;
    r.push_back(make_mutant("bug_rowbound_off_by_one",
                            BugKind::kRowBoundOffByOne, simple_unweighted));
    r.push_back(make_mutant("bug_missing_self_term", BugKind::kMissingSelfTerm,
                            [](const ConvSpec& s) {
                              return (s.kind == ModelKind::kGcn ||
                                      s.kind == ModelKind::kGin) &&
                                     !s.has_edge_weights();
                            }));
    r.push_back(make_mutant("bug_swapped_norm", BugKind::kSwappedNorm,
                            [](const ConvSpec& s) {
                              return s.kind == ModelKind::kGcn &&
                                     !s.has_edge_weights();
                            }));
    r.push_back(make_mutant("bug_feature_tail_drop", BugKind::kFeatureTailDrop,
                            simple_unweighted));
    r.push_back(make_mutant("bug_unguarded_mean", BugKind::kUnguardedMean,
                            [](const ConvSpec& s) {
                              return s.kind == ModelKind::kSage &&
                                     !s.has_edge_weights();
                            }));
    return r;
  }();
  return mutants;
}

}  // namespace tlp::fuzz
