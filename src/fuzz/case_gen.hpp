// Seed-deterministic fuzz-case generation.
//
// A CaseSpec is a compact, replayable description of one fuzz iteration: the
// graph shape (including the pathological fixtures — star hubs, chains,
// cliques, isolated vertices, self loops, duplicate edges), the feature
// width, the model, and the launch policy. Everything downstream (the graph,
// the feature matrix, the ConvSpec weights) is derived purely from the
// case's seed, so any failure replays from its one-line summary.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/kernel.hpp"
#include "tensor/tensor.hpp"

namespace tlp::fuzz {

enum class GraphShape {
  kChungLu,         ///< power-law expected degrees (graph::power_law)
  kErdosRenyi,      ///< uniform random edges
  kRmat,            ///< Graph500-style recursive matrix
  kStar,            ///< all vertices point at a single hub
  kChain,           ///< directed path
  kClique,          ///< complete directed graph
  kRing,            ///< k-regular ring lattice
  kGrid,            ///< 2-D grid, symmetric
  kIsolated,        ///< n vertices, zero edges
  kSingle,          ///< one vertex, optionally with a self loop
  kSelfLoops,       ///< random edges plus a self loop on every vertex
  kDuplicateEdges,  ///< random edges, each repeated (multigraph)
};
inline constexpr int kNumGraphShapes = 12;

const char* shape_name(GraphShape s);

struct CaseSpec {
  std::uint64_t id = 0;    ///< iteration ordinal (for logs)
  std::uint64_t seed = 0;  ///< sole source of randomness for this case
  GraphShape shape = GraphShape::kChungLu;
  graph::VertexId n = 16;   ///< vertices (rows for kGrid)
  graph::EdgeOffset m = 0;  ///< edges (cols for kGrid, k for kRing)
  double alpha = 2.2;       ///< power-law exponent (kChungLu only)
  std::int64_t f = 16;      ///< feature width
  models::ModelKind model = models::ModelKind::kGcn;
  int heads = 1;  ///< GAT heads; divides f
  bool edge_weights = false;
  sim::LaunchConfig launch{};

  /// One-line replayable description, e.g.
  /// "case 17 seed=0x... chung_lu n=120 m=900 f=33 gcn hw".
  [[nodiscard]] std::string summary() const;
};

/// Draws case `id` from the fuzz stream. Consumes a fixed amount of `rng`
/// state per call, so case k is identical no matter which oracles ran for
/// cases 0..k-1.
CaseSpec generate_case(std::uint64_t id, Rng& rng);

/// Coverage-guided mutation: a small deterministic perturbation of a corpus
/// case (resize the graph, change the feature width or model, keep the
/// shape) used when a previous case uncovered a new coverage signature.
CaseSpec mutate_case(const CaseSpec& base, std::uint64_t id, Rng& rng);

/// Materializes the case. All three are pure functions of the spec.
graph::Csr build_graph(const CaseSpec& c);
tensor::Tensor make_features(const CaseSpec& c, const graph::Csr& g);
models::ConvSpec make_conv_spec(const CaseSpec& c, const graph::Csr& g);

/// Coverage signature: a coarse bucketing of the case's structural features
/// (shape, |V|, |E|, max degree, f, model, launch policy). New signatures
/// feed the corpus that mutate_case draws from.
[[nodiscard]] std::uint64_t coverage_key(const CaseSpec& c,
                                         const graph::Csr& g);

}  // namespace tlp::fuzz
