// Wall-clock timing helpers for host-side measurements (preprocessing cost,
// framework dispatch overhead, benchmark harness timing).
#pragma once

#include <chrono>
#include <cstdint>

namespace tlp {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tlp
