#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace tlp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TLP_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  TLP_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      // Left-align the first column (labels), right-align the rest (numbers).
      const auto pad = width[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace tlp
