#include "common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace tlp {

std::string fixed(double value, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", digits, value);
  return buf.data();
}

std::string human_count(double value) {
  const double a = std::fabs(value);
  if (a >= 1e9) return fixed(value / 1e9, 1) + "B";
  if (a >= 1e6) return fixed(value / 1e6, 1) + "M";
  if (a >= 1e3) return fixed(value / 1e3, 1) + "K";
  if (value == std::floor(value)) return fixed(value, 0);
  return fixed(value, 1);
}

std::string human_bytes(double bytes) {
  const double a = std::fabs(bytes);
  if (a >= 1024.0 * 1024.0 * 1024.0)
    return fixed(bytes / (1024.0 * 1024.0 * 1024.0), 2) + "GB";
  if (a >= 1024.0 * 1024.0) return fixed(bytes / (1024.0 * 1024.0), 2) + "MB";
  if (a >= 1024.0) return fixed(bytes / 1024.0, 2) + "KB";
  return fixed(bytes, 0) + "B";
}

std::string pct(double fraction) { return fixed(fraction * 100.0, 1) + "%"; }

}  // namespace tlp
