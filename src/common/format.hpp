// Human-friendly number formatting shared by the benchmark tables.
#pragma once

#include <cstdint>
#include <string>

namespace tlp {

/// 1536 -> "1.5K", 2400000 -> "2.4M"; exact below 1000.
std::string human_count(double value);

/// 1.5e9 -> "1.40GB"; chooses B/KB/MB/GB.
std::string human_bytes(double bytes);

/// Fixed-point with `digits` decimals, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int digits);

/// Percentage with one decimal, e.g. pct(0.411) == "41.1%".
std::string pct(double fraction);

}  // namespace tlp
