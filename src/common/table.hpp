// Plain-text table rendering for the benchmark harness: every bench binary
// prints the same rows/series the paper reports, via this printer.
#pragma once

#include <string>
#include <vector>

namespace tlp {

/// Column-aligned ASCII table. Cells are strings; the caller formats numbers
/// (see format.hpp). First row added with header() is underlined.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with 2-space gutters, left-aligned first column, right-aligned
  /// numeric columns.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: render to stdout.
  void print() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tlp
