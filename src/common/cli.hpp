// Minimal command-line parsing for bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Every bench
// binary must run with no arguments (sensible defaults), so all options carry
// defaults.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tlp {

/// A malformed command line (unknown enum value, contradictory flags).
/// Binaries catch this in main() and exit with status 2 — distinct from
/// tlp::CheckError (bad input data / violated invariant → exit 1) so
/// scripts and CI can tell usage mistakes from runtime failures.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Strict variants for flags where a silent misparse is dangerous (fault
  /// and serving knobs): the whole value must parse — "5x", "", "1e3" for an
  /// int, or an overflowing literal all throw tlp::CheckError naming the
  /// flag and the offending text — and the parsed value must land in
  /// [lo, hi] (inclusive; the defaults disable the range check).
  [[nodiscard]] std::int64_t get_int_checked(
      const std::string& name, std::int64_t def,
      std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
      std::int64_t hi = std::numeric_limits<std::int64_t>::max()) const;
  [[nodiscard]] double get_double_checked(
      const std::string& name, double def,
      double lo = -std::numeric_limits<double>::infinity(),
      double hi = std::numeric_limits<double>::infinity()) const;

  /// Checked getter for enum-valued flags (--timing-tier, --cache-policy):
  /// returns the flag's value (or `def` when the flag is absent) only when
  /// it is one of `valid`; anything else throws tlp::UsageError with a
  /// diagnostic naming the flag, the offending value, and the full valid
  /// set. Callers turn that into exit code 2.
  [[nodiscard]] std::string get_choice(
      const std::string& name, const std::string& def,
      std::initializer_list<std::string_view> valid) const;

  /// Positional (non --flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names of all --flags that were passed, sorted. Lets binaries reject
  /// unknown flags instead of silently ignoring typos.
  [[nodiscard]] std::vector<std::string> named_keys() const;

 private:
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace tlp
