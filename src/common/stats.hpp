// Summary statistics used by graph degree analysis and benchmark reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tlp {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double stddev(std::span<const double> xs);   ///< population std deviation

/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double q);

/// Coefficient of variation (stddev / mean); 0 for empty or zero-mean input.
double coeff_variation(std::span<const double> xs);

/// Gini coefficient of a non-negative sample — used to quantify degree skew.
double gini(std::vector<double> xs);

}  // namespace tlp
