// Summary statistics used by graph degree analysis and benchmark reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tlp {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double stddev(std::span<const double> xs);   ///< population std deviation

/// q in [0,1]; linear interpolation between closest order statistics — the
/// "inclusive" rule (NumPy's default): the sorted sample is treated as exact
/// quantiles at positions k/(n-1), so percentile(xs, q) reads position
/// q*(n-1) with linear interpolation between the two neighboring samples.
/// Edge behavior, which SloReport's p50/p99 inherit:
///   - empty input  -> 0.0 (not NaN — "no latencies observed" reports 0);
///   - single sample-> that sample for every q;
///   - q == 0.0     -> the minimum, q == 1.0 -> the maximum, both exactly
///     (no interpolation residue: the fractional part is 0 at the ends).
/// q outside [0,1] fails a check.
double percentile(std::vector<double> xs, double q);

/// Coefficient of variation (stddev / mean); 0 for empty or zero-mean input.
double coeff_variation(std::span<const double> xs);

/// Gini coefficient of a non-negative sample — used to quantify degree skew.
double gini(std::vector<double> xs);

}  // namespace tlp
