#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tlp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  TLP_DCHECK(lo < hi);
  return lo +
         static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo)));
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  TLP_DCHECK(n > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_normal() {
  // Box–Muller; discard the second deviate for simplicity.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

void fill_uniform(Rng& rng, std::vector<float>& out, float lo, float hi) {
  for (auto& v : out) v = lo + (hi - lo) * rng.next_float();
}

}  // namespace tlp
