#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tlp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) {
    TLP_CHECK_MSG(x > 0.0, "geomean requires positive values, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double q) {
  TLP_CHECK(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  // Inclusive linear interpolation (see stats.hpp): position q*(n-1) sits
  // between order statistics lo and lo+1. At q == 1.0, pos is exactly n-1,
  // so frac == 0 and the hi clamp keeps the read in range — the maximum is
  // returned exactly rather than through an out-of-range xs[lo + 1].
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double coeff_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

double gini(std::vector<double> xs) {
  if (xs.size() < 2) return 0.0;
  std::sort(xs.begin(), xs.end());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    TLP_CHECK(xs[i] >= 0.0);
    weighted += static_cast<double>(i + 1) * xs[i];
    cum += xs[i];
  }
  if (cum == 0.0) return 0.0;
  const auto n = static_cast<double>(xs.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace tlp
