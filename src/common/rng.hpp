// Deterministic, fast pseudo-random number generation.
//
// All stochastic pieces of the library (graph generators, feature
// initialization, dropout) take an explicit Rng so every experiment is
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace tlp {

/// splitmix64 — used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Small, fast, and good enough for workload
/// synthesis; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [0, 1).
  float next_float();

  /// Uniform integer in [lo, hi) — requires lo < hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform integer in [0, n) — requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal via Box–Muller.
  double next_normal();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p);

  /// A fresh generator seeded from this one (for independent streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Fills `out` with uniform floats in [lo, hi).
void fill_uniform(Rng& rng, std::vector<float>& out, float lo, float hi);

}  // namespace tlp
