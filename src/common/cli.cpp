#include "common/cli.hpp"

#include <charconv>
#include <cstdlib>

#include "common/check.hpp"

namespace tlp {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      named_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      named_[tok] = argv[++i];
    } else {
      named_[tok] = "true";
    }
  }
}

bool Args::has(const std::string& name) const { return named_.count(name) > 0; }

std::vector<std::string> Args::named_keys() const {
  std::vector<std::string> keys;
  keys.reserve(named_.size());
  for (const auto& [k, v] : named_) keys.push_back(k);
  return keys;  // std::map iteration is already sorted
}

std::string Args::get(const std::string& name, const std::string& def) const {
  const auto it = named_.find(name);
  return it == named_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& name, double def) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Args::get_int_checked(const std::string& name, std::int64_t def,
                                   std::int64_t lo, std::int64_t hi) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  const std::string& text = it->second;
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  TLP_CHECK_MSG(ec != std::errc::result_out_of_range,
                "flag --" << name << ": value \"" << text
                          << "\" overflows a 64-bit integer");
  TLP_CHECK_MSG(ec == std::errc() && ptr == end,
                "flag --" << name << ": cannot parse \"" << text
                          << "\" as an integer");
  TLP_CHECK_MSG(value >= lo && value <= hi,
                "flag --" << name << ": value " << value
                          << " out of range [" << lo << ", " << hi << "]");
  return value;
}

double Args::get_double_checked(const std::string& name, double def,
                                double lo, double hi) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  const std::string& text = it->second;
  // strtod with a full-consumption check: std::from_chars<double> is not
  // implemented by every libstdc++ this repo builds against.
  TLP_CHECK_MSG(!text.empty(), "flag --" << name << ": empty value");
  char* parse_end = nullptr;
  const double value = std::strtod(text.c_str(), &parse_end);
  TLP_CHECK_MSG(parse_end == text.c_str() + text.size(),
                "flag --" << name << ": cannot parse \"" << text
                          << "\" as a number");
  TLP_CHECK_MSG(value == value, "flag --" << name << ": NaN is not a value");
  TLP_CHECK_MSG(value >= lo && value <= hi,
                "flag --" << name << ": value " << value
                          << " out of range [" << lo << ", " << hi << "]");
  return value;
}

std::string Args::get_choice(
    const std::string& name, const std::string& def,
    std::initializer_list<std::string_view> valid) const {
  const auto it = named_.find(name);
  const std::string value = it == named_.end() ? def : it->second;
  for (const std::string_view v : valid) {
    if (value == v) return value;
  }
  std::string msg = "flag --" + name + ": unknown value \"" + value + "\"";
  msg += " (valid: ";
  bool first = true;
  for (const std::string_view v : valid) {
    if (!first) msg += ", ";
    first = false;
    msg.append(v);
  }
  msg += ")";
  throw UsageError(msg);
}

bool Args::get_bool(const std::string& name, bool def) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace tlp
