// Checked-assertion macros used across the library.
//
// TLP_CHECK is always on (release included) and throws tlp::CheckError so
// callers and tests can observe contract violations; TLP_DCHECK compiles out
// in NDEBUG builds and guards hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tlp {

/// Thrown when a TLP_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

/// Failure path of the TLP_CHECK_<cmp> family: formats both operand values
/// so the message shows what was actually compared, not just the expression.
template <class A, class B>
[[noreturn]] void check_cmp_failed(const char* a_expr, const char* op,
                                   const char* b_expr, const A& a, const B& b,
                                   const char* file, int line) {
  std::ostringstream os;
  os << "CHECK failed: " << a_expr << ' ' << op << ' ' << b_expr << " ("
     << +a << " vs " << +b << ") at " << file << ':' << line;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace tlp

#define TLP_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::tlp::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define TLP_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream tlp_check_os_;                              \
      tlp_check_os_ << msg;                                          \
      ::tlp::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  tlp_check_os_.str());              \
    }                                                                \
  } while (0)

// Comparison checks that print both operand values on failure, e.g.
//   TLP_CHECK_LT(index, size);   ->  "CHECK failed: index < size (7 vs 4) …"
// Operands are evaluated exactly once. Always on, like TLP_CHECK.
#define TLP_CHECK_CMP_(a, op, b)                                          \
  do {                                                                    \
    const auto& tlp_a_ = (a);                                             \
    const auto& tlp_b_ = (b);                                             \
    if (!(tlp_a_ op tlp_b_)) {                                            \
      ::tlp::detail::check_cmp_failed(#a, #op, #b, tlp_a_, tlp_b_,        \
                                      __FILE__, __LINE__);                \
    }                                                                     \
  } while (0)

#define TLP_CHECK_EQ(a, b) TLP_CHECK_CMP_(a, ==, b)
#define TLP_CHECK_NE(a, b) TLP_CHECK_CMP_(a, !=, b)
#define TLP_CHECK_LT(a, b) TLP_CHECK_CMP_(a, <, b)
#define TLP_CHECK_LE(a, b) TLP_CHECK_CMP_(a, <=, b)
#define TLP_CHECK_GT(a, b) TLP_CHECK_CMP_(a, >, b)
#define TLP_CHECK_GE(a, b) TLP_CHECK_CMP_(a, >=, b)

#ifdef NDEBUG
#define TLP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TLP_DCHECK(cond) TLP_CHECK(cond)
#endif
