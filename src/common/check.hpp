// Checked-assertion macros used across the library.
//
// TLP_CHECK is always on (release included) and throws tlp::CheckError so
// callers and tests can observe contract violations; TLP_DCHECK compiles out
// in NDEBUG builds and guards hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tlp {

/// Thrown when a TLP_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace tlp

#define TLP_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::tlp::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define TLP_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream tlp_check_os_;                              \
      tlp_check_os_ << msg;                                          \
      ::tlp::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  tlp_check_os_.str());              \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define TLP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TLP_DCHECK(cond) TLP_CHECK(cond)
#endif
