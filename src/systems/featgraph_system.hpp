// FeatGraph-like replica: TVM-generated kernels (§7.2). Fewer launches than
// DGL (it fuses per-model), but the Tensor Expression schedule cannot manage
// the vertex↔thread mapping freely — the generated kernels use small thread
// blocks, which caps resident warps at the hardware block-slot limit and
// yields the low achieved occupancy Figure 9 measures (41.2% vs TLPGNN's
// 68.2% on average).
#pragma once

#include "systems/system.hpp"

namespace tlp::systems {

class FeatgraphSystem final : public GnnSystem {
 public:
  [[nodiscard]] std::string name() const override { return "FeatGraph"; }

  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;
};

}  // namespace tlp::systems
