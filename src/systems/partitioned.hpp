// Partitioned execution of one TLPGNN convolution — the graceful-degradation
// path Engine::conv takes when the full-graph run throws tlp::OutOfMemory.
//
// The graph is split into k edge-balanced parts (graph::partition_greedy);
// each part runs as an independent device-sized job over its local subgraph
// (owned vertices plus the halo vertices their in-edges reference), and the
// owned output rows are scattered back into the global output matrix.
//
// Results are bit-identical to the unpartitioned run: local rows keep the
// exact global in-edge order (so float accumulation order is unchanged),
// owned vertices keep their global GCN norms via
// TlpgnnSystem::run_with_norm, and per-edge weights are gathered in global
// edge order.
#pragma once

#include "graph/csr.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp::systems {

/// Runs `spec` over `g` split into `k` parts. Each part resets `dev`, so the
/// per-part device footprint is what must fit the capacity limit; a part
/// that still does not fit propagates tlp::OutOfMemory to the caller (which
/// may retry with larger k). Metrics are aggregated across parts (times and
/// traffic sum; rates are gpu-time-weighted; peak memory is the max part).
RunResult run_partitioned(TlpgnnSystem& system, sim::Device& dev,
                          const graph::Csr& g, const tensor::Tensor& feat,
                          const models::ConvSpec& spec, int k);

}  // namespace tlp::systems
