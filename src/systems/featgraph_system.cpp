#include "systems/featgraph_system.hpp"

#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/fused_gat.hpp"
#include "kernels/spmm.hpp"
#include "kernels/subwarp_pull.hpp"

namespace tlp::systems {

using kernels::DeviceGraph;
using models::ModelKind;

namespace {

const OverheadModel kFeatgraphOverhead{.dispatch_us_per_kernel = 15.0,
                                       .framework_ms_per_kernel = 1.2};

// TVM's generated schedule binds one warp per block: resident warps are then
// capped by the 32-block SM slot limit (half the 64-warp capacity), the
// mechanistic source of FeatGraph's low achieved occupancy (Figure 9).
const sim::LaunchConfig kFeatgraphCfg{
    .assignment = sim::Assignment::kHardwareDynamic, .warps_per_block = 1};

// The Tensor Expression schedule also cannot freely remap vertices to
// threads (§7.2): the generated aggregation binds a fixed 8-thread tile per
// vertex, which only partially coalesces the feature gathers.
constexpr int kTvmLanesPerVertex = 8;

}  // namespace

RunResult FeatgraphSystem::run(sim::Device& dev, const graph::Csr& g,
                               const tensor::Tensor& feat,
                               const models::ConvSpec& spec) {
  TLP_CHECK_MSG(!spec.has_edge_weights(),
                "edge-weighted convolution is a TLPGNN extension");
  dev.reset_all();
  const std::int64_t f = feat.cols();
  const DeviceGraph dg = kernels::upload_graph(dev, g);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, feat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg.n * f);

  switch (spec.kind) {
    case ModelKind::kGcn:
    case ModelKind::kGin: {
      // Generated aggregation kernel plus the output layout kernel TVM
      // inserts around the library boundary.
      sim::DevPtr<float> tmp = dev.alloc_zeroed<float>(dg.n * f);
      kernels::SubwarpPullKernel agg(dg, dfeat, tmp, f,
                                     {spec.kind, spec.gin_eps},
                                     kTvmLanesPerVertex);
      dev.launch(agg, kFeatgraphCfg);
      kernels::CopyRowsKernel out_copy(tmp, dout, dg.n, f);
      dev.launch(out_copy, kFeatgraphCfg);
      break;
    }
    case ModelKind::kSage: {
      kernels::SubwarpPullKernel agg(dg, dfeat, dout, f,
                                     {spec.kind, spec.gin_eps},
                                     kTvmLanesPerVertex);
      dev.launch(agg, kFeatgraphCfg);
      break;
    }
    case ModelKind::kGat: {
      // Three kernels (§7.2): attention halves, materialized edge softmax,
      // weighted aggregation.
      const sim::DevPtr<float> asrc = dev.upload<float>(spec.gat.attn_src);
      const sim::DevPtr<float> adst = dev.upload<float>(spec.gat.attn_dst);
      sim::DevPtr<float> sh = dev.alloc_zeroed<float>(dg.n);
      sim::DevPtr<float> dh = dev.alloc_zeroed<float>(dg.n);
      sim::DevPtr<float> alpha = dev.alloc_zeroed<float>(dg.m);
      kernels::GatHalvesKernel halves(dfeat, asrc, adst, sh, dh, dg.n, f);
      dev.launch(halves, kFeatgraphCfg);
      kernels::GatSoftmaxKernel softmax(dg, sh, dh, alpha,
                                        spec.gat.leaky_slope);
      dev.launch(softmax, kFeatgraphCfg);
      kernels::SpmmKernel agg(dg, dfeat, dout, f,
                              kernels::SpmmKernel::Weighting::kEdgeArray,
                              alpha);
      dev.launch(agg, kFeatgraphCfg);
      break;
    }
  }

  tensor::Tensor out = kernels::download_features(dev, dout, dg.n, f);
  return finalize_run(dev, std::move(out), kFeatgraphOverhead);
}

}  // namespace tlp::systems
