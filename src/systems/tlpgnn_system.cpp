#include "systems/tlpgnn_system.hpp"

#include "kernels/apply_edge.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/fused_gat.hpp"
#include "kernels/gather_pull.hpp"
#include "kernels/spmm.hpp"

namespace tlp::systems {

using kernels::DeviceGraph;
using models::ModelKind;

sim::Assignment hybrid_heuristic(std::int64_t num_vertices,
                                 double avg_degree) {
  if (num_vertices > 1'000'000 || avg_degree > 50.0)
    return sim::Assignment::kSoftwarePool;
  return sim::Assignment::kHardwareDynamic;
}

RunResult TlpgnnSystem::run(sim::Device& dev, const graph::Csr& g,
                            const tensor::Tensor& feat,
                            const models::ConvSpec& spec) {
  return run_with_norm(dev, g, feat, spec, nullptr);
}

RunResult TlpgnnSystem::run_with_norm(sim::Device& dev, const graph::Csr& g,
                                      const tensor::Tensor& feat,
                                      const models::ConvSpec& spec,
                                      const std::vector<float>* norm_override) {
  dev.reset_all();
  const std::int64_t f = feat.cols();
  const DeviceGraph dg = kernels::upload_graph(dev, g, norm_override);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, feat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg.n * f);

  sim::LaunchConfig cfg;
  cfg.warps_per_block = opts_.warps_per_block;
  cfg.pool_step = opts_.pool_step;
  if (opts_.grid_blocks > 0) {
    // Fixed-grid sweep (Figure 11): a bounded warp set must cover all
    // vertices, which only the pool (or static) assignment can do.
    cfg.assignment = sim::Assignment::kSoftwarePool;
    cfg.grid_blocks = opts_.grid_blocks;
  } else if (opts_.hybrid_assignment) {
    cfg.assignment = hybrid_heuristic(g.num_vertices(), g.avg_degree());
  } else {
    cfg.assignment = sim::Assignment::kStaticChunk;
  }

  if (spec.kind == ModelKind::kGat) {
    // The attention halves el/er are by-products of the dense phase
    // (models::gat_halves) and arrive as kernel inputs, as in the original
    // TLPGNN implementation.
    const models::GatHalves halves = models::gat_halves(feat, spec.gat);
    const sim::DevPtr<float> dsh = dev.upload<float>(halves.src);
    const sim::DevPtr<float> ddh = dev.upload<float>(halves.dst);
    if (opts_.fused_gat) {
      kernels::FusedGatKernel k(dg, dfeat, dsh, ddh, dout, f,
                                spec.gat.leaky_slope, spec.gat.heads);
      dev.launch(k, cfg);
    } else {
      // Unfused fallback (the "-Fusion" ablation stage and Table 3's
      // "Three-Kernel" column): softmax kernel materializing per-edge
      // alphas, u_mul_e materializing E x F messages, then a sum — exactly
      // the global-memory round-trip fusion removes (§6).
      TLP_CHECK_MSG(spec.gat.heads == 1,
                    "the unfused GAT pipeline supports a single head");
      sim::DevPtr<float> alpha = dev.alloc_zeroed<float>(dg.m);
      kernels::GatSoftmaxKernel attn(dg, dsh, ddh, alpha,
                                     spec.gat.leaky_slope);
      dev.launch(attn, cfg);
      const kernels::DeviceCoo coo = kernels::upload_coo(dev, g);
      sim::DevPtr<float> msg = dev.alloc_zeroed<float>(dg.m * f);
      kernels::UMulEMaterializeKernel mat(coo, alpha, dfeat, msg, f);
      dev.launch(mat, cfg);
      kernels::SpmmKernel agg(dg, msg, dout, f,
                              kernels::SpmmKernel::Weighting::kMessages, {},
                              opts_.register_cache);
      dev.launch(agg, cfg);
    }
  } else {
    sim::DevPtr<float> ew{};
    if (spec.has_edge_weights()) {
      TLP_CHECK(static_cast<std::int64_t>(spec.edge_weights.size()) == dg.m);
      ew = dev.upload<float>(spec.edge_weights);
    }
    kernels::GatherPullKernel k(dg, dfeat, dout, f,
                                {spec.kind, spec.gin_eps},
                                opts_.register_cache, ew);
    dev.launch(k, cfg);
  }

  tensor::Tensor out =
      kernels::download_features(dev, dout, dg.n, f);
  return finalize_run(dev, std::move(out), opts_.overhead);
}

}  // namespace tlp::systems
