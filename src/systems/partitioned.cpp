#include "systems/partitioned.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "graph/partition.hpp"
#include "models/model.hpp"

namespace tlp::systems {

namespace {

using graph::EdgeOffset;
using graph::VertexId;

/// Partition-local job: subgraph + gathered inputs for one part. Unlike
/// graph::extract_partition (which sorts rows for the multi-GPU examples),
/// rows here keep the exact global in-edge order so that per-vertex float
/// accumulation is bit-identical to the full-graph run.
struct PartJob {
  graph::Csr csr;
  std::vector<VertexId> to_global;  ///< local id -> global id
  VertexId num_owned = 0;
  std::vector<float> norm;          ///< global GCN norms, gathered
  tensor::Tensor feat;              ///< gathered feature rows
  std::vector<float> edge_weights;  ///< gathered per-edge weights (may be empty)
};

PartJob build_part_job(const graph::Csr& g, const tensor::Tensor& feat,
                       const models::ConvSpec& spec,
                       const std::vector<float>& global_norm,
                       std::span<const int> part, int p,
                       std::vector<VertexId>& to_local) {
  PartJob job;
  const VertexId n = g.num_vertices();

  // Owned vertices first, in global order; halo ids follow in first-use
  // order while scanning owned rows.
  for (VertexId v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == p) {
      to_local[static_cast<std::size_t>(v)] =
          static_cast<VertexId>(job.to_global.size());
      job.to_global.push_back(v);
    }
  }
  job.num_owned = static_cast<VertexId>(job.to_global.size());
  for (VertexId i = 0; i < job.num_owned; ++i) {
    for (const VertexId u : g.neighbors(job.to_global[static_cast<std::size_t>(i)])) {
      if (to_local[static_cast<std::size_t>(u)] < 0) {
        to_local[static_cast<std::size_t>(u)] =
            static_cast<VertexId>(job.to_global.size());
        job.to_global.push_back(u);
      }
    }
  }
  const auto nloc = static_cast<VertexId>(job.to_global.size());

  // Local CSR: owned rows replicate the global rows (edge order preserved);
  // halo rows are empty.
  std::vector<EdgeOffset> indptr(static_cast<std::size_t>(nloc) + 1, 0);
  std::vector<VertexId> indices;
  for (VertexId i = 0; i < job.num_owned; ++i) {
    const VertexId gv = job.to_global[static_cast<std::size_t>(i)];
    indptr[static_cast<std::size_t>(i) + 1] =
        indptr[static_cast<std::size_t>(i)] + g.degree(gv);
    for (const VertexId u : g.neighbors(gv)) {
      indices.push_back(to_local[static_cast<std::size_t>(u)]);
    }
  }
  for (VertexId i = job.num_owned; i < nloc; ++i) {
    indptr[static_cast<std::size_t>(i) + 1] = indptr[static_cast<std::size_t>(i)];
  }
  job.csr = graph::Csr(std::move(indptr), std::move(indices));

  // Gather inputs into local id space.
  job.norm.reserve(static_cast<std::size_t>(nloc));
  job.feat = tensor::Tensor(nloc, feat.cols());
  for (VertexId i = 0; i < nloc; ++i) {
    const VertexId gv = job.to_global[static_cast<std::size_t>(i)];
    job.norm.push_back(global_norm[static_cast<std::size_t>(gv)]);
    const auto src = feat.row(gv);
    std::copy(src.begin(), src.end(), job.feat.row(i).begin());
  }
  if (spec.has_edge_weights()) {
    job.edge_weights.reserve(static_cast<std::size_t>(job.csr.num_edges()));
    for (VertexId i = 0; i < job.num_owned; ++i) {
      const VertexId gv = job.to_global[static_cast<std::size_t>(i)];
      const EdgeOffset lo = g.indptr()[static_cast<std::size_t>(gv)];
      const EdgeOffset hi = g.indptr()[static_cast<std::size_t>(gv) + 1];
      for (EdgeOffset e = lo; e < hi; ++e) {
        job.edge_weights.push_back(
            spec.edge_weights[static_cast<std::size_t>(e)]);
      }
    }
  }

  // Reset the scratch map for the next part.
  for (const VertexId gv : job.to_global) {
    to_local[static_cast<std::size_t>(gv)] = -1;
  }
  return job;
}

/// Sums additive metrics, gpu-time-weights the rate metrics, and keeps the
/// worst-case peak footprint.
void accumulate_metrics(sim::Metrics& total, const sim::Metrics& part) {
  const double wa = total.gpu_time_ms;
  const double wb = part.gpu_time_ms;
  const double wsum = wa + wb;
  const auto blend = [&](double a, double b) {
    return wsum > 0 ? (a * wa + b * wb) / wsum : 0.0;
  };
  total.sectors_per_request = blend(total.sectors_per_request,
                                    part.sectors_per_request);
  total.l1_hit_rate = blend(total.l1_hit_rate, part.l1_hit_rate);
  total.scoreboard_stall = blend(total.scoreboard_stall, part.scoreboard_stall);
  total.sm_utilization = blend(total.sm_utilization, part.sm_utilization);
  total.achieved_occupancy =
      blend(total.achieved_occupancy, part.achieved_occupancy);

  total.kernel_launches += part.kernel_launches;
  total.gpu_time_ms += part.gpu_time_ms;
  total.bytes_load += part.bytes_load;
  total.bytes_store += part.bytes_store;
  total.bytes_atomic += part.bytes_atomic;
  total.bytes_dram += part.bytes_dram;
  total.peak_device_bytes =
      std::max(total.peak_device_bytes, part.peak_device_bytes);
}

}  // namespace

RunResult run_partitioned(TlpgnnSystem& system, sim::Device& dev,
                          const graph::Csr& g, const tensor::Tensor& feat,
                          const models::ConvSpec& spec, int k) {
  TLP_CHECK_GE(k, 2);
  TLP_CHECK_EQ(feat.rows(), g.num_vertices());

  Timer prep;
  const graph::PartitionResult parts = graph::partition_greedy(g, k);
  const std::vector<float> global_norm = models::gcn_norm(g);
  const double partition_ms = prep.seconds() * 1e3;

  RunResult total;
  total.output = tensor::Tensor(g.num_vertices(), feat.cols());
  total.preprocessing_ms = partition_ms;
  std::vector<VertexId> to_local(static_cast<std::size_t>(g.num_vertices()),
                                 -1);
  int parts_run = 0;
  for (int p = 0; p < k; ++p) {
    const PartJob job =
        build_part_job(g, feat, spec, global_norm, parts.part, p, to_local);
    if (job.num_owned == 0) continue;  // greedy partitioning can leave gaps

    models::ConvSpec local_spec = spec;
    local_spec.edge_weights = job.edge_weights;
    RunResult r =
        system.run_with_norm(dev, job.csr, job.feat, local_spec, &job.norm);

    for (VertexId i = 0; i < job.num_owned; ++i) {
      const auto src = r.output.row(i);
      const auto dst =
          total.output.row(job.to_global[static_cast<std::size_t>(i)]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    accumulate_metrics(total.metrics, r.metrics);
    total.gpu_time_ms += r.gpu_time_ms;
    total.measured_ms += r.measured_ms;
    total.runtime_ms += r.runtime_ms;
    total.preprocessing_ms += r.preprocessing_ms;
    total.kernel_launches += r.kernel_launches;
    total.peak_device_bytes =
        std::max(total.peak_device_bytes, r.peak_device_bytes);
    ++parts_run;
  }
  TLP_CHECK_GT(parts_run, 0);
  total.degradation.degraded = true;
  total.degradation.partitions = parts_run;
  return total;
}

}  // namespace tlp::systems
