// Micro-baseline systems for §3's profiling study (Table 1) and the
// Figure 10 ablation baseline:
//   PushSystem        — push updating policy, atomic writes per out-edge
//   EdgeCentricSystem — X-Stream-style thread-per-edge, atomic scatter
//   PullSystem        — plain warp-per-vertex pull (atomic-free)
#pragma once

#include "systems/system.hpp"

namespace tlp::systems {

class PushSystem final : public GnnSystem {
 public:
  [[nodiscard]] std::string name() const override { return "Push"; }
  [[nodiscard]] bool supports(models::ModelKind kind,
                              bool /*big_graph*/) const override {
    return kind != models::ModelKind::kGat;  // GAT softmax cannot be pushed
  }
  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;
};

class EdgeCentricSystem final : public GnnSystem {
 public:
  [[nodiscard]] std::string name() const override { return "Edge"; }
  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;
};

class PullSystem final : public GnnSystem {
 public:
  [[nodiscard]] std::string name() const override { return "Pull"; }
  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;
};

}  // namespace tlp::systems
