// GnnSystem: the common interface all framework replicas implement.
//
// A system takes a graph + feature matrix + model spec, runs its kernel
// strategy on a simulated Device, and returns the convolution output together
// with the Nsight-style metrics. The four systems the paper compares — TLPGNN
// and the DGL-like / GNNAdvisor-like / FeatGraph-like replicas — plus the
// micro baselines (push / edge-centric / pull) all live behind this
// interface; see DESIGN.md §1 for what each replica preserves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "models/reference.hpp"
#include "sim/device.hpp"
#include "tensor/tensor.hpp"

namespace tlp::systems {

/// Host-side cost model of the framework wrapping the kernels.
struct OverheadModel {
  /// Per-kernel host dispatch cost visible in a tight measurement loop
  /// (CUDA driver + C++ glue). Included in `measured_ms` (Table 5 numbers).
  double dispatch_us_per_kernel = 10.0;
  /// Per-kernel framework cost (Python layer, tensor bookkeeping). The
  /// "Runtime - GPU time" gap of Table 3.
  double framework_ms_per_kernel = 0.3;
};

/// How a run that hit device OutOfMemory was completed anyway (Engine::conv
/// falls back to running the convolution over partitioned subgraphs).
struct Degradation {
  bool degraded = false;
  int partitions = 0;  ///< subgraphs the final successful attempt used
  int retries = 0;     ///< failed attempts before the successful one
  std::string reason;  ///< message of the error that triggered degradation
};

struct RunResult {
  tensor::Tensor output;
  sim::Metrics metrics;       ///< aggregated over this run's launches
  double gpu_time_ms = 0;     ///< kernel time + device launch overhead
  double measured_ms = 0;     ///< gpu_time + per-kernel dispatch (Table 5)
  double runtime_ms = 0;      ///< measured + framework overhead (Table 3)
  double preprocessing_ms = 0;  ///< host-side preprocessing (GNNAdvisor)
  int kernel_launches = 0;
  std::int64_t peak_device_bytes = 0;
  Degradation degradation;    ///< default: not degraded
};

class GnnSystem {
 public:
  virtual ~GnnSystem() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether this system can run the given model (GNNAdvisor implements only
  /// GCN and GIN) at the given scale (it crashed on the paper's four largest
  /// graphs; `big_graph` mirrors that support matrix).
  [[nodiscard]] virtual bool supports(models::ModelKind kind,
                                      bool big_graph) const {
    (void)kind;
    (void)big_graph;
    return true;
  }

  /// Runs one graph-convolution operation. Resets `dev` (memory + profile)
  /// at entry so the returned metrics cover exactly this run.
  virtual RunResult run(sim::Device& dev, const graph::Csr& g,
                        const tensor::Tensor& feat,
                        const models::ConvSpec& spec) = 0;
};

/// Collects output + metrics once a system's kernels have all been launched.
RunResult finalize_run(sim::Device& dev, tensor::Tensor output,
                       const OverheadModel& overhead);

/// Factory for every system by name: "tlpgnn", "dgl", "gnnadvisor",
/// "featgraph", "push", "edge", "pull". Throws CheckError on unknown names.
std::unique_ptr<GnnSystem> make_system(const std::string& name);

/// All comparable system names in Table 5 order.
std::vector<std::string> table5_system_names();

}  // namespace tlp::systems
