#include "systems/dgl_system.hpp"

#include <limits>

#include "kernels/apply_edge.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/spmm.hpp"
#include "sim/trace.hpp"

namespace tlp::systems {

using kernels::DeviceCoo;
using kernels::DeviceGraph;
using models::ModelKind;

namespace {

const OverheadModel kDglOverhead{.dispatch_us_per_kernel = 60.0,
                                 .framework_ms_per_kernel = 1.1};

// cuSPARSE-era DGL launches medium blocks for its SpMM.
const sim::LaunchConfig kDglCfg{.assignment = sim::Assignment::kHardwareDynamic,
                                .warps_per_block = 8};

struct Ctx {
  sim::Device& dev;
  DeviceGraph dg;
  sim::DevPtr<float> feat;
  std::int64_t f;

  sim::DevPtr<float> rows(const sim::AccessSite* site = nullptr) {
    return dev.alloc_zeroed<float>(dg.n * f,
                                   site != nullptr ? site
                                                   : TLP_SITE("dgl_rows"));
  }
  sim::DevPtr<float> vertex_scalars() {
    return dev.alloc_zeroed<float>(dg.n, TLP_SITE("dgl_vertex_scalars"));
  }
  sim::DevPtr<float> edge_scalars() {
    return dev.alloc_zeroed<float>(dg.m, TLP_SITE("dgl_edge_scalars"));
  }

  void copy(sim::DevPtr<float> in, sim::DevPtr<float> out) {
    kernels::CopyRowsKernel k(in, out, dg.n, f);
    dev.launch(k, kDglCfg);
  }
  void fill(sim::DevPtr<float> buf, std::int64_t rows_count,
            std::int64_t width, float v) {
    kernels::FillRowsKernel k(buf, rows_count, width, v);
    dev.launch(k, kDglCfg);
  }
};

// GCN, 6 kernels: format copy, norm scale, SpMM, self add, norm scale,
// format copy. out = norm_v * (Σ_u feat[u]*norm_u + feat[v]*norm_v).
sim::DevPtr<float> run_gcn(Ctx& c) {
  sim::DevPtr<float> x0 = c.rows();
  c.copy(c.feat, x0);  // (1) input format manipulation
  sim::DevPtr<float> x1 = c.rows();
  {
    kernels::RowScaleKernel k(x0, x1, c.f,
                              kernels::RowScaleKernel::Mode::kByVec, c.dg,
                              c.dg.norm);
    c.dev.launch(k, kDglCfg);  // (2) h * norm
  }
  sim::DevPtr<float> x2 = c.rows();
  {
    kernels::SpmmKernel k(c.dg, x1, x2, c.f,
                          kernels::SpmmKernel::Weighting::kSum);
    c.dev.launch(k, kDglCfg);  // (3) library SpMM
  }
  {
    kernels::AddScaledSelfKernel k(
        x1, x2, c.f, kernels::AddScaledSelfKernel::Mode::kConst, c.dg, 1.0f);
    c.dev.launch(k, kDglCfg);  // (4) self-loop term
  }
  sim::DevPtr<float> x3 = c.rows();
  {
    kernels::RowScaleKernel k(x2, x3, c.f,
                              kernels::RowScaleKernel::Mode::kByVec, c.dg,
                              c.dg.norm);
    c.dev.launch(k, kDglCfg);  // (5) * norm_v
  }
  sim::DevPtr<float> out = c.rows();
  c.copy(x3, out);  // (6) output format manipulation
  return out;
}

// GIN, 8 kernels.
sim::DevPtr<float> run_gin(Ctx& c, float eps) {
  sim::DevPtr<float> x0 = c.rows();
  c.copy(c.feat, x0);                       // (1) format
  sim::DevPtr<float> agg = c.rows();
  c.fill(agg, c.dg.n, c.f, 0.0f);           // (2) output allocation zeroing
  {
    kernels::SpmmKernel k(c.dg, x0, agg, c.f,
                          kernels::SpmmKernel::Weighting::kSum);
    c.dev.launch(k, kDglCfg);               // (3) SpMM
  }
  sim::DevPtr<float> scaled = c.rows();
  {
    kernels::RowScaleKernel k(x0, scaled, c.f,
                              kernels::RowScaleKernel::Mode::kByConst, c.dg,
                              {}, 1.0f + eps);
    c.dev.launch(k, kDglCfg);               // (4) (1+eps)*h
  }
  {
    kernels::AddScaledSelfKernel k(
        scaled, agg, c.f, kernels::AddScaledSelfKernel::Mode::kConst, c.dg,
        1.0f);
    c.dev.launch(k, kDglCfg);               // (5) sum the two branches
  }
  sim::DevPtr<float> x1 = c.rows();
  c.copy(agg, x1);                          // (6) format
  // The zeroed workspace is dispatched and then abandoned — part of DGL's
  // modeled 8-kernel GIN launch sequence (kernel_count pins it), so the
  // write-only lifetime finding is the replica being faithful, not a leak.
  sim::DevPtr<float> scratch = c.rows(TLP_SITE_SUPPRESS(
      "dgl_gin_workspace", "TLP-LIFE-007",
      "replica-faithful workspace: DGL's GIN pipeline zeroes a scratch "
      "buffer it never reads back; the extra launch is the modeled "
      "framework overhead and kernel_count() pins the sequence"));
  c.fill(scratch, c.dg.n, c.f, 0.0f);       // (7) workspace zeroing
  sim::DevPtr<float> out = c.rows();
  c.copy(x1, out);                          // (8) format
  return out;
}

// GraphSage (mean aggregator), 10 kernels: DGL splits the mean into
// copy_u-sum SpMM + degree division and wraps both sides in format kernels.
sim::DevPtr<float> run_sage(Ctx& c) {
  sim::DevPtr<float> x0 = c.rows();
  c.copy(c.feat, x0);                       // (1) format
  sim::DevPtr<float> agg = c.rows();
  c.fill(agg, c.dg.n, c.f, 0.0f);           // (2) zero output
  {
    kernels::SpmmKernel k(c.dg, x0, agg, c.f,
                          kernels::SpmmKernel::Weighting::kSum);
    c.dev.launch(k, kDglCfg);               // (3) copy_u sum SpMM
  }
  sim::DevPtr<float> mean = c.rows();
  {
    kernels::RowScaleKernel k(agg, mean, c.f,
                              kernels::RowScaleKernel::Mode::kByInvDegree,
                              c.dg, {});
    c.dev.launch(k, kDglCfg);               // (4) divide by degree
  }
  sim::DevPtr<float> self = c.rows();
  c.copy(c.feat, self);                     // (5) self-branch format copy
  sim::DevPtr<float> zero = c.rows();
  c.fill(zero, c.dg.n, c.f, 0.0f);          // (6) workspace zeroing
  {
    kernels::AddScaledSelfKernel k(
        zero, mean, c.f, kernels::AddScaledSelfKernel::Mode::kConst, c.dg,
        1.0f);
    c.dev.launch(k, kDglCfg);               // (7) (no-op combine branch)
  }
  sim::DevPtr<float> x1 = c.rows();
  c.copy(mean, x1);                         // (8) format
  sim::DevPtr<float> out = c.rows();
  c.copy(x1, out);                          // (9) format
  c.fill(zero, c.dg.n, c.f, 0.0f);          // (10) workspace release zeroing
  return out;
}

// GAT, 18 kernels, with the E x F message materialization that dominates
// Table 3's memory usage.
sim::DevPtr<float> run_gat(Ctx& c, const models::GatParams& gat,
                           const DeviceCoo& coo) {
  const sim::DevPtr<float> asrc = c.dev.upload<float>(gat.attn_src);
  const sim::DevPtr<float> adst = c.dev.upload<float>(gat.attn_dst);

  sim::DevPtr<float> x0 = c.rows();
  c.copy(c.feat, x0);                       // (1) format
  sim::DevPtr<float> sh = c.vertex_scalars();
  {
    kernels::VertexDotKernel k(x0, asrc, sh, c.dg.n, c.f);
    c.dev.launch(k, kDglCfg);               // (2) el = a_src . h
  }
  sim::DevPtr<float> dh = c.vertex_scalars();
  {
    kernels::VertexDotKernel k(x0, adst, dh, c.dg.n, c.f);
    c.dev.launch(k, kDglCfg);               // (3) er = a_dst . h
  }
  sim::DevPtr<float> logit = c.edge_scalars();
  {
    kernels::EdgeLogitKernel k(coo, sh, dh, logit, gat.leaky_slope);
    c.dev.launch(k, kDglCfg);               // (4) SDDMM add + leaky_relu
  }
  sim::DevPtr<float> vmax = c.vertex_scalars();
  c.fill(vmax, c.dg.n, 1,
         -std::numeric_limits<float>::infinity());  // (5) init max
  {
    kernels::SegmentReduceKernel k(c.dg, logit, vmax,
                                   kernels::SegmentReduceKernel::Op::kMax);
    c.dev.launch(k, kDglCfg);               // (6) edge softmax: segment max
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kSubDst, logit,
                             vmax);
    c.dev.launch(k, kDglCfg);               // (7) subtract max
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kExp, logit,
                             {});
    c.dev.launch(k, kDglCfg);               // (8) exp
  }
  sim::DevPtr<float> denom = c.vertex_scalars();
  {
    kernels::SegmentReduceKernel k(c.dg, logit, denom,
                                   kernels::SegmentReduceKernel::Op::kSum);
    c.dev.launch(k, kDglCfg);               // (9) segment sum
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kDivDst, logit,
                             denom);
    c.dev.launch(k, kDglCfg);               // (10) normalize alphas
  }
  sim::DevPtr<float> alpha2 = c.edge_scalars();
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kCopy, logit,
                             {}, alpha2);
    c.dev.launch(k, kDglCfg);               // (11) alpha format copy
  }
  // The message path materializes E x F twice: copy_u gathers the source
  // features into per-edge messages, then the broadcast multiply scales them
  // by alpha — the intermediates behind Table 3's global-memory usage.
  sim::DevPtr<float> msg0 =
      c.dev.alloc_zeroed<float>(c.dg.m * c.f, TLP_SITE("dgl_edge_messages"));
  {
    kernels::UMulEMaterializeKernel k(coo, /*w=*/{}, x0, msg0, c.f);
    c.dev.launch(k, kDglCfg);               // (12) copy_u: E x F messages
  }
  sim::DevPtr<float> msg =
      c.dev.alloc_zeroed<float>(c.dg.m * c.f, TLP_SITE("dgl_edge_messages"));
  {
    kernels::ScaleRowsByVecKernel k(msg0, msg, alpha2, c.dg.m, c.f);
    c.dev.launch(k, kDglCfg);               // (13) e_mul broadcast: E x F
  }
  sim::DevPtr<float> agg = c.rows();
  c.fill(agg, c.dg.n, c.f, 0.0f);           // (14) zero output
  {
    kernels::SpmmKernel k(c.dg, msg, agg, c.f,
                          kernels::SpmmKernel::Weighting::kMessages);
    c.dev.launch(k, kDglCfg);               // (15) sum messages
  }
  sim::DevPtr<float> x1 = c.rows();
  c.copy(agg, x1);                          // (16) format
  // Same story as GIN's scratch: an 18th-kernel workspace zeroing whose
  // output nothing consumes — modeled DGL dispatch overhead, not a leak.
  sim::DevPtr<float> scratch = c.rows(TLP_SITE_SUPPRESS(
      "dgl_gat_workspace", "TLP-LIFE-007",
      "replica-faithful workspace: DGL's GAT pipeline zeroes a scratch "
      "buffer it never reads back; the extra launch is the modeled "
      "framework overhead and kernel_count() pins the sequence"));
  c.fill(scratch, c.dg.n, c.f, 0.0f);       // (17) workspace zeroing
  sim::DevPtr<float> out = c.rows();
  c.copy(x1, out);                          // (18) format
  return out;
}

}  // namespace

int DglSystem::kernel_count(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcn:
      return 6;
    case ModelKind::kGin:
      return 8;
    case ModelKind::kSage:
      return 10;
    case ModelKind::kGat:
      return 18;
  }
  return 0;
}

RunResult DglSystem::run(sim::Device& dev, const graph::Csr& g,
                         const tensor::Tensor& feat,
                         const models::ConvSpec& spec) {
  TLP_CHECK_MSG(!spec.has_edge_weights(),
                "edge-weighted convolution is a TLPGNN extension");
  dev.reset_all();
  Ctx c{dev, kernels::upload_graph(dev, g), kernels::upload_features(dev, feat),
        feat.cols()};
  sim::DevPtr<float> out{};
  switch (spec.kind) {
    case ModelKind::kGcn:
      out = run_gcn(c);
      break;
    case ModelKind::kGin:
      out = run_gin(c, spec.gin_eps);
      break;
    case ModelKind::kSage:
      out = run_sage(c);
      break;
    case ModelKind::kGat: {
      const DeviceCoo coo = kernels::upload_coo(dev, g);
      out = run_gat(c, spec.gat, coo);
      break;
    }
  }
  TLP_CHECK(dev.profiler().records().size() ==
            static_cast<std::size_t>(kernel_count(spec.kind)));
  tensor::Tensor host_out = kernels::download_features(dev, out, c.dg.n, c.f);
  return finalize_run(dev, std::move(host_out), kDglOverhead);
}

}  // namespace tlp::systems
