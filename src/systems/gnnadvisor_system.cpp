#include "systems/gnnadvisor_system.hpp"

#include "common/timer.hpp"
#include "graph/reorder.hpp"
#include "kernels/advisor_groups.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"

namespace tlp::systems {

using kernels::DeviceGraph;
using models::ModelKind;

namespace {

const OverheadModel kAdvisorOverhead{.dispatch_us_per_kernel = 110.0,
                                     .framework_ms_per_kernel = 0.9};

const sim::LaunchConfig kAdvisorCfg{
    .assignment = sim::Assignment::kHardwareDynamic, .warps_per_block = 8};

}  // namespace

RunResult GnnAdvisorSystem::run(sim::Device& dev, const graph::Csr& g,
                                const tensor::Tensor& feat,
                                const models::ConvSpec& spec) {
  TLP_CHECK_MSG(supports(spec.kind, false),
                "GNNAdvisor replica supports GCN and GIN only");
  TLP_CHECK_MSG(!spec.has_edge_weights(),
                "edge-weighted convolution is a TLPGNN extension");
  dev.reset_all();
  const std::int64_t f = feat.cols();

  // --- preprocessing (host, timed separately) ------------------------------
  Timer prep;
  const graph::Permutation order = graph::bfs_order(g);
  const graph::Csr rg = graph::apply_permutation(g, order);
  const kernels::NeighborGroups groups =
      kernels::build_neighbor_groups(rg, opts_.group_size);
  const double preprocessing_ms = prep.millis();

  // Features follow the permutation: new row i holds old row order[i].
  tensor::Tensor rfeat(feat.rows(), f);
  for (graph::VertexId v = 0; v < rg.num_vertices(); ++v) {
    const auto src = feat.row(order[static_cast<std::size_t>(v)]);
    auto dst = rfeat.row(v);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  const DeviceGraph dg = kernels::upload_graph(dev, rg);
  const kernels::DeviceGroups dgroups = kernels::upload_groups(dev, groups);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, rfeat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg.n * f);

  {
    kernels::FillRowsKernel fill(dout, dg.n, f, 0.0f);
    dev.launch(fill, kAdvisorCfg);
  }
  {
    kernels::AdvisorGroupKernel agg(dg, dgroups, dfeat, dout, f,
                                    {spec.kind, spec.gin_eps});
    dev.launch(agg, kAdvisorCfg);
  }
  {
    const auto mode = spec.kind == ModelKind::kGcn
                          ? kernels::AddScaledSelfKernel::Mode::kNormSquared
                          : kernels::AddScaledSelfKernel::Mode::kConst;
    kernels::AddScaledSelfKernel self(dfeat, dout, f, mode, dg,
                                      1.0f + spec.gin_eps);
    dev.launch(self, kAdvisorCfg);
  }

  // Un-permute the output back to the caller's vertex ids.
  const tensor::Tensor rout = kernels::download_features(dev, dout, dg.n, f);
  tensor::Tensor out(feat.rows(), f);
  for (graph::VertexId v = 0; v < rg.num_vertices(); ++v) {
    const auto src = rout.row(v);
    auto dst = out.row(order[static_cast<std::size_t>(v)]);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  RunResult r = finalize_run(dev, std::move(out), kAdvisorOverhead);
  r.preprocessing_ms = preprocessing_ms;
  return r;
}

}  // namespace tlp::systems
