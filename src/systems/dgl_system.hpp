// DGL-like replica: the cuSPARSE-backed multi-kernel pipelines (§7.2).
//
// DGL expresses each model's convolution as a sequence of library SpMM/SDDMM
// calls plus the data-format manipulation kernels needed around them,
// materializing every intermediate in global memory. The replica launches
// exactly the paper's kernel counts — 6 (GCN), 8 (GIN), 10 (GraphSage),
// 18 (GAT) — with the corresponding intermediate allocations, which is where
// Table 3's memory-usage and traffic numbers come from.
#pragma once

#include "systems/system.hpp"

namespace tlp::systems {

class DglSystem final : public GnnSystem {
 public:
  [[nodiscard]] std::string name() const override { return "DGL"; }

  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;

  /// Kernel-launch count of the replica pipeline for a model (6/8/10/18).
  static int kernel_count(models::ModelKind kind);
};

}  // namespace tlp::systems
