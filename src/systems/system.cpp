#include "systems/system.hpp"

#include "common/check.hpp"
#include "systems/baseline_systems.hpp"
#include "systems/dgl_system.hpp"
#include "systems/featgraph_system.hpp"
#include "systems/gnnadvisor_system.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp::systems {

RunResult finalize_run(sim::Device& dev, tensor::Tensor output,
                       const OverheadModel& overhead) {
  RunResult r;
  r.output = std::move(output);
  r.metrics = dev.metrics();
  r.kernel_launches = r.metrics.kernel_launches;
  r.peak_device_bytes = r.metrics.peak_device_bytes;
  r.gpu_time_ms = r.metrics.gpu_time_ms;
  r.measured_ms = r.gpu_time_ms +
                  r.kernel_launches * overhead.dispatch_us_per_kernel * 1e-3;
  r.runtime_ms = r.measured_ms +
                 r.kernel_launches * overhead.framework_ms_per_kernel;
  return r;
}

std::unique_ptr<GnnSystem> make_system(const std::string& name) {
  if (name == "tlpgnn") return std::make_unique<TlpgnnSystem>();
  if (name == "dgl") return std::make_unique<DglSystem>();
  if (name == "gnnadvisor") return std::make_unique<GnnAdvisorSystem>();
  if (name == "featgraph") return std::make_unique<FeatgraphSystem>();
  if (name == "push") return std::make_unique<PushSystem>();
  if (name == "edge") return std::make_unique<EdgeCentricSystem>();
  if (name == "pull") return std::make_unique<PullSystem>();
  TLP_CHECK_MSG(false, "unknown system '" << name << "'");
  __builtin_unreachable();
}

std::vector<std::string> table5_system_names() {
  return {"dgl", "gnnadvisor", "featgraph", "tlpgnn"};
}

}  // namespace tlp::systems
