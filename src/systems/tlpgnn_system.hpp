// TLPGNN — the paper's system. Warp-per-vertex + feature-per-lane two-level
// parallelism, hybrid dynamic workload assignment (§5), kernel fusion and
// register caching (§6). One kernel for every model, no preprocessing.
//
// The option flags expose each technique for the Figure 10 ablation and the
// Figure 11/12 scalability sweeps.
#pragma once

#include "systems/system.hpp"

namespace tlp::systems {

struct TlpgnnOptions {
  /// Figure 10 stages: false = static contiguous chunking ("TLP" only);
  /// true = the §5 hybrid hardware/software dynamic assignment ("+Hybrid").
  bool hybrid_assignment = true;
  /// Register caching of index bounds + accumulator (§6, "+Cache").
  bool register_cache = true;
  /// Kernel fusion for GAT (§6, "+Fusion"); false = three-kernel GAT.
  bool fused_gat = true;
  /// Warps per block (512 threads by default, the paper's setting).
  int warps_per_block = 16;
  /// Items per software-pool grab (Algorithm 1's step).
  int pool_step = 16;
  /// If > 0, fixes the grid size (Figure 11's thread sweep) and forces the
  /// software-pool assignment so the fixed warp set covers all vertices.
  int grid_blocks = 0;

  OverheadModel overhead{.dispatch_us_per_kernel = 8.0,
                         .framework_ms_per_kernel = 0.5};
};

/// The §5 heuristic: software-based assignment when |V| > 1M or the average
/// degree exceeds 50, hardware-based otherwise.
sim::Assignment hybrid_heuristic(std::int64_t num_vertices, double avg_degree);

class TlpgnnSystem final : public GnnSystem {
 public:
  TlpgnnSystem() = default;
  explicit TlpgnnSystem(TlpgnnOptions opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "TLPGNN"; }

  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;

  /// run() with an externally supplied GCN normalization vector. The
  /// partitioned-fallback path needs this: a subgraph's owned vertices must
  /// keep their *global* norms (and halo vertices have no local in-edges at
  /// all), so recomputing norms from the local CSR would change results.
  RunResult run_with_norm(sim::Device& dev, const graph::Csr& g,
                          const tensor::Tensor& feat,
                          const models::ConvSpec& spec,
                          const std::vector<float>* norm_override);

  [[nodiscard]] const TlpgnnOptions& options() const { return opts_; }

 private:
  TlpgnnOptions opts_;
};

}  // namespace tlp::systems
