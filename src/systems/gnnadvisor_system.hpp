// GNNAdvisor-like replica (§7.2): locality-improving vertex reordering plus
// fixed-size neighbor-group workload management, with atomic combines across
// a vertex's groups (the Figure 8 traffic). Reordering and group building
// are host-side preprocessing, timed separately — the overhead TLPGNN's
// design eliminates.
//
// Mirrors the paper's support matrix: GCN and GIN only, and unavailable on
// the four largest graphs (GNNAdvisor hit illegal CUDA memory accesses
// there, shown as "-" in Table 5).
#pragma once

#include "systems/system.hpp"

namespace tlp::systems {

struct GnnAdvisorOptions {
  int group_size = 16;  ///< neighbors per group (GNNAdvisor's default scale)
};

class GnnAdvisorSystem final : public GnnSystem {
 public:
  GnnAdvisorSystem() = default;
  explicit GnnAdvisorSystem(GnnAdvisorOptions opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "GNNAdvisor"; }

  [[nodiscard]] bool supports(models::ModelKind kind,
                              bool big_graph) const override {
    const bool model_ok = kind == models::ModelKind::kGcn ||
                          kind == models::ModelKind::kGin;
    return model_ok && !big_graph;
  }

  RunResult run(sim::Device& dev, const graph::Csr& g,
                const tensor::Tensor& feat,
                const models::ConvSpec& spec) override;

 private:
  GnnAdvisorOptions opts_;
};

}  // namespace tlp::systems
