#include "systems/baseline_systems.hpp"

#include <limits>

#include "kernels/apply_edge.hpp"
#include "kernels/apply_vertex.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/edge_centric.hpp"
#include "kernels/fused_gat.hpp"
#include "kernels/gather_pull.hpp"
#include "kernels/push_atomic.hpp"

namespace tlp::systems {

using kernels::DeviceCoo;
using kernels::DeviceGraph;
using models::ModelKind;

namespace {

const OverheadModel kMicroOverhead{.dispatch_us_per_kernel = 10.0,
                                   .framework_ms_per_kernel = 0.3};

/// Epilogue shared by the atomic strategies: self term for GCN/GIN, mean
/// rescale for Sage. Launched against the pull-direction graph.
void launch_epilogue(sim::Device& dev, const DeviceGraph& pull_dg,
                     sim::DevPtr<float> dfeat, sim::DevPtr<float> dout,
                     std::int64_t f, const models::ConvSpec& spec,
                     const sim::LaunchConfig& cfg) {
  switch (spec.kind) {
    case ModelKind::kGcn: {
      kernels::AddScaledSelfKernel k(
          dfeat, dout, f, kernels::AddScaledSelfKernel::Mode::kNormSquared,
          pull_dg);
      dev.launch(k, cfg);
      break;
    }
    case ModelKind::kGin: {
      kernels::AddScaledSelfKernel k(
          dfeat, dout, f, kernels::AddScaledSelfKernel::Mode::kConst, pull_dg,
          1.0f + spec.gin_eps);
      dev.launch(k, cfg);
      break;
    }
    case ModelKind::kSage: {
      kernels::RowScaleKernel k(dout, dout, f,
                                kernels::RowScaleKernel::Mode::kByInvDegree,
                                pull_dg, {});
      dev.launch(k, cfg);
      break;
    }
    case ModelKind::kGat:
      break;  // handled by the dedicated pipeline
  }
}

/// Edge-centric GAT: the multi-kernel atomic pipeline a framework without
/// fusion or vertex parallelism would write (Figure 10d's baseline).
void run_edge_gat(sim::Device& dev, const DeviceGraph& dg, const DeviceCoo& coo,
                  sim::DevPtr<float> dfeat, sim::DevPtr<float> dout,
                  std::int64_t f, const models::GatParams& gat,
                  const models::GatHalves& halves,
                  const sim::LaunchConfig& cfg) {
  // Attention halves arrive from the dense phase, as for TLPGNN, so the
  // comparison isolates the edge-centric pipeline itself.
  const sim::DevPtr<float> sh = dev.upload<float>(halves.src);
  const sim::DevPtr<float> dh = dev.upload<float>(halves.dst);
  sim::DevPtr<float> logit = dev.alloc_zeroed<float>(dg.m);
  sim::DevPtr<float> vmax = dev.alloc_zeroed<float>(dg.n);
  sim::DevPtr<float> denom = dev.alloc_zeroed<float>(dg.n);

  kernels::EdgeLogitKernel logits(coo, sh, dh, logit, gat.leaky_slope);
  dev.launch(logits, cfg);
  {
    kernels::FillRowsKernel fill(vmax, dg.n, 1,
                                 -std::numeric_limits<float>::infinity());
    dev.launch(fill, cfg);
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kAtomicMaxDst,
                             logit, vmax);
    dev.launch(k, cfg);
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kSubDst, logit,
                             vmax);
    dev.launch(k, cfg);
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kExp, logit,
                             {});
    dev.launch(k, cfg);
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kAtomicAddDst,
                             logit, denom);
    dev.launch(k, cfg);
  }
  {
    kernels::EdgeMapKernel k(coo, kernels::EdgeMapKernel::Mode::kDivDst, logit,
                             denom);
    dev.launch(k, cfg);
  }
  kernels::EdgeWeightedAggKernel agg(coo, logit, dfeat, dout, f);
  dev.launch(agg, cfg);
}

}  // namespace

RunResult PushSystem::run(sim::Device& dev, const graph::Csr& g,
                          const tensor::Tensor& feat,
                          const models::ConvSpec& spec) {
  TLP_CHECK(supports(spec.kind, false));
  dev.reset_all();
  const std::int64_t f = feat.cols();
  // Push walks out-edges but GCN weights still come from in-degrees.
  const std::vector<float> pull_norm = models::gcn_norm(g);
  const graph::Csr out_csr = g.reversed();
  const DeviceGraph dg_out = kernels::upload_graph(dev, out_csr, &pull_norm);
  const DeviceGraph dg_pull = kernels::upload_graph(dev, g);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, feat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg_out.n * f);

  const sim::LaunchConfig cfg;  // hardware dynamic, 16 warps/block
  {
    kernels::FillRowsKernel fill(dout, dg_out.n, f, 0.0f);
    dev.launch(fill, cfg);
  }
  kernels::PushKernel push(dg_out, dfeat, dout, f, {spec.kind, spec.gin_eps});
  dev.launch(push, cfg);
  // GCN/GIN self terms were already pushed by the kernel itself; only Sage
  // still needs its mean rescale.
  if (spec.kind == ModelKind::kSage)
    launch_epilogue(dev, dg_pull, dfeat, dout, f, spec, cfg);
  tensor::Tensor out = kernels::download_features(dev, dout, dg_out.n, f);
  return finalize_run(dev, std::move(out), kMicroOverhead);
}

RunResult EdgeCentricSystem::run(sim::Device& dev, const graph::Csr& g,
                                 const tensor::Tensor& feat,
                                 const models::ConvSpec& spec) {
  dev.reset_all();
  const std::int64_t f = feat.cols();
  const DeviceGraph dg = kernels::upload_graph(dev, g);
  const DeviceCoo coo = kernels::upload_coo(dev, g);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, feat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg.n * f);

  const sim::LaunchConfig cfg;
  {
    kernels::FillRowsKernel fill(dout, dg.n, f, 0.0f);
    dev.launch(fill, cfg);
  }
  if (spec.kind == ModelKind::kGat) {
    run_edge_gat(dev, dg, coo, dfeat, dout, f, spec.gat,
                 models::gat_halves(feat, spec.gat), cfg);
  } else {
    kernels::EdgeCentricAggKernel agg(coo, dg.norm, dfeat, dout, f,
                                      {spec.kind, spec.gin_eps});
    dev.launch(agg, cfg);
    launch_epilogue(dev, dg, dfeat, dout, f, spec, cfg);
  }
  tensor::Tensor out = kernels::download_features(dev, dout, dg.n, f);
  return finalize_run(dev, std::move(out), kMicroOverhead);
}

RunResult PullSystem::run(sim::Device& dev, const graph::Csr& g,
                          const tensor::Tensor& feat,
                          const models::ConvSpec& spec) {
  dev.reset_all();
  const std::int64_t f = feat.cols();
  const DeviceGraph dg = kernels::upload_graph(dev, g);
  const sim::DevPtr<float> dfeat = kernels::upload_features(dev, feat);
  sim::DevPtr<float> dout = dev.alloc_zeroed<float>(dg.n * f);
  const sim::LaunchConfig cfg;
  if (spec.kind == ModelKind::kGat) {
    const models::GatHalves halves = models::gat_halves(feat, spec.gat);
    const sim::DevPtr<float> dsh = dev.upload<float>(halves.src);
    const sim::DevPtr<float> ddh = dev.upload<float>(halves.dst);
    kernels::FusedGatKernel k(dg, dfeat, dsh, ddh, dout, f,
                              spec.gat.leaky_slope, spec.gat.heads);
    dev.launch(k, cfg);
  } else {
    kernels::GatherPullKernel k(dg, dfeat, dout, f, {spec.kind, spec.gin_eps});
    dev.launch(k, cfg);
  }
  tensor::Tensor out = kernels::download_features(dev, dout, dg.n, f);
  return finalize_run(dev, std::move(out), kMicroOverhead);
}

}  // namespace tlp::systems
