// Per-kernel counters collected while kernels execute on the simulator, plus
// the derived Nsight-style metrics the paper reports (§2.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tlp::sim {

/// Raw accounting for one kernel launch. Functional execution fills the
/// traffic/latency fields; the scheduler fills the elapsed/occupancy fields.
struct KernelRecord {
  std::string name;

  // --- execution shape -----------------------------------------------------
  std::int64_t warps = 0;
  std::int64_t blocks = 0;
  int warps_per_block = 0;

  // --- issue & latency (summed over warps) ---------------------------------
  double issue_cycles = 0;      ///< warp-instructions issued
  double mem_stall_cycles = 0;  ///< raw load-to-use latency accumulated
  double atomic_stall_cycles = 0;

  // --- memory system ---------------------------------------------------
  std::int64_t requests = 0;  ///< warp-level global memory requests
  std::int64_t sectors = 0;   ///< 32 B sectors those requests touched
  std::int64_t bytes_load = 0;    ///< L1-miss load traffic (L1<->L2 bus)
  std::int64_t bytes_store = 0;   ///< store traffic (write-through L1)
  std::int64_t bytes_atomic = 0;  ///< atomic traffic (bypasses L1)
  std::int64_t bytes_dram = 0;    ///< L2-miss traffic
  std::int64_t l1_accesses = 0, l1_hits = 0;
  std::int64_t l2_accesses = 0, l2_hits = 0;
  std::int64_t atomic_ops = 0;

  // --- timing (scheduler output) -------------------------------------------
  double elapsed_cycles = 0;
  double resident_warp_integral = 0;  ///< ∫ resident warps dt, all SMs
  double launch_overhead_us = 0;      ///< device-side launch cost

  void merge_traffic_from(const KernelRecord& other);
};

/// Metrics aggregated over one or more kernel launches — the quantities
/// Tables 1–3 and Figures 8–9 print.
struct Metrics {
  int kernel_launches = 0;
  double gpu_time_ms = 0;  ///< sum of kernel elapsed + device launch overhead

  double bytes_load = 0;
  double bytes_store = 0;
  double bytes_atomic = 0;
  double bytes_dram = 0;

  double sectors_per_request = 0;
  double l1_hit_rate = 0;
  /// Average memory-stall cycles per issued warp-instruction ("stall for
  /// long scoreboard" in the paper's tables).
  double scoreboard_stall = 0;
  /// Fraction of issue slots used while kernels were resident.
  double sm_utilization = 0;
  /// Time-weighted resident warps / max resident warps.
  double achieved_occupancy = 0;

  std::int64_t peak_device_bytes = 0;
};

/// Collects KernelRecords for a sequence of launches and derives Metrics.
class Profiler {
 public:
  KernelRecord& begin_kernel(std::string name);
  [[nodiscard]] const std::vector<KernelRecord>& records() const {
    return records_;
  }
  [[nodiscard]] KernelRecord& current() { return records_.back(); }

  /// Aggregate metrics over all recorded launches. `spec_*` arguments come
  /// from the GpuSpec that produced the records.
  [[nodiscard]] Metrics aggregate(double clock_ghz, int num_sms,
                                  int issue_width, int warps_per_sm) const;

  void reset() { records_.clear(); }

 private:
  std::vector<KernelRecord> records_;
};

}  // namespace tlp::sim
