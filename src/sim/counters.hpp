// Per-kernel counters collected while kernels execute on the simulator, plus
// the derived Nsight-style metrics the paper reports (§2.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tlp::sim {

/// Raw accounting for one kernel launch. Functional execution fills the
/// traffic/latency fields; the scheduler fills the elapsed/occupancy fields.
struct KernelRecord {
  std::string name;

  // --- execution shape -----------------------------------------------------
  std::int64_t warps = 0;
  std::int64_t blocks = 0;
  int warps_per_block = 0;

  // --- issue & latency (summed over warps) ---------------------------------
  double issue_cycles = 0;      ///< warp-instructions issued
  double mem_stall_cycles = 0;  ///< raw load-to-use latency accumulated
  double atomic_stall_cycles = 0;

  // --- memory system ---------------------------------------------------
  std::int64_t requests = 0;  ///< warp-level global memory requests
  std::int64_t sectors = 0;   ///< 32 B sectors those requests touched
  std::int64_t bytes_load = 0;    ///< L1-miss load traffic (L1<->L2 bus)
  std::int64_t bytes_store = 0;   ///< store traffic (write-through L1)
  std::int64_t bytes_atomic = 0;  ///< atomic traffic (bypasses L1)
  std::int64_t bytes_dram = 0;    ///< L2-miss traffic
  std::int64_t l1_accesses = 0, l1_hits = 0;
  std::int64_t l2_accesses = 0, l2_hits = 0;
  std::int64_t atomic_ops = 0;

  // --- timing (scheduler output) -------------------------------------------
  double elapsed_cycles = 0;
  double resident_warp_integral = 0;  ///< ∫ resident warps dt, all SMs
  double launch_overhead_us = 0;      ///< device-side launch cost

  void merge_traffic_from(const KernelRecord& other);
};

/// Metrics aggregated over one or more kernel launches — the quantities
/// Tables 1–3 and Figures 8–9 print, and the values tlpbench serializes
/// into the `tlpbench-v1` JSON schema (DESIGN.md §9). Each field names the
/// Nsight Compute / Systems metric it stands in for, so numbers read off a
/// real profiler line up one-to-one with the simulated counters.
struct Metrics {
  /// Count of device kernel launches. Nsight Systems: rows in the CUDA
  /// kernel trace (`cudaLaunchKernel` count). Unit: launches.
  int kernel_launches = 0;
  /// Sum of kernel elapsed time plus device-side launch overhead. Nsight
  /// Compute: `gpu__time_duration.sum` summed over launches. Unit: ms.
  double gpu_time_ms = 0;

  /// Global load traffic that missed L1 (the L1<->L2 bus). Nsight Compute:
  /// `l1tex__m_xbar2l1tex_read_bytes.sum`. Unit: bytes.
  double bytes_load = 0;
  /// Store traffic through the write-through L1. Nsight Compute:
  /// `l1tex__m_l1tex2xbar_write_bytes.sum`. Unit: bytes.
  double bytes_store = 0;
  /// Atomic/reduction traffic (bypasses L1, serializes on conflicts — the
  /// quantity Figure 8 plots). Nsight Compute:
  /// `l1tex__t_bytes_pipe_lsu_mem_global_op_red.sum` (+`_op_atom`).
  /// Unit: bytes.
  double bytes_atomic = 0;
  /// Traffic that missed L2 and reached device memory. Nsight Compute:
  /// `dram__bytes.sum`. Unit: bytes.
  double bytes_dram = 0;

  /// Average 32 B sectors touched per warp-level global memory request —
  /// the coalescing quality metric of Table 2 (1 = perfectly coalesced 32 b
  /// loads ≈ 4, scattered ≈ 32). Nsight Compute:
  /// `l1tex__average_t_sectors_per_request_pipe_lsu_mem_global_op_ld`.
  /// Unit: sectors/request.
  double sectors_per_request = 0;
  /// Fraction of L1 global-load accesses served from L1. Nsight Compute:
  /// `l1tex__t_sector_hit_rate.pct` (as a fraction here). Unit: 0..1.
  double l1_hit_rate = 0;
  /// Average memory-stall cycles per issued warp-instruction ("stall long
  /// scoreboard" in the paper's tables — waiting on an outstanding global
  /// load). Nsight Compute:
  /// `smsp__average_warp_latency_issue_stalled_long_scoreboard`.
  /// Unit: cycles/instruction.
  double scoreboard_stall = 0;
  /// Fraction of issue slots used while kernels were resident. Nsight
  /// Compute: `smsp__issue_active.avg.pct_of_peak_sustained_elapsed`
  /// (as a fraction here). Unit: 0..1.
  double sm_utilization = 0;
  /// Time-weighted resident warps / max resident warps — Figure 9's metric.
  /// Nsight Compute: `sm__warps_active.avg.pct_of_peak_sustained_active`
  /// (as a fraction here). Unit: 0..1.
  double achieved_occupancy = 0;

  /// High-water mark of device allocations. CUDA analogue: `cudaMemGetInfo`
  /// delta (or `nvidia-smi` memory at peak). Unit: bytes.
  std::int64_t peak_device_bytes = 0;

  /// Feature-gather rows served from the serving tier's pinned cache region
  /// (serve::FeatureCache). Nsight Compute analogue: `dram__bytes_read.sum`
  /// scoped to the cache allocation — device-local, coalesced. Zero unless
  /// a cache is attached. Unit: bytes.
  double bytes_cache_hit = 0;
  /// Feature-gather rows that missed the cache and crossed the host link.
  /// Nsight Systems analogue: H2D memcpy bytes on the PCIe timeline for the
  /// serving session. Zero unless a cache is attached. Unit: bytes.
  double bytes_cache_miss = 0;
};

/// Collects KernelRecords for a sequence of launches and derives Metrics.
class Profiler {
 public:
  KernelRecord& begin_kernel(std::string name);
  [[nodiscard]] const std::vector<KernelRecord>& records() const {
    return records_;
  }
  [[nodiscard]] KernelRecord& current() { return records_.back(); }

  /// Aggregate metrics over all recorded launches. `spec_*` arguments come
  /// from the GpuSpec that produced the records.
  [[nodiscard]] Metrics aggregate(double clock_ghz, int num_sms,
                                  int issue_width, int warps_per_sm) const;

  void reset() { records_.clear(); }

 private:
  std::vector<KernelRecord> records_;
};

}  // namespace tlp::sim
