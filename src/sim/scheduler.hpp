// Discrete-event kernel scheduler: executes a WarpKernel functionally and
// reconstructs elapsed GPU time from the per-warp costs, the SM slot
// structure, and whole-GPU throughput floors (DESIGN.md §4).
#pragma once

#include "sim/counters.hpp"
#include "sim/kernel.hpp"
#include "sim/warp.hpp"

namespace tlp::sim {

/// Runs `kernel` on the simulated GPU under `cfg`, filling `rec` with both
/// the traffic counters (from functional execution) and the timing fields.
/// `sys.rec` is pointed at `rec` for the duration of the call.
void run_kernel(MemorySystem& sys, WarpKernel& kernel, const LaunchConfig& cfg,
                KernelRecord& rec);

}  // namespace tlp::sim
