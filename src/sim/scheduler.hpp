// Discrete-event kernel scheduler: executes a WarpKernel functionally and
// reconstructs elapsed GPU time from the per-warp costs, the SM slot
// structure, and whole-GPU throughput floors (DESIGN.md §4).
#pragma once

#include "sim/counters.hpp"
#include "sim/kernel.hpp"
#include "sim/warp.hpp"

namespace tlp::sim {

/// Runs `kernel` on the simulated GPU under `cfg`, filling `rec` with both
/// the traffic counters (from functional execution) and the timing fields.
/// `sys.rec` is pointed at `rec` for the duration of the call.
void run_kernel(MemorySystem& sys, WarpKernel& kernel, const LaunchConfig& cfg,
                KernelRecord& rec);

/// Resident blocks per SM for a given block width: the minimum of the
/// hardware block-slot limit, the warp-slot limit, and the thread-slot limit
/// (max_threads_per_sm / (warp_size * warps_per_block)). Exposed for the
/// occupancy regression tests; the run_* scheduling loops use it to size the
/// block-slot pool.
[[nodiscard]] int resident_blocks_per_sm(const GpuSpec& spec,
                                         int warps_per_block);

}  // namespace tlp::sim
