#include "sim/warp.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.hpp"

namespace tlp::sim {

MemorySystem::MemorySystem(const GpuSpec& s)
    : spec(s), l2(s.l2_bytes, s.line_bytes, s.l2_ways) {
  l1.reserve(static_cast<std::size_t>(s.num_sms));
  for (int i = 0; i < s.num_sms; ++i)
    l1.emplace_back(s.l1_bytes, s.line_bytes, s.l1_ways);
}

void MemorySystem::reset_caches() {
  for (auto& c : l1) c.reset();
  l2.reset();
}

namespace {

struct LineEntry {
  std::uint64_t line;
  std::uint32_t sector_mask;
};

}  // namespace

void WarpCtx::request(const std::array<std::uint64_t, kWarpSize>& addr, Mask m,
                      int bytes_per_lane, Op op, bool scalar) {
  if (m == 0) return;
  auto& sys = *sys_;
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;

  if (sys.trace != nullptr) {
    TraceAccess ta;
    ta.warp = warp_id_;
    ta.item = item_;
    ta.site = site_ != nullptr ? site_->id : 0;
    ta.slot = slot_;
    ta.kind = op == Op::kLoad    ? AccessKind::kLoad
              : op == Op::kStore ? AccessKind::kStore
                                 : AccessKind::kAtomic;
    ta.bytes = static_cast<std::uint8_t>(bytes_per_lane);
    ta.scalar = scalar;
    ta.mask = m;
    ta.addr = addr;
    sys.trace->record(ta);
  }
  ++slot_;

  // Dedupe lane addresses into 128 B lines with per-line 32 B sector masks.
  // Accesses are element-aligned, so a lane never straddles a sector.
  std::array<LineEntry, kWarpSize> lines;
  int nlines = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    const std::uint64_t a = addr[l];
    const std::uint64_t line = a >> 7;
    const auto sector_bit = std::uint32_t{1}
                            << ((a >> 5) & 3u);  // sector within line
    // Consecutive lanes usually share the previous entry — check it first.
    int found = -1;
    if (nlines > 0 && lines[static_cast<std::size_t>(nlines - 1)].line == line) {
      found = nlines - 1;
    } else {
      for (int i = 0; i < nlines - 1; ++i) {
        if (lines[static_cast<std::size_t>(i)].line == line) {
          found = i;
          break;
        }
      }
    }
    if (found < 0) {
      lines[static_cast<std::size_t>(nlines++)] = {line, sector_bit};
    } else {
      lines[static_cast<std::size_t>(found)].sector_mask |= sector_bit;
    }
  }

  // The second+ lane of a multi-byte element touches the same sector; with
  // bytes_per_lane == 8 the mask above is still right because elements are
  // 8-byte aligned. (Asserted in debug builds.)
  (void)bytes_per_lane;

  rec.requests += 1;
  issue_ += 1;  // the ld/st instruction itself

  double worst_latency = 0;
  std::int64_t miss_l1_sectors = 0;
  std::int64_t miss_l2_sectors = 0;
  std::int64_t total_sectors = 0;
  for (int i = 0; i < nlines; ++i) {
    const auto& e = lines[static_cast<std::size_t>(i)];
    const int nsec = std::popcount(e.sector_mask);
    total_sectors += nsec;
    const std::uint64_t probe_addr = e.line << 7;
    bool l1_hit = false, l2_hit = false;
    if (op == Op::kAtomic) {
      // Global atomics resolve at the L2 atomic units and bypass L1.
      if (sys.model_caches) {
        rec.l2_accesses++;
        l2_hit = sys.l2.access(probe_addr);
        if (l2_hit) rec.l2_hits++;
      }
      miss_l1_sectors += nsec;
      if (!l2_hit) miss_l2_sectors += nsec;
      worst_latency = std::max(worst_latency, spec.atomic_latency);
      continue;
    }
    if (sys.model_caches) {
      rec.l1_accesses++;
      l1_hit = sys.l1[static_cast<std::size_t>(sm_)].access(probe_addr);
      if (l1_hit) {
        rec.l1_hits++;
      } else {
        rec.l2_accesses++;
        l2_hit = sys.l2.access(probe_addr);
        if (l2_hit) rec.l2_hits++;
      }
    }
    if (!l1_hit) miss_l1_sectors += nsec;
    if (!l1_hit && !l2_hit) miss_l2_sectors += nsec;
    if (op == Op::kLoad) {
      const double lat = l1_hit ? spec.l1_latency
                                : (l2_hit ? spec.l2_latency : spec.dram_latency);
      worst_latency = std::max(worst_latency, lat);
    }
  }

  rec.sectors += total_sectors;
  const std::int64_t sector_bytes =
      static_cast<std::int64_t>(spec.sector_bytes);
  switch (op) {
    case Op::kLoad:
      rec.bytes_load += miss_l1_sectors * sector_bytes;
      // Loads pipeline a few deep before the scoreboard stalls the warp.
      mem_ += worst_latency / spec.load_pipeline_depth;
      break;
    case Op::kStore:
      // Write-through L1: every store sector crosses the L1<->L2 bus.
      rec.bytes_store += total_sectors * sector_bytes;
      // Stores retire without stalling the warp.
      break;
    case Op::kAtomic:
      rec.bytes_atomic += total_sectors * sector_bytes;
      mem_ += worst_latency;  // atomics serialize; no pipelining
      break;
  }
  rec.bytes_dram += miss_l2_sectors * sector_bytes;
}

WVec<float> WarpCtx::load_f32(DevPtr<float> base,
                              const WVec<std::int64_t>& idx, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  WVec<float> out{};
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    addr[static_cast<std::size_t>(l)] = base.addr(idx[static_cast<std::size_t>(l)]);
    out[static_cast<std::size_t>(l)] =
        sys_->mem.read<float>(addr[static_cast<std::size_t>(l)]);
  }
  request(addr, m, 4, Op::kLoad);
  return out;
}

WVec<std::int32_t> WarpCtx::load_i32(DevPtr<std::int32_t> base,
                                     const WVec<std::int64_t>& idx, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  WVec<std::int32_t> out{};
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    addr[static_cast<std::size_t>(l)] = base.addr(idx[static_cast<std::size_t>(l)]);
    out[static_cast<std::size_t>(l)] =
        sys_->mem.read<std::int32_t>(addr[static_cast<std::size_t>(l)]);
  }
  request(addr, m, 4, Op::kLoad);
  return out;
}

WVec<std::int64_t> WarpCtx::load_i64(DevPtr<std::int64_t> base,
                                     const WVec<std::int64_t>& idx, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  WVec<std::int64_t> out{};
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    addr[static_cast<std::size_t>(l)] = base.addr(idx[static_cast<std::size_t>(l)]);
    out[static_cast<std::size_t>(l)] =
        sys_->mem.read<std::int64_t>(addr[static_cast<std::size_t>(l)]);
  }
  request(addr, m, 8, Op::kLoad);
  return out;
}

void WarpCtx::store_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                        const WVec<float>& val, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    addr[static_cast<std::size_t>(l)] = base.addr(idx[static_cast<std::size_t>(l)]);
    sys_->mem.write<float>(addr[static_cast<std::size_t>(l)],
                           val[static_cast<std::size_t>(l)]);
    note_store(addr[static_cast<std::size_t>(l)], 4, /*atomic=*/false);
  }
  request(addr, m, 4, Op::kStore);
}

void WarpCtx::atomic_add_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                             const WVec<float>& val, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  // Apply the adds; count the worst per-address lane multiplicity, which the
  // atomic units must serialize (replay cost).
  int worst_conflict = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    const std::uint64_t a = base.addr(idx[static_cast<std::size_t>(l)]);
    addr[static_cast<std::size_t>(l)] = a;
    const float old = sys_->mem.read<float>(a);
    sys_->mem.write<float>(a, old + val[static_cast<std::size_t>(l)]);
    note_store(a, 4, /*atomic=*/true);
    int conflicts = 0;
    for (int k = 0; k < l; ++k) {
      if (lane_active(m, k) && addr[static_cast<std::size_t>(k)] == a) ++conflicts;
    }
    worst_conflict = std::max(worst_conflict, conflicts);
  }
  request(addr, m, 4, Op::kAtomic);
  sys_->rec->atomic_ops += std::popcount(m);
  const double replay =
      static_cast<double>(worst_conflict) * sys_->spec.atomic_replay_cycles;
  mem_ += replay;
  sys_->rec->atomic_stall_cycles += replay;
}

void WarpCtx::atomic_max_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                             const WVec<float>& val, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  int worst_conflict = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!lane_active(m, l)) continue;
    const std::uint64_t a = base.addr(idx[static_cast<std::size_t>(l)]);
    addr[static_cast<std::size_t>(l)] = a;
    const float old = sys_->mem.read<float>(a);
    sys_->mem.write<float>(a,
                           std::max(old, val[static_cast<std::size_t>(l)]));
    note_store(a, 4, /*atomic=*/true);
    int conflicts = 0;
    for (int k = 0; k < l; ++k) {
      if (lane_active(m, k) && addr[static_cast<std::size_t>(k)] == a) ++conflicts;
    }
    worst_conflict = std::max(worst_conflict, conflicts);
  }
  request(addr, m, 4, Op::kAtomic);
  sys_->rec->atomic_ops += std::popcount(m);
  const double replay =
      static_cast<double>(worst_conflict) * sys_->spec.atomic_replay_cycles;
  mem_ += replay;
  sys_->rec->atomic_stall_cycles += replay;
}

float WarpCtx::load_scalar_f32(DevPtr<float> base, std::int64_t idx) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  const float v = sys_->mem.read<float>(addr[0]);
  request(addr, 0x1u, 4, Op::kLoad, /*scalar=*/true);
  return v;
}

std::int32_t WarpCtx::load_scalar_i32(DevPtr<std::int32_t> base,
                                      std::int64_t idx) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  const auto v = sys_->mem.read<std::int32_t>(addr[0]);
  request(addr, 0x1u, 4, Op::kLoad, /*scalar=*/true);
  return v;
}

std::int64_t WarpCtx::load_scalar_i64(DevPtr<std::int64_t> base,
                                      std::int64_t idx) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  const auto v = sys_->mem.read<std::int64_t>(addr[0]);
  request(addr, 0x1u, 8, Op::kLoad, /*scalar=*/true);
  return v;
}

void WarpCtx::store_scalar_f32(DevPtr<float> base, std::int64_t idx, float v) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  sys_->mem.write<float>(addr[0], v);
  note_store(addr[0], 4, /*atomic=*/false);
  request(addr, 0x1u, 4, Op::kStore, /*scalar=*/true);
}

std::uint32_t WarpCtx::atomic_add_u32(DevPtr<std::uint32_t> base,
                                      std::int64_t idx, std::uint32_t add) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  const auto old = sys_->mem.read<std::uint32_t>(addr[0]);
  sys_->mem.write<std::uint32_t>(addr[0], old + add);
  note_store(addr[0], 4, /*atomic=*/true);
  request(addr, 0x1u, 4, Op::kAtomic, /*scalar=*/true);
  sys_->rec->atomic_ops += 1;
  return old;
}

float WarpCtx::atomic_add_scalar_f32(DevPtr<float> base, std::int64_t idx,
                                     float v) {
  std::array<std::uint64_t, kWarpSize> addr{};
  addr[0] = base.addr(idx);
  const float old = sys_->mem.read<float>(addr[0]);
  sys_->mem.write<float>(addr[0], old + v);
  note_store(addr[0], 4, /*atomic=*/true);
  request(addr, 0x1u, 4, Op::kAtomic, /*scalar=*/true);
  sys_->rec->atomic_ops += 1;
  return old;
}

float WarpCtx::reduce_sum(const WVec<float>& v, Mask m) {
  charge_alu(10);  // 5 butterfly shuffles + 5 adds
  float s = 0.0f;
  for (int l = 0; l < kWarpSize; ++l) {
    if (lane_active(m, l)) s += v[static_cast<std::size_t>(l)];
  }
  return s;
}

float WarpCtx::reduce_max(const WVec<float>& v, Mask m) {
  charge_alu(10);
  float best = -std::numeric_limits<float>::infinity();
  for (int l = 0; l < kWarpSize; ++l) {
    if (lane_active(m, l))
      best = std::max(best, v[static_cast<std::size_t>(l)]);
  }
  return best;
}

}  // namespace tlp::sim
