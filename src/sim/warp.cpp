#include "sim/warp.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.hpp"

namespace tlp::sim {

MemorySystem::MemorySystem(const GpuSpec& s)
    : spec(s), l2(s.l2_bytes, s.line_bytes, s.l2_ways) {
  l1.reserve(static_cast<std::size_t>(s.num_sms));
  for (int i = 0; i < s.num_sms; ++i)
    l1.emplace_back(s.l1_bytes, s.line_bytes, s.l1_ways);
}

void MemorySystem::reset_caches() {
  for (auto& c : l1) c.reset();
  l2.reset();
}

namespace {

/// Fibonacci hash into the 64-slot dedup table. A warp touches at most 32
/// distinct lines per request, so the table is never more than half full and
/// linear probing always terminates.
inline std::uint32_t hash64(std::uint64_t key) {
  return static_cast<std::uint32_t>((key * 0x9E3779B97F4A7C15ull) >> 58);
}

}  // namespace

void WarpCtx::record_trace(const std::array<std::uint64_t, kWarpSize>& addr,
                           Mask m, int bytes_per_lane, Op op, bool scalar) {
  TraceAccess ta;
  ta.warp = warp_id_;
  ta.item = item_;
  ta.site = site_ != nullptr ? site_->id : 0;
  ta.slot = slot_;
  ta.kind = op == Op::kLoad    ? AccessKind::kLoad
            : op == Op::kStore ? AccessKind::kStore
                               : AccessKind::kAtomic;
  ta.bytes = static_cast<std::uint8_t>(bytes_per_lane);
  ta.scalar = scalar;
  ta.mask = m;
  ta.addr = addr;
  sys_->trace->record(ta);
}

void WarpCtx::request_one_line(std::uint64_t line0, std::uint32_t smask,
                               Op op) {
  auto& sys = *sys_;
  if (sys.tier != TimingTier::kMechanistic) [[unlikely]] {
    analytical_one_line(line0, smask, op);
    return;
  }
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;
  rec.requests += 1;
  issue_ += 1;
  const int nsec = std::popcount(smask);
  rec.sectors += nsec;
  const std::int64_t bytes = nsec * static_cast<std::int64_t>(spec.sector_bytes);
  const std::uint64_t probe_addr = line0 << 7;
  bool l1_hit = false, l2_hit = false;
  if (op == Op::kAtomic) {
    if (sys.model_caches) {
      rec.l2_accesses++;
      l2_hit = sys.l2.access(probe_addr);
      if (l2_hit) rec.l2_hits++;
    }
    rec.bytes_atomic += bytes;
    if (!l2_hit) rec.bytes_dram += bytes;
    mem_ += spec.atomic_latency;
    return;
  }
  if (sys.model_caches) {
    rec.l1_accesses++;
    l1_hit = sys.l1[static_cast<std::size_t>(sm_)].access(probe_addr);
    if (l1_hit) {
      rec.l1_hits++;
    } else {
      rec.l2_accesses++;
      l2_hit = sys.l2.access(probe_addr);
      if (l2_hit) rec.l2_hits++;
    }
  }
  if (op == Op::kLoad) {
    if (!l1_hit) rec.bytes_load += bytes;
    const double lat = l1_hit ? spec.l1_latency
                              : (l2_hit ? spec.l2_latency : spec.dram_latency);
    mem_ += lat / spec.load_pipeline_depth;
  } else {
    rec.bytes_store += bytes;
  }
  if (!l1_hit && !l2_hit) rec.bytes_dram += bytes;
}

void WarpCtx::request(const std::array<std::uint64_t, kWarpSize>& addr, Mask m,
                      int bytes_per_lane, Op op, bool scalar) {
  if (m == 0) return;
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(addr, m, bytes_per_lane, op, scalar);
  ++slot_;
  (void)bytes_per_lane;

  // Single-line fast path: in the TLPGNN kernels the most common vector
  // access by far is a warp reading or writing one contiguous 128 B feature
  // row (unit stride), so every active lane falls in the same line. Detect
  // that with a branchless full-warp scan (no serial mask walk, no dedup
  // table) and run the one-line accounting directly; scattered requests fall
  // through to the general dedup. Inactive `addr` entries are
  // zero-initialized by the callers, so scanning all 32 lanes is safe.
  // (The load/store entry points fuse this same scan into their lane loops
  // and skip request() entirely; this path serves the atomics.)
  const std::uint64_t line0 =
      addr[static_cast<std::size_t>(std::countr_zero(m))] >> 7;
  std::uint64_t off_line = 0;  // nonzero if any active lane leaves line0
  std::uint32_t smask = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    const std::uint64_t a = addr[static_cast<std::size_t>(l)];
    const std::uint64_t act = (m >> l) & 1u;
    off_line |= ((a >> 7) ^ line0) & (0 - act);
    smask |= static_cast<std::uint32_t>(act) << ((a >> 5) & 3u);
  }
  if (off_line == 0) {
    request_one_line(line0, smask, op);
    return;
  }
  request_general(addr, m, op);
}

void WarpCtx::request_general(const std::array<std::uint64_t, kWarpSize>& addr,
                              Mask m, Op op) {
  // Dedupe lane addresses into 128 B lines with per-line 32 B sector masks,
  // preserving first-occurrence order (the caches are probed in this order,
  // so it is part of the observable LRU behavior). Consecutive lanes usually
  // share the previous entry — check it first; everything else goes through
  // a 64-slot open-addressing table instead of a linear rescan.
  std::array<SectorLine, kWarpSize> lines;
  std::array<std::uint8_t, 64> slot_of{};  // index into `lines`
  std::uint64_t used = 0;                  // occupied `slot_of` entries
  int nlines = 0;
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    const int l = std::countr_zero(rem);
    const std::uint64_t a = addr[static_cast<std::size_t>(l)];
    const std::uint64_t line = a >> 7;
    const auto sector_bit = std::uint32_t{1}
                            << ((a >> 5) & 3u);  // sector within line
    if (nlines > 0 && lines[static_cast<std::size_t>(nlines - 1)].line == line) {
      lines[static_cast<std::size_t>(nlines - 1)].sectors |= sector_bit;
      continue;
    }
    std::uint32_t h = hash64(line);
    int found = -1;
    while ((used >> h) & 1u) {
      const auto i = slot_of[h];
      if (lines[i].line == line) {
        found = i;
        break;
      }
      h = (h + 1) & 63u;
    }
    if (found < 0) {
      used |= std::uint64_t{1} << h;
      slot_of[h] = static_cast<std::uint8_t>(nlines);
      lines[static_cast<std::size_t>(nlines++)] = {line, sector_bit};
    } else {
      lines[static_cast<std::size_t>(found)].sectors |= sector_bit;
    }
  }

  // The second+ lane of a multi-byte element touches the same sector; with
  // bytes_per_lane == 8 the mask above is still right because elements are
  // 8-byte aligned.
  request_lines(lines.data(), nlines, op);
}

void WarpCtx::request_lines(const SectorLine* lines, int nlines, Op op) {
  auto& sys = *sys_;
  if (sys.tier != TimingTier::kMechanistic) [[unlikely]] {
    analytical_lines(lines, nlines, op);
    return;
  }
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;
  rec.requests += 1;
  issue_ += 1;  // the ld/st instruction itself

  double worst_latency = 0;
  std::int64_t miss_l1_sectors = 0;
  std::int64_t miss_l2_sectors = 0;
  std::int64_t total_sectors = 0;
  if (op == Op::kAtomic) {
    // Global atomics resolve at the L2 atomic units and bypass L1.
    for (int i = 0; i < nlines; ++i) {
      const auto& e = lines[static_cast<std::size_t>(i)];
      const int nsec = std::popcount(e.sectors);
      total_sectors += nsec;
      bool l2_hit = false;
      if (sys.model_caches) {
        rec.l2_accesses++;
        l2_hit = sys.l2.access(e.line << 7);
        if (l2_hit) rec.l2_hits++;
      }
      miss_l1_sectors += nsec;
      if (!l2_hit) miss_l2_sectors += nsec;
    }
    worst_latency = spec.atomic_latency;
  } else {
    SetAssocCache& l1 = sys.l1[static_cast<std::size_t>(sm_)];
    for (int i = 0; i < nlines; ++i) {
      const auto& e = lines[static_cast<std::size_t>(i)];
      const int nsec = std::popcount(e.sectors);
      total_sectors += nsec;
      bool l1_hit = false, l2_hit = false;
      if (sys.model_caches) {
        rec.l1_accesses++;
        l1_hit = l1.access(e.line << 7);
        if (l1_hit) {
          rec.l1_hits++;
        } else {
          rec.l2_accesses++;
          l2_hit = sys.l2.access(e.line << 7);
          if (l2_hit) rec.l2_hits++;
        }
      }
      if (!l1_hit) miss_l1_sectors += nsec;
      if (!l1_hit && !l2_hit) miss_l2_sectors += nsec;
      if (op == Op::kLoad) {
        const double lat =
            l1_hit ? spec.l1_latency
                   : (l2_hit ? spec.l2_latency : spec.dram_latency);
        worst_latency = std::max(worst_latency, lat);
      }
    }
  }

  rec.sectors += total_sectors;
  const std::int64_t sector_bytes =
      static_cast<std::int64_t>(spec.sector_bytes);
  switch (op) {
    case Op::kLoad:
      rec.bytes_load += miss_l1_sectors * sector_bytes;
      // Loads pipeline a few deep before the scoreboard stalls the warp.
      mem_ += worst_latency / spec.load_pipeline_depth;
      break;
    case Op::kStore:
      // Write-through L1: every store sector crosses the L1<->L2 bus.
      rec.bytes_store += total_sectors * sector_bytes;
      // Stores retire without stalling the warp.
      break;
    case Op::kAtomic:
      rec.bytes_atomic += total_sectors * sector_bytes;
      mem_ += worst_latency;  // atomics serialize; no pipelining
      break;
  }
  rec.bytes_dram += miss_l2_sectors * sector_bytes;
}

void WarpCtx::request_span(std::uint64_t first_addr, std::uint64_t last_addr,
                           Op op) {
  // A contiguous element range touches every sector between its endpoints,
  // so the per-line sector masks are closed-form: bits sector(first)..3 of
  // the first line, 0..sector(last) of the last. At most 32 4-byte elements
  // the range spans at most two 128 B lines; the two-line split matches the
  // first-occurrence probe order of the general dedup (ascending address).
  const std::uint64_t line0 = first_addr >> 7;
  const std::uint64_t line1 = last_addr >> 7;
  const auto s0 = static_cast<std::uint32_t>((first_addr >> 5) & 3u);
  const auto s1 = static_cast<std::uint32_t>((last_addr >> 5) & 3u);
  if (line0 == line1) {
    request_one_line(line0, (2u << s1) - (1u << s0), op);
    return;
  }
  const SectorLine lines[2] = {{line0, 0xFu - ((1u << s0) - 1u)},
                               {line1, (2u << s1) - 1u}};
  request_lines(lines, 2, op);
}

void WarpCtx::request_scalar(std::uint64_t a, int bytes_per_lane, Op op) {
  auto& sys = *sys_;
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;

  if (sys.trace != nullptr) [[unlikely]] {
    std::array<std::uint64_t, kWarpSize> addr{};
    addr[0] = a;
    record_trace(addr, 0x1u, bytes_per_lane, op, /*scalar=*/true);
  }
  ++slot_;

  if (sys.tier != TimingTier::kMechanistic) [[unlikely]] {
    // One sector in one line — the one-line twin with a single-bit mask.
    analytical_one_line(a >> 7, 0x1u, op);
    return;
  }

  // One active lane: exactly one 128 B line with one 32 B sector.
  rec.requests += 1;
  issue_ += 1;

  const std::uint64_t probe_addr = (a >> 7) << 7;
  const std::int64_t sector_bytes =
      static_cast<std::int64_t>(spec.sector_bytes);
  rec.sectors += 1;

  bool l1_hit = false, l2_hit = false;
  if (op == Op::kAtomic) {
    if (sys.model_caches) {
      rec.l2_accesses++;
      l2_hit = sys.l2.access(probe_addr);
      if (l2_hit) rec.l2_hits++;
    }
    rec.bytes_atomic += sector_bytes;
    if (!l2_hit) rec.bytes_dram += sector_bytes;
    mem_ += spec.atomic_latency;
    return;
  }
  if (sys.model_caches) {
    rec.l1_accesses++;
    l1_hit = sys.l1[static_cast<std::size_t>(sm_)].access(probe_addr);
    if (l1_hit) {
      rec.l1_hits++;
    } else {
      rec.l2_accesses++;
      l2_hit = sys.l2.access(probe_addr);
      if (l2_hit) rec.l2_hits++;
    }
  }
  if (op == Op::kLoad) {
    if (!l1_hit) rec.bytes_load += sector_bytes;
    const double lat = l1_hit ? spec.l1_latency
                              : (l2_hit ? spec.l2_latency : spec.dram_latency);
    mem_ += lat / spec.load_pipeline_depth;
  } else {
    rec.bytes_store += sector_bytes;
  }
  if (!l1_hit && !l2_hit) rec.bytes_dram += sector_bytes;
}

// --- analytical-tier accounting twins ---------------------------------------
// One O(1) note per request instead of per-line tag probes. The functional
// counters (requests, sectors, bytes_store, bytes_atomic, issue) and the
// exact atomic latency match the mechanistic twins bit for bit; loads carry
// a provisional flat L2-latency charge that AnalyticalTiming::finalize()
// swaps for the expectation under the derived hit mix at kernel end.

void WarpCtx::analytical_one_line(std::uint64_t line0, std::uint32_t smask,
                                  Op op) {
  auto& sys = *sys_;
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;
  rec.requests += 1;
  issue_ += 1;
  const int nsec = std::popcount(smask);
  rec.sectors += nsec;
  const std::int64_t bytes =
      nsec * static_cast<std::int64_t>(spec.sector_bytes);
  AnalyticalRegion& r =
      sys.analytical.region(site_ != nullptr ? site_->id : 0);
  switch (op) {
    case Op::kLoad:
      r.load.note(1, nsec, line0, line0);
      mem_ += spec.l2_latency / spec.load_pipeline_depth;
      break;
    case Op::kStore:
      r.store.note(1, nsec, line0, line0);
      rec.bytes_store += bytes;
      break;
    case Op::kAtomic:
      r.atomic.note(1, nsec, line0, line0);
      rec.bytes_atomic += bytes;
      mem_ += spec.atomic_latency;
      break;
  }
}

void WarpCtx::analytical_lines(const SectorLine* lines, int nlines, Op op) {
  auto& sys = *sys_;
  KernelRecord& rec = *sys.rec;
  const GpuSpec& spec = sys.spec;
  rec.requests += 1;
  issue_ += 1;
  int nsec = 0;
  std::uint64_t lo = ~std::uint64_t{0};
  std::uint64_t hi = 0;
  for (int i = 0; i < nlines; ++i) {
    const auto& e = lines[static_cast<std::size_t>(i)];
    nsec += std::popcount(e.sectors);
    lo = std::min(lo, e.line);
    hi = std::max(hi, e.line);
  }
  rec.sectors += nsec;
  const std::int64_t bytes =
      nsec * static_cast<std::int64_t>(spec.sector_bytes);
  AnalyticalRegion& r =
      sys.analytical.region(site_ != nullptr ? site_->id : 0);
  switch (op) {
    case Op::kLoad:
      r.load.note(nlines, nsec, lo, hi);
      mem_ += spec.l2_latency / spec.load_pipeline_depth;
      break;
    case Op::kStore:
      r.store.note(nlines, nsec, lo, hi);
      rec.bytes_store += bytes;
      break;
    case Op::kAtomic:
      r.atomic.note(nlines, nsec, lo, hi);
      rec.bytes_atomic += bytes;
      mem_ += spec.atomic_latency;
      break;
  }
}

// The vector load/store entry points fuse the single-line scan into the
// per-lane data-movement loop (line0/off_line/smask stay in registers — no
// re-read of the 256 B address array) and call the one-line accounting
// directly when every active lane lands in one line; only genuinely
// scattered requests build the address array's dedup structures. The L1 tag
// set for line0 is host-prefetched as soon as the first address is known so
// the probe's memory access overlaps the rest of the lane loop. Counter and
// cost effects are byte-identical to routing through request().

template <class T>
WVec<T> WarpCtx::load_vec(DevPtr<T> base, const WVec<std::int64_t>& idx,
                          Mask m) {
  WVec<T> out{};
  if (m == 0) return out;
  std::array<std::uint64_t, kWarpSize> addr{};
  const auto& mem = sys_->mem;
  std::uint64_t line0 = 0;
  std::uint64_t off_line = 0;  // nonzero if any active lane leaves line0
  std::uint32_t smask = 0;
  if (m == kFullMask) {
    // Full warp: a plain counted loop unrolls and pipelines better than the
    // mask walk (no serial dependency on the remaining-lanes word). The
    // visit order is lane-ascending either way, so counters, cache state,
    // and data effects are identical.
    line0 = base.addr(idx[0]) >> 7;
    sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(line0 << 7);
    for (std::size_t l = 0; l < kWarpSize; ++l) {
      const std::uint64_t a = base.addr(idx[l]);
      addr[l] = a;
      out[l] = mem.read<T>(a);
      off_line |= (a >> 7) ^ line0;
      smask |= 1u << ((a >> 5) & 3u);
    }
  } else {
    line0 = base.addr(idx[static_cast<std::size_t>(std::countr_zero(m))]) >> 7;
    sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(line0 << 7);
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(rem));
      const std::uint64_t a = base.addr(idx[l]);
      addr[l] = a;
      out[l] = mem.read<T>(a);
      off_line |= (a >> 7) ^ line0;
      smask |= 1u << ((a >> 5) & 3u);
    }
  }
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(addr, m, static_cast<int>(sizeof(T)), Op::kLoad, false);
  ++slot_;
  if (off_line == 0)
    request_one_line(line0, smask, Op::kLoad);
  else
    request_general(addr, m, Op::kLoad);
  return out;
}

template <class T>
void WarpCtx::store_vec(DevPtr<T> base, const WVec<std::int64_t>& idx,
                        const WVec<T>& val, Mask m) {
  if (m == 0) return;
  std::array<std::uint64_t, kWarpSize> addr{};
  std::uint64_t line0 = 0;
  std::uint64_t off_line = 0;
  std::uint32_t smask = 0;
  if (m == kFullMask) {
    line0 = base.addr(idx[0]) >> 7;
    sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(line0 << 7);
    for (std::size_t l = 0; l < kWarpSize; ++l) {
      const std::uint64_t a = base.addr(idx[l]);
      addr[l] = a;
      sys_->mem.write<T>(a, val[l]);
      note_store(a, static_cast<int>(sizeof(T)), /*atomic=*/false);
      off_line |= (a >> 7) ^ line0;
      smask |= 1u << ((a >> 5) & 3u);
    }
  } else {
    line0 = base.addr(idx[static_cast<std::size_t>(std::countr_zero(m))]) >> 7;
    sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(line0 << 7);
    for (Mask rem = m; rem != 0; rem &= rem - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(rem));
      const std::uint64_t a = base.addr(idx[l]);
      addr[l] = a;
      sys_->mem.write<T>(a, val[l]);
      note_store(a, static_cast<int>(sizeof(T)), /*atomic=*/false);
      off_line |= (a >> 7) ^ line0;
      smask |= 1u << ((a >> 5) & 3u);
    }
  }
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(addr, m, static_cast<int>(sizeof(T)), Op::kStore, false);
  ++slot_;
  if (off_line == 0)
    request_one_line(line0, smask, Op::kStore);
  else
    request_general(addr, m, Op::kStore);
}

WVec<float> WarpCtx::load_f32(DevPtr<float> base,
                              const WVec<std::int64_t>& idx, Mask m) {
  return load_vec<float>(base, idx, m);
}

WVec<std::int32_t> WarpCtx::load_i32(DevPtr<std::int32_t> base,
                                     const WVec<std::int64_t>& idx, Mask m) {
  return load_vec<std::int32_t>(base, idx, m);
}

WVec<std::int64_t> WarpCtx::load_i64(DevPtr<std::int64_t> base,
                                     const WVec<std::int64_t>& idx, Mask m) {
  return load_vec<std::int64_t>(base, idx, m);
}

void WarpCtx::store_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                        const WVec<float>& val, Mask m) {
  store_vec<float>(base, idx, val, m);
}

namespace {

/// Lane indices start..start+n-1 — the fallback from a sequential entry
/// point to the general gather/scatter (guarded memory mode).
inline WVec<std::int64_t> seq_idx(std::int64_t start, int n) {
  WVec<std::int64_t> idx{};
  for (int l = 0; l < n; ++l) idx[static_cast<std::size_t>(l)] = start + l;
  return idx;
}

/// Lane addresses of n consecutive 4-byte elements, for trace recording.
inline std::array<std::uint64_t, kWarpSize> seq_addrs(std::uint64_t a0,
                                                      int n) {
  std::array<std::uint64_t, kWarpSize> addr{};
  for (int l = 0; l < n; ++l)
    addr[static_cast<std::size_t>(l)] = a0 + 4u * static_cast<std::uint32_t>(l);
  return addr;
}

}  // namespace

// The _seq entry points express the dominant "lane l touches element
// start+l" shape directly: one range bounds check and one block copy
// replace the 32-iteration per-lane loop, and the line/sector accounting is
// closed-form (request_span). Guarded memory mode falls back to the general
// gather/scatter so redzone/use-after-free/write-race checking still sees
// every lane; with a trace attached the per-lane address array is built on
// demand. All observable effects (data, counters, cache state, costs,
// trace) are identical to the general path with idx[l] = start+l.

template <class T>
WVec<T> WarpCtx::load_seq_vec(DevPtr<T> base, std::int64_t start, int n) {
  static_assert(sizeof(T) == 4, "sequential loads are 4-byte elements");
  if (n <= 0) return WVec<T>{};
  if (n > kWarpSize) n = kWarpSize;
  if (sys_->mem.mode() != MemoryMode::kFast) [[unlikely]]
    return load_vec<T>(base, seq_idx(start, n), lanes_below(n));
  WVec<T> out;
  for (int l = n; l < kWarpSize; ++l) out[static_cast<std::size_t>(l)] = T{};
  const std::uint64_t a0 = base.addr(start);
  sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(a0);
  sys_->mem.read_block(a0, out.data(), static_cast<std::size_t>(n));
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(seq_addrs(a0, n), lanes_below(n), 4, Op::kLoad, false);
  ++slot_;
  request_span(a0, a0 + 4u * static_cast<std::uint32_t>(n - 1), Op::kLoad);
  return out;
}

WVec<float> WarpCtx::load_f32_seq(DevPtr<float> base, std::int64_t start,
                                  int n) {
  return load_seq_vec<float>(base, start, n);
}

WVec<std::int32_t> WarpCtx::load_i32_seq(DevPtr<std::int32_t> base,
                                         std::int64_t start, int n) {
  return load_seq_vec<std::int32_t>(base, start, n);
}

void WarpCtx::store_f32_seq(DevPtr<float> base, std::int64_t start,
                            const WVec<float>& val, int n) {
  if (n <= 0) return;
  if (n > kWarpSize) n = kWarpSize;
  if (sys_->mem.mode() != MemoryMode::kFast) [[unlikely]] {
    store_f32(base, seq_idx(start, n), val, lanes_below(n));
    return;
  }
  const std::uint64_t a0 = base.addr(start);
  sys_->l1[static_cast<std::size_t>(sm_)].prefetch_set(a0);
  sys_->mem.write_block(a0, val.data(), static_cast<std::size_t>(n));
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(seq_addrs(a0, n), lanes_below(n), 4, Op::kStore, false);
  ++slot_;
  request_span(a0, a0 + 4u * static_cast<std::uint32_t>(n - 1), Op::kStore);
}

void WarpCtx::atomic_add_f32_seq(DevPtr<float> base, std::int64_t start,
                                 const WVec<float>& val, int n) {
  if (n <= 0) return;
  if (n > kWarpSize) n = kWarpSize;
  if (sys_->mem.mode() != MemoryMode::kFast) [[unlikely]] {
    atomic_add_f32(base, seq_idx(start, n), val, lanes_below(n));
    return;
  }
  const std::uint64_t a0 = base.addr(start);
  sys_->l2.prefetch_set(a0);  // atomics resolve at the L2 units
  WVec<float> cur;
  sys_->mem.read_block(a0, cur.data(), static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l)
    cur[static_cast<std::size_t>(l)] += val[static_cast<std::size_t>(l)];
  sys_->mem.write_block(a0, cur.data(), static_cast<std::size_t>(n));
  if (sys_->trace != nullptr) [[unlikely]]
    record_trace(seq_addrs(a0, n), lanes_below(n), 4, Op::kAtomic, false);
  ++slot_;
  request_span(a0, a0 + 4u * static_cast<std::uint32_t>(n - 1), Op::kAtomic);
  sys_->rec->atomic_ops += n;
  // The n addresses are distinct by construction, so the scattered path's
  // worst-conflict replay charge is identically zero — nothing to add.
}

namespace {

/// Worst per-address lane multiplicity minus one — the replay count the
/// atomic units serialize on. Equivalent to the old per-lane prior-conflict
/// scan (the last lane of the most contended address saw count-1 priors),
/// but O(lanes) via the same 64-slot table request() uses for line dedup.
int worst_atomic_conflict(const std::array<std::uint64_t, kWarpSize>& addr,
                          Mask m) {
  std::array<std::uint8_t, 64> slot_of{};
  std::array<std::uint8_t, kWarpSize> count{};
  std::array<std::uint64_t, kWarpSize> uniq;
  std::uint64_t used = 0;
  int nuniq = 0;
  int worst = 0;
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    const auto l = static_cast<std::size_t>(std::countr_zero(rem));
    const std::uint64_t a = addr[l];
    std::uint32_t h = hash64(a);
    int found = -1;
    while ((used >> h) & 1u) {
      const auto i = slot_of[h];
      if (uniq[i] == a) {
        found = i;
        break;
      }
      h = (h + 1) & 63u;
    }
    if (found < 0) {
      used |= std::uint64_t{1} << h;
      slot_of[h] = static_cast<std::uint8_t>(nuniq);
      uniq[static_cast<std::size_t>(nuniq)] = a;
      count[static_cast<std::size_t>(nuniq++)] = 1;
    } else {
      const int c = ++count[static_cast<std::size_t>(found)];
      worst = std::max(worst, c - 1);
    }
  }
  return worst;
}

}  // namespace

void WarpCtx::atomic_add_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                             const WVec<float>& val, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  // Apply the adds in lane order (floating-point order matters), then charge
  // the worst per-address conflict the atomic units must serialize (replay).
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    const auto l = static_cast<std::size_t>(std::countr_zero(rem));
    const std::uint64_t a = base.addr(idx[l]);
    addr[l] = a;
    const float old = sys_->mem.read<float>(a);
    sys_->mem.write<float>(a, old + val[l]);
    note_store(a, 4, /*atomic=*/true);
  }
  const int worst_conflict = worst_atomic_conflict(addr, m);
  request(addr, m, 4, Op::kAtomic);
  sys_->rec->atomic_ops += std::popcount(m);
  const double replay =
      static_cast<double>(worst_conflict) * sys_->spec.atomic_replay_cycles;
  mem_ += replay;
  sys_->rec->atomic_stall_cycles += replay;
}

void WarpCtx::atomic_max_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                             const WVec<float>& val, Mask m) {
  std::array<std::uint64_t, kWarpSize> addr{};
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    const auto l = static_cast<std::size_t>(std::countr_zero(rem));
    const std::uint64_t a = base.addr(idx[l]);
    addr[l] = a;
    const float old = sys_->mem.read<float>(a);
    sys_->mem.write<float>(a, std::max(old, val[l]));
    note_store(a, 4, /*atomic=*/true);
  }
  const int worst_conflict = worst_atomic_conflict(addr, m);
  request(addr, m, 4, Op::kAtomic);
  sys_->rec->atomic_ops += std::popcount(m);
  const double replay =
      static_cast<double>(worst_conflict) * sys_->spec.atomic_replay_cycles;
  mem_ += replay;
  sys_->rec->atomic_stall_cycles += replay;
}

float WarpCtx::load_scalar_f32(DevPtr<float> base, std::int64_t idx) {
  const std::uint64_t a = base.addr(idx);
  const float v = sys_->mem.read<float>(a);
  request_scalar(a, 4, Op::kLoad);
  return v;
}

std::int32_t WarpCtx::load_scalar_i32(DevPtr<std::int32_t> base,
                                      std::int64_t idx) {
  const std::uint64_t a = base.addr(idx);
  const auto v = sys_->mem.read<std::int32_t>(a);
  request_scalar(a, 4, Op::kLoad);
  return v;
}

std::int64_t WarpCtx::load_scalar_i64(DevPtr<std::int64_t> base,
                                      std::int64_t idx) {
  const std::uint64_t a = base.addr(idx);
  const auto v = sys_->mem.read<std::int64_t>(a);
  request_scalar(a, 8, Op::kLoad);
  return v;
}

void WarpCtx::store_scalar_f32(DevPtr<float> base, std::int64_t idx, float v) {
  const std::uint64_t a = base.addr(idx);
  sys_->mem.write<float>(a, v);
  note_store(a, 4, /*atomic=*/false);
  request_scalar(a, 4, Op::kStore);
}

std::uint32_t WarpCtx::atomic_add_u32(DevPtr<std::uint32_t> base,
                                      std::int64_t idx, std::uint32_t add) {
  const std::uint64_t a = base.addr(idx);
  const auto old = sys_->mem.read<std::uint32_t>(a);
  sys_->mem.write<std::uint32_t>(a, old + add);
  note_store(a, 4, /*atomic=*/true);
  request_scalar(a, 4, Op::kAtomic);
  sys_->rec->atomic_ops += 1;
  return old;
}

float WarpCtx::atomic_add_scalar_f32(DevPtr<float> base, std::int64_t idx,
                                     float v) {
  const std::uint64_t a = base.addr(idx);
  const float old = sys_->mem.read<float>(a);
  sys_->mem.write<float>(a, old + v);
  note_store(a, 4, /*atomic=*/true);
  request_scalar(a, 4, Op::kAtomic);
  sys_->rec->atomic_ops += 1;
  return old;
}

float WarpCtx::reduce_sum(const WVec<float>& v, Mask m) {
  charge_alu(10);  // 5 butterfly shuffles + 5 adds
  float s = 0.0f;
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    s += v[static_cast<std::size_t>(std::countr_zero(rem))];
  }
  return s;
}

float WarpCtx::reduce_max(const WVec<float>& v, Mask m) {
  charge_alu(10);
  float best = -std::numeric_limits<float>::infinity();
  for (Mask rem = m; rem != 0; rem &= rem - 1) {
    best = std::max(best, v[static_cast<std::size_t>(std::countr_zero(rem))]);
  }
  return best;
}

}  // namespace tlp::sim
