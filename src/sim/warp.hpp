// Warp-granularity execution context — the "CUDA" surface kernels are
// written against.
//
// Kernels run warp-synchronously: a WVec<T> holds one value per lane, a Mask
// selects the active lanes, and every global-memory access goes through this
// context, which (a) actually moves the data in the DeviceMemory arena and
// (b) feeds the coalescing/cache/latency model (sector counting over the 32
// lane addresses, L1/L2 tag probes, atomic-conflict serialization).
#pragma once

#include <array>
#include <cstdint>

#include "sim/analytical.hpp"
#include "sim/cache.hpp"
#include "sim/counters.hpp"
#include "sim/device_memory.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/timing.hpp"
#include "sim/trace.hpp"

namespace tlp::sim {

inline constexpr int kWarpSize = 32;

template <class T>
using WVec = std::array<T, kWarpSize>;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

/// Mask with the low `n` lanes active.
[[nodiscard]] constexpr Mask lanes_below(int n) {
  return n >= kWarpSize ? kFullMask : ((Mask{1} << n) - 1);
}
[[nodiscard]] constexpr bool lane_active(Mask m, int lane) {
  return (m >> lane) & 1u;
}

/// Everything a warp touches while executing: the arena, the cache
/// hierarchy, and the counters of the currently running kernel.
struct MemorySystem {
  GpuSpec spec;
  DeviceMemory mem;
  std::vector<SetAssocCache> l1;  ///< one per SM
  SetAssocCache l2;
  KernelRecord* rec = nullptr;  ///< current kernel's counters
  /// Opt-in access recorder for the tlpsan analysis passes; null = off.
  AccessTrace* trace = nullptr;
  /// Tests can disable tag simulation to get pure compulsory traffic.
  bool model_caches = true;
  /// Which timing backend prices the access stream (sim/timing.hpp). The
  /// functional layer — data movement, lane masks, byte counts, atomic
  /// ordering — is identical under both tiers.
  TimingTier tier = TimingTier::kMechanistic;
  /// Per-region accumulators for the analytical tier; unused (and never
  /// touched) under the mechanistic tier.
  AnalyticalTiming analytical;

  explicit MemorySystem(const GpuSpec& s);
  void reset_caches();
};

class WarpCtx {
 public:
  /// `warp_id` is a launch-unique id used by the guarded-memory write-race
  /// detector to distinguish stores from different warps; -1 (host / test
  /// contexts) still participates in race tracking as its own writer.
  WarpCtx(MemorySystem& sys, int sm_id, std::int64_t warp_id = -1)
      : sys_(&sys), sm_(sm_id), warp_id_(warp_id) {}

  /// Rebinds this context to a new (sm, warp) identity with all per-warp
  /// state (costs, site, item, request ordinal) reset — equivalent to
  /// constructing a fresh WarpCtx, but lets the scheduler loops reuse one
  /// object instead of re-creating it per warp (DESIGN.md §10).
  void reassign(int sm_id, std::int64_t warp_id) {
    sm_ = sm_id;
    warp_id_ = warp_id;
    issue_ = mem_ = 0;
    site_ = nullptr;
    item_ = -1;
    slot_ = 0;
  }

  // --- per-warp cost accumulators (read by the scheduler) ------------------
  [[nodiscard]] double issue_cycles() const { return issue_; }
  [[nodiscard]] double mem_cycles() const { return mem_; }
  [[nodiscard]] double total_cycles() const { return issue_ + mem_; }
  void reset_costs() { issue_ = mem_ = 0; }

  /// Charge `n` warp-instructions of pure ALU work.
  void charge_alu(int n = 1) { issue_ += n; }

  // --- vector (per-lane) global memory operations --------------------------
  /// Gather: lane l reads base[idx[l]] when active. One memory request.
  WVec<float> load_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                       Mask m);
  WVec<std::int32_t> load_i32(DevPtr<std::int32_t> base,
                              const WVec<std::int64_t>& idx, Mask m);
  WVec<std::int64_t> load_i64(DevPtr<std::int64_t> base,
                              const WVec<std::int64_t>& idx, Mask m);
  /// Scatter: lane l writes val[l] to base[idx[l]] when active.
  void store_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                 const WVec<float>& val, Mask m);

  // --- sequential-range vector operations ----------------------------------
  // The dominant access shape in every TLPGNN kernel is "lane l touches
  // element start+l for l in [0, n)" — a feature-row chunk or an edge-id
  // batch. These entry points express that shape directly, so the simulator
  // can replace the 32-iteration per-lane loop (index build, address math,
  // per-element bounds check, scattered read) with one range-checked block
  // copy and closed-form line/sector accounting. Counters, costs, cache
  // state, and data effects are byte-identical to calling the general
  // gather/scatter with idx[l] = start+l and mask lanes_below(n).
  /// Lane l (l < n) reads base[start+l]; equivalent to load_f32 with a
  /// lanes_below(n) mask. n is clamped to the warp size; n <= 0 is a no-op.
  WVec<float> load_f32_seq(DevPtr<float> base, std::int64_t start, int n);
  WVec<std::int32_t> load_i32_seq(DevPtr<std::int32_t> base,
                                  std::int64_t start, int n);
  /// Lane l (l < n) writes val[l] to base[start+l].
  void store_f32_seq(DevPtr<float> base, std::int64_t start,
                     const WVec<float>& val, int n);
  /// Lane l (l < n) atomically adds val[l] to base[start+l]. The addresses
  /// are distinct by construction, so no conflict replay is ever charged.
  void atomic_add_f32_seq(DevPtr<float> base, std::int64_t start,
                          const WVec<float>& val, int n);
  /// Atomic scatter-add with conflict serialization across lanes.
  void atomic_add_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                      const WVec<float>& val, Mask m);
  /// Atomic scatter-max (same cost model as atomic_add_f32).
  void atomic_max_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                      const WVec<float>& val, Mask m);

  // --- scalar (uniform) operations -----------------------------------------
  /// A single lane loads and broadcasts (e.g. indptr bounds, neighbor ids).
  float load_scalar_f32(DevPtr<float> base, std::int64_t idx);
  std::int32_t load_scalar_i32(DevPtr<std::int32_t> base, std::int64_t idx);
  std::int64_t load_scalar_i64(DevPtr<std::int64_t> base, std::int64_t idx);
  void store_scalar_f32(DevPtr<float> base, std::int64_t idx, float v);
  /// Warp-wide fetch-add on a global counter (software work pool). Returns
  /// the previous value.
  std::uint32_t atomic_add_u32(DevPtr<std::uint32_t> base, std::int64_t idx,
                               std::uint32_t add);
  float atomic_add_scalar_f32(DevPtr<float> base, std::int64_t idx, float v);

  // --- host-side performance hints (no simulation effect) ------------------
  /// Cache-warming hint for the simulator's own backing memory: prefetches
  /// the host cache lines holding base[idx .. idx+count) and touches nothing
  /// in the model — no counters, no tag probes, no latency, no trace. The
  /// edge loops use it to overlap the host-DRAM latency of the next edge's
  /// scattered feature row with the current edge's model work; the simulated
  /// metrics are byte-identical with or without the hint.
  template <class T>
  void prefetch(DevPtr<T> base, std::int64_t idx, std::int64_t count = 1) {
    if (idx >= 0 && count > 0)
      sys_->mem.host_prefetch(base.addr(idx),
                              static_cast<std::size_t>(count) * sizeof(T));
  }
  /// Host-side read used only to compute prefetch addresses (e.g. the next
  /// edge's neighbor id). Bounds-checked like any arena read but invisible
  /// to the model: no request, no counters, no trace.
  template <class T>
  [[nodiscard]] T peek(DevPtr<T> base, std::int64_t idx) const {
    return sys_->mem.read<T>(base.addr(idx));
  }

  // --- warp collectives -----------------------------------------------------
  /// Butterfly-shuffle reduction (5 shuffle instructions), sum over active
  /// lanes, result broadcast to all lanes.
  float reduce_sum(const WVec<float>& v, Mask m);
  float reduce_max(const WVec<float>& v, Mask m);

  [[nodiscard]] int sm() const { return sm_; }
  [[nodiscard]] std::int64_t warp_id() const { return warp_id_; }

  /// Declares the static access site the following memory operations belong
  /// to (tlpsan annotation; see sim/trace.hpp). Sticky until changed.
  void site(const AccessSite* s) { site_ = s; }
  [[nodiscard]] const AccessSite* site() const { return site_; }

  /// Called by the scheduler before each run_item: tags traced accesses with
  /// the work item, the register-lifetime scope the redundant-load pass uses.
  void begin_item(std::int64_t item) { item_ = item; }

 private:
  enum class Op { kLoad, kStore, kAtomic };

  /// SIMD-style batched core of the vector gather: one lane loop moves the
  /// data, computes the 32 addresses, and fuses the single-line coalescing
  /// scan; `*_seq` and the typed public entry points are instances of this
  /// form. Full-mask requests take a counted loop (unrolls and pipelines
  /// better than the serial mask walk) — the visit order is lane-ascending
  /// either way, so counters and cache state are identical.
  template <class T>
  WVec<T> load_vec(DevPtr<T> base, const WVec<std::int64_t>& idx, Mask m);
  /// Batched scatter core, same shape as load_vec.
  template <class T>
  void store_vec(DevPtr<T> base, const WVec<std::int64_t>& idx,
                 const WVec<T>& val, Mask m);
  /// Batched sequential-range gather: the `*_seq` fast paths are this one
  /// template (4-byte elements; block copy + closed-form span accounting).
  template <class T>
  WVec<T> load_seq_vec(DevPtr<T> base, std::int64_t start, int n);

  /// Core of the memory model: dedupes lane addresses into 32 B sectors and
  /// 128 B lines, probes the caches, charges latency, and records traffic.
  /// `scalar` marks single-lane broadcast accesses so the divergence pass
  /// does not mistake them for masked-out lanes.
  void request(const std::array<std::uint64_t, kWarpSize>& addr, Mask m,
               int bytes_per_lane, Op op, bool scalar = false);

  /// Accounting for a request whose active lanes all fall in one 128 B line
  /// (`smask` = the 4-bit 32 B-sector mask within it): one probe, no dedup.
  /// Shared by the fused lane-loop scans in the vector load/store entry
  /// points and by request()'s own single-line detection, so both paths
  /// produce byte-identical counters and costs.
  void request_one_line(std::uint64_t line0, std::uint32_t smask, Op op);

  /// A deduplicated 128 B line with the mask of its touched 32 B sectors.
  struct SectorLine {
    std::uint64_t line;
    std::uint32_t sectors;
  };

  /// Probes and accounts `nlines` deduplicated lines in order — the shared
  /// core of the general gather/scatter path and the two-line sequential
  /// case. Includes the per-request counters (requests, issue).
  void request_lines(const SectorLine* lines, int nlines, Op op);

  /// General multi-line path: dedupes lane addresses into lines with
  /// per-line sector masks (first-occurrence order) and probes each.
  /// Trace/slot bookkeeping is the caller's job.
  void request_general(const std::array<std::uint64_t, kWarpSize>& addr,
                       Mask m, Op op);

  /// Accounting for a contiguous element range [first_addr, last_addr]
  /// (addresses of the first and last element): the range covers every
  /// sector in between, so the line set and per-line sector masks follow
  /// arithmetically — one line, or two adjacent ones. Trace/slot
  /// bookkeeping is the caller's job.
  void request_span(std::uint64_t first_addr, std::uint64_t last_addr, Op op);

  /// Fast path for single-lane broadcast accesses (indptr bounds, neighbor
  /// ids, pool counters): one line, one sector, no dedup pass and no 32-lane
  /// address array. Produces exactly the counters/costs request() would for
  /// mask 0x1, including the identical TraceAccess when a trace is attached.
  void request_scalar(std::uint64_t addr, int bytes_per_lane, Op op);

  // --- analytical-tier accounting twins ------------------------------------
  // The functional counters (requests, sectors, bytes_store/atomic, issue)
  // and the exact atomic charges match the mechanistic accounting; cache
  // probes are replaced by one O(1) note into the per-region accumulator and
  // loads carry a provisional flat charge that finalize() corrects.
  void analytical_one_line(std::uint64_t line0, std::uint32_t smask, Op op);
  void analytical_lines(const SectorLine* lines, int nlines, Op op);

  /// Cold path: builds and records the TraceAccess for an attached tlpsan
  /// trace. Kept out of line so the (trace == nullptr) common case pays only
  /// a predicted-not-taken branch in the request hot path.
  [[gnu::noinline]] void record_trace(
      const std::array<std::uint64_t, kWarpSize>& addr, Mask m,
      int bytes_per_lane, Op op, bool scalar);

  /// Guarded-memory hook: reports one store lane to the write-race detector.
  void note_store(std::uint64_t addr, int bytes, bool atomic) {
    if (sys_->mem.mode() == MemoryMode::kGuarded)
      sys_->mem.note_store(addr, bytes, warp_id_, atomic);
  }

  MemorySystem* sys_;
  int sm_;
  std::int64_t warp_id_ = -1;
  double issue_ = 0;
  double mem_ = 0;
  const AccessSite* site_ = nullptr;
  std::int64_t item_ = -1;
  std::uint32_t slot_ = 0;  ///< request ordinal within this context
};

}  // namespace tlp::sim
