// Warp-granularity execution context — the "CUDA" surface kernels are
// written against.
//
// Kernels run warp-synchronously: a WVec<T> holds one value per lane, a Mask
// selects the active lanes, and every global-memory access goes through this
// context, which (a) actually moves the data in the DeviceMemory arena and
// (b) feeds the coalescing/cache/latency model (sector counting over the 32
// lane addresses, L1/L2 tag probes, atomic-conflict serialization).
#pragma once

#include <array>
#include <cstdint>

#include "sim/cache.hpp"
#include "sim/counters.hpp"
#include "sim/device_memory.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/trace.hpp"

namespace tlp::sim {

inline constexpr int kWarpSize = 32;

template <class T>
using WVec = std::array<T, kWarpSize>;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

/// Mask with the low `n` lanes active.
[[nodiscard]] constexpr Mask lanes_below(int n) {
  return n >= kWarpSize ? kFullMask : ((Mask{1} << n) - 1);
}
[[nodiscard]] constexpr bool lane_active(Mask m, int lane) {
  return (m >> lane) & 1u;
}

/// Everything a warp touches while executing: the arena, the cache
/// hierarchy, and the counters of the currently running kernel.
struct MemorySystem {
  GpuSpec spec;
  DeviceMemory mem;
  std::vector<SetAssocCache> l1;  ///< one per SM
  SetAssocCache l2;
  KernelRecord* rec = nullptr;  ///< current kernel's counters
  /// Opt-in access recorder for the tlpsan analysis passes; null = off.
  AccessTrace* trace = nullptr;
  /// Tests can disable tag simulation to get pure compulsory traffic.
  bool model_caches = true;

  explicit MemorySystem(const GpuSpec& s);
  void reset_caches();
};

class WarpCtx {
 public:
  /// `warp_id` is a launch-unique id used by the guarded-memory write-race
  /// detector to distinguish stores from different warps; -1 (host / test
  /// contexts) still participates in race tracking as its own writer.
  WarpCtx(MemorySystem& sys, int sm_id, std::int64_t warp_id = -1)
      : sys_(&sys), sm_(sm_id), warp_id_(warp_id) {}

  // --- per-warp cost accumulators (read by the scheduler) ------------------
  [[nodiscard]] double issue_cycles() const { return issue_; }
  [[nodiscard]] double mem_cycles() const { return mem_; }
  [[nodiscard]] double total_cycles() const { return issue_ + mem_; }
  void reset_costs() { issue_ = mem_ = 0; }

  /// Charge `n` warp-instructions of pure ALU work.
  void charge_alu(int n = 1) { issue_ += n; }

  // --- vector (per-lane) global memory operations --------------------------
  /// Gather: lane l reads base[idx[l]] when active. One memory request.
  WVec<float> load_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                       Mask m);
  WVec<std::int32_t> load_i32(DevPtr<std::int32_t> base,
                              const WVec<std::int64_t>& idx, Mask m);
  WVec<std::int64_t> load_i64(DevPtr<std::int64_t> base,
                              const WVec<std::int64_t>& idx, Mask m);
  /// Scatter: lane l writes val[l] to base[idx[l]] when active.
  void store_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                 const WVec<float>& val, Mask m);
  /// Atomic scatter-add with conflict serialization across lanes.
  void atomic_add_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                      const WVec<float>& val, Mask m);
  /// Atomic scatter-max (same cost model as atomic_add_f32).
  void atomic_max_f32(DevPtr<float> base, const WVec<std::int64_t>& idx,
                      const WVec<float>& val, Mask m);

  // --- scalar (uniform) operations -----------------------------------------
  /// A single lane loads and broadcasts (e.g. indptr bounds, neighbor ids).
  float load_scalar_f32(DevPtr<float> base, std::int64_t idx);
  std::int32_t load_scalar_i32(DevPtr<std::int32_t> base, std::int64_t idx);
  std::int64_t load_scalar_i64(DevPtr<std::int64_t> base, std::int64_t idx);
  void store_scalar_f32(DevPtr<float> base, std::int64_t idx, float v);
  /// Warp-wide fetch-add on a global counter (software work pool). Returns
  /// the previous value.
  std::uint32_t atomic_add_u32(DevPtr<std::uint32_t> base, std::int64_t idx,
                               std::uint32_t add);
  float atomic_add_scalar_f32(DevPtr<float> base, std::int64_t idx, float v);

  // --- warp collectives -----------------------------------------------------
  /// Butterfly-shuffle reduction (5 shuffle instructions), sum over active
  /// lanes, result broadcast to all lanes.
  float reduce_sum(const WVec<float>& v, Mask m);
  float reduce_max(const WVec<float>& v, Mask m);

  [[nodiscard]] int sm() const { return sm_; }
  [[nodiscard]] std::int64_t warp_id() const { return warp_id_; }

  /// Declares the static access site the following memory operations belong
  /// to (tlpsan annotation; see sim/trace.hpp). Sticky until changed.
  void site(const AccessSite* s) { site_ = s; }
  [[nodiscard]] const AccessSite* site() const { return site_; }

  /// Called by the scheduler before each run_item: tags traced accesses with
  /// the work item, the register-lifetime scope the redundant-load pass uses.
  void begin_item(std::int64_t item) { item_ = item; }

 private:
  enum class Op { kLoad, kStore, kAtomic };

  /// Core of the memory model: dedupes lane addresses into 32 B sectors and
  /// 128 B lines, probes the caches, charges latency, and records traffic.
  /// `scalar` marks single-lane broadcast accesses so the divergence pass
  /// does not mistake them for masked-out lanes.
  void request(const std::array<std::uint64_t, kWarpSize>& addr, Mask m,
               int bytes_per_lane, Op op, bool scalar = false);

  /// Guarded-memory hook: reports one store lane to the write-race detector.
  void note_store(std::uint64_t addr, int bytes, bool atomic) {
    if (sys_->mem.mode() == MemoryMode::kGuarded)
      sys_->mem.note_store(addr, bytes, warp_id_, atomic);
  }

  MemorySystem* sys_;
  int sm_;
  std::int64_t warp_id_ = -1;
  double issue_ = 0;
  double mem_ = 0;
  const AccessSite* site_ = nullptr;
  std::int64_t item_ = -1;
  std::uint32_t slot_ = 0;  ///< request ordinal within this context
};

}  // namespace tlp::sim
