// SIMD-style whole-warp register math.
//
// Kernels hold per-lane values in WVec<T> (32-lane arrays) and, between
// memory operations, transform them with elementwise loops. These helpers
// name the recurring shapes — batched over the lane dimension the way the
// warp engine batches the request path — so every kernel expresses its lane
// math through one vocabulary and the compiler sees tight counted loops it
// can auto-vectorize.
//
// Bit-exactness contract: each helper performs exactly the scalar operations
// of the loop it replaces, in the same order, on lanes [0, n). The build
// compiles with -ffp-contract=off and without -ffast-math, so hoisting the
// loop into a helper cannot change a single result bit — which is what lets
// the kernels adopt these while the mechanistic goldens stay byte-identical.
#pragma once

#include "sim/warp.hpp"

namespace tlp::sim {

/// acc[l] += a * x[l] for lanes [0, n) — the per-edge weighted accumulate at
/// the heart of every aggregation kernel.
inline void lane_axpy(WVec<float>& acc, float a, const WVec<float>& x,
                      int n = kWarpSize) {
  for (int l = 0; l < n; ++l)
    acc[static_cast<std::size_t>(l)] += a * x[static_cast<std::size_t>(l)];
}

/// acc[l] += x[l] for lanes [0, n).
inline void lane_add(WVec<float>& acc, const WVec<float>& x,
                     int n = kWarpSize) {
  for (int l = 0; l < n; ++l)
    acc[static_cast<std::size_t>(l)] += x[static_cast<std::size_t>(l)];
}

/// v[l] *= x[l] for lanes [0, n) — elementwise products (edge-weight times
/// feature, norm-pair weights).
inline void lane_mul(WVec<float>& v, const WVec<float>& x,
                     int n = kWarpSize) {
  for (int l = 0; l < n; ++l)
    v[static_cast<std::size_t>(l)] *= x[static_cast<std::size_t>(l)];
}

/// v[l] *= a for lanes [0, n) — degree normalization, attention softmax
/// denominators.
inline void lane_scale(WVec<float>& v, float a, int n = kWarpSize) {
  for (int l = 0; l < n; ++l) v[static_cast<std::size_t>(l)] *= a;
}

/// out[l] = a * x[l] for lanes [0, n).
[[nodiscard]] inline WVec<float> lane_scaled(const WVec<float>& x, float a,
                                             int n = kWarpSize) {
  WVec<float> out{};
  for (int l = 0; l < n; ++l)
    out[static_cast<std::size_t>(l)] = a * x[static_cast<std::size_t>(l)];
  return out;
}

/// v[l] = a for all 32 lanes.
[[nodiscard]] inline WVec<float> lane_splat(float a) {
  WVec<float> v;
  for (auto& x : v) x = a;
  return v;
}

/// out[l] = int64(v[l]) for all 32 lanes — widens an i32 neighbor-id batch
/// into the i64 index vector the gather entry points take.
[[nodiscard]] inline WVec<std::int64_t> lane_widen(
    const WVec<std::int32_t>& v) {
  WVec<std::int64_t> out;
  for (std::size_t l = 0; l < static_cast<std::size_t>(kWarpSize); ++l)
    out[l] = v[l];
  return out;
}

}  // namespace tlp::sim
