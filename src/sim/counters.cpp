#include "sim/counters.hpp"

namespace tlp::sim {

void KernelRecord::merge_traffic_from(const KernelRecord& other) {
  issue_cycles += other.issue_cycles;
  mem_stall_cycles += other.mem_stall_cycles;
  atomic_stall_cycles += other.atomic_stall_cycles;
  requests += other.requests;
  sectors += other.sectors;
  bytes_load += other.bytes_load;
  bytes_store += other.bytes_store;
  bytes_atomic += other.bytes_atomic;
  bytes_dram += other.bytes_dram;
  l1_accesses += other.l1_accesses;
  l1_hits += other.l1_hits;
  l2_accesses += other.l2_accesses;
  l2_hits += other.l2_hits;
  atomic_ops += other.atomic_ops;
}

KernelRecord& Profiler::begin_kernel(std::string name) {
  records_.emplace_back();
  records_.back().name = std::move(name);
  return records_.back();
}

Metrics Profiler::aggregate(double clock_ghz, int num_sms, int issue_width,
                            int warps_per_sm) const {
  Metrics m;
  double cycles = 0, issue = 0, mem_stall = 0, resident = 0;
  double launch_us = 0;
  std::int64_t requests = 0, sectors = 0, l1a = 0, l1h = 0;
  for (const KernelRecord& r : records_) {
    ++m.kernel_launches;
    cycles += r.elapsed_cycles;
    launch_us += r.launch_overhead_us;
    issue += r.issue_cycles;
    mem_stall += r.mem_stall_cycles + r.atomic_stall_cycles;
    resident += r.resident_warp_integral;
    requests += r.requests;
    sectors += r.sectors;
    l1a += r.l1_accesses;
    l1h += r.l1_hits;
    m.bytes_load += static_cast<double>(r.bytes_load);
    m.bytes_store += static_cast<double>(r.bytes_store);
    m.bytes_atomic += static_cast<double>(r.bytes_atomic);
    m.bytes_dram += static_cast<double>(r.bytes_dram);
  }
  m.gpu_time_ms = cycles / (clock_ghz * 1e6) + launch_us * 1e-3;
  m.sectors_per_request =
      requests == 0 ? 0.0 : static_cast<double>(sectors) / static_cast<double>(requests);
  m.l1_hit_rate = l1a == 0 ? 0.0 : static_cast<double>(l1h) / static_cast<double>(l1a);
  m.scoreboard_stall = issue == 0 ? 0.0 : mem_stall / issue;
  const double issue_capacity = cycles * num_sms * issue_width;
  m.sm_utilization = issue_capacity == 0 ? 0.0 : issue / issue_capacity;
  const double warp_capacity = cycles * num_sms * warps_per_sm;
  m.achieved_occupancy = warp_capacity == 0 ? 0.0 : resident / warp_capacity;
  if (m.achieved_occupancy > 1.0) m.achieved_occupancy = 1.0;
  if (m.sm_utilization > 1.0) m.sm_utilization = 1.0;
  return m;
}

}  // namespace tlp::sim
