#include "sim/cache.hpp"

#include <bit>

#include "common/check.hpp"

namespace tlp::sim {

SetAssocCache::SetAssocCache(std::int64_t capacity_bytes, int line_bytes,
                             int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  TLP_CHECK(capacity_bytes > 0 && line_bytes > 0 && ways > 0);
  const std::int64_t lines = capacity_bytes / line_bytes;
  TLP_CHECK_MSG(lines >= ways && lines % ways == 0,
                "capacity must hold a whole number of sets");
  num_sets_ = static_cast<int>(lines / ways);
  const auto ulines = static_cast<std::uint64_t>(line_bytes_);
  if (std::has_single_bit(ulines))
    line_shift_ = std::countr_zero(ulines);
  const auto usets = static_cast<std::uint64_t>(num_sets_);
  if (std::has_single_bit(usets)) set_mask_ = usets - 1;
  ways_flat_.assign(static_cast<std::size_t>(num_sets_) * ways_, Way{0, 0});
}

bool SetAssocCache::contains(std::uint64_t byte_addr) const {
  const std::uint64_t line = line_of(byte_addr);
  const std::size_t base = set_of(line) * static_cast<std::size_t>(ways_);
  for (std::size_t w = base; w < base + static_cast<std::size_t>(ways_); ++w) {
    if (ways_flat_[w].tag == line && ways_flat_[w].last_use != 0) return true;
  }
  return false;
}

void SetAssocCache::reset() {
  ways_flat_.assign(ways_flat_.size(), Way{0, 0});
  last_line_ = 0;
  last_way_ = kNoWay;
  tick_ = 0;
  accesses_ = 0;
  hits_ = 0;
}

}  // namespace tlp::sim
