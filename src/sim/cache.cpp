#include "sim/cache.hpp"

#include "common/check.hpp"

namespace tlp::sim {

SetAssocCache::SetAssocCache(std::int64_t capacity_bytes, int line_bytes,
                             int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  TLP_CHECK(capacity_bytes > 0 && line_bytes > 0 && ways > 0);
  const std::int64_t lines = capacity_bytes / line_bytes;
  TLP_CHECK_MSG(lines >= ways && lines % ways == 0,
                "capacity must hold a whole number of sets");
  num_sets_ = static_cast<int>(lines / ways);
  ways_storage_.assign(static_cast<std::size_t>(num_sets_) * ways_, Way{});
}

bool SetAssocCache::access(std::uint64_t byte_addr) {
  const std::uint64_t line = byte_addr / static_cast<std::uint64_t>(line_bytes_);
  const auto set = static_cast<std::size_t>(line % static_cast<std::uint64_t>(num_sets_));
  Way* base = &ways_storage_[set * static_cast<std::size_t>(ways_)];
  ++accesses_;
  ++tick_;
  std::size_t victim = 0;
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == line) {
      base[w].last_use = tick_;
      ++hits_;
      return true;
    }
    if (base[w].last_use < base[victim].last_use) victim = static_cast<std::size_t>(w);
  }
  base[victim] = Way{line, tick_};
  return false;
}

bool SetAssocCache::contains(std::uint64_t byte_addr) const {
  const std::uint64_t line = byte_addr / static_cast<std::uint64_t>(line_bytes_);
  const auto set = static_cast<std::size_t>(line % static_cast<std::uint64_t>(num_sets_));
  const Way* base = &ways_storage_[set * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == line) return true;
  }
  return false;
}

void SetAssocCache::reset() {
  ways_storage_.assign(ways_storage_.size(), Way{});
  tick_ = 0;
  accesses_ = 0;
  hits_ = 0;
}

}  // namespace tlp::sim
