// Access-trace recorder — the data source for the tlpsan analysis passes
// (src/analysis/).
//
// When an AccessTrace is attached to a MemorySystem, every warp-level global
// memory request is recorded as a TraceAccess: which warp issued it, from
// which static access site, the per-lane byte addresses, the access width,
// and whether it was a load, a plain store, or an atomic. Kernel launch
// boundaries partition the trace; within a launch warps are concurrent,
// across launches the implicit device synchronization orders everything —
// the happens-before structure the race pass exploits.
//
// Access sites: kernels annotate groups of memory operations with
// TLP_SITE("label") so diagnostics can name the source construct instead of
// a raw address. Sites are interned once per call location (function-local
// static), so their ids are stable for the lifetime of the process. A site
// can carry suppressions — rule ids that are *expected* to fire there (e.g.
// the edge-centric baseline's uncoalesced feature gather, which the paper
// documents as the motivating pathology) — recorded with a reason so the
// finding stays visible in reports without failing the diagnostics gate.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tlp::sim {

inline constexpr int kTraceWarpSize = 32;

/// A static source location that issues global-memory accesses. Interned by
/// SiteRegistry; `id` 0 is reserved for "unannotated".
struct AccessSite {
  std::uint32_t id = 0;
  std::string label;
  std::string file;
  int line = 0;
  /// Rule ids (e.g. "TLP-COAL-002") expected to fire at this site, with the
  /// justification that goes into the diagnostic report.
  std::vector<std::string> suppressed_rules;
  std::string suppress_reason;

  [[nodiscard]] bool suppresses(const std::string& rule) const;
};

/// Process-wide interning table for access sites. Single-threaded, like the
/// simulator itself.
class SiteRegistry {
 public:
  static SiteRegistry& instance();

  /// Interns a site. `suppress` is an optional space-separated list of rule
  /// ids expected at this site; `reason` documents why. Call once per static
  /// location (the TLP_SITE macros guarantee this).
  const AccessSite* intern(const char* label, const char* file, int line,
                           const char* suppress = nullptr,
                           const char* reason = nullptr);

  /// Site by id; id 0 (and unknown ids) return the shared "unannotated" site.
  [[nodiscard]] const AccessSite& site(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const { return sites_.size(); }

 private:
  SiteRegistry();
  // Deque-like stability: sites are handed out by pointer, so store by
  // unique address. A vector of pointers keeps ids dense.
  std::vector<AccessSite*> sites_;
};

/// Marks subsequent accesses on `warp` as belonging to the named site:
///   warp.site(TLP_SITE("feat_gather"));
#define TLP_SITE(label_str)                                              \
  ([]() -> const ::tlp::sim::AccessSite* {                               \
    static const ::tlp::sim::AccessSite* s =                             \
        ::tlp::sim::SiteRegistry::instance().intern(label_str, __FILE__, \
                                                    __LINE__);           \
    return s;                                                            \
  }())

/// Like TLP_SITE, but declares that the listed rules (space-separated) are
/// expected to fire here, with a human-readable justification.
#define TLP_SITE_SUPPRESS(label_str, rules_str, reason_str)              \
  ([]() -> const ::tlp::sim::AccessSite* {                               \
    static const ::tlp::sim::AccessSite* s =                             \
        ::tlp::sim::SiteRegistry::instance().intern(label_str, __FILE__, \
                                                    __LINE__, rules_str, \
                                                    reason_str);         \
    return s;                                                            \
  }())

enum class AccessKind : std::uint8_t { kLoad, kStore, kAtomic };

const char* access_kind_name(AccessKind k);

/// One warp-level memory request: up to 32 lane addresses issued together.
struct TraceAccess {
  std::int64_t warp = -1;   ///< launch-unique warp id
  std::int64_t item = -1;   ///< work item being executed (WarpKernel item)
  std::uint32_t site = 0;   ///< AccessSite id (0 = unannotated)
  std::uint32_t slot = 0;   ///< per-warp-context request ordinal
  AccessKind kind = AccessKind::kLoad;
  std::uint8_t bytes = 4;   ///< bytes per lane
  bool scalar = false;      ///< single-lane broadcast access (not divergence)
  std::uint32_t mask = 0;   ///< active lanes
  std::array<std::uint64_t, kTraceWarpSize> addr{};  ///< per-lane byte addrs

  [[nodiscard]] int active_lanes() const;
  /// Distinct 32 B sectors the active lanes touch (the coalescing metric).
  [[nodiscard]] int sectors() const;
};

/// All requests of one kernel launch, in simulation order. Simulation order
/// interleaves warps arbitrarily; only per-warp order is meaningful.
struct KernelTrace {
  std::string kernel;
  int launch_index = 0;
  std::vector<TraceAccess> accesses;
};

/// Per-launch access recorder. Attach to a Device (Device::attach_trace) to
/// opt in; recording costs nothing when detached. A byte budget caps runaway
/// traces: when exhausted, recording stops and `truncated()` reports how many
/// accesses were dropped so no pass mistakes a capped trace for full
/// coverage.
class AccessTrace {
 public:
  /// `max_bytes` bounds the memory the recorder may hold (approximate,
  /// counted in sizeof(TraceAccess) units). 0 = unbounded.
  explicit AccessTrace(std::size_t max_bytes = std::size_t{1} << 30)
      : max_bytes_(max_bytes) {}

  void begin_kernel(const std::string& name);
  void record(const TraceAccess& a);

  [[nodiscard]] const std::vector<KernelTrace>& kernels() const {
    return kernels_;
  }
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] std::int64_t recorded() const { return recorded_; }

  void clear();

 private:
  std::vector<KernelTrace> kernels_;
  std::size_t max_bytes_ = 0;
  std::int64_t recorded_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace tlp::sim
