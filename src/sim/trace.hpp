// Access-trace recorder — the data source for the tlpsan analysis passes
// (src/analysis/).
//
// When an AccessTrace is attached to a MemorySystem, every warp-level global
// memory request is recorded as a TraceAccess: which warp issued it, from
// which static access site, the per-lane byte addresses, the access width,
// and whether it was a load, a plain store, or an atomic. Kernel launch
// boundaries partition the trace; within a launch warps are concurrent,
// across launches the implicit device synchronization orders everything —
// the happens-before structure the race pass exploits.
//
// Access sites: kernels annotate groups of memory operations with
// TLP_SITE("label") so diagnostics can name the source construct instead of
// a raw address. Sites are interned once per call location (function-local
// static), so their ids are stable for the lifetime of the process. A site
// can carry suppressions — rule ids that are *expected* to fire there (e.g.
// the edge-centric baseline's uncoalesced feature gather, which the paper
// documents as the motivating pathology) — recorded with a reason so the
// finding stays visible in reports without failing the diagnostics gate.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tlp::sim {

inline constexpr int kTraceWarpSize = 32;

/// A static source location that issues global-memory accesses. Interned by
/// SiteRegistry; `id` 0 is reserved for "unannotated".
struct AccessSite {
  std::uint32_t id = 0;
  std::string label;
  std::string file;
  int line = 0;
  /// Rule ids (e.g. "TLP-COAL-002") expected to fire at this site, with the
  /// justification that goes into the diagnostic report.
  std::vector<std::string> suppressed_rules;
  std::string suppress_reason;

  [[nodiscard]] bool suppresses(const std::string& rule) const;
};

/// Process-wide interning table for access sites. Single-threaded, like the
/// simulator itself.
class SiteRegistry {
 public:
  static SiteRegistry& instance();

  /// Interns a site. `suppress` is an optional space-separated list of rule
  /// ids expected at this site; `reason` documents why. Call once per static
  /// location (the TLP_SITE macros guarantee this).
  const AccessSite* intern(const char* label, const char* file, int line,
                           const char* suppress = nullptr,
                           const char* reason = nullptr);

  /// Site by id; id 0 (and unknown ids) return the shared "unannotated" site.
  [[nodiscard]] const AccessSite& site(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const { return sites_.size(); }

 private:
  SiteRegistry();
  // Deque-like stability: sites are handed out by pointer, so store by
  // unique address. A vector of pointers keeps ids dense.
  std::vector<AccessSite*> sites_;
};

/// Marks subsequent accesses on `warp` as belonging to the named site:
///   warp.site(TLP_SITE("feat_gather"));
#define TLP_SITE(label_str)                                              \
  ([]() -> const ::tlp::sim::AccessSite* {                               \
    static const ::tlp::sim::AccessSite* s =                             \
        ::tlp::sim::SiteRegistry::instance().intern(label_str, __FILE__, \
                                                    __LINE__);           \
    return s;                                                            \
  }())

/// Like TLP_SITE, but declares that the listed rules (space-separated) are
/// expected to fire here, with a human-readable justification.
#define TLP_SITE_SUPPRESS(label_str, rules_str, reason_str)              \
  ([]() -> const ::tlp::sim::AccessSite* {                               \
    static const ::tlp::sim::AccessSite* s =                             \
        ::tlp::sim::SiteRegistry::instance().intern(label_str, __FILE__, \
                                                    __LINE__, rules_str, \
                                                    reason_str);         \
    return s;                                                            \
  }())

enum class AccessKind : std::uint8_t { kLoad, kStore, kAtomic };

const char* access_kind_name(AccessKind k);

/// One warp-level memory request: up to 32 lane addresses issued together.
struct TraceAccess {
  std::int64_t warp = -1;   ///< launch-unique warp id
  std::int64_t item = -1;   ///< work item being executed (WarpKernel item)
  std::uint32_t site = 0;   ///< AccessSite id (0 = unannotated)
  std::uint32_t slot = 0;   ///< per-warp-context request ordinal
  AccessKind kind = AccessKind::kLoad;
  std::uint8_t bytes = 4;   ///< bytes per lane
  bool scalar = false;      ///< single-lane broadcast access (not divergence)
  std::uint32_t mask = 0;   ///< active lanes
  std::array<std::uint64_t, kTraceWarpSize> addr{};  ///< per-lane byte addrs

  [[nodiscard]] int active_lanes() const;
  /// Distinct 32 B sectors the active lanes touch (the coalescing metric).
  [[nodiscard]] int sectors() const;
};

/// All requests of one kernel launch, in simulation order. Simulation order
/// interleaves warps arbitrarily; only per-warp order is meaningful.
struct KernelTrace {
  std::string kernel;
  int launch_index = 0;
  std::vector<TraceAccess> accesses;
};

/// Allocation-lifecycle event recorded by DeviceMemory while a trace is
/// attached — the provenance layer that lets whole-trace passes reason about
/// *buffers* (label, byte range, generation) instead of raw addresses.
///
/// Host-side data movement is part of a buffer's life: an upload or a
/// memset-style fill acquires a mutable ArenaView (kHostWrite — the H2D /
/// cudaMemset analogue, which also marks the range initialized), a download
/// acquires a const view (kHostRead). kReset marks a DeviceMemory::reset():
/// every live buffer dies and — because the arena is a bump allocator —
/// subsequent allocations reuse byte offsets, so events carry the reset
/// generation to keep reused addresses distinguishable.
struct MemEvent {
  enum class Kind : std::uint8_t {
    kAlloc,
    kFree,
    kHostWrite,  ///< mutable host view: upload / fill (initializes the range)
    kHostRead,   ///< const host view: download / host-side inspection
    kReset,      ///< DeviceMemory::reset(): all live buffers die
  };
  Kind kind = Kind::kAlloc;
  std::int64_t alloc_id = -1;  ///< allocation ordinal within the trace; -1
                               ///< for host/reset events
  std::uint32_t site = 0;      ///< AccessSite id labeling the allocation
  std::uint64_t offset = 0;    ///< payload byte range start
  std::uint64_t bytes = 0;     ///< payload size (0 for kReset)
  std::uint64_t generation = 0;  ///< reset epoch the event belongs to

  // Position in the interleaved access stream: the event happened after
  // `launch` kernels had begun and after `pos` accesses of the most recent
  // one had been recorded. A whole-trace walk over kernel k's access i
  // applies every event with (launch < k + 1) || (launch == k + 1 &&
  // pos <= i) first.
  std::int32_t launch = 0;
  std::int64_t pos = 0;
};

const char* mem_event_kind_name(MemEvent::Kind k);

/// Per-launch access recorder. Attach to a Device (Device::attach_trace) to
/// opt in; recording costs nothing when detached. A byte budget caps runaway
/// traces: when exhausted, recording stops and `truncated()` reports how many
/// accesses were dropped so no pass mistakes a capped trace for full
/// coverage.
class AccessTrace {
 public:
  /// `max_bytes` bounds the memory the recorder may hold (approximate,
  /// counted in sizeof(TraceAccess) units). 0 = unbounded.
  explicit AccessTrace(std::size_t max_bytes = std::size_t{1} << 30)
      : max_bytes_(max_bytes) {}

  void begin_kernel(const std::string& name);
  void record(const TraceAccess& a);

  /// Allocation-lifecycle hooks, called by DeviceMemory when attached.
  /// Events are stamped with their position in the access stream (see
  /// MemEvent) and are never dropped by the byte budget: there are orders of
  /// magnitude fewer events than accesses, and lifetime analysis is useless
  /// with holes in it.
  void record_alloc(std::int64_t alloc_id, std::uint32_t site,
                    std::uint64_t offset, std::uint64_t bytes);
  void record_free(std::int64_t alloc_id, std::uint64_t offset,
                   std::uint64_t bytes);
  void record_host_write(std::uint64_t offset, std::uint64_t bytes);
  void record_host_read(std::uint64_t offset, std::uint64_t bytes);
  void record_reset();

  [[nodiscard]] const std::vector<KernelTrace>& kernels() const {
    return kernels_;
  }
  [[nodiscard]] const std::vector<MemEvent>& events() const { return events_; }
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] std::int64_t recorded() const { return recorded_; }

  void clear();

 private:
  MemEvent stamped(MemEvent::Kind kind) const;

  std::vector<KernelTrace> kernels_;
  std::vector<MemEvent> events_;
  std::uint64_t generation_ = 0;
  std::size_t max_bytes_ = 0;
  std::int64_t recorded_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace tlp::sim
