#include "sim/analytical.hpp"

#include <algorithm>
#include <cmath>

#include "sim/counters.hpp"

namespace tlp::sim {

namespace {

/// Distinct-line estimate for one region/class: a streaming walk touches
/// about as many distinct lines as probes (T ≈ span), a repeated gather over
/// a table is bounded by the table's line span.
double distinct_lines(const AnalyticalOpStats& s) {
  if (s.lines == 0) return 0.0;
  const double span =
      static_cast<double>(s.max_line - s.min_line) + 1.0;
  return std::min(static_cast<double>(s.lines), span);
}

}  // namespace

double AnalyticalTiming::finalize(const GpuSpec& spec, bool model_caches,
                                  KernelRecord& rec) {
  const double l1_lines =
      static_cast<double>(spec.l1_bytes / spec.line_bytes);
  const double l2_lines =
      static_cast<double>(spec.l2_bytes / spec.line_bytes);
  const auto sector_bytes = static_cast<std::int64_t>(spec.sector_bytes);
  const double active_sms = static_cast<double>(std::max<std::int64_t>(
      1, std::min<std::int64_t>(rec.blocks, spec.num_sms)));

  // All regions compete for the one shared L2: its capture probability uses
  // the total distinct-line footprint of the launch.
  double d_total = 0.0;
  for (const std::uint32_t id : dirty_) {
    const AnalyticalRegion& r = regions_[id];
    d_total += distinct_lines(r.load) + distinct_lines(r.store) +
               distinct_lines(r.atomic);
  }
  const double c2 =
      model_caches ? std::min(1.0, l2_lines / std::max(1.0, d_total)) : 0.0;

  double provisional_load_stall = 0.0;
  double corrected_load_stall = 0.0;

  enum class Cls { kLoad, kStore, kAtomic };
  const auto apply = [&](const AnalyticalOpStats& s, Cls cls) {
    if (s.lines == 0) return;
    const double t = static_cast<double>(s.lines);
    const double d = distinct_lines(s);
    std::int64_t h1 = 0;
    std::int64_t h2 = 0;
    if (model_caches) {
      if (cls == Cls::kAtomic) {
        // Atomics resolve at the L2 units and bypass L1.
        rec.l2_accesses += s.lines;
        h2 = static_cast<std::int64_t>(std::floor((t - d) * c2));
        rec.l2_hits += h2;
      } else {
        const double c1 = std::min(1.0, l1_lines / std::max(1.0, d));
        rec.l1_accesses += s.lines;
        h1 = static_cast<std::int64_t>(
            std::floor(std::max(0.0, t - d * active_sms) * c1));
        rec.l1_hits += h1;
        const auto t2 = s.lines - h1;  // L1 misses continue to L2
        rec.l2_accesses += t2;
        h2 = static_cast<std::int64_t>(std::floor(
            std::max(0.0, static_cast<double>(t2) - d) * c2));
        rec.l2_hits += h2;
      }
    }
    // Sector-granular traffic scales with the line-level miss fractions.
    const double miss1 = (t - static_cast<double>(h1)) / t;
    const double miss2 = (t - static_cast<double>(h1 + h2)) / t;
    const auto miss1_sectors = static_cast<std::int64_t>(
        std::llround(static_cast<double>(s.sectors) * miss1));
    const auto miss2_sectors = static_cast<std::int64_t>(
        std::llround(static_cast<double>(s.sectors) * miss2));
    switch (cls) {
      case Cls::kLoad: {
        rec.bytes_load += miss1_sectors * sector_bytes;
        rec.bytes_dram += miss2_sectors * sector_bytes;
        const double f1 = static_cast<double>(h1) / t;
        const double f2 = static_cast<double>(h2) / t;
        const double lat = f1 * spec.l1_latency + f2 * spec.l2_latency +
                           miss2 * spec.dram_latency;
        const double r = static_cast<double>(s.requests);
        provisional_load_stall +=
            r * spec.l2_latency / spec.load_pipeline_depth;
        corrected_load_stall += r * lat / spec.load_pipeline_depth;
        break;
      }
      case Cls::kStore:
        // bytes_store was counted exactly on the hot path (write-through L1
        // sends every store sector across the bus); only the L2-miss share
        // reaches DRAM.
        rec.bytes_dram += miss2_sectors * sector_bytes;
        break;
      case Cls::kAtomic:
        // bytes_atomic and the atomic latency/replay charges are exact on
        // the hot path; only the DRAM share is model-derived.
        rec.bytes_dram += miss2_sectors * sector_bytes;
        break;
    }
  };

  for (const std::uint32_t id : dirty_) {
    const AnalyticalRegion& r = regions_[id];
    apply(r.load, Cls::kLoad);
    apply(r.store, Cls::kStore);
    apply(r.atomic, Cls::kAtomic);
  }

  // Swap the provisional per-request load charge (flat L2 latency) for the
  // expectation under the derived hit mix, then tell the caller how much the
  // whole launch stretched or shrank.
  const double provisional_mem = rec.mem_stall_cycles;
  const double corrected_mem =
      provisional_mem - provisional_load_stall + corrected_load_stall;
  rec.mem_stall_cycles = corrected_mem;
  const double denom = rec.issue_cycles + provisional_mem;
  return denom > 0.0 ? (rec.issue_cycles + corrected_mem) / denom : 1.0;
}

}  // namespace tlp::sim
