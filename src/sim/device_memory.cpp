#include "sim/device_memory.hpp"

#include <cstring>
#include <sstream>

#include "sim/trace.hpp"

namespace tlp::sim {

namespace {

// Poison patterns, picked to be recognizable in a debugger and to produce
// loud NaN-ish garbage if ever interpreted as float data.
constexpr std::byte kUninitPoison{0xCD};  ///< fresh allocation payload
constexpr std::byte kFreedPoison{0xDD};   ///< freed allocation payload
constexpr std::byte kRedzonePoison{0xA5};  ///< inter-allocation redzones

/// Redzone width appended after each guarded allocation. One full alignment
/// unit, so the next allocation never abuts the previous payload.
constexpr std::uint64_t kRedzoneBytes = 256;

}  // namespace

std::uint64_t DeviceMemory::bump(std::uint64_t bytes) {
  constexpr std::uint64_t kAlign = 256;
  const std::uint64_t offset = (top_ + kAlign - 1) / kAlign * kAlign;
  top_ = offset + bytes;
  if (top_ > arena_.size()) {
    // Grow geometrically; growth moves the arena, so every outstanding view
    // is invalidated — the generation bump makes stale use detectable.
    std::uint64_t cap = arena_.empty() ? (1u << 20) : arena_.size();
    while (cap < top_) cap *= 2;
    arena_.resize(cap);
    ++generation_;
  }
  return offset;
}

std::uint64_t DeviceMemory::allocate_bytes(std::uint64_t bytes,
                                           const AccessSite* site) {
  ++alloc_seq_;
  const std::int64_t seq = alloc_seq_ - alloc_base_;
  const bool one_shot = !oom_fault_fired_ && fault_plan_.oom_at_alloc > 0 &&
                        seq == fault_plan_.oom_at_alloc;
  const bool burst = FaultPlan::in_burst(seq, fault_plan_.oom_every,
                                         fault_plan_.oom_burst_len);
  if (one_shot || burst) {
    if (one_shot) oom_fault_fired_ = true;
    FaultProvenance prov;
    prov.source = FaultProvenance::Source::kInjectedOom;
    prov.plan_field = one_shot ? "oom_at_alloc" : "oom_every";
    prov.plan_value =
        one_shot ? fault_plan_.oom_at_alloc : fault_plan_.oom_every;
    prov.seq = seq;
    prov.context = fault_context_;
    std::ostringstream os;
    os << "injected allocation fault: alloc #" << seq << " (" << bytes
       << " B) failed by FaultPlan" << prov.describe();
    OutOfMemory oom(os.str(), static_cast<std::int64_t>(bytes), live_bytes_,
                    0);
    oom.provenance = std::move(prov);
    throw oom;
  }
  if (capacity_bytes_ > 0 &&
      live_bytes_ + static_cast<std::int64_t>(bytes) > capacity_bytes_) {
    std::ostringstream os;
    os << "device out of memory: requested " << bytes << " B with "
       << live_bytes_ << " B live of " << capacity_bytes_ << " B capacity";
    OutOfMemory oom(os.str(), static_cast<std::int64_t>(bytes), live_bytes_,
                    capacity_bytes_);
    oom.provenance.source = FaultProvenance::Source::kCapacity;
    oom.provenance.seq = seq;
    oom.provenance.context = fault_context_;
    throw oom;
  }

  const bool guarded = mode_ == MemoryMode::kGuarded;
  const std::uint64_t offset = bump(guarded ? bytes + kRedzoneBytes : bytes);
  if (guarded) {
    std::memset(arena_.data() + offset, std::to_integer<int>(kUninitPoison),
                bytes);
    std::memset(arena_.data() + offset + bytes,
                std::to_integer<int>(kRedzonePoison), kRedzoneBytes);
  }
  allocs_.push_back({offset, bytes, true});
  live_bytes_ += static_cast<std::int64_t>(bytes);
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  if (trace_ != nullptr) {
    trace_->record_alloc(alloc_seq_, site != nullptr ? site->id : 0, offset,
                         bytes);
  }
  return offset;
}

void DeviceMemory::release_bytes(std::uint64_t offset, std::uint64_t bytes) {
  if (bytes == 0) return;  // freeing a null handle is a no-op
  // Bump offsets are unique for non-empty allocations, so an exact binary
  // search identifies the record.
  auto it = std::lower_bound(
      allocs_.begin(), allocs_.end(), offset,
      [](const AllocationRecord& a, std::uint64_t off) { return a.offset < off; });
  // Zero-size allocations do not advance the bump pointer, so they share
  // their offset with the next real allocation; skip past them to the
  // record that actually owns these bytes.
  while (it != allocs_.end() && it->offset == offset && it->bytes == 0) ++it;
  TLP_CHECK_MSG(it != allocs_.end() && it->offset == offset &&
                    it->bytes == bytes,
                "free() of an address that was never allocated (offset "
                    << offset << ", " << bytes << " B)");
  TLP_CHECK_MSG(it->live, "double free of device allocation at offset "
                              << offset << " (" << bytes << " B)");
  it->live = false;
  if (mode_ == MemoryMode::kGuarded) {
    std::memset(arena_.data() + offset, std::to_integer<int>(kFreedPoison),
                bytes);
  }
  live_bytes_ -= static_cast<std::int64_t>(bytes);
  TLP_CHECK_GE(live_bytes_, 0);
  if (trace_ != nullptr) trace_->record_free(-1, offset, bytes);
}

void DeviceMemory::note_host_write(std::uint64_t offset,
                                   std::uint64_t bytes) const {
  if (trace_ != nullptr && bytes > 0) trace_->record_host_write(offset, bytes);
}

void DeviceMemory::note_host_read(std::uint64_t offset,
                                  std::uint64_t bytes) const {
  if (trace_ != nullptr && bytes > 0) trace_->record_host_read(offset, bytes);
}

const DeviceMemory::AllocationRecord* DeviceMemory::find_allocation(
    std::uint64_t addr) const {
  // Last record with offset <= addr (records are offset-sorted).
  auto it = std::upper_bound(
      allocs_.begin(), allocs_.end(), addr,
      [](std::uint64_t a, const AllocationRecord& r) { return a < r.offset; });
  while (it != allocs_.begin()) {
    --it;
    if (it->bytes == 0) continue;  // zero-size allocs own no addresses
    if (addr < it->offset) continue;
    return addr < it->offset + it->bytes ? &*it : nullptr;
  }
  return nullptr;
}

void DeviceMemory::guarded_check(std::uint64_t byte_addr,
                                 std::size_t bytes) const {
  const AllocationRecord* rec = find_allocation(byte_addr);
  if (rec == nullptr) {
    fail_access(byte_addr, bytes,
                "in a redzone / outside any allocation (out-of-bounds)");
  }
  if (!rec->live) {
    fail_access(byte_addr, bytes, "inside a freed allocation (use-after-free)");
  }
  if (byte_addr + bytes > rec->offset + rec->bytes) {
    fail_access(byte_addr, bytes, "straddling the end of its allocation");
  }
}

void DeviceMemory::fail_access(std::uint64_t byte_addr, std::size_t bytes,
                               const char* what) const {
  std::ostringstream os;
  os << "invalid device access: " << bytes << " B at byte address "
     << byte_addr << ' ' << what;
  if (!kernel_name_.empty()) os << " [kernel '" << kernel_name_ << "']";
  const AllocationRecord* rec = find_allocation(byte_addr);
  if (rec != nullptr) {
    os << " (allocation [" << rec->offset << ", " << rec->offset + rec->bytes
       << "), " << (rec->live ? "live" : "freed") << ')';
  }
  throw InvalidAccess(os.str(), byte_addr, kernel_name_);
}

void DeviceMemory::begin_kernel(const std::string& name) {
  kernel_name_ = name;
  if (mode_ == MemoryMode::kGuarded) write_shadow_.clear();
}

void DeviceMemory::end_kernel() { kernel_name_.clear(); }

void DeviceMemory::note_store(std::uint64_t byte_addr, int bytes,
                              std::int64_t warp, bool atomic) {
  if (mode_ != MemoryMode::kGuarded) return;
  auto [it, inserted] = write_shadow_.try_emplace(
      byte_addr, ShadowWrite{warp, atomic});
  if (!inserted) {
    const ShadowWrite prev = it->second;
    if (prev.warp != warp && (!prev.atomic || !atomic)) {
      std::ostringstream os;
      os << "write race: warps " << prev.warp << " and " << warp
         << " both stored to byte address " << byte_addr << " (" << bytes
         << " B) within kernel '" << kernel_name_
         << "' and at least one store was non-atomic";
      throw WriteRace(os.str(), byte_addr, kernel_name_, prev.warp, warp);
    }
    it->second = ShadowWrite{warp, atomic};
  }
}

void DeviceMemory::flip_bit(std::uint64_t byte_addr, int bit) {
  TLP_CHECK_LT(byte_addr, arena_.size());
  TLP_CHECK_GE(bit, 0);
  TLP_CHECK_LT(bit, 8);
  arena_[byte_addr] ^= std::byte{static_cast<unsigned char>(1u << bit)};
}

void DeviceMemory::reset() {
  if (trace_ != nullptr) trace_->record_reset();
  top_ = 0;
  live_bytes_ = 0;
  peak_bytes_ = 0;
  arena_.clear();
  arena_.shrink_to_fit();
  ++generation_;
  allocs_.clear();
  write_shadow_.clear();
  kernel_name_.clear();
  // alloc_seq_ and oom_fault_fired_ survive on purpose: a one-shot injected
  // fault must stay consumed across the degradation retry's reset.
}

}  // namespace tlp::sim
