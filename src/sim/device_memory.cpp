#include "sim/device_memory.hpp"

#include <cstring>

namespace tlp::sim {

std::uint64_t DeviceMemory::bump(std::uint64_t bytes) {
  constexpr std::uint64_t kAlign = 256;
  const std::uint64_t offset = (top_ + kAlign - 1) / kAlign * kAlign;
  top_ = offset + bytes;
  if (top_ > arena_.size()) {
    // Grow geometrically; views are documented as invalidated by alloc().
    std::uint64_t cap = arena_.empty() ? (1u << 20) : arena_.size();
    while (cap < top_) cap *= 2;
    arena_.resize(cap);
  }
  return offset;
}

void DeviceMemory::reset() {
  top_ = 0;
  live_bytes_ = 0;
  peak_bytes_ = 0;
  arena_.clear();
  arena_.shrink_to_fit();
}

}  // namespace tlp::sim
