// Kernel and launch-policy abstractions.
//
// A WarpKernel exposes warp-granularity work items (for vertex-parallel
// kernels an item is one vertex; for thread-per-vertex or edge-centric
// kernels an item is a 32-wide group). The scheduler decides which warp runs
// which item and when — hardware dynamic block dispatch, static chunking, or
// the software task pool of Algorithm 1.
#pragma once

#include <cstdint>
#include <string>

#include "sim/warp.hpp"

namespace tlp::sim {

class WarpKernel {
 public:
  virtual ~WarpKernel() = default;

  /// Number of warp-granularity work items in this launch.
  [[nodiscard]] virtual std::int64_t num_items() const = 0;

  /// Executes one item on one warp. All global memory access must go through
  /// the WarpCtx so the cost model sees it.
  virtual void run_item(WarpCtx& warp, std::int64_t item) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

enum class Assignment {
  /// One warp per item; blocks dispatched to SMs as slots free up (paper §5,
  /// "hardware-based assignment").
  kHardwareDynamic,
  /// Fixed warp count; each warp owns a contiguous chunk of items. The
  /// "two-level parallelism only" baseline of Figure 10.
  kStaticChunk,
  /// Fixed resident warp count; warps grab `pool_step` items at a time from
  /// a global atomic counter (paper Algorithm 1).
  kSoftwarePool,
};

struct LaunchConfig {
  Assignment assignment = Assignment::kHardwareDynamic;
  int warps_per_block = 16;  ///< 512 threads, the paper's default block size
  /// Items grabbed per pool round (Algorithm 1's `step`).
  int pool_step = 16;
  /// If > 0, fixes the grid size in blocks (Figure 11's thread-count sweep);
  /// otherwise the scheduler sizes the grid per assignment policy.
  int grid_blocks = 0;
};

}  // namespace tlp::sim
