// Deterministic fault injection for the simulated device.
//
// A FaultPlan describes failures the device should manufacture so that every
// error path — OOM fallback, launch retry, silent-corruption detection — can
// be exercised from tests without contriving a workload that actually
// exhausts memory. All injection points are counted deterministically and
// the bit-flip site is drawn from a seeded common/rng stream, so a given
// (plan, workload) pair always fails identically.
//
// Two fault shapes are supported:
//  - one-shot: "fail the Nth allocation/launch" (oom_at_alloc, fail_launch),
//    the original testing knobs — fire once and stay consumed.
//  - recurring bursts: "every `period` allocations, fail `burst_len` in a
//    row" (oom_every/oom_burst_len, launch_every/launch_burst_len) — the
//    *fault storm* model the serving runtime is hardened against. A burst of
//    length L makes L consecutive attempts fail (each failed attempt consumes
//    one injection), so burst length directly dials how deep a retry ladder
//    must go: short bursts are absorbed by retries, medium ones force the
//    degraded fallback, long ones exhaust every policy and surface as Failed.
//
// Plans can also be re-armed mid-run (Device::arm_faults): counters restart
// relative to the arming point, which is how a serving loop schedules a storm
// at a chosen request deterministically.
#pragma once

#include <cstdint>

namespace tlp::sim {

struct FaultPlan {
  /// Fail the Nth allocation (1-based) with tlp::OutOfMemory. One-shot: the
  /// fault fires once and subsequent allocations succeed, which is what lets
  /// a degradation path retry. <= 0 disables.
  std::int64_t oom_at_alloc = 0;

  /// Recurring allocation-fault bursts: within every window of `oom_every`
  /// allocations, the first `oom_burst_len` fail with tlp::OutOfMemory
  /// (capacity 0 marks them as injected). <= 0 disables.
  std::int64_t oom_every = 0;
  std::int64_t oom_burst_len = 1;

  /// Fail the Nth kernel launch (1-based) with tlp::LaunchFailure before the
  /// kernel runs. One-shot. <= 0 disables.
  std::int64_t fail_launch = 0;

  /// Recurring launch-fault bursts, same windowing as oom_every.
  std::int64_t launch_every = 0;
  std::int64_t launch_burst_len = 1;

  /// Immediately before the Nth kernel launch (1-based), flip `flip_bits`
  /// random bits inside a live allocation — an ECC-style corruption that a
  /// reference bit-check must catch downstream. <= 0 disables.
  std::int64_t flip_at_launch = 0;
  int flip_bits = 1;
  /// Allocation to corrupt, as a 0-based index into the allocations made
  /// since the last reset; -1 picks a random live allocation.
  std::int64_t flip_alloc = -1;

  /// Seed for the rng stream that picks bit-flip positions.
  std::uint64_t seed = 0x5eedfa417ULL;

  [[nodiscard]] bool any() const {
    return oom_at_alloc > 0 || oom_every > 0 || fail_launch > 0 ||
           launch_every > 0 || flip_at_launch > 0;
  }

  /// True when `seq` (1-based, relative to the arming point) lands inside a
  /// recurring burst window of (`period`, `burst_len`).
  [[nodiscard]] static bool in_burst(std::int64_t seq, std::int64_t period,
                                     std::int64_t burst_len) {
    return period > 0 && seq > 0 && (seq - 1) % period < burst_len;
  }
};

}  // namespace tlp::sim
