// Deterministic fault injection for the simulated device.
//
// A FaultPlan describes failures the device should manufacture so that every
// error path — OOM fallback, launch retry, silent-corruption detection — can
// be exercised from tests without contriving a workload that actually
// exhausts memory. All injection points are counted deterministically and
// the bit-flip site is drawn from a seeded common/rng stream, so a given
// (plan, workload) pair always fails identically.
#pragma once

#include <cstdint>

namespace tlp::sim {

struct FaultPlan {
  /// Fail the Nth allocation (1-based) with tlp::OutOfMemory. One-shot: the
  /// fault fires once and subsequent allocations succeed, which is what lets
  /// a degradation path retry. <= 0 disables.
  std::int64_t oom_at_alloc = 0;

  /// Fail the Nth kernel launch (1-based) with tlp::LaunchFailure before the
  /// kernel runs. One-shot. <= 0 disables.
  std::int64_t fail_launch = 0;

  /// Immediately before the Nth kernel launch (1-based), flip `flip_bits`
  /// random bits inside a live allocation — an ECC-style corruption that a
  /// reference bit-check must catch downstream. <= 0 disables.
  std::int64_t flip_at_launch = 0;
  int flip_bits = 1;
  /// Allocation to corrupt, as a 0-based index into the allocations made
  /// since the last reset; -1 picks a random live allocation.
  std::int64_t flip_alloc = -1;

  /// Seed for the rng stream that picks bit-flip positions.
  std::uint64_t seed = 0x5eedfa417ULL;

  [[nodiscard]] bool any() const {
    return oom_at_alloc > 0 || fail_launch > 0 || flip_at_launch > 0;
  }
};

}  // namespace tlp::sim
