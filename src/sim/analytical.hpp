// Analytical timing backend: closed-form cache/latency formulas per kernel
// region (DESIGN.md §13).
//
// While a kernel runs under TimingTier::kAnalytical the warp engine skips
// every L1/L2 tag probe and instead feeds this accumulator one O(1) note per
// warp request: which region (tlpsan access site) it belongs to, its op
// class, how many 128 B lines and 32 B sectors it touched, and the line-span
// endpoints. At kernel end, finalize() derives per-region footprints and
// closed-form hit fractions, fills the cache/traffic counters of the
// KernelRecord (l1/l2 accesses+hits, bytes_load, bytes_dram), replaces the
// provisional load-stall charge with the expectation under the derived hit
// mix, and returns the makespan rescale factor.
//
// The model (validated by ratio_band assertions against the mechanistic
// tier):
//  - distinct lines per region/class D = min(line touches T, address span),
//    i.e. a region is either a streaming walk (T ≈ span) or a repeated
//    gather over a table (span ≪ T);
//  - each of the A active SMs pays its own compulsory L1 miss per distinct
//    line, so L1 repeat probes = max(0, T - D·A), captured with probability
//    min(1, L1 lines / D) (the region either fits in L1 or it doesn't);
//  - the shared L2 captures repeats with probability min(1, L2 lines /
//    Σ D over all regions) — regions compete for one L2;
//  - sector-granular traffic scales with the line-level miss fractions;
//  - atomics are exact: the mechanistic tier charges atomic_latency per
//    request and conflict replay from the functional lane addresses, both of
//    which this tier charges identically on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/gpu_spec.hpp"

namespace tlp::sim {

struct KernelRecord;

/// One op class (load/store/atomic) of one kernel region: the closed-form
/// inputs, accumulated in O(1) per warp request.
struct AnalyticalOpStats {
  std::int64_t requests = 0;  ///< warp-level requests
  std::int64_t lines = 0;     ///< line touches (what the mech tier probes)
  std::int64_t sectors = 0;   ///< 32 B sectors
  std::uint64_t min_line = ~std::uint64_t{0};
  std::uint64_t max_line = 0;

  void note(int nlines, int nsec, std::uint64_t lo, std::uint64_t hi) {
    requests += 1;
    lines += nlines;
    sectors += nsec;
    if (lo < min_line) min_line = lo;
    if (hi > max_line) max_line = hi;
  }
};

/// A kernel region = one tlpsan access site (id 0 collects unannotated
/// accesses). Regions are the granularity at which the formulas run: each
/// TLP_SITE in a kernel names one logical buffer walk, which is exactly the
/// unit whose footprint/reuse behavior is coherent.
struct AnalyticalRegion {
  AnalyticalOpStats load;
  AnalyticalOpStats store;
  AnalyticalOpStats atomic;
};

class AnalyticalTiming {
 public:
  /// Clears the per-launch accumulators (called by the kernel scope when the
  /// analytical tier is active). Region storage is retained across launches.
  void begin_kernel() {
    for (const std::uint32_t id : dirty_) {
      regions_[id] = AnalyticalRegion{};
      touched_[id] = 0;
    }
    dirty_.clear();
  }

  /// The accumulator for `site_id`, grown on demand.
  AnalyticalRegion& region(std::uint32_t site_id) {
    if (site_id >= regions_.size()) [[unlikely]] {
      regions_.resize(site_id + 1);
      touched_.resize(site_id + 1, 0);
    }
    if (!touched_[site_id]) {
      touched_[site_id] = 1;
      dirty_.push_back(site_id);
    }
    return regions_[site_id];
  }

  /// Applies the closed-form model: fills the cache/traffic counters of
  /// `rec`, replaces the provisional load stall with the derived one, and
  /// returns the factor by which the caller must rescale its makespan and
  /// residency integral (corrected total cycles / provisional total cycles).
  double finalize(const GpuSpec& spec, bool model_caches, KernelRecord& rec);

 private:
  std::vector<AnalyticalRegion> regions_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint32_t> dirty_;
};

}  // namespace tlp::sim
