// Timing-tier selection for the warp engine (DESIGN.md §13).
//
// The functional layer (what bytes move, which lanes participate) is shared;
// the timing backend that prices an access stream is pluggable:
//
//  - kMechanistic: the per-access model — every request probes the L1/L2 tag
//    arrays, latency is charged per line outcome, atomic conflicts replay.
//    Bit-identical to the pre-split engine; this is the reference tier every
//    golden, tlpbench record, and fuzz oracle pins.
//  - kAnalytical: closed-form sector/line/contention formulas per kernel
//    region (sim/analytical.hpp). No tag probes on the hot path; cache hit
//    fractions and latencies are derived at kernel end from per-region
//    footprint accumulators. Validated against the mechanistic tier by
//    ratio_band shape assertions (bench/baseline.json) and the differential
//    suite in tests/test_analytical.cpp.
#pragma once

#include <string_view>

namespace tlp::sim {

enum class TimingTier {
  kMechanistic,
  kAnalytical,
};

[[nodiscard]] constexpr const char* timing_tier_name(TimingTier t) {
  return t == TimingTier::kAnalytical ? "analytical" : "mech";
}

/// Accepts the CLI spellings ("mech" / "analytical"; "mechanistic" as an
/// alias). Returns false on anything else — the checked CLI getters turn
/// that into an exit-2 usage error naming the valid set.
[[nodiscard]] inline bool timing_tier_from_name(std::string_view name,
                                                TimingTier& out) {
  if (name == "mech" || name == "mechanistic") {
    out = TimingTier::kMechanistic;
    return true;
  }
  if (name == "analytical") {
    out = TimingTier::kAnalytical;
    return true;
  }
  return false;
}

}  // namespace tlp::sim
