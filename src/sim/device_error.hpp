// Structured error taxonomy for the simulated device layer.
//
// Every failure the device can report — allocation beyond capacity, an
// out-of-bounds or use-after-free access caught by guarded memory, a write
// race between warps, or an (injected) kernel-launch failure — is a distinct
// exception type, so callers can implement per-failure policies: the engine
// retries OutOfMemory with a partitioned fallback, while InvalidAccess and
// WriteRace are programming errors that must surface loudly.
//
// DeviceError derives from tlp::CheckError so existing catch sites that
// treat CheckError as "library error" keep working unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace tlp {

/// Where a device failure came from: a genuine resource limit, or a specific
/// FaultPlan entry. Injected faults carry the plan field that fired, the
/// device-side sequence number it fired at, and the caller-supplied context
/// label (Device::set_fault_context — the serving loop tags the current
/// request), so a log line or test failure is self-explaining without
/// correlating device counters by hand.
struct FaultProvenance {
  enum class Source {
    kNone,            ///< not fault-plan related (real capacity, real bug)
    kCapacity,        ///< the GpuSpec memory limit, no injection involved
    kInjectedOom,     ///< a FaultPlan allocation fault
    kInjectedLaunch,  ///< a FaultPlan launch fault
  };

  Source source = Source::kNone;
  /// FaultPlan field that fired ("oom_at_alloc", "oom_every", ...); empty
  /// when source is not injected.
  std::string plan_field;
  /// Value of that plan field (the N of "fail the Nth" / the burst period).
  std::int64_t plan_value = 0;
  /// Device-side ordinal the fault fired at: the allocation sequence number
  /// for OOM faults, the launch sequence number for launch faults. Relative
  /// to the most recent arm_faults() re-arming.
  std::int64_t seq = 0;
  /// Caller-set label of the work in flight ("req 17 attempt 2"), empty when
  /// the caller never tagged the device.
  std::string context;

  [[nodiscard]] bool injected() const {
    return source == Source::kInjectedOom || source == Source::kInjectedLaunch;
  }

  /// " [injected by FaultPlan oom_every=50 at alloc #101; req 17]" — empty
  /// string for non-injected sources, so it can be appended unconditionally.
  [[nodiscard]] std::string describe() const {
    if (!injected()) return "";
    std::string out = " [injected by FaultPlan " + plan_field + "=" +
                      std::to_string(plan_value) + " at " +
                      (source == Source::kInjectedOom ? "alloc" : "launch") +
                      " #" + std::to_string(seq);
    if (!context.empty()) out += "; " + context;
    out += "]";
    return out;
  }
};

/// Base class of all simulated-device failures.
class DeviceError : public CheckError {
 public:
  explicit DeviceError(const std::string& what) : CheckError(what) {}

  /// Fault-injection provenance; source == kNone unless the failure was
  /// manufactured by a FaultPlan (or, for OutOfMemory, the capacity limit).
  FaultProvenance provenance;
};

/// Allocation would exceed device capacity, or an injected allocation fault.
class OutOfMemory : public DeviceError {
 public:
  OutOfMemory(const std::string& what, std::int64_t requested,
              std::int64_t live, std::int64_t capacity)
      : DeviceError(what),
        requested_bytes(requested),
        live_bytes(live),
        capacity_bytes(capacity) {}

  std::int64_t requested_bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t capacity_bytes = 0;  ///< 0 = injected fault, not a real limit
};

/// A load/store/atomic touched memory outside any live allocation (redzone /
/// out-of-bounds) or inside a freed allocation (use-after-free).
class InvalidAccess : public DeviceError {
 public:
  InvalidAccess(const std::string& what, std::uint64_t addr,
                std::string kernel_name)
      : DeviceError(what), byte_addr(addr), kernel(std::move(kernel_name)) {}

  std::uint64_t byte_addr = 0;
  std::string kernel;  ///< empty when no kernel was running
};

/// Two warps stored non-atomically to the same address within one kernel.
class WriteRace : public InvalidAccess {
 public:
  WriteRace(const std::string& what, std::uint64_t addr,
            std::string kernel_name, std::int64_t wa, std::int64_t wb)
      : InvalidAccess(what, addr, std::move(kernel_name)),
        warp_a(wa),
        warp_b(wb) {}

  std::int64_t warp_a = -1;
  std::int64_t warp_b = -1;
};

/// A kernel launch failed (fault injection; mirrors cudaLaunchKernel errors).
class LaunchFailure : public DeviceError {
 public:
  LaunchFailure(const std::string& what, std::string kernel_name)
      : DeviceError(what), kernel(std::move(kernel_name)) {}

  std::string kernel;
};

}  // namespace tlp
