// Structured error taxonomy for the simulated device layer.
//
// Every failure the device can report — allocation beyond capacity, an
// out-of-bounds or use-after-free access caught by guarded memory, a write
// race between warps, or an (injected) kernel-launch failure — is a distinct
// exception type, so callers can implement per-failure policies: the engine
// retries OutOfMemory with a partitioned fallback, while InvalidAccess and
// WriteRace are programming errors that must surface loudly.
//
// DeviceError derives from tlp::CheckError so existing catch sites that
// treat CheckError as "library error" keep working unchanged.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace tlp {

/// Base class of all simulated-device failures.
class DeviceError : public CheckError {
 public:
  explicit DeviceError(const std::string& what) : CheckError(what) {}
};

/// Allocation would exceed device capacity, or an injected allocation fault.
class OutOfMemory : public DeviceError {
 public:
  OutOfMemory(const std::string& what, std::int64_t requested,
              std::int64_t live, std::int64_t capacity)
      : DeviceError(what),
        requested_bytes(requested),
        live_bytes(live),
        capacity_bytes(capacity) {}

  std::int64_t requested_bytes = 0;
  std::int64_t live_bytes = 0;
  std::int64_t capacity_bytes = 0;  ///< 0 = injected fault, not a real limit
};

/// A load/store/atomic touched memory outside any live allocation (redzone /
/// out-of-bounds) or inside a freed allocation (use-after-free).
class InvalidAccess : public DeviceError {
 public:
  InvalidAccess(const std::string& what, std::uint64_t addr,
                std::string kernel_name)
      : DeviceError(what), byte_addr(addr), kernel(std::move(kernel_name)) {}

  std::uint64_t byte_addr = 0;
  std::string kernel;  ///< empty when no kernel was running
};

/// Two warps stored non-atomically to the same address within one kernel.
class WriteRace : public InvalidAccess {
 public:
  WriteRace(const std::string& what, std::uint64_t addr,
            std::string kernel_name, std::int64_t wa, std::int64_t wb)
      : InvalidAccess(what, addr, std::move(kernel_name)),
        warp_a(wa),
        warp_b(wb) {}

  std::int64_t warp_a = -1;
  std::int64_t warp_b = -1;
};

/// A kernel launch failed (fault injection; mirrors cudaLaunchKernel errors).
class LaunchFailure : public DeviceError {
 public:
  LaunchFailure(const std::string& what, std::string kernel_name)
      : DeviceError(what), kernel(std::move(kernel_name)) {}

  std::string kernel;
};

}  // namespace tlp
