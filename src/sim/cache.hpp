// Set-associative tag-array cache model with LRU replacement. Used for the
// per-SM L1s and the shared L2; only tags are tracked (data lives in the
// DeviceMemory arena), which is all the traffic/hit-rate metrics need.
#pragma once

#include <cstdint>
#include <vector>

namespace tlp::sim {

class SetAssocCache {
 public:
  /// `capacity_bytes` / `line_bytes` / `ways` must divide evenly.
  SetAssocCache(std::int64_t capacity_bytes, int line_bytes, int ways);

  /// Accesses the line containing `byte_addr`; returns true on hit and
  /// inserts on miss. LRU within the set.
  bool access(std::uint64_t byte_addr);

  /// Probe without inserting or touching LRU state.
  [[nodiscard]] bool contains(std::uint64_t byte_addr) const;

  void reset();

  [[nodiscard]] std::int64_t accesses() const { return accesses_; }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] double hit_rate() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(hits_) / static_cast<double>(accesses_);
  }
  [[nodiscard]] int num_sets() const { return num_sets_; }
  [[nodiscard]] int ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
  };

  int line_bytes_;
  int ways_;
  int num_sets_;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
  std::uint64_t tick_ = 0;
  std::int64_t accesses_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace tlp::sim
