// Set-associative tag-array cache model with LRU replacement. Used for the
// per-SM L1s and the shared L2; only tags are tracked (data lives in the
// DeviceMemory arena), which is all the traffic/hit-rate metrics need.
//
// Hot-path layout (DESIGN.md §10): tags and LRU timestamps live in one flat
// array of 16-byte {tag, last_use} entries, so probing a 4-way set touches
// exactly one 64-byte host cache line (the tag arrays of 80 simulated L1s
// total ~2 MB and live far apart — halving the lines touched per probe is
// worth more than any instruction-level trick). Set selection is a
// shift/mask when the set count is a power of two (the common case — the
// V100 L1 has 256 sets) and falls back to an exact modulo otherwise (the
// V100 L2 has 3072 sets); both produce the same mapping the original
// div/mod implementation used, so hit/miss sequences are bit-identical.
// A last-line MRU filter short-circuits the scan entirely when an access
// repeats the previous line: the most recently used line cannot have been
// evicted in between, so the hit and its LRU update are known without
// probing the set.
#pragma once

#include <cstdint>
#include <vector>

namespace tlp::sim {

class SetAssocCache {
 public:
  /// `capacity_bytes` / `line_bytes` / `ways` must divide evenly.
  SetAssocCache(std::int64_t capacity_bytes, int line_bytes, int ways);

  /// Accesses the line containing `byte_addr`; returns true on hit and
  /// inserts on miss. LRU within the set. Defined inline below — this is the
  /// innermost call of the memory model (hundreds of millions of probes per
  /// tlpbench run) and must not cost a cross-TU call.
  bool access(std::uint64_t byte_addr);

  /// Probe without inserting or touching LRU state.
  [[nodiscard]] bool contains(std::uint64_t byte_addr) const;

  /// Host prefetch of the set `byte_addr` maps to, so a caller that knows a
  /// probe is coming can overlap the tag-array memory access with other
  /// work. No simulation effect of any kind.
  void prefetch_set(std::uint64_t byte_addr) const {
    const std::uint64_t line = line_of(byte_addr);
    __builtin_prefetch(
        &ways_flat_[set_of(line) * static_cast<std::size_t>(ways_)], 1, 3);
  }

  void reset();

  [[nodiscard]] std::int64_t accesses() const { return accesses_; }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] double hit_rate() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(hits_) / static_cast<double>(accesses_);
  }
  [[nodiscard]] int num_sets() const { return num_sets_; }
  [[nodiscard]] int ways() const { return ways_; }

 private:
  static constexpr std::size_t kNoWay = static_cast<std::size_t>(-1);

  [[nodiscard]] std::uint64_t line_of(std::uint64_t byte_addr) const {
    return line_shift_ >= 0 ? byte_addr >> line_shift_
                            : byte_addr / static_cast<std::uint64_t>(line_bytes_);
  }
  [[nodiscard]] std::size_t set_of(std::uint64_t line) const {
    return set_mask_ != 0
               ? static_cast<std::size_t>(line & set_mask_)
               : static_cast<std::size_t>(
                     line % static_cast<std::uint64_t>(num_sets_));
  }

  int line_bytes_;
  int ways_;
  int num_sets_;
  int line_shift_ = -1;        ///< log2(line_bytes) when a power of two
  std::uint64_t set_mask_ = 0; ///< num_sets-1 when a power of two, else 0
  struct Way {
    std::uint64_t tag;
    std::uint64_t last_use;
  };
  // Flat array, num_sets_ * ways_ entries. A way is empty iff its last_use
  // is 0 (tick_ starts at 1), so no tag value is a sentinel and a line that
  // happens to equal the old ~0 filler can never produce a bogus cold hit.
  std::vector<Way> ways_flat_;
  // MRU filter: absolute index of the way holding the most recently
  // accessed line (kNoWay until the first access after construction/reset).
  std::uint64_t last_line_ = 0;
  std::size_t last_way_ = kNoWay;
  std::uint64_t tick_ = 0;
  std::int64_t accesses_ = 0;
  std::int64_t hits_ = 0;
};

inline bool SetAssocCache::access(std::uint64_t byte_addr) {
  const std::uint64_t line = line_of(byte_addr);
  ++accesses_;
  ++tick_;
  // MRU filter: the most recently touched line is by definition the newest
  // entry in its set, so LRU cannot have evicted it since — a repeat access
  // is a guaranteed hit and only needs its timestamp refreshed.
  if (line == last_line_ && last_way_ != kNoWay) {
    ways_flat_[last_way_].last_use = tick_;
    ++hits_;
    return true;
  }
  const std::size_t base = set_of(line) * static_cast<std::size_t>(ways_);
  std::size_t victim = base;
  for (std::size_t w = base; w < base + static_cast<std::size_t>(ways_); ++w) {
    const Way& e = ways_flat_[w];
    if (e.tag == line && e.last_use != 0) {
      ways_flat_[w].last_use = tick_;
      last_line_ = line;
      last_way_ = w;
      ++hits_;
      return true;
    }
    if (e.last_use < ways_flat_[victim].last_use) victim = w;
  }
  ways_flat_[victim] = {line, tick_};
  last_line_ = line;
  last_way_ = victim;
  return false;
}

}  // namespace tlp::sim
