// Hardware description consumed by the SIMT simulator. Defaults model the
// NVIDIA Tesla V100 (SXM2 32GB) the paper evaluates on; every constant is a
// plain data member so experiments can sweep alternative machines.
#pragma once

#include <cstdint>

namespace tlp::sim {

struct GpuSpec {
  // --- execution resources -------------------------------------------------
  int num_sms = 80;
  int warps_per_sm = 64;        ///< max resident warps per SM
  int max_blocks_per_sm = 32;   ///< hardware block-slot limit
  int warp_size = 32;
  int max_threads_per_block = 1024;
  /// Per-SM thread-slot limit (V100: 2048). Bounds residency together with
  /// the warp-slot and block-slot limits; on architectures where this is
  /// smaller than warps_per_sm * warp_size (e.g. Turing's 1024 slots with
  /// 32 KB register files) the thread limit binds first for wide blocks.
  int max_threads_per_sm = 2048;
  /// Warp-instructions issued per SM per cycle (4 schedulers on V100).
  int issue_width = 4;

  // --- memory hierarchy ----------------------------------------------------
  /// Device global-memory capacity (V100 SXM2: 32 GB). The simulated arena
  /// refuses allocations beyond this with tlp::OutOfMemory — the signal the
  /// engine's partitioned fallback degrades on. 0 = unlimited.
  std::int64_t memory_bytes = 32LL << 30;
  std::int64_t l1_bytes = 128 << 10;  ///< per-SM combined L1/shared
  int l1_ways = 4;
  std::int64_t l2_bytes = 6 << 20;
  int l2_ways = 16;
  int line_bytes = 128;
  int sector_bytes = 32;

  double clock_ghz = 1.38;
  /// DRAM bandwidth expressed per GPU clock: ~900 GB/s / 1.38 GHz.
  double dram_bytes_per_cycle = 652.0;
  double l2_bytes_per_cycle = 1600.0;

  // Load-to-use latencies (cycles), typical V100 microbenchmark values.
  double l1_latency = 28.0;
  double l2_latency = 193.0;
  double dram_latency = 420.0;
  /// Independent loads a warp keeps in flight before the scoreboard stalls
  /// it (memory-level parallelism within one warp). Atomics never pipeline.
  double load_pipeline_depth = 4.0;

  // --- atomics -------------------------------------------------------------
  /// Extra latency charged per additional lane contending on one address
  /// (atomic replays serialize at the L2 atomic units).
  double atomic_replay_cycles = 36.0;
  /// Base latency of a global atomic (round trip to L2 atomic unit).
  double atomic_latency = 210.0;
  /// Whole-GPU retirement rate of global atomic operations (the L2 atomic
  /// units process roughly one op per slice per cycle). This throughput
  /// floor is what makes atomic-heavy kernels slow even at full occupancy —
  /// the paper's Observation I.
  double atomic_ops_per_cycle = 24.0;
  /// Serialization gap between successive grabs of the software work pool's
  /// single global counter (Algorithm 1): the L2 atomic unit completes one
  /// fetch-add on a given address every few cycles.
  double pool_grab_gap_cycles = 8.0;

  // --- scheduling ----------------------------------------------------------
  /// Cycles the GigaThread engine needs to set up a block on an SM — this is
  /// the "hardware scheduling overhead" the paper's hybrid heuristic trades
  /// against workload balance (§5).
  double block_dispatch_cycles = 250.0;
  /// Device-side cost of one kernel launch, microseconds.
  double kernel_launch_us = 4.0;
  /// Cap on how many resident warps' worth of latency hiding one warp can
  /// enjoy (memory-level parallelism limit).
  int latency_hiding_cap = 32;

  [[nodiscard]] double cycles_to_ms(double cycles) const {
    return cycles / (clock_ghz * 1e6);
  }
  [[nodiscard]] double us_to_cycles(double us) const {
    return us * clock_ghz * 1e3;
  }
  [[nodiscard]] int sectors_per_line() const {
    return line_bytes / sector_bytes;
  }

  /// The paper's evaluation machine.
  static GpuSpec v100() { return GpuSpec{}; }

  /// A proportionally scaled-down V100 for scaled-down dataset replicas:
  /// dividing SM count, cache capacities, and bandwidth by `divisor` keeps
  /// the machine balance (working set : cache, compute : bandwidth) of the
  /// full-size experiment, so cache-residency effects match the paper's
  /// scale instead of vanishing on a small replica. Latencies and the warp
  /// model are per-SM properties and stay fixed.
  static GpuSpec v100_scaled(int divisor);
};

}  // namespace tlp::sim
