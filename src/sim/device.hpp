// Simulated GPU device facade: memory management, kernel launching, and
// profiling in one object. This is the only simulator type the kernel and
// system layers need to hold.
#pragma once

#include <span>
#include <string>

#include "sim/counters.hpp"
#include "sim/device_memory.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/kernel.hpp"
#include "sim/scheduler.hpp"
#include "sim/warp.hpp"

namespace tlp::sim {

class Device {
 public:
  explicit Device(const GpuSpec& spec = GpuSpec::v100()) : sys_(spec) {}

  [[nodiscard]] const GpuSpec& spec() const { return sys_.spec; }
  [[nodiscard]] MemorySystem& sys() { return sys_; }
  [[nodiscard]] DeviceMemory& mem() { return sys_.mem; }

  /// Allocates and copies host data to the device (cudaMemcpy H2D analogue).
  template <class T>
  DevPtr<T> upload(std::span<const T> host) {
    DevPtr<T> p = sys_.mem.alloc<T>(static_cast<std::int64_t>(host.size()));
    auto dst = sys_.mem.view(p);
    std::copy(host.begin(), host.end(), dst.begin());
    return p;
  }

  /// Allocates zero-initialized device storage.
  template <class T>
  DevPtr<T> alloc_zeroed(std::int64_t count) {
    DevPtr<T> p = sys_.mem.alloc<T>(count);
    auto dst = sys_.mem.view(p);
    std::fill(dst.begin(), dst.end(), T{});
    return p;
  }

  /// Copies device data back to a host vector (cudaMemcpy D2H analogue).
  template <class T>
  [[nodiscard]] std::vector<T> download(DevPtr<T> p) const {
    auto src = sys_.mem.view(p);
    return {src.begin(), src.end()};
  }

  /// Runs a kernel and records a launch in the profile.
  KernelRecord& launch(WarpKernel& kernel, const LaunchConfig& cfg = {}) {
    KernelRecord& rec = profiler_.begin_kernel(kernel.name());
    run_kernel(sys_, kernel, cfg, rec);
    return rec;
  }

  [[nodiscard]] const Profiler& profiler() const { return profiler_; }

  /// Aggregate Nsight-style metrics over all launches since the last reset.
  [[nodiscard]] Metrics metrics() const {
    Metrics m = profiler_.aggregate(sys_.spec.clock_ghz, sys_.spec.num_sms,
                                    sys_.spec.issue_width,
                                    sys_.spec.warps_per_sm);
    m.peak_device_bytes = sys_.mem.peak_bytes();
    return m;
  }

  [[nodiscard]] double gpu_time_ms() const { return metrics().gpu_time_ms; }

  /// Clears the launch profile, keeping memory and cache contents.
  void reset_profile() { profiler_.reset(); }

  /// Full reset: profile, caches, and device memory.
  void reset_all() {
    profiler_.reset();
    sys_.reset_caches();
    sys_.mem.reset();
  }

 private:
  MemorySystem sys_;
  Profiler profiler_;
};

}  // namespace tlp::sim
