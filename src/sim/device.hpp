// Simulated GPU device facade: memory management, kernel launching, and
// profiling in one object. This is the only simulator type the kernel and
// system layers need to hold.
//
// Robustness: the device enforces the GpuSpec memory capacity (alloc beyond
// it throws tlp::OutOfMemory), can run its arena in guarded mode (redzones,
// use-after-free and write-race detection — see device_memory.hpp), and
// executes a deterministic FaultPlan: forced allocation failures, injected
// bit flips before a chosen launch (ECC-style corruption), and forced
// kernel-launch failures (tlp::LaunchFailure).
#pragma once

#include <span>
#include <string>

#include "common/rng.hpp"
#include "sim/counters.hpp"
#include "sim/device_error.hpp"
#include "sim/device_memory.hpp"
#include "sim/fault_plan.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/kernel.hpp"
#include "sim/scheduler.hpp"
#include "sim/warp.hpp"

namespace tlp::sim {

struct DeviceOptions {
  MemoryMode mem_mode = MemoryMode::kFast;
  FaultPlan faults{};
  /// Which timing backend prices the access streams of launched kernels:
  /// the per-access mechanistic model (default, the bit-pinned reference)
  /// or the closed-form analytical fast tier (sim/timing.hpp, DESIGN.md
  /// §13). Functional results are identical under both.
  TimingTier timing_tier = TimingTier::kMechanistic;
};

class Device {
 public:
  explicit Device(const GpuSpec& spec = GpuSpec::v100(),
                  const DeviceOptions& opts = {})
      : sys_(spec), opts_(opts), fault_rng_(opts.faults.seed) {
    sys_.mem.set_mode(opts.mem_mode);
    sys_.mem.set_capacity(spec.memory_bytes);
    sys_.mem.set_fault_plan(opts.faults);
    sys_.tier = opts.timing_tier;
  }

  [[nodiscard]] TimingTier timing_tier() const { return sys_.tier; }

  [[nodiscard]] const GpuSpec& spec() const { return sys_.spec; }
  [[nodiscard]] const DeviceOptions& options() const { return opts_; }
  [[nodiscard]] MemorySystem& sys() { return sys_; }
  [[nodiscard]] DeviceMemory& mem() { return sys_.mem; }

  /// Attaches (or with nullptr detaches) a tlpsan access-trace recorder.
  /// Recording covers every subsequent launch plus the allocation-lifecycle
  /// events the arena emits; the caller owns the trace and must keep it
  /// alive while attached. Costs nothing when detached.
  void attach_trace(AccessTrace* trace) {
    sys_.trace = trace;
    sys_.mem.attach_trace(trace);
  }
  [[nodiscard]] AccessTrace* trace() const { return sys_.trace; }

  /// Allocates and copies host data to the device (cudaMemcpy H2D analogue).
  /// `site` (from TLP_SITE) labels the buffer in an attached trace.
  template <class T>
  DevPtr<T> upload(std::span<const T> host,
                   const AccessSite* site = nullptr) {
    DevPtr<T> p = sys_.mem.alloc<T>(static_cast<std::int64_t>(host.size()),
                                    site);
    auto dst = sys_.mem.view(p);
    std::copy(host.begin(), host.end(), dst.begin());
    return p;
  }

  /// Allocates zero-initialized device storage. `site` labels the buffer in
  /// an attached trace.
  template <class T>
  DevPtr<T> alloc_zeroed(std::int64_t count,
                         const AccessSite* site = nullptr) {
    DevPtr<T> p = sys_.mem.alloc<T>(count, site);
    auto dst = sys_.mem.view(p);
    std::fill(dst.begin(), dst.end(), T{});
    return p;
  }

  /// Copies device data back to a host vector (cudaMemcpy D2H analogue).
  template <class T>
  [[nodiscard]] std::vector<T> download(DevPtr<T> p) const {
    auto src = sys_.mem.view(p);
    return {src.begin(), src.end()};
  }

  /// Re-arms the fault plan mid-run: allocation and launch fault counters
  /// restart relative to *now* ("the Nth allocation/launch from here"), and
  /// consumed one-shot faults reset. This is the deterministic trigger hook a
  /// serving loop uses to start (or stop — arm a FaultPlan{}) a fault storm
  /// at a chosen request.
  void arm_faults(const FaultPlan& plan) {
    opts_.faults = plan;
    launch_base_ = launch_seq_;
    launch_fault_fired_ = false;
    sys_.mem.arm_fault_plan(plan);
  }

  /// Labels injected-fault errors with the work in flight (e.g. "req 17");
  /// recorded in FaultProvenance::context. Empty clears the label.
  void set_fault_context(std::string context) {
    sys_.mem.set_fault_context(std::move(context));
  }

  /// Runs a kernel and records a launch in the profile. Applies the fault
  /// plan's launch-scoped injections first: a forced LaunchFailure, or bit
  /// flips in device memory (which the kernel then consumes — the model for
  /// undetected ECC corruption).
  KernelRecord& launch(WarpKernel& kernel, const LaunchConfig& cfg = {}) {
    ++launch_seq_;
    const FaultPlan& plan = opts_.faults;
    const std::int64_t seq = launch_seq_ - launch_base_;
    const bool one_shot = !launch_fault_fired_ && plan.fail_launch > 0 &&
                          seq == plan.fail_launch;
    const bool burst =
        FaultPlan::in_burst(seq, plan.launch_every, plan.launch_burst_len);
    if (one_shot || burst) {
      if (one_shot) launch_fault_fired_ = true;
      FaultProvenance prov;
      prov.source = FaultProvenance::Source::kInjectedLaunch;
      prov.plan_field = one_shot ? "fail_launch" : "launch_every";
      prov.plan_value = one_shot ? plan.fail_launch : plan.launch_every;
      prov.seq = seq;
      prov.context = sys_.mem.fault_context();
      LaunchFailure failure("injected launch fault: kernel '" + kernel.name() +
                                "' (launch #" + std::to_string(seq) +
                                ") failed by FaultPlan" + prov.describe(),
                            kernel.name());
      failure.provenance = std::move(prov);
      throw failure;
    }
    if (plan.flip_at_launch > 0 && seq == plan.flip_at_launch) {
      inject_bit_flips();
    }
    KernelRecord& rec = profiler_.begin_kernel(kernel.name());
    run_kernel(sys_, kernel, cfg, rec);
    return rec;
  }

  [[nodiscard]] const Profiler& profiler() const { return profiler_; }

  /// Aggregate Nsight-style metrics over all launches since the last reset.
  [[nodiscard]] Metrics metrics() const {
    Metrics m = profiler_.aggregate(sys_.spec.clock_ghz, sys_.spec.num_sms,
                                    sys_.spec.issue_width,
                                    sys_.spec.warps_per_sm);
    m.peak_device_bytes = sys_.mem.peak_bytes();
    return m;
  }

  [[nodiscard]] double gpu_time_ms() const { return metrics().gpu_time_ms; }

  /// Clears the launch profile, keeping memory and cache contents.
  void reset_profile() { profiler_.reset(); }

  /// Full reset: profile, caches, and device memory. Fault-plan progress is
  /// kept — one-shot faults stay consumed across degradation retries.
  void reset_all() {
    profiler_.reset();
    sys_.reset_caches();
    sys_.mem.reset();
  }

 private:
  void inject_bit_flips() {
    const FaultPlan& plan = opts_.faults;
    const auto& allocs = sys_.mem.allocations();
    // Candidate buffers: the chosen allocation, or any live non-empty one.
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < allocs.size(); ++i) {
      if (allocs[i].live && allocs[i].bytes > 0) live.push_back(i);
    }
    if (live.empty()) return;
    const AllocationTarget target = pick_target(live);
    for (int i = 0; i < plan.flip_bits; ++i) {
      const std::uint64_t byte =
          target.offset + fault_rng_.next_below(target.bytes);
      sys_.mem.flip_bit(byte, static_cast<int>(fault_rng_.next_below(8)));
    }
  }

  struct AllocationTarget {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  AllocationTarget pick_target(const std::vector<std::size_t>& live) {
    const auto& allocs = sys_.mem.allocations();
    const FaultPlan& plan = opts_.faults;
    if (plan.flip_alloc >= 0) {
      TLP_CHECK_MSG(plan.flip_alloc <
                        static_cast<std::int64_t>(allocs.size()),
                    "FaultPlan::flip_alloc " << plan.flip_alloc
                        << " out of range (" << allocs.size()
                        << " allocations)");
      const auto& a = allocs[static_cast<std::size_t>(plan.flip_alloc)];
      TLP_CHECK_MSG(a.live && a.bytes > 0,
                    "FaultPlan::flip_alloc targets a dead or empty buffer");
      return {a.offset, a.bytes};
    }
    const auto& a = allocs[live[static_cast<std::size_t>(
        fault_rng_.next_below(live.size()))]];
    return {a.offset, a.bytes};
  }

  MemorySystem sys_;
  DeviceOptions opts_;
  Profiler profiler_;
  Rng fault_rng_;
  std::int64_t launch_seq_ = 0;
  /// Launch count at the last arm_faults(); plan counters are evaluated
  /// against (launch_seq_ - launch_base_).
  std::int64_t launch_base_ = 0;
  bool launch_fault_fired_ = false;
};

}  // namespace tlp::sim
