#include "sim/trace.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.hpp"

namespace tlp::sim {

bool AccessSite::suppresses(const std::string& rule) const {
  return std::find(suppressed_rules.begin(), suppressed_rules.end(), rule) !=
         suppressed_rules.end();
}

SiteRegistry& SiteRegistry::instance() {
  // Intentionally leaked: interned AccessSite pointers are cached in
  // function-local statics at every TLP_SITE expansion, so the registry must
  // outlive all static destructors. Never destroying it keeps the sites
  // reachable (and LeakSanitizer quiet).
  static SiteRegistry* reg = new SiteRegistry;
  return *reg;
}

SiteRegistry::SiteRegistry() {
  // Reserve id 0 for accesses issued without a site() annotation.
  auto* unannotated = new AccessSite{};
  unannotated->label = "<unannotated>";
  sites_.push_back(unannotated);
}

const AccessSite* SiteRegistry::intern(const char* label, const char* file,
                                       int line, const char* suppress,
                                       const char* reason) {
  auto* s = new AccessSite{};
  s->id = static_cast<std::uint32_t>(sites_.size());
  s->label = label;
  s->file = file;
  s->line = line;
  if (suppress != nullptr) {
    std::istringstream is(suppress);
    std::string rule;
    while (is >> rule) s->suppressed_rules.push_back(rule);
    if (reason != nullptr) s->suppress_reason = reason;
    TLP_CHECK_MSG(!s->suppressed_rules.empty(),
                  "TLP_SITE_SUPPRESS at " << file << ':' << line
                                          << " lists no rule ids");
  }
  sites_.push_back(s);
  return s;
}

const AccessSite& SiteRegistry::site(std::uint32_t id) const {
  if (id >= sites_.size()) return *sites_[0];
  return *sites_[id];
}

const char* mem_event_kind_name(MemEvent::Kind k) {
  switch (k) {
    case MemEvent::Kind::kAlloc:
      return "alloc";
    case MemEvent::Kind::kFree:
      return "free";
    case MemEvent::Kind::kHostWrite:
      return "host_write";
    case MemEvent::Kind::kHostRead:
      return "host_read";
    case MemEvent::Kind::kReset:
      return "reset";
  }
  return "?";
}

const char* access_kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::kLoad:
      return "load";
    case AccessKind::kStore:
      return "store";
    case AccessKind::kAtomic:
      return "atomic";
  }
  return "?";
}

int TraceAccess::active_lanes() const { return std::popcount(mask); }

int TraceAccess::sectors() const {
  std::array<std::uint64_t, kTraceWarpSize> sec{};
  int n = 0;
  for (int l = 0; l < kTraceWarpSize; ++l) {
    if (((mask >> l) & 1u) == 0) continue;
    const std::uint64_t s = addr[static_cast<std::size_t>(l)] >> 5;
    bool seen = false;
    for (int i = 0; i < n; ++i) {
      if (sec[static_cast<std::size_t>(i)] == s) {
        seen = true;
        break;
      }
    }
    if (!seen) sec[static_cast<std::size_t>(n++)] = s;
  }
  return n;
}

void AccessTrace::begin_kernel(const std::string& name) {
  KernelTrace kt;
  kt.kernel = name;
  kt.launch_index = static_cast<int>(kernels_.size());
  kernels_.push_back(std::move(kt));
}

void AccessTrace::record(const TraceAccess& a) {
  TLP_CHECK_MSG(!kernels_.empty(),
                "AccessTrace::record outside a kernel launch");
  if (max_bytes_ > 0 &&
      static_cast<std::size_t>(recorded_) * sizeof(TraceAccess) >= max_bytes_) {
    ++dropped_;
    return;
  }
  kernels_.back().accesses.push_back(a);
  ++recorded_;
}

MemEvent AccessTrace::stamped(MemEvent::Kind kind) const {
  MemEvent ev;
  ev.kind = kind;
  ev.generation = generation_;
  ev.launch = static_cast<std::int32_t>(kernels_.size());
  ev.pos = kernels_.empty()
               ? 0
               : static_cast<std::int64_t>(kernels_.back().accesses.size());
  return ev;
}

void AccessTrace::record_alloc(std::int64_t alloc_id, std::uint32_t site,
                               std::uint64_t offset, std::uint64_t bytes) {
  MemEvent ev = stamped(MemEvent::Kind::kAlloc);
  ev.alloc_id = alloc_id;
  ev.site = site;
  ev.offset = offset;
  ev.bytes = bytes;
  events_.push_back(ev);
}

void AccessTrace::record_free(std::int64_t alloc_id, std::uint64_t offset,
                              std::uint64_t bytes) {
  MemEvent ev = stamped(MemEvent::Kind::kFree);
  ev.alloc_id = alloc_id;
  ev.offset = offset;
  ev.bytes = bytes;
  events_.push_back(ev);
}

void AccessTrace::record_host_write(std::uint64_t offset,
                                    std::uint64_t bytes) {
  MemEvent ev = stamped(MemEvent::Kind::kHostWrite);
  ev.offset = offset;
  ev.bytes = bytes;
  events_.push_back(ev);
}

void AccessTrace::record_host_read(std::uint64_t offset, std::uint64_t bytes) {
  MemEvent ev = stamped(MemEvent::Kind::kHostRead);
  ev.offset = offset;
  ev.bytes = bytes;
  events_.push_back(ev);
}

void AccessTrace::record_reset() {
  events_.push_back(stamped(MemEvent::Kind::kReset));
  ++generation_;
}

void AccessTrace::clear() {
  kernels_.clear();
  events_.clear();
  generation_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace tlp::sim
