#include "sim/gpu_spec.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tlp::sim {

GpuSpec GpuSpec::v100_scaled(int divisor) {
  TLP_CHECK(divisor >= 1);
  GpuSpec s;
  s.num_sms = std::max(1, s.num_sms / divisor);
  // Keep at least 32 lines per cache and round capacities to whole sets so
  // the set-associative geometry stays valid.
  const auto round_to_sets = [&](std::int64_t bytes, int ways) {
    const std::int64_t set_bytes =
        static_cast<std::int64_t>(s.line_bytes) * ways;
    return std::max(set_bytes, bytes / set_bytes * set_bytes);
  };
  s.memory_bytes = std::max<std::int64_t>(64 << 20, s.memory_bytes / divisor);
  s.l1_bytes = round_to_sets(
      std::max<std::int64_t>(4 << 10, s.l1_bytes / divisor), s.l1_ways);
  s.l2_bytes = round_to_sets(
      std::max<std::int64_t>(64 << 10, s.l2_bytes / divisor), s.l2_ways);
  s.dram_bytes_per_cycle =
      std::max(8.0, s.dram_bytes_per_cycle / divisor);
  s.l2_bytes_per_cycle = std::max(16.0, s.l2_bytes_per_cycle / divisor);
  s.atomic_ops_per_cycle = std::max(1.0, s.atomic_ops_per_cycle / divisor);
  return s;
}

}  // namespace tlp::sim
