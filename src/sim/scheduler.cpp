#include "sim/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace tlp::sim {

int resident_blocks_per_sm(const GpuSpec& spec, int warps_per_block) {
  const int by_warps = std::max(1, spec.warps_per_sm / warps_per_block);
  const int by_threads = std::max(
      1, spec.max_threads_per_sm / (spec.warp_size * warps_per_block));
  return std::min({spec.max_blocks_per_sm, by_warps, by_threads});
}

namespace {

/// Reusable per-launch buffers. The simulator is single-threaded and kernels
/// never launch kernels (run_item is leaf compute), so one scratch set per
/// thread serves every run_* call without per-launch heap churn.
struct SchedulerScratch {
  std::vector<double> durations;
  std::vector<double> slot_heap;
  std::vector<std::pair<double, std::int64_t>> pool_heap;
};

SchedulerScratch& scratch() {
  static thread_local SchedulerScratch s;
  return s;
}

/// Greedy slot schedule: `slots` servers process block durations in order;
/// returns the makespan and accumulates Σ duration per block into
/// `service_integral` (used for the occupancy integral). The min-heap lives
/// in scratch so repeated launches reuse its storage.
double slot_makespan(const std::vector<double>& durations, int slots,
                     double dispatch_cycles, double* service_sum) {
  TLP_CHECK(slots >= 1);
  std::vector<double>& heap = scratch().slot_heap;
  heap.assign(static_cast<std::size_t>(slots), 0.0);  // all-zero is a heap
  double makespan = 0.0;
  double service = 0.0;
  for (const double d : durations) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const double start = heap.back();
    const double end = start + dispatch_cycles + d;
    service += dispatch_cycles + d;
    makespan = std::max(makespan, end);
    heap.back() = end;
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  }
  if (service_sum != nullptr) *service_sum = service;
  return makespan;
}

/// Throughput floors: a kernel can never finish faster than its issue work,
/// L2-bus traffic, DRAM traffic, or atomic ops allow. A grid too small to
/// occupy every SM only commands a proportional share of the machine's
/// bandwidth — one SM cannot stream the whole HBM (this is what makes the
/// Figure 11 thread-count sweep scale).
double throughput_floor(const GpuSpec& spec, const KernelRecord& rec) {
  const double active_sms = static_cast<double>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(rec.blocks, spec.num_sms)));
  const double share = active_sms / spec.num_sms;
  const double issue_floor =
      rec.issue_cycles / (static_cast<double>(spec.issue_width) * active_sms);
  const double l2_bytes = static_cast<double>(rec.bytes_load + rec.bytes_store +
                                              rec.bytes_atomic);
  const double l2_floor = l2_bytes / (spec.l2_bytes_per_cycle * share);
  const double dram_floor =
      static_cast<double>(rec.bytes_dram) / (spec.dram_bytes_per_cycle * share);
  const double atomic_floor =
      static_cast<double>(rec.atomic_ops) / (spec.atomic_ops_per_cycle * share);
  return std::max({issue_floor, l2_floor, dram_floor, atomic_floor});
}

void finalize_timing(MemorySystem& sys, KernelRecord& rec, double makespan,
                     double resident_integral) {
  const GpuSpec& spec = sys.spec;
  if (sys.tier == TimingTier::kAnalytical) {
    // The analytical backend derives cache hit fractions and traffic from
    // its per-region accumulators now that the whole access stream is known,
    // then rescales the slot-schedule makespan by the corrected-to-
    // provisional cycle ratio. Must run before the throughput floors, which
    // read the traffic counters it fills (bytes_load/bytes_dram).
    const double scale = sys.analytical.finalize(spec, sys.model_caches, rec);
    makespan *= scale;
    resident_integral *= scale;
  }
  const double floor = throughput_floor(spec, rec);
  const double elapsed = std::max(makespan, floor);
  rec.elapsed_cycles = elapsed;
  // If a throughput floor stretched the kernel, resident blocks simply stay
  // resident (stalled) longer — scale the occupancy integral accordingly.
  if (makespan > 0.0 && elapsed > makespan) {
    resident_integral *= elapsed / makespan;
  }
  rec.resident_warp_integral = resident_integral;
  rec.launch_overhead_us += spec.kernel_launch_us;
}

void run_hardware_dynamic(MemorySystem& sys, WarpKernel& kernel,
                          const LaunchConfig& cfg, KernelRecord& rec) {
  const GpuSpec& spec = sys.spec;
  const std::int64_t n = kernel.num_items();
  const int wpb = std::max(1, cfg.warps_per_block);
  const std::int64_t blocks = (n + wpb - 1) / wpb;
  rec.blocks = blocks;
  rec.warps_per_block = wpb;

  std::vector<double>& durations = scratch().durations;
  durations.clear();
  durations.reserve(static_cast<std::size_t>(blocks));
  double resident_integral = 0.0;
  WarpCtx warp(sys, 0);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const int sm = static_cast<int>(b % spec.num_sms);
    double block_serial = 0.0;
    int block_warps = 0;
    const std::int64_t lo = b * wpb;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + wpb);
    for (std::int64_t item = lo; item < hi; ++item) {
      warp.reassign(sm, /*warp_id=*/item);
      warp.begin_item(item);
      kernel.run_item(warp, item);
      rec.issue_cycles += warp.issue_cycles();
      rec.mem_stall_cycles += warp.mem_cycles();
      rec.warps++;
      ++block_warps;
      block_serial = std::max(block_serial, warp.total_cycles());
    }
    durations.push_back(block_serial);
    resident_integral += block_serial * block_warps;
  }

  const int slots =
      spec.num_sms * resident_blocks_per_sm(spec, wpb);
  const double makespan = slot_makespan(durations, slots,
                                        spec.block_dispatch_cycles, nullptr);
  finalize_timing(sys, rec, makespan, resident_integral);
}

void run_static_chunk(MemorySystem& sys, WarpKernel& kernel,
                      const LaunchConfig& cfg, KernelRecord& rec) {
  const GpuSpec& spec = sys.spec;
  const std::int64_t n = kernel.num_items();
  const int wpb = std::max(1, cfg.warps_per_block);
  std::int64_t total_warps =
      cfg.grid_blocks > 0
          ? static_cast<std::int64_t>(cfg.grid_blocks) * wpb
          : static_cast<std::int64_t>(spec.num_sms) * spec.warps_per_sm;
  total_warps = std::max<std::int64_t>(1, std::min(total_warps, n));
  const std::int64_t chunk = (n + total_warps - 1) / total_warps;
  const std::int64_t blocks = (total_warps + wpb - 1) / wpb;
  rec.blocks = blocks;
  rec.warps_per_block = wpb;

  std::vector<double>& durations = scratch().durations;
  durations.clear();
  durations.reserve(static_cast<std::size_t>(blocks));
  double resident_integral = 0.0;
  WarpCtx warp(sys, 0);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const int sm = static_cast<int>(b % spec.num_sms);
    double block_serial = 0.0;
    int block_warps = 0;
    for (std::int64_t w = b * wpb;
         w < std::min<std::int64_t>(total_warps, (b + 1) * wpb); ++w) {
      warp.reassign(sm, /*warp_id=*/w);
      const std::int64_t lo = w * chunk;
      const std::int64_t hi = std::min<std::int64_t>(n, lo + chunk);
      for (std::int64_t item = lo; item < hi; ++item) {
        warp.begin_item(item);
        kernel.run_item(warp, item);
      }
      rec.issue_cycles += warp.issue_cycles();
      rec.mem_stall_cycles += warp.mem_cycles();
      rec.warps++;
      ++block_warps;
      block_serial = std::max(block_serial, warp.total_cycles());
    }
    durations.push_back(block_serial);
    resident_integral += block_serial * block_warps;
  }

  const int slots = spec.num_sms * resident_blocks_per_sm(spec, wpb);
  const double makespan = slot_makespan(durations, slots,
                                        spec.block_dispatch_cycles, nullptr);
  finalize_timing(sys, rec, makespan, resident_integral);
}

void run_software_pool(MemorySystem& sys, WarpKernel& kernel,
                       const LaunchConfig& cfg, KernelRecord& rec) {
  const GpuSpec& spec = sys.spec;
  const std::int64_t n = kernel.num_items();
  const int wpb = std::max(1, cfg.warps_per_block);
  std::int64_t total_warps =
      cfg.grid_blocks > 0
          ? static_cast<std::int64_t>(cfg.grid_blocks) * wpb
          : static_cast<std::int64_t>(spec.num_sms) * spec.warps_per_sm;
  total_warps = std::max<std::int64_t>(1, total_warps);
  rec.blocks = (total_warps + wpb - 1) / wpb;
  rec.warps_per_block = wpb;
  rec.warps = total_warps;
  // Adaptive grab size: cfg.pool_step is an upper bound, shrunk when there
  // are too few items per warp for coarse grabs to keep everyone busy (the
  // kernel reads the launch dimensions, so this costs nothing at runtime).
  const std::int64_t step = std::max<std::int64_t>(
      1, std::min<std::int64_t>(cfg.pool_step, n / (2 * total_warps)));

  // The pool counter lives in device memory like Algorithm 1's global G.
  DevPtr<std::uint32_t> pool = sys.mem.alloc<std::uint32_t>(1);
  sys.mem.view(pool)[0] = 0;

  // Min-heap over warp virtual time so pool grabs happen in simulated-time
  // order; a serialization gap models contention on the single counter.
  // Seeding with a tiny per-warp skew makes the initial grab order
  // deterministic and id-ordered; together with the round-robin warp->SM
  // striping below this spreads consecutive chunks across SMs the way a
  // real grid launch does. The heap's storage lives in scratch; pop order
  // depends only on the (time, id) ordering, which is total, so the manual
  // heap reproduces std::priority_queue exactly.
  using Entry = std::pair<double, std::int64_t>;  // (virtual time, warp id)
  std::vector<Entry>& heap = scratch().pool_heap;
  heap.clear();
  heap.reserve(static_cast<std::size_t>(total_warps));
  for (std::int64_t w = 0; w < total_warps; ++w)
    heap.emplace_back(static_cast<double>(w) * 1e-6, w);
  std::make_heap(heap.begin(), heap.end(), std::greater<>{});
  double pool_available = 0.0;
  double makespan = 0.0;
  double resident_integral = 0.0;

  WarpCtx warp(sys, 0);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [t, w] = heap.back();
    heap.pop_back();
    const int sm = static_cast<int>(w % spec.num_sms);
    warp.reassign(sm, /*warp_id=*/w);
    const double grab_time = std::max(t, pool_available);
    pool_available = grab_time + spec.pool_grab_gap_cycles;
    warp.site(TLP_SITE_SUPPRESS(
        "pool_grab", "TLP-ATOM-004",
        "Algorithm 1's software work pool serializes on one global counter "
        "by design; the paper accepts this cost for dynamic balance"));
    const std::uint32_t sindex = warp.atomic_add_u32(
        pool, 0, static_cast<std::uint32_t>(step));
    warp.site(nullptr);
    double t_new = grab_time + warp.total_cycles();
    warp.reset_costs();
    if (sindex >= n) {
      // Pool drained: warp exits. Its residency ends here.
      rec.issue_cycles += 1;
      makespan = std::max(makespan, t_new);
      resident_integral += t_new;
      continue;
    }
    const std::int64_t lo = sindex;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + step);
    for (std::int64_t item = lo; item < hi; ++item) {
      warp.begin_item(item);
      kernel.run_item(warp, item);
    }
    rec.issue_cycles += warp.issue_cycles();
    rec.mem_stall_cycles += warp.mem_cycles();
    t_new += warp.total_cycles();
    heap.emplace_back(t_new, w);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  }

  sys.mem.free(pool);
  // All resources are allocated once: one dispatch per block, all up front.
  const double dispatch =
      static_cast<double>(rec.blocks) * spec.block_dispatch_cycles /
      std::max(1, spec.num_sms);
  finalize_timing(sys, rec, makespan + dispatch, resident_integral);
}

}  // namespace

namespace {

/// Restores the current-kernel pointers even when a kernel throws (guarded
/// memory raises InvalidAccess/WriteRace mid-execution; the device must stay
/// usable for the caller's error handling).
struct KernelScope {
  KernelScope(MemorySystem& mem_sys, KernelRecord& rec)
      : sys(mem_sys), prev(mem_sys.rec) {
    sys.rec = &rec;
    sys.mem.begin_kernel(rec.name);
    if (sys.trace != nullptr) sys.trace->begin_kernel(rec.name);
    if (sys.tier == TimingTier::kAnalytical) sys.analytical.begin_kernel();
  }
  ~KernelScope() {
    sys.mem.end_kernel();
    sys.rec = prev;
  }
  MemorySystem& sys;
  KernelRecord* prev;
};

}  // namespace

void run_kernel(MemorySystem& sys, WarpKernel& kernel, const LaunchConfig& cfg,
                KernelRecord& rec) {
  TLP_CHECK_MSG(cfg.warps_per_block * sys.spec.warp_size <=
                    sys.spec.max_threads_per_block,
                "block too large: " << cfg.warps_per_block << " warps");
  rec.name = kernel.name();
  KernelScope scope(sys, rec);
  if (kernel.num_items() == 0) {
    rec.launch_overhead_us += sys.spec.kernel_launch_us;
  } else {
    switch (cfg.assignment) {
      case Assignment::kHardwareDynamic:
        run_hardware_dynamic(sys, kernel, cfg, rec);
        break;
      case Assignment::kStaticChunk:
        run_static_chunk(sys, kernel, cfg, rec);
        break;
      case Assignment::kSoftwarePool:
        run_software_pool(sys, kernel, cfg, rec);
        break;
    }
  }
}

}  // namespace tlp::sim
