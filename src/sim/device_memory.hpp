// Simulated global-memory arena.
//
// Kernels really read and write this storage — results are later checked
// against a CPU reference — and the arena doubles as the address space for
// the coalescing/cache model (byte addresses are arena offsets). Allocation
// is a bump pointer with live/peak accounting; `peak_bytes()` is the
// "Global mem usage" metric of Table 3.
//
// Robustness features (see DESIGN.md "Fault model & memory safety"):
//  - A capacity limit (from GpuSpec::memory_bytes) makes alloc() throw
//    tlp::OutOfMemory instead of growing unboundedly; the limit models a
//    recycling allocator, so it is checked against *live* bytes.
//  - MemoryMode::kGuarded adds redzones between allocations, poison fill on
//    alloc/free, out-of-bounds and use-after-free detection on every kernel
//    load/store/atomic, and a shadow-memory write-race detector that flags
//    two warps storing non-atomically to the same address within a kernel.
//  - A FaultPlan can force the Nth allocation to fail with OutOfMemory so
//    degradation paths are testable without huge workloads.
//
// View invalidation contract: alloc() may grow (and therefore move) the
// arena, which invalidates every previously obtained view. Views carry the
// arena generation at creation and re-derive their pointer from the arena on
// each access, so use of a stale view fails loudly instead of reading freed
// storage.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sim/device_error.hpp"
#include "sim/fault_plan.hpp"

namespace tlp::sim {

class DeviceMemory;
class AccessTrace;
struct AccessSite;

/// Typed handle into device memory. Trivially copyable; the arena outlives
/// all handles it issued.
template <class T>
struct DevPtr {
  std::uint64_t byte_offset = 0;
  std::int64_t count = 0;

  [[nodiscard]] bool is_null() const { return count == 0; }
  [[nodiscard]] std::uint64_t addr(std::int64_t index) const {
    return byte_offset + static_cast<std::uint64_t>(index) * sizeof(T);
  }
};

enum class MemoryMode {
  kFast,     ///< no per-access validation beyond the arena bound
  kGuarded,  ///< redzones, poison fill, OOB/UAF checks, write-race detection
};

/// Host view of an allocation. The pointer is re-derived from the arena on
/// every data()/begin()/end()/operator[] call and the arena generation is
/// verified, so holding a view across an alloc() that grew the arena throws
/// CheckError instead of dereferencing a dangling pointer. Use like a span:
///   auto v = mem.view(p);  v[2] = 42;  std::fill(v.begin(), v.end(), 0);
template <class T>
class ArenaView {
  using Mem = std::conditional_t<std::is_const_v<T>, const DeviceMemory,
                                 DeviceMemory>;

 public:
  ArenaView() = default;
  ArenaView(Mem* mem, std::uint64_t byte_offset, std::size_t count,
            std::uint64_t generation)
      : mem_(mem), offset_(byte_offset), count_(count), gen_(generation) {}

  [[nodiscard]] T* data() const;
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] T* begin() const { return data(); }
  [[nodiscard]] T* end() const { return data() + count_; }
  [[nodiscard]] T& operator[](std::size_t i) const { return data()[i]; }

 private:
  Mem* mem_ = nullptr;
  std::uint64_t offset_ = 0;
  std::size_t count_ = 0;
  std::uint64_t gen_ = 0;
};

class DeviceMemory {
 public:
  DeviceMemory() = default;
  explicit DeviceMemory(MemoryMode mode) : mode_(mode) {}

  /// Guarded mode must be selected while the arena is empty (fresh or just
  /// reset): redzone layout cannot be retrofitted onto live allocations.
  void set_mode(MemoryMode mode) {
    TLP_CHECK_MSG(top_ == 0, "set_mode requires an empty arena");
    mode_ = mode;
  }
  [[nodiscard]] MemoryMode mode() const { return mode_; }

  /// Capacity limit in bytes; 0 = unlimited. Checked against live bytes
  /// (the arena recycles storage only on reset(), but a real device
  /// allocator recycles on free, which is what the limit models).
  void set_capacity(std::int64_t bytes) {
    TLP_CHECK_GE(bytes, 0);
    capacity_bytes_ = bytes;
  }
  [[nodiscard]] std::int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Installs a fault plan; only the allocation faults are handled here (the
  /// launch faults live on Device). Plan counters survive reset() so a
  /// degradation retry does not re-trigger a one-shot fault.
  void set_fault_plan(const FaultPlan& plan) { fault_plan_ = plan; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Re-arms the allocation faults mid-run: plan counters restart relative
  /// to the current allocation sequence ("the Nth allocation *from now*"),
  /// and a consumed one-shot fault is reset. The serving loop's storm hook.
  void arm_fault_plan(const FaultPlan& plan) {
    fault_plan_ = plan;
    alloc_base_ = alloc_seq_;
    oom_fault_fired_ = false;
  }

  /// Labels subsequent injected-fault errors with the work in flight (e.g.
  /// "req 17 attempt 2"); empty clears. Carried in FaultProvenance::context.
  void set_fault_context(std::string context) {
    fault_context_ = std::move(context);
  }
  [[nodiscard]] const std::string& fault_context() const {
    return fault_context_;
  }

  /// Registers an access trace to receive allocation-lifecycle events
  /// (alloc/free/host view/reset) — the provenance feed for the whole-trace
  /// analysis passes. nullptr detaches. Not owned.
  void attach_trace(AccessTrace* trace) { trace_ = trace; }
  [[nodiscard]] AccessTrace* trace() const { return trace_; }

  /// Allocates `count` elements, 256-byte aligned (cudaMalloc alignment).
  /// Invalidates previously obtained views if the arena grows (detected on
  /// stale-view use). Throws tlp::OutOfMemory when the capacity limit or an
  /// injected allocation fault fires. `site` (from TLP_SITE) labels the
  /// buffer in the attached trace so lifetime diagnostics can name it.
  template <class T>
  DevPtr<T> alloc(std::int64_t count, const AccessSite* site = nullptr) {
    TLP_CHECK_GE(count, 0);
    const std::uint64_t offset = allocate_bytes(
        static_cast<std::uint64_t>(count) * sizeof(T), site);
    return DevPtr<T>{offset, count};
  }

  /// Marks an allocation dead for the live/peak accounting. Storage is not
  /// recycled (bump arena); reset() reclaims everything. In guarded mode the
  /// payload is poisoned and later kernel access throws InvalidAccess.
  template <class T>
  void free(DevPtr<T>& p) {
    release_bytes(p.byte_offset,
                  static_cast<std::uint64_t>(p.count) * sizeof(T));
    p = DevPtr<T>{};
  }

  /// Host view of an allocation. Invalidated by any alloc() that grows the
  /// arena; stale use throws (see ArenaView). A mutable view is the H2D /
  /// fill path, so the attached trace records it as a host write (marking
  /// the range initialized); a const view records as a host read (download).
  template <class T>
  [[nodiscard]] ArenaView<T> view(DevPtr<T> p) {
    note_host_write(p.byte_offset,
                    static_cast<std::uint64_t>(p.count) * sizeof(T));
    return {this, p.byte_offset, static_cast<std::size_t>(p.count),
            generation_};
  }
  template <class T>
  [[nodiscard]] ArenaView<const T> view(DevPtr<T> p) const {
    note_host_read(p.byte_offset,
                   static_cast<std::uint64_t>(p.count) * sizeof(T));
    return {this, p.byte_offset, static_cast<std::size_t>(p.count),
            generation_};
  }

  /// Raw typed access used by the warp context's load/store paths. The arena
  /// bound is enforced in every build mode (a silent out-of-bounds access
  /// would corrupt a neighbouring buffer); guarded mode additionally checks
  /// that the access lands inside a single live allocation.
  template <class T>
  [[nodiscard]] T read(std::uint64_t byte_addr) const {
    bounds_check(byte_addr, sizeof(T));
    T out;
    std::memcpy(&out, arena_.data() + byte_addr, sizeof(T));
    return out;
  }
  template <class T>
  void write(std::uint64_t byte_addr, T value) {
    bounds_check(byte_addr, sizeof(T));
    std::memcpy(arena_.data() + byte_addr, &value, sizeof(T));
  }

  /// Bulk transfer of `count` consecutive elements with a single range
  /// bounds check — the warp context's sequential fast path. The range check
  /// subsumes the per-element checks a lane-by-lane loop would make: any
  /// element out of the arena puts the range end out of the arena too.
  template <class T>
  void read_block(std::uint64_t byte_addr, T* out, std::size_t count) const {
    bounds_check(byte_addr, count * sizeof(T));
    std::memcpy(out, arena_.data() + byte_addr, count * sizeof(T));
  }
  template <class T>
  void write_block(std::uint64_t byte_addr, const T* in, std::size_t count) {
    bounds_check(byte_addr, count * sizeof(T));
    std::memcpy(arena_.data() + byte_addr, in, count * sizeof(T));
  }

  /// Host-side cache-warming hint with no simulation effect whatsoever: no
  /// bounds check, no guarded-mode check, no counters, no data movement. The
  /// kernels use it to overlap the host-DRAM latency of the next edge's
  /// scattered feature row with the current edge's model work — the arena is
  /// far larger than the host LLC, so these gather reads are what the whole
  /// simulator waits on. Out-of-range hints are clamped, not faulted
  /// (__builtin_prefetch never traps anyway, but the pointer arithmetic must
  /// stay in range).
  void host_prefetch(std::uint64_t byte_addr, std::size_t bytes) const {
    if (byte_addr >= arena_.size()) return;
    const std::byte* p = arena_.data() + byte_addr;
    const std::byte* end =
        arena_.data() + std::min<std::uint64_t>(arena_.size(),
                                                byte_addr + bytes);
    for (; p < end; p += 64) __builtin_prefetch(p, 0, 1);
  }

  // --- guarded-mode kernel context ----------------------------------------
  /// Called by the scheduler around each kernel: names the kernel for error
  /// messages and clears the per-kernel write-race shadow map.
  void begin_kernel(const std::string& name);
  void end_kernel();

  /// Guarded-mode hook called by WarpCtx for every store/atomic lane: feeds
  /// the write-race shadow map. `warp` identifies the storing warp; stores
  /// from different warps to one address are a race unless both are atomic.
  void note_store(std::uint64_t byte_addr, int bytes, std::int64_t warp,
                  bool atomic);

  // --- fault-injection support ---------------------------------------------
  struct AllocationRecord {
    std::uint64_t offset = 0;  ///< payload start
    std::uint64_t bytes = 0;   ///< payload size
    bool live = false;
  };
  [[nodiscard]] const std::vector<AllocationRecord>& allocations() const {
    return allocs_;
  }
  /// Total allocations made over this arena's lifetime (fault-plan cursor).
  [[nodiscard]] std::int64_t alloc_count() const { return alloc_seq_; }
  /// Flips one bit, bypassing guards — the ECC-corruption injection point.
  void flip_bit(std::uint64_t byte_addr, int bit);

  [[nodiscard]] std::int64_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }

  /// Arena reallocation counter backing stale-view detection.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Releases everything and clears peak accounting. Fault-plan progress is
  /// kept (one-shot faults stay consumed across degradation retries).
  void reset();

 private:
  template <class U>
  friend class ArenaView;

  [[nodiscard]] std::byte* arena_ptr() { return arena_.data(); }
  [[nodiscard]] const std::byte* arena_ptr() const { return arena_.data(); }

  std::uint64_t allocate_bytes(std::uint64_t bytes, const AccessSite* site);
  void release_bytes(std::uint64_t offset, std::uint64_t bytes);
  std::uint64_t bump(std::uint64_t bytes);

  // Trace hooks (out of line so the header need not see AccessTrace). The
  // host-view hooks fire from const methods; the trace is an external
  // observer, not part of this object's logical state.
  void note_host_write(std::uint64_t offset, std::uint64_t bytes) const;
  void note_host_read(std::uint64_t offset, std::uint64_t bytes) const;

  void bounds_check(std::uint64_t byte_addr, std::size_t bytes) const {
    if (byte_addr + bytes > arena_.size()) {
      fail_access(byte_addr, bytes, "outside the device arena");
    }
    if (mode_ == MemoryMode::kGuarded) guarded_check(byte_addr, bytes);
  }
  void guarded_check(std::uint64_t byte_addr, std::size_t bytes) const;
  [[noreturn]] void fail_access(std::uint64_t byte_addr, std::size_t bytes,
                                const char* what) const;
  /// Allocation containing `addr`, or nullptr. Allocations are offset-sorted
  /// (bump arena), so this is a binary search.
  [[nodiscard]] const AllocationRecord* find_allocation(
      std::uint64_t addr) const;

  std::vector<std::byte> arena_;
  std::uint64_t top_ = 0;
  std::int64_t live_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t capacity_bytes_ = 0;
  std::uint64_t generation_ = 0;
  MemoryMode mode_ = MemoryMode::kFast;

  std::vector<AllocationRecord> allocs_;

  AccessTrace* trace_ = nullptr;

  FaultPlan fault_plan_{};
  std::int64_t alloc_seq_ = 0;
  /// Allocation count at the last arm_fault_plan(); plan counters are
  /// evaluated against (alloc_seq_ - alloc_base_).
  std::int64_t alloc_base_ = 0;
  bool oom_fault_fired_ = false;
  std::string fault_context_;

  // Guarded-mode kernel context: current kernel name plus the write shadow
  // map (address -> last non-host writer) cleared per kernel.
  std::string kernel_name_;
  struct ShadowWrite {
    std::int64_t warp = -1;
    bool atomic = false;
  };
  std::unordered_map<std::uint64_t, ShadowWrite> write_shadow_;
};

template <class T>
T* ArenaView<T>::data() const {
  TLP_CHECK_MSG(mem_ != nullptr, "empty ArenaView dereferenced");
  TLP_CHECK_MSG(gen_ == mem_->generation(),
                "stale device-memory view used: the arena was reallocated "
                "(generation " << gen_ << " vs " << mem_->generation()
                << ") — re-acquire the view after alloc()");
  using Byte =
      std::conditional_t<std::is_const_v<T>, const std::byte, std::byte>;
  Byte* base = mem_->arena_ptr();
  return reinterpret_cast<T*>(base + offset_);
}

}  // namespace tlp::sim
