// Simulated global-memory arena.
//
// Kernels really read and write this storage — results are later checked
// against a CPU reference — and the arena doubles as the address space for
// the coalescing/cache model (byte addresses are arena offsets). Allocation
// is a bump pointer with live/peak accounting; `peak_bytes()` is the
// "Global mem usage" metric of Table 3.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace tlp::sim {

/// Typed handle into device memory. Trivially copyable; the arena outlives
/// all handles it issued.
template <class T>
struct DevPtr {
  std::uint64_t byte_offset = 0;
  std::int64_t count = 0;

  [[nodiscard]] bool is_null() const { return count == 0; }
  [[nodiscard]] std::uint64_t addr(std::int64_t index) const {
    return byte_offset + static_cast<std::uint64_t>(index) * sizeof(T);
  }
};

class DeviceMemory {
 public:
  DeviceMemory() = default;

  /// Allocates `count` elements, 256-byte aligned (cudaMalloc alignment).
  /// Invalidates previously obtained views (the arena may reallocate).
  template <class T>
  DevPtr<T> alloc(std::int64_t count) {
    TLP_CHECK(count >= 0);
    const std::uint64_t offset = bump(static_cast<std::uint64_t>(count) * sizeof(T));
    live_bytes_ += static_cast<std::int64_t>(count) * static_cast<std::int64_t>(sizeof(T));
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
    return DevPtr<T>{offset, count};
  }

  /// Marks an allocation dead for the live/peak accounting. Storage is not
  /// recycled (bump arena); reset() reclaims everything.
  template <class T>
  void free(DevPtr<T>& p) {
    live_bytes_ -= p.count * static_cast<std::int64_t>(sizeof(T));
    TLP_CHECK(live_bytes_ >= 0);
    p = DevPtr<T>{};
  }

  /// Host view of an allocation. Invalidated by the next alloc().
  template <class T>
  [[nodiscard]] std::span<T> view(DevPtr<T> p) {
    return {reinterpret_cast<T*>(arena_.data() + p.byte_offset),
            static_cast<std::size_t>(p.count)};
  }
  template <class T>
  [[nodiscard]] std::span<const T> view(DevPtr<T> p) const {
    return {reinterpret_cast<const T*>(arena_.data() + p.byte_offset),
            static_cast<std::size_t>(p.count)};
  }

  /// Raw typed access used by the warp context's load/store paths.
  template <class T>
  [[nodiscard]] T read(std::uint64_t byte_addr) const {
    TLP_DCHECK(byte_addr + sizeof(T) <= arena_.size());
    T out;
    std::memcpy(&out, arena_.data() + byte_addr, sizeof(T));
    return out;
  }
  template <class T>
  void write(std::uint64_t byte_addr, T value) {
    TLP_DCHECK(byte_addr + sizeof(T) <= arena_.size());
    std::memcpy(arena_.data() + byte_addr, &value, sizeof(T));
  }

  [[nodiscard]] std::int64_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::int64_t peak_bytes() const { return peak_bytes_; }

  /// Releases everything and clears peak accounting.
  void reset();

 private:
  std::uint64_t bump(std::uint64_t bytes);

  std::vector<std::byte> arena_;
  std::uint64_t top_ = 0;
  std::int64_t live_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
};

}  // namespace tlp::sim
