#include "core/engine.hpp"

#include "tensor/dense_ops.hpp"

namespace tlp {

Engine::Engine(const EngineOptions& opts)
    : opts_(opts), device_(std::make_unique<sim::Device>(opts.gpu)),
      system_(opts.tlpgnn) {}

systems::RunResult Engine::conv(const graph::Csr& g,
                                const tensor::Tensor& feat,
                                const models::ConvSpec& spec) {
  TLP_CHECK_MSG(feat.rows() == g.num_vertices(),
                "feature rows " << feat.rows() << " != vertices "
                                << g.num_vertices());
  systems::RunResult r = system_.run(*device_, g, feat, spec);
  last_ = r;
  return r;
}

tensor::Tensor Engine::layer(const graph::Csr& g, const tensor::Tensor& h,
                             const tensor::Tensor& weights,
                             const models::ConvSpec& spec, bool relu) {
  // Phase 1: dense neural op (host).
  const tensor::Tensor transformed = tensor::matmul(h, weights);
  // Phase 2: graph convolution (simulated GPU, measured).
  systems::RunResult r = conv(g, transformed, spec);
  // Phase 3: activation (host).
  tensor::Tensor out = relu ? tensor::relu(r.output) : std::move(r.output);
  last_.output = out;
  return out;
}

}  // namespace tlp
