#include "core/engine.hpp"

#include <algorithm>

#include "systems/partitioned.hpp"
#include "tensor/dense_ops.hpp"

namespace tlp {

namespace {

sim::GpuSpec effective_spec(const EngineOptions& opts) {
  sim::GpuSpec spec = opts.gpu;
  if (opts.device_memory_bytes > 0) spec.memory_bytes = opts.device_memory_bytes;
  return spec;
}

}  // namespace

Engine::Engine(const EngineOptions& opts)
    : opts_(opts),
      device_(std::make_unique<sim::Device>(effective_spec(opts), opts.device)),
      system_(opts.tlpgnn) {}

systems::RunResult Engine::conv(const graph::Csr& g,
                                const tensor::Tensor& feat,
                                const models::ConvSpec& spec) {
  TLP_CHECK_MSG(feat.rows() == g.num_vertices(),
                "feature rows " << feat.rows() << " != vertices "
                                << g.num_vertices());
  try {
    systems::RunResult r = system_.run(*device_, g, feat, spec);
    last_ = r;
    return r;
  } catch (const OutOfMemory& oom) {
    if (!opts_.degrade.enabled) throw;
    systems::RunResult r = conv_degraded(g, feat, spec, oom);
    last_ = r;
    return r;
  }
}

systems::RunResult Engine::conv_degraded(const graph::Csr& g,
                                         const tensor::Tensor& feat,
                                         const models::ConvSpec& spec,
                                         const OutOfMemory& oom) {
  // Bounded retries: double the part count each attempt so the per-part
  // footprint shrinks geometrically. A part can never be smaller than one
  // vertex, so cap the count at |V|.
  if (g.num_vertices() < 2) throw oom;  // nothing left to split
  int k = std::max(2, opts_.degrade.initial_partitions);
  for (int attempt = 0; attempt < opts_.degrade.max_attempts; ++attempt) {
    k = std::min<int>(k, g.num_vertices());
    try {
      systems::RunResult r =
          systems::run_partitioned(system_, *device_, g, feat, spec, k);
      r.degradation.retries = attempt;
      r.degradation.reason = oom.what();
      return r;
    } catch (const OutOfMemory&) {
      if (attempt + 1 >= opts_.degrade.max_attempts) throw;
      k *= 2;
    }
  }
  throw oom;  // unreachable: the loop either returns or rethrows
}

tensor::Tensor Engine::layer(const graph::Csr& g, const tensor::Tensor& h,
                             const tensor::Tensor& weights,
                             const models::ConvSpec& spec, bool relu) {
  // Phase 1: dense neural op (host).
  const tensor::Tensor transformed = tensor::matmul(h, weights);
  // Phase 2: graph convolution (simulated GPU, measured).
  systems::RunResult r = conv(g, transformed, spec);
  // Phase 3: activation (host).
  tensor::Tensor out = relu ? tensor::relu(r.output) : std::move(r.output);
  last_.output = out;
  return out;
}

}  // namespace tlp
