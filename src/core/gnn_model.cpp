#include "core/gnn_model.hpp"

#include <cmath>

#include "tensor/dense_ops.hpp"

namespace tlp {

GnnModel::GnnModel(std::int64_t in_features, std::uint64_t seed)
    : width_(in_features), rng_(seed) {
  TLP_CHECK(in_features >= 1);
}

GnnModel& GnnModel::add_layer(models::ModelKind kind,
                              std::int64_t out_features,
                              const LayerOptions& opts) {
  TLP_CHECK(out_features >= 1);
  TLP_CHECK_MSG(opts.gat_heads >= 1 &&
                    (kind != models::ModelKind::kGat ||
                     out_features % opts.gat_heads == 0),
                "gat_heads must divide the layer width");
  // Glorot-ish scale keeps activations bounded through deep stacks.
  const float scale =
      1.0f / std::sqrt(static_cast<float>(width_));
  layers_.push_back(
      {tensor::Tensor::random(width_, out_features, rng_, scale), kind, opts});
  width_ = out_features;
  return *this;
}

tensor::Tensor GnnModel::forward(Engine& engine, const graph::Csr& g,
                                 const tensor::Tensor& x) {
  TLP_CHECK_MSG(!layers_.empty(), "model has no layers");
  TLP_CHECK(x.rows() == g.num_vertices());
  conv_ms_.clear();
  tensor::Tensor h = x;
  for (const Layer& layer : layers_) {
    if (layer.opts.dropout > 0.0)
      h = tensor::dropout(h, layer.opts.dropout, rng_);
    models::ConvSpec spec = models::ConvSpec::make(
        layer.kind, layer.weights.cols(), rng_, layer.opts.gat_heads);
    h = engine.layer(g, h, layer.weights, spec, layer.opts.relu);
    conv_ms_.push_back(engine.last_run().gpu_time_ms);
  }
  return h;
}

double GnnModel::total_conv_ms() const {
  double total = 0.0;
  for (const double ms : conv_ms_) total += ms;
  return total;
}

}  // namespace tlp
