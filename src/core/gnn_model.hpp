// Multi-layer GNN model runner on top of tlp::Engine — the host-side glue a
// downstream user needs to go from "one measured convolution" to a full
// forward pass (§2.1's three-phase pattern repeated per layer).
#pragma once

#include <vector>

#include "core/engine.hpp"

namespace tlp {

struct LayerOptions {
  bool relu = true;
  double dropout = 0.0;  ///< input dropout probability (training mode)
  int gat_heads = 1;     ///< only meaningful for GAT layers
};

class GnnModel {
 public:
  /// `in_features` is the width of the input feature matrix; `seed` drives
  /// weight initialization (and dropout during forward()).
  GnnModel(std::int64_t in_features, std::uint64_t seed = 1);

  /// Appends a layer: dense (prev_width x out_features) transform, then a
  /// `kind` graph convolution, then optional ReLU. Returns *this for
  /// chaining.
  GnnModel& add_layer(models::ModelKind kind, std::int64_t out_features,
                      const LayerOptions& opts = {});

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] std::int64_t output_features() const { return width_; }

  /// Full forward pass; the graph convolutions run (and are measured) on the
  /// engine's simulated device.
  tensor::Tensor forward(Engine& engine, const graph::Csr& g,
                         const tensor::Tensor& x);

  /// Per-layer simulated convolution times of the most recent forward().
  [[nodiscard]] const std::vector<double>& layer_conv_ms() const {
    return conv_ms_;
  }
  [[nodiscard]] double total_conv_ms() const;

 private:
  struct Layer {
    tensor::Tensor weights;
    models::ModelKind kind;
    LayerOptions opts;
  };

  std::int64_t width_;
  Rng rng_;
  std::vector<Layer> layers_;
  std::vector<double> conv_ms_;
};

}  // namespace tlp
