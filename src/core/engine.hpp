// tlp::Engine — the library's public entry point.
//
// Wraps a simulated GPU device and the TLPGNN system behind a small API:
// upload a graph once, then run graph convolutions (the paper's measured
// operation) or whole GNN layers (dense transform + convolution +
// activation, §2.1's three-phase pattern). Baseline systems are reachable
// through systems::make_system for comparisons.
//
//   tlp::Engine engine;
//   auto out = engine.conv(graph, features, spec);       // one convolution
//   auto h1  = engine.layer(graph, h0, weights, spec);   // full GNN layer
//
// Robustness: the device enforces its GpuSpec memory capacity and can run
// with guarded memory / a fault plan (EngineOptions::device). When a
// convolution hits tlp::OutOfMemory, conv() degrades gracefully instead of
// failing: it re-runs the convolution over partitioned subgraphs with
// bounded retries (doubling the part count each attempt) and reports the
// degradation in RunResult::degradation. Output stays bit-identical to the
// unpartitioned run (see systems/partitioned.hpp).
#pragma once

#include <memory>

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "systems/tlpgnn_system.hpp"
#include "tensor/tensor.hpp"

namespace tlp {

/// Policy for the OutOfMemory partitioned fallback.
struct DegradePolicy {
  bool enabled = true;
  int initial_partitions = 2;
  /// Maximum partitioned attempts (partition count doubles per attempt);
  /// when exhausted the last OutOfMemory propagates to the caller.
  int max_attempts = 4;
};

struct EngineOptions {
  sim::GpuSpec gpu = sim::GpuSpec::v100();
  /// Overrides GpuSpec::memory_bytes when > 0 (CLI --device-mem-gb).
  std::int64_t device_memory_bytes = 0;
  sim::DeviceOptions device;  ///< guarded memory mode, fault plan
  systems::TlpgnnOptions tlpgnn;
  DegradePolicy degrade;
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(const EngineOptions& opts);

  /// Runs one graph-convolution operation with TLPGNN and returns the output
  /// features plus simulator metrics. On device OutOfMemory this degrades to
  /// partitioned execution (see DegradePolicy) rather than throwing;
  /// inspect RunResult::degradation to detect the fallback.
  systems::RunResult conv(const graph::Csr& g, const tensor::Tensor& feat,
                          const models::ConvSpec& spec);

  /// A full GNN layer: dense transform (h * weights), graph convolution,
  /// then optional ReLU — the standard three-phase layer of §2.1. The dense
  /// phases run on the host; only the convolution is simulated/measured.
  tensor::Tensor layer(const graph::Csr& g, const tensor::Tensor& h,
                       const tensor::Tensor& weights,
                       const models::ConvSpec& spec, bool relu = true);

  /// Metrics of the most recent conv()/layer() call.
  [[nodiscard]] const systems::RunResult& last_run() const { return last_; }

  [[nodiscard]] sim::Device& device() { return *device_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

 private:
  systems::RunResult conv_degraded(const graph::Csr& g,
                                   const tensor::Tensor& feat,
                                   const models::ConvSpec& spec,
                                   const OutOfMemory& oom);

  EngineOptions opts_;
  std::unique_ptr<sim::Device> device_;
  systems::TlpgnnSystem system_;
  systems::RunResult last_;
};

}  // namespace tlp
