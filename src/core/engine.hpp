// tlp::Engine — the library's public entry point.
//
// Wraps a simulated GPU device and the TLPGNN system behind a small API:
// upload a graph once, then run graph convolutions (the paper's measured
// operation) or whole GNN layers (dense transform + convolution +
// activation, §2.1's three-phase pattern). Baseline systems are reachable
// through systems::make_system for comparisons.
//
//   tlp::Engine engine;
//   auto out = engine.conv(graph, features, spec);       // one convolution
//   auto h1  = engine.layer(graph, h0, weights, spec);   // full GNN layer
#pragma once

#include <memory>

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "systems/tlpgnn_system.hpp"
#include "tensor/tensor.hpp"

namespace tlp {

struct EngineOptions {
  sim::GpuSpec gpu = sim::GpuSpec::v100();
  systems::TlpgnnOptions tlpgnn;
};

class Engine {
 public:
  Engine() : Engine(EngineOptions{}) {}
  explicit Engine(const EngineOptions& opts);

  /// Runs one graph-convolution operation with TLPGNN and returns the output
  /// features plus simulator metrics.
  systems::RunResult conv(const graph::Csr& g, const tensor::Tensor& feat,
                          const models::ConvSpec& spec);

  /// A full GNN layer: dense transform (h * weights), graph convolution,
  /// then optional ReLU — the standard three-phase layer of §2.1. The dense
  /// phases run on the host; only the convolution is simulated/measured.
  tensor::Tensor layer(const graph::Csr& g, const tensor::Tensor& h,
                       const tensor::Tensor& weights,
                       const models::ConvSpec& spec, bool relu = true);

  /// Metrics of the most recent conv()/layer() call.
  [[nodiscard]] const systems::RunResult& last_run() const { return last_; }

  [[nodiscard]] sim::Device& device() { return *device_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

 private:
  EngineOptions opts_;
  std::unique_ptr<sim::Device> device_;
  systems::TlpgnnSystem system_;
  systems::RunResult last_;
};

}  // namespace tlp
