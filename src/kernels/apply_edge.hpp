// ApplyEdge building blocks (Figure 6): edge-parallel kernels over a COO
// view. One warp item covers 32 consecutive edges; per-edge scalar arrays
// (attention logits, softmax weights) are laid out in CSR edge order, so
// reads/writes of the edge array itself coalesce while vertex-indexed
// gathers/scatters do not.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

/// logit[e] = LeakyReLU(sh[src(e)] + dh[dst(e)]) — the GAT attention SDDMM.
class EdgeLogitKernel final : public sim::WarpKernel {
 public:
  EdgeLogitKernel(DeviceCoo coo, sim::DevPtr<float> sh, sim::DevPtr<float> dh,
                  sim::DevPtr<float> logit, float slope)
      : coo_(coo), sh_(sh), dh_(dh), logit_(logit), slope_(slope) {}
  [[nodiscard]] std::int64_t num_items() const override {
    return (coo_.m + sim::kWarpSize - 1) / sim::kWarpSize;
  }
  [[nodiscard]] std::string name() const override { return "edge_logit"; }
  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceCoo coo_;
  sim::DevPtr<float> sh_, dh_, logit_;
  float slope_;
};

/// Pointwise/scatter operations over a per-edge scalar array.
class EdgeMapKernel final : public sim::WarpKernel {
 public:
  enum class Mode {
    kSubDst,        ///< a[e] -= b[dst(e)]
    kExp,           ///< a[e] = exp(a[e])
    kDivDst,        ///< a[e] /= b[dst(e)]
    kCopy,          ///< out[e] = a[e] (format-manipulation kernel)
    kAtomicMaxDst,  ///< b[dst(e)] = max(b[dst(e)], a[e])   [atomic]
    kAtomicAddDst,  ///< b[dst(e)] += a[e]                  [atomic]
  };
  EdgeMapKernel(DeviceCoo coo, Mode mode, sim::DevPtr<float> a,
                sim::DevPtr<float> b, sim::DevPtr<float> out = {})
      : coo_(coo), mode_(mode), a_(a), b_(b), out_(out) {}
  [[nodiscard]] std::int64_t num_items() const override {
    return (coo_.m + sim::kWarpSize - 1) / sim::kWarpSize;
  }
  [[nodiscard]] std::string name() const override;
  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceCoo coo_;
  Mode mode_;
  sim::DevPtr<float> a_, b_, out_;
};

/// out[dst(e)] += w[e] * feat[src(e)] — edge-centric weighted aggregation
/// (one thread per edge, atomic scatter) used by the edge-centric GAT
/// baseline's final stage.
class EdgeWeightedAggKernel final : public sim::WarpKernel {
 public:
  EdgeWeightedAggKernel(DeviceCoo coo, sim::DevPtr<float> w,
                        sim::DevPtr<float> feat, sim::DevPtr<float> out,
                        std::int64_t f)
      : coo_(coo), w_(w), feat_(feat), out_(out), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override {
    return (coo_.m + sim::kWarpSize - 1) / sim::kWarpSize;
  }
  [[nodiscard]] std::string name() const override { return "edge_weighted_agg"; }
  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceCoo coo_;
  sim::DevPtr<float> w_, feat_, out_;
  std::int64_t f_;
};

/// msg[e][*] = w[e] * feat[src(e)][*] — DGL's u_mul_e message
/// materialization (the E x F intermediate behind Table 3's 10 GB).
/// One warp per edge, feature-parallel. A null `w` means unit weights
/// (DGL's copy_u materialization).
class UMulEMaterializeKernel final : public sim::WarpKernel {
 public:
  UMulEMaterializeKernel(DeviceCoo coo, sim::DevPtr<float> w,
                         sim::DevPtr<float> feat, sim::DevPtr<float> msg,
                         std::int64_t f)
      : coo_(coo), w_(w), feat_(feat), msg_(msg), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override { return coo_.m; }
  [[nodiscard]] std::string name() const override { return "u_mul_e"; }
  void run_item(sim::WarpCtx& warp, std::int64_t e) override;

 private:
  DeviceCoo coo_;
  sim::DevPtr<float> w_, feat_, msg_;
  std::int64_t f_;
};

}  // namespace tlp::kernels
