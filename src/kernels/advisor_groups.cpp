#include "kernels/advisor_groups.hpp"

#include <array>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using models::ModelKind;
using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

NeighborGroups build_neighbor_groups(const graph::Csr& g, int group_size) {
  TLP_CHECK(group_size >= 1);
  NeighborGroups out;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::int64_t start = g.indptr()[static_cast<std::size_t>(v)];
    const std::int64_t end = g.indptr()[static_cast<std::size_t>(v) + 1];
    for (std::int64_t s = start; s < end; s += group_size) {
      out.vertex.push_back(v);
      out.start.push_back(s);
      out.len.push_back(static_cast<std::int32_t>(
          std::min<std::int64_t>(group_size, end - s)));
    }
  }
  return out;
}

DeviceGroups upload_groups(sim::Device& dev, const NeighborGroups& groups) {
  DeviceGroups dg;
  dg.count = groups.count();
  dg.vertex = dev.upload<std::int32_t>(groups.vertex);
  dg.start = dev.upload<std::int64_t>(groups.start);
  dg.len = dev.upload<std::int32_t>(groups.len);
  return dg;
}

AdvisorGroupKernel::AdvisorGroupKernel(DeviceGraph g, DeviceGroups groups,
                                       sim::DevPtr<float> feat,
                                       sim::DevPtr<float> out, std::int64_t f,
                                       SimpleConv conv)
    : g_(g), groups_(groups), feat_(feat), out_(out), f_(f), conv_(conv) {
  TLP_CHECK(f >= 1 && f <= kMaxFeature);
  // The paper's GNNAdvisor supports GCN and GIN only; the system layer
  // mirrors that, and Sage/GAT never reach this kernel.
  TLP_CHECK(conv.kind == ModelKind::kGcn || conv.kind == ModelKind::kGin);
}

std::string AdvisorGroupKernel::name() const {
  return "advisor_groups_" + std::string(models::model_name(conv_.kind));
}

void AdvisorGroupKernel::run_item(WarpCtx& warp, std::int64_t item) {
  // Group metadata: three extra scalar loads per group — part of
  // GNNAdvisor's bookkeeping cost.
  const std::int32_t v = warp.load_scalar_i32(groups_.vertex, item);
  const std::int64_t start = warp.load_scalar_i64(groups_.start, item);
  const std::int32_t len = warp.load_scalar_i32(groups_.len, item);
  const bool is_gcn = conv_.kind == ModelKind::kGcn;
  const float norm_v = is_gcn ? warp.load_scalar_f32(g_.norm, v) : 0.0f;

  const int chunks = num_chunks(f_);
  std::array<WVec<float>, kMaxChunks> acc{};
  for (std::int64_t e = start; e < start + len; ++e) {
    const std::int32_t u = warp.load_scalar_i32(g_.indices, e);
    float w = 1.0f;
    if (is_gcn) {
      w = warp.load_scalar_f32(g_.norm, u) * norm_v;
      warp.charge_alu(1);
    }
    for (int c = 0; c < chunks; ++c) {
      const WVec<float> x =
          warp.load_f32_seq(feat_, chunk_start(u, f_, c), chunk_len(f_, c));
      auto& a = acc[static_cast<std::size_t>(c)];
      sim::lane_axpy(a, w, x);
      warp.charge_alu(1);
    }
    warp.charge_alu(1);
  }

  // Partial results from the vertex's other groups land in the same row:
  // atomic merge (the Figure 8 atomic-write traffic).
  for (int c = 0; c < chunks; ++c) {
    warp.atomic_add_f32_seq(out_, chunk_start(v, f_, c),
                            acc[static_cast<std::size_t>(c)],
                            chunk_len(f_, c));
  }
}

}  // namespace tlp::kernels
