#include "kernels/fused_gat.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

void FusedGatKernel::run_item(WarpCtx& warp, std::int64_t v) {
  // Register caching (§6): index boundary and the destination half.
  warp.site(TLP_SITE("gat_indptr"));
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  const std::int64_t deg = end - start;

  if (deg == 0) {
    for (int c = 0; c < num_chunks(f_); ++c)
      warp.store_f32_seq(out_, chunk_start(v, f_, c), WVec<float>{},
                         chunk_len(f_, c));
    return;
  }

  // The scalar softmax phases use *edge parallelism across the 32 lanes*
  // (indices and sh gathers batch 32 edges per request — both arrays are
  // contiguous per vertex); only the aggregation phase switches to feature
  // parallelism. Logits are recomputed per pass instead of materialized;
  // the gathers stay hot in L1 after the first pass.
  struct Batch {
    WVec<std::int32_t> us;
    WVec<float> logit;
    Mask m;
    int n;
  };

  const std::int64_t hd = f_ / heads_;
  for (int head = 0; head < heads_; ++head) {
    const float dh = warp.load_scalar_f32(dh_, v * heads_ + head);

    auto batch_logits = [&](std::int64_t e0) -> Batch {
      Batch b;
      b.n = static_cast<int>(std::min<std::int64_t>(sim::kWarpSize, end - e0));
      b.m = sim::lanes_below(b.n);
      warp.site(TLP_SITE("gat_logit_batch"));
      b.us = warp.load_i32_seq(g_.indices, e0, b.n);
      WVec<std::int64_t> uidx{};
      for (int l = 0; l < b.n; ++l)
        uidx[static_cast<std::size_t>(l)] =
            static_cast<std::int64_t>(b.us[static_cast<std::size_t>(l)]) *
                heads_ +
            head;
      const WVec<float> s = warp.load_f32(sh_, uidx, b.m);
      for (int l = 0; l < b.n; ++l) {
        const float x = s[static_cast<std::size_t>(l)] + dh;
        b.logit[static_cast<std::size_t>(l)] = x >= 0.0f ? x : slope_ * x;
      }
      warp.charge_alu(3);
      return b;
    };

    // Pass 1: running max for a numerically stable softmax.
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
      const Batch b = batch_logits(e);
      mx = std::max(mx, warp.reduce_max(b.logit, b.m));
    }

    // Pass 2: softmax denominator.
    float denom = 0.0f;
    for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
      Batch b = batch_logits(e);
      for (int l = 0; l < b.n; ++l)
        b.logit[static_cast<std::size_t>(l)] =
            std::exp(b.logit[static_cast<std::size_t>(l)] - mx);
      warp.charge_alu(4);
      denom += warp.reduce_sum(b.logit, b.m);
    }

    // Pass 3: weighted aggregation over this head's feature slice,
    // feature-parallel per edge, with the reduction result cached in
    // registers; one store per chunk at the end of the head.
    const std::int64_t lo = head * hd;
    const std::int64_t hi = lo + hd;
    const int chunks = num_slice_chunks(lo, hi);
    std::array<WVec<float>, kMaxChunks> acc{};
    for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
      const Batch b = batch_logits(e);
      for (int l = 0; l < b.n; ++l) {
        const float alpha =
            std::exp(b.logit[static_cast<std::size_t>(l)] - mx) / denom;
        warp.charge_alu(5);
        const auto u =
            static_cast<std::int64_t>(b.us[static_cast<std::size_t>(l)]);
        // Host cache-warming hint only (no model effect): the next lane's
        // neighbor id is already in registers, so start pulling its feature
        // slice while this one aggregates.
        if (l + 1 < b.n) {
          const auto un =
              static_cast<std::int64_t>(b.us[static_cast<std::size_t>(l + 1)]);
          warp.prefetch(feat_, un * f_ + lo, hd);
        }
        warp.site(TLP_SITE_SUPPRESS(
            "gat_nbr_gather", "TLP-BAL-008",
            "warp-per-vertex assignment: per-warp request count equals "
            "vertex in-degree, so power-law skew is inherent. The paper's "
            "balance claim (FA + dynamic TM) is about eliminating idle "
            "warps, not equalizing per-warp edge counts"));
        for (int c = 0; c < chunks; ++c) {
          const WVec<float> x = warp.load_f32_seq(
              feat_, slice_chunk_start(u, f_, lo, c), slice_chunk_len(lo, hi, c));
          auto& a = acc[static_cast<std::size_t>(c)];
          sim::lane_axpy(a, alpha, x);
          warp.charge_alu(1);
        }
      }
    }
    warp.site(TLP_SITE("gat_out_store"));
    for (int c = 0; c < chunks; ++c)
      warp.store_f32_seq(out_, slice_chunk_start(v, f_, lo, c),
                         acc[static_cast<std::size_t>(c)],
                         slice_chunk_len(lo, hi, c));
  }
}

void GatSoftmaxKernel::run_item(WarpCtx& warp, std::int64_t v) {
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  if (end == start) return;
  const float dh = warp.load_scalar_f32(dh_, v);

  auto batch_logits = [&](std::int64_t e0, Mask m, int n) -> WVec<float> {
    const WVec<std::int32_t> us = warp.load_i32_seq(g_.indices, e0, n);
    WVec<std::int64_t> uidx{};
    for (int l = 0; l < n; ++l)
      uidx[static_cast<std::size_t>(l)] = us[static_cast<std::size_t>(l)];
    const WVec<float> s = warp.load_f32(sh_, uidx, m);
    WVec<float> logit{};
    for (int l = 0; l < n; ++l) {
      const float x = s[static_cast<std::size_t>(l)] + dh;
      logit[static_cast<std::size_t>(l)] = x >= 0.0f ? x : slope_ * x;
    }
    warp.charge_alu(3);
    return logit;
  };

  // Pass 1: max logit over the segment (32 edges per step, coalesced).
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
    const int n = static_cast<int>(std::min<std::int64_t>(sim::kWarpSize, end - e));
    const Mask m = sim::lanes_below(n);
    mx = std::max(mx, warp.reduce_max(batch_logits(e, m, n), m));
  }

  // Pass 2: exponentials — materialized into alpha[] — and the denominator.
  float denom = 0.0f;
  for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
    const int n = static_cast<int>(std::min<std::int64_t>(sim::kWarpSize, end - e));
    const Mask m = sim::lanes_below(n);
    WVec<float> ex = batch_logits(e, m, n);
    for (int l = 0; l < n; ++l)
      ex[static_cast<std::size_t>(l)] =
          std::exp(ex[static_cast<std::size_t>(l)] - mx);
    warp.charge_alu(4);
    denom += warp.reduce_sum(ex, m);
    warp.store_f32_seq(alpha_, e, ex, n);
  }

  // Pass 3: normalize the stored alphas (L1-hot read-modify-write).
  for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
    const int n = static_cast<int>(std::min<std::int64_t>(sim::kWarpSize, end - e));
    WVec<float> a = warp.load_f32_seq(alpha_, e, n);
    for (int l = 0; l < n; ++l) a[static_cast<std::size_t>(l)] /= denom;
    warp.charge_alu(2);
    warp.store_f32_seq(alpha_, e, a, n);
  }
}

}  // namespace tlp::kernels
