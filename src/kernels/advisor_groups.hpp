// GNNAdvisor-style neighbor-group kernel (§3.1): each vertex's neighbor list
// is pre-partitioned into fixed-size groups, one warp processes one group,
// and the partial aggregates from different groups of the same vertex are
// combined with atomic writes — the traffic Figure 8 measures. The group
// build plus the vertex reordering (graph/reorder.hpp) constitute the
// "heavy pre-processing" TLPGNN avoids.
#pragma once

#include <vector>

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

/// Host-side group metadata (the preprocessing product).
struct NeighborGroups {
  std::vector<std::int32_t> vertex;  ///< destination vertex of each group
  std::vector<std::int64_t> start;   ///< first edge offset of the group
  std::vector<std::int32_t> len;     ///< group length, <= group_size

  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(vertex.size());
  }
};

/// Splits each vertex's neighbor list into groups of at most `group_size`.
NeighborGroups build_neighbor_groups(const graph::Csr& g, int group_size);

/// Device-resident group metadata.
struct DeviceGroups {
  sim::DevPtr<std::int32_t> vertex;
  sim::DevPtr<std::int64_t> start;
  sim::DevPtr<std::int32_t> len;
  std::int64_t count = 0;
};

DeviceGroups upload_groups(sim::Device& dev, const NeighborGroups& groups);

/// One warp per group: aggregate the group's neighbors in registers, then
/// atomically merge into the destination row. Output must be pre-zeroed;
/// GCN/GIN self terms are applied by a separate AddScaledSelfKernel pass.
class AdvisorGroupKernel final : public sim::WarpKernel {
 public:
  AdvisorGroupKernel(DeviceGraph g, DeviceGroups groups,
                     sim::DevPtr<float> feat, sim::DevPtr<float> out,
                     std::int64_t f, SimpleConv conv);

  [[nodiscard]] std::int64_t num_items() const override {
    return groups_.count;
  }
  [[nodiscard]] std::string name() const override;
  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceGraph g_;
  DeviceGroups groups_;
  sim::DevPtr<float> feat_, out_;
  std::int64_t f_;
  SimpleConv conv_;
};

}  // namespace tlp::kernels
