#include "kernels/subwarp_pull.hpp"

#include <algorithm>
#include <vector>

namespace tlp::kernels {

using models::ModelKind;
using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

SubwarpPullKernel::SubwarpPullKernel(DeviceGraph g, sim::DevPtr<float> feat,
                                     sim::DevPtr<float> out,
                                     std::int64_t feature_size,
                                     SimpleConv conv, int lanes_per_vertex)
    : g_(g), feat_(feat), out_(out), f_(feature_size), conv_(conv),
      lpv_(lanes_per_vertex), vpw_(sim::kWarpSize / lanes_per_vertex) {
  TLP_CHECK(lanes_per_vertex >= 1 && lanes_per_vertex <= sim::kWarpSize);
  TLP_CHECK_MSG((lanes_per_vertex & (lanes_per_vertex - 1)) == 0,
                "lanes_per_vertex must be a power of two");
  TLP_CHECK(feature_size >= 1 && feature_size <= kMaxFeature);
  TLP_CHECK_MSG(conv.kind != ModelKind::kGat,
                "GAT is not expressible as a simple gather");
}

std::string SubwarpPullKernel::name() const {
  return "subwarp_pull_" + std::string(models::model_name(conv_.kind)) +
         "_lpv" + std::to_string(lpv_);
}

void SubwarpPullKernel::run_item(WarpCtx& warp, std::int64_t item) {
  const std::int64_t base = item * vpw_;
  const bool is_gcn = conv_.kind == ModelKind::kGcn;

  // Leader lane of each sub-warp loads that vertex's index boundary: two
  // requests, coalesced since the vertices are consecutive.
  WVec<std::int64_t> vidx{};
  Mask leaders = 0;
  for (int s = 0; s < vpw_; ++s) {
    const std::int64_t v = base + s;
    if (v >= g_.n) break;
    leaders |= Mask{1} << (s * lpv_);
    vidx[static_cast<std::size_t>(s * lpv_)] = v;
  }
  if (leaders == 0) return;
  WVec<std::int64_t> vidx1 = vidx;
  for (auto& x : vidx1) ++x;
  warp.site(TLP_SITE("subwarp_indptr"));
  const WVec<std::int64_t> starts = warp.load_i64(g_.indptr, vidx, leaders);
  const WVec<std::int64_t> ends = warp.load_i64(g_.indptr, vidx1, leaders);

  WVec<float> norm_v{};
  if (is_gcn) norm_v = warp.load_f32(g_.norm, vidx, leaders);

  std::int64_t max_deg = 0;
  for (int s = 0; s < vpw_; ++s) {
    const int lane = s * lpv_;
    if (!sim::lane_active(leaders, lane)) continue;
    max_deg = std::max(max_deg, ends[static_cast<std::size_t>(lane)] -
                                    starts[static_cast<std::size_t>(lane)]);
  }

  // Per-sub-warp accumulators (registers on real hardware).
  std::vector<float> acc(static_cast<std::size_t>(vpw_) *
                             static_cast<std::size_t>(f_),
                         0.0f);
  const int chunk = lpv_;                        // feature dims per request/sub-warp
  const int nchunks = static_cast<int>((f_ + chunk - 1) / chunk);

  for (std::int64_t it = 0; it < max_deg; ++it) {
    // Sub-warps whose edge list still has an edge `it` stay active; the rest
    // idle — this is exactly the §4.2 branch-divergence effect.
    Mask active_leaders = 0;
    WVec<std::int64_t> eidx{};
    for (int s = 0; s < vpw_; ++s) {
      const int lane = s * lpv_;
      if (!sim::lane_active(leaders, lane)) continue;
      if (it < ends[static_cast<std::size_t>(lane)] -
                   starts[static_cast<std::size_t>(lane)]) {
        active_leaders |= Mask{1} << lane;
        eidx[static_cast<std::size_t>(lane)] =
            starts[static_cast<std::size_t>(lane)] + it;
      }
    }
    warp.site(TLP_SITE("subwarp_edge_walk"));
    const WVec<std::int32_t> us = warp.load_i32(g_.indices, eidx, active_leaders);
    WVec<float> w{};
    if (is_gcn) {
      WVec<std::int64_t> uidx{};
      for (int s = 0; s < vpw_; ++s) {
        const int lane = s * lpv_;
        if (sim::lane_active(active_leaders, lane))
          uidx[static_cast<std::size_t>(lane)] = us[static_cast<std::size_t>(lane)];
      }
      const WVec<float> norm_u = warp.load_f32(g_.norm, uidx, active_leaders);
      for (int s = 0; s < vpw_; ++s) {
        const int lane = s * lpv_;
        w[static_cast<std::size_t>(lane)] =
            norm_u[static_cast<std::size_t>(lane)] *
            norm_v[static_cast<std::size_t>(lane)];
      }
      warp.charge_alu(1);
    }

    for (int c = 0; c < nchunks; ++c) {
      WVec<std::int64_t> fidx{};
      Mask m = 0;
      for (int s = 0; s < vpw_; ++s) {
        const int lane0 = s * lpv_;
        if (!sim::lane_active(active_leaders, lane0)) continue;
        const auto u = static_cast<std::int64_t>(us[static_cast<std::size_t>(lane0)]);
        for (int k = 0; k < lpv_; ++k) {
          const std::int64_t dim = static_cast<std::int64_t>(c) * chunk + k;
          if (dim >= f_) break;
          m |= Mask{1} << (lane0 + k);
          fidx[static_cast<std::size_t>(lane0 + k)] = u * f_ + dim;
        }
      }
      if (m == 0) continue;
      warp.site(TLP_SITE("subwarp_nbr_gather"));
      const WVec<float> x = warp.load_f32(feat_, fidx, m);
      for (int s = 0; s < vpw_; ++s) {
        const int lane0 = s * lpv_;
        if (!sim::lane_active(active_leaders, lane0)) continue;
        const float ws = is_gcn ? w[static_cast<std::size_t>(lane0)] : 1.0f;
        for (int k = 0; k < lpv_; ++k) {
          const std::int64_t dim = static_cast<std::int64_t>(c) * chunk + k;
          if (dim >= f_) break;
          acc[static_cast<std::size_t>(s) * static_cast<std::size_t>(f_) +
              static_cast<std::size_t>(dim)] +=
              ws * x[static_cast<std::size_t>(lane0 + k)];
        }
      }
      warp.charge_alu(1);
    }
    warp.charge_alu(1);  // loop bookkeeping
  }

  // Epilogue: self term / mean, then stores with the same lane layout.
  warp.site(TLP_SITE("subwarp_epilogue"));
  for (int c = 0; c < nchunks; ++c) {
    WVec<std::int64_t> oidx{};
    WVec<float> val{};
    Mask m = 0;
    for (int s = 0; s < vpw_; ++s) {
      const int lane0 = s * lpv_;
      if (!sim::lane_active(leaders, lane0)) continue;
      const std::int64_t v = base + s;
      const std::int64_t deg = ends[static_cast<std::size_t>(lane0)] -
                               starts[static_cast<std::size_t>(lane0)];
      for (int k = 0; k < lpv_; ++k) {
        const std::int64_t dim = static_cast<std::int64_t>(c) * chunk + k;
        if (dim >= f_) break;
        m |= Mask{1} << (lane0 + k);
        oidx[static_cast<std::size_t>(lane0 + k)] = v * f_ + dim;
        float a = acc[static_cast<std::size_t>(s) * static_cast<std::size_t>(f_) +
                      static_cast<std::size_t>(dim)];
        if (conv_.kind == ModelKind::kSage && deg > 0)
          a /= static_cast<float>(deg);
        val[static_cast<std::size_t>(lane0 + k)] = a;
      }
    }
    if (m == 0) continue;
    if (conv_.kind == ModelKind::kGcn || conv_.kind == ModelKind::kGin) {
      const WVec<float> self = warp.load_f32(feat_, oidx, m);
      for (int s = 0; s < vpw_; ++s) {
        const int lane0 = s * lpv_;
        if (!sim::lane_active(leaders, lane0)) continue;
        const float scale =
            conv_.kind == ModelKind::kGcn
                ? norm_v[static_cast<std::size_t>(lane0)] *
                      norm_v[static_cast<std::size_t>(lane0)]
                : 1.0f + conv_.gin_eps;
        for (int k = 0; k < lpv_; ++k) {
          const int lane = lane0 + k;
          if (!sim::lane_active(m, lane)) continue;
          val[static_cast<std::size_t>(lane)] +=
              scale * self[static_cast<std::size_t>(lane)];
        }
      }
      warp.charge_alu(2);
    }
    warp.store_f32(out_, oidx, val, m);
  }
}

}  // namespace tlp::kernels
