// ApplyVertex building blocks (Figure 6): vertex-parallel kernels used to
// compose the multi-kernel baseline pipelines (DGL-like, FeatGraph-like) and
// the epilogue passes of edge-centric aggregation. All use TLPGNN-style
// warp-per-vertex, feature-per-lane mapping internally.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

/// out[v][*] = value for all vertices (intermediate buffer initialization).
class FillRowsKernel final : public sim::WarpKernel {
 public:
  FillRowsKernel(sim::DevPtr<float> out, std::int64_t rows, std::int64_t f,
                 float value)
      : out_(out), rows_(rows), f_(f), value_(value) {}
  [[nodiscard]] std::int64_t num_items() const override { return rows_; }
  [[nodiscard]] std::string name() const override { return "fill_rows"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> out_;
  std::int64_t rows_;
  std::int64_t f_;
  float value_;
};

/// out[v][*] = in[v][*] (the data-format manipulation kernels frameworks
/// insert around library calls).
class CopyRowsKernel final : public sim::WarpKernel {
 public:
  CopyRowsKernel(sim::DevPtr<float> in, sim::DevPtr<float> out,
                 std::int64_t rows, std::int64_t f)
      : in_(in), out_(out), rows_(rows), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override { return rows_; }
  [[nodiscard]] std::string name() const override { return "copy_rows"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> in_, out_;
  std::int64_t rows_;
  std::int64_t f_;
};

/// Row scaling: out[v] = in[v] * s(v).
class RowScaleKernel final : public sim::WarpKernel {
 public:
  enum class Mode {
    kByVec,       ///< s(v) = vec[v] (e.g. GCN norm)
    kByInvDegree, ///< s(v) = 1/deg(v) (Sage mean finalization; 0-degree -> 1)
    kByConst,     ///< s(v) = constant
  };
  RowScaleKernel(sim::DevPtr<float> in, sim::DevPtr<float> out, std::int64_t f,
                 Mode mode, DeviceGraph g, sim::DevPtr<float> vec,
                 float constant = 1.0f)
      : in_(in), out_(out), f_(f), mode_(mode), g_(g), vec_(vec),
        constant_(constant) {}
  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "row_scale"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> in_, out_;
  std::int64_t f_;
  Mode mode_;
  DeviceGraph g_;
  sim::DevPtr<float> vec_;
  float constant_;
};

/// Self-term accumulation: out[v] += s(v) * feat[v].
class AddScaledSelfKernel final : public sim::WarpKernel {
 public:
  enum class Mode {
    kNormSquared,  ///< s(v) = norm[v]^2 (GCN self loop)
    kConst,        ///< s(v) = constant  (GIN's 1+eps)
  };
  AddScaledSelfKernel(sim::DevPtr<float> feat, sim::DevPtr<float> out,
                      std::int64_t f, Mode mode, DeviceGraph g,
                      float constant = 1.0f)
      : feat_(feat), out_(out), f_(f), mode_(mode), g_(g), constant_(constant) {}
  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "add_scaled_self"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> feat_, out_;
  std::int64_t f_;
  Mode mode_;
  DeviceGraph g_;
  float constant_;
};

/// out[r][*] = in[r][*] * vec[r] for generic row counts (edge-message rows
/// included) — DGL's e_mul broadcast over a materialized message tensor.
class ScaleRowsByVecKernel final : public sim::WarpKernel {
 public:
  ScaleRowsByVecKernel(sim::DevPtr<float> in, sim::DevPtr<float> out,
                       sim::DevPtr<float> vec, std::int64_t rows,
                       std::int64_t f)
      : in_(in), out_(out), vec_(vec), rows_(rows), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override { return rows_; }
  [[nodiscard]] std::string name() const override { return "scale_rows_vec"; }
  void run_item(sim::WarpCtx& warp, std::int64_t r) override;

 private:
  sim::DevPtr<float> in_, out_, vec_;
  std::int64_t rows_;
  std::int64_t f_;
};

/// s[v] = Σ_f feat[v][f] * w[f] — the per-vertex halves of GAT attention.
class VertexDotKernel final : public sim::WarpKernel {
 public:
  VertexDotKernel(sim::DevPtr<float> feat, sim::DevPtr<float> weight,
                  sim::DevPtr<float> out_scalar, std::int64_t rows,
                  std::int64_t f)
      : feat_(feat), weight_(weight), out_(out_scalar), rows_(rows), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override { return rows_; }
  [[nodiscard]] std::string name() const override { return "vertex_dot"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> feat_, weight_, out_;
  std::int64_t rows_;
  std::int64_t f_;
};

/// Both GAT halves in one pass (TLPGNN/FeatGraph fuse the two dots):
/// sh[v] = a_src·h[v], dh[v] = a_dst·h[v].
class GatHalvesKernel final : public sim::WarpKernel {
 public:
  GatHalvesKernel(sim::DevPtr<float> feat, sim::DevPtr<float> a_src,
                  sim::DevPtr<float> a_dst, sim::DevPtr<float> sh,
                  sim::DevPtr<float> dh, std::int64_t rows, std::int64_t f)
      : feat_(feat), a_src_(a_src), a_dst_(a_dst), sh_(sh), dh_(dh),
        rows_(rows), f_(f) {}
  [[nodiscard]] std::int64_t num_items() const override { return rows_; }
  [[nodiscard]] std::string name() const override { return "gat_halves"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  sim::DevPtr<float> feat_, a_src_, a_dst_, sh_, dh_;
  std::int64_t rows_;
  std::int64_t f_;
};

/// Atomic-free segmented reduction over each vertex's edge scalars:
/// out[v] = reduce(a[indptr[v] .. indptr[v+1])). DGL's edge softmax uses
/// this instead of atomics (the edge array is contiguous per vertex, so the
/// loads coalesce).
class SegmentReduceKernel final : public sim::WarpKernel {
 public:
  enum class Op { kMax, kSum };
  SegmentReduceKernel(DeviceGraph g, sim::DevPtr<float> edge_vals,
                      sim::DevPtr<float> out_scalar, Op op)
      : g_(g), edge_vals_(edge_vals), out_(out_scalar), op_(op) {}
  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override {
    return op_ == Op::kMax ? "segment_max" : "segment_sum";
  }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  DeviceGraph g_;
  sim::DevPtr<float> edge_vals_, out_;
  Op op_;
};

}  // namespace tlp::kernels
