// Shared device-side data layout for all graph-convolution kernels.
//
// Feature matrices are row-major (vertex-major) on the device, so one
// vertex's feature vector occupies consecutive addresses — the property
// TLPGNN's feature parallelism exploits for coalescing (§4.3).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "sim/device.hpp"
#include "tensor/tensor.hpp"

namespace tlp::kernels {

/// Maximum feature size supported by the register-cached kernels: 16 chunks
/// of 32 dims = 512, matching the paper's largest evaluated feature size and
/// the V100's 255-registers-per-thread budget.
inline constexpr std::int64_t kMaxFeature = 512;
inline constexpr int kMaxChunks = 16;

/// CSR graph resident in device memory (pull direction: row v = in-edges).
struct DeviceGraph {
  sim::DevPtr<std::int64_t> indptr;
  sim::DevPtr<std::int32_t> indices;
  sim::DevPtr<float> norm;  ///< GCN normalization, 1/sqrt(deg+1)
  std::int64_t n = 0;       ///< vertices
  std::int64_t m = 0;       ///< edges
};

/// COO edge list in device memory (for edge-centric kernels).
struct DeviceCoo {
  sim::DevPtr<std::int32_t> src;
  sim::DevPtr<std::int32_t> dst;
  std::int64_t m = 0;
};

/// Uploads a CSR plus its GCN norm vector. `norm_override` substitutes a
/// different normalization — e.g. the push kernel walks the *out*-CSR but
/// must still use in-degree norms for GCN semantics.
DeviceGraph upload_graph(sim::Device& dev, const graph::Csr& g,
                         const std::vector<float>* norm_override = nullptr);
DeviceCoo upload_coo(sim::Device& dev, const graph::Csr& pull_csr);

sim::DevPtr<float> upload_features(sim::Device& dev, const tensor::Tensor& h);
tensor::Tensor download_features(sim::Device& dev, sim::DevPtr<float> p,
                                 std::int64_t rows, std::int64_t cols);

/// Number of 32-wide feature chunks for feature size f.
[[nodiscard]] constexpr int num_chunks(std::int64_t f) {
  return static_cast<int>((f + sim::kWarpSize - 1) / sim::kWarpSize);
}

/// Active-lane mask for chunk c of a feature vector of size f.
[[nodiscard]] constexpr sim::Mask chunk_mask(std::int64_t f, int c) {
  const std::int64_t remaining = f - static_cast<std::int64_t>(c) * sim::kWarpSize;
  return sim::lanes_below(static_cast<int>(
      remaining >= sim::kWarpSize ? sim::kWarpSize : remaining));
}

/// First element of chunk c of row `row` — lane l of the chunk accesses
/// element chunk_start + l, which is what the WarpCtx _seq fast paths
/// express directly (chunk_idx builds the same indices as an explicit
/// gather vector for the scattered entry points).
[[nodiscard]] constexpr std::int64_t chunk_start(std::int64_t row,
                                                 std::int64_t f, int c) {
  return row * f + static_cast<std::int64_t>(c) * sim::kWarpSize;
}

/// Active lane count of chunk c — popcount of chunk_mask(f, c).
[[nodiscard]] constexpr int chunk_len(std::int64_t f, int c) {
  const std::int64_t remaining = f - static_cast<std::int64_t>(c) * sim::kWarpSize;
  return static_cast<int>(remaining >= sim::kWarpSize ? sim::kWarpSize
                                                      : remaining);
}

/// Lane indices into a row-major feature matrix: row `row`, chunk `c`.
[[nodiscard]] inline sim::WVec<std::int64_t> chunk_idx(std::int64_t row,
                                                       std::int64_t f, int c) {
  sim::WVec<std::int64_t> idx{};
  const std::int64_t base = row * f + static_cast<std::int64_t>(c) * sim::kWarpSize;
  for (int l = 0; l < sim::kWarpSize; ++l)
    idx[static_cast<std::size_t>(l)] = base + l;
  return idx;
}

/// Chunk iteration over a feature *slice* [lo, hi) — used by multi-head GAT,
/// where head k owns a contiguous slice of the feature axis.
[[nodiscard]] constexpr int num_slice_chunks(std::int64_t lo, std::int64_t hi) {
  return static_cast<int>((hi - lo + sim::kWarpSize - 1) / sim::kWarpSize);
}

[[nodiscard]] constexpr sim::Mask slice_chunk_mask(std::int64_t lo,
                                                   std::int64_t hi, int c) {
  const std::int64_t remaining =
      hi - lo - static_cast<std::int64_t>(c) * sim::kWarpSize;
  return sim::lanes_below(static_cast<int>(
      remaining >= sim::kWarpSize ? sim::kWarpSize : remaining));
}

[[nodiscard]] constexpr std::int64_t slice_chunk_start(std::int64_t row,
                                                       std::int64_t f,
                                                       std::int64_t lo, int c) {
  return row * f + lo + static_cast<std::int64_t>(c) * sim::kWarpSize;
}

[[nodiscard]] constexpr int slice_chunk_len(std::int64_t lo, std::int64_t hi,
                                            int c) {
  const std::int64_t remaining =
      hi - lo - static_cast<std::int64_t>(c) * sim::kWarpSize;
  return static_cast<int>(remaining >= sim::kWarpSize ? sim::kWarpSize
                                                      : remaining);
}

[[nodiscard]] inline sim::WVec<std::int64_t> slice_chunk_idx(std::int64_t row,
                                                             std::int64_t f,
                                                             std::int64_t lo,
                                                             int c) {
  sim::WVec<std::int64_t> idx{};
  const std::int64_t base =
      row * f + lo + static_cast<std::int64_t>(c) * sim::kWarpSize;
  for (int l = 0; l < sim::kWarpSize; ++l)
    idx[static_cast<std::size_t>(l)] = base + l;
  return idx;
}

/// The non-GAT slice of a ConvSpec (GCN/GIN/Sage all fit one gather kernel).
struct SimpleConv {
  models::ModelKind kind = models::ModelKind::kGcn;
  float gin_eps = 0.1f;
};

}  // namespace tlp::kernels
