#include "kernels/conv_common.hpp"

#include "common/check.hpp"

namespace tlp::kernels {

DeviceGraph upload_graph(sim::Device& dev, const graph::Csr& g,
                         const std::vector<float>* norm_override) {
  DeviceGraph dg;
  dg.n = g.num_vertices();
  dg.m = g.num_edges();
  dg.indptr = dev.upload<std::int64_t>(g.indptr());
  dg.indices = dev.upload<std::int32_t>(g.indices());
  const std::vector<float> norm =
      norm_override != nullptr ? *norm_override : models::gcn_norm(g);
  TLP_CHECK(norm.size() == static_cast<std::size_t>(dg.n));
  dg.norm = dev.upload<float>(norm);
  return dg;
}

DeviceCoo upload_coo(sim::Device& dev, const graph::Csr& pull_csr) {
  std::vector<std::int32_t> src, dst;
  src.reserve(static_cast<std::size_t>(pull_csr.num_edges()));
  dst.reserve(static_cast<std::size_t>(pull_csr.num_edges()));
  for (graph::VertexId v = 0; v < pull_csr.num_vertices(); ++v) {
    for (const graph::VertexId u : pull_csr.neighbors(v)) {
      src.push_back(u);
      dst.push_back(v);
    }
  }
  DeviceCoo coo;
  coo.m = pull_csr.num_edges();
  coo.src = dev.upload<std::int32_t>(src);
  coo.dst = dev.upload<std::int32_t>(dst);
  return coo;
}

sim::DevPtr<float> upload_features(sim::Device& dev, const tensor::Tensor& h) {
  TLP_CHECK_MSG(h.cols() <= kMaxFeature,
                "feature size " << h.cols() << " exceeds " << kMaxFeature);
  return dev.upload<float>(h.flat());
}

tensor::Tensor download_features(sim::Device& dev, sim::DevPtr<float> p,
                                 std::int64_t rows, std::int64_t cols) {
  TLP_CHECK(p.count == rows * cols);
  tensor::Tensor t(rows, cols);
  const std::vector<float> host = dev.download(p);
  std::copy(host.begin(), host.end(), t.flat().begin());
  return t;
}

}  // namespace tlp::kernels
