#include "kernels/conv_common.hpp"

#include "common/check.hpp"

namespace tlp::kernels {

DeviceGraph upload_graph(sim::Device& dev, const graph::Csr& g,
                         const std::vector<float>* norm_override) {
  DeviceGraph dg;
  dg.n = g.num_vertices();
  dg.m = g.num_edges();
  // Every pipeline uploads the whole CSR once per run, like the frameworks
  // being modeled: a framework's graph object is resident whether or not a
  // particular model consumes each component. tlpsan's lifetime pass
  // (TLP-LIFE-007) therefore sees dead components on pipelines that read
  // another representation — the COO mirror on edge-centric runs (indptr /
  // indices unused), attention models (norm unused) — and those findings
  // are expected, not fixable without breaking replica fidelity or the
  // alloc-sequence determinism the fault-injection tests pin.
  dg.indptr = dev.upload<std::int64_t>(
      g.indptr(),
      TLP_SITE_SUPPRESS("graph_indptr", "TLP-LIFE-007",
                        "whole-CSR residency is replica-faithful: "
                        "edge-centric pipelines read the COO mirror and "
                        "never touch row offsets"));
  dg.indices = dev.upload<std::int32_t>(
      g.indices(),
      TLP_SITE_SUPPRESS("graph_indices", "TLP-LIFE-007",
                        "whole-CSR residency is replica-faithful: "
                        "edge-centric pipelines read the COO mirror and "
                        "never touch the adjacency lists"));
  const std::vector<float> norm =
      norm_override != nullptr ? *norm_override : models::gcn_norm(g);
  TLP_CHECK(norm.size() == static_cast<std::size_t>(dg.n));
  dg.norm = dev.upload<float>(
      norm, TLP_SITE_SUPPRESS("graph_norm", "TLP-LIFE-007",
                              "whole-CSR residency is replica-faithful: "
                              "attention models compute their own edge "
                              "weights and never read the GCN norm"));
  return dg;
}

DeviceCoo upload_coo(sim::Device& dev, const graph::Csr& pull_csr) {
  std::vector<std::int32_t> src, dst;
  src.reserve(static_cast<std::size_t>(pull_csr.num_edges()));
  dst.reserve(static_cast<std::size_t>(pull_csr.num_edges()));
  for (graph::VertexId v = 0; v < pull_csr.num_vertices(); ++v) {
    for (const graph::VertexId u : pull_csr.neighbors(v)) {
      src.push_back(u);
      dst.push_back(v);
    }
  }
  DeviceCoo coo;
  coo.m = pull_csr.num_edges();
  coo.src = dev.upload<std::int32_t>(src, TLP_SITE("coo_src"));
  coo.dst = dev.upload<std::int32_t>(dst, TLP_SITE("coo_dst"));
  return coo;
}

sim::DevPtr<float> upload_features(sim::Device& dev, const tensor::Tensor& h) {
  TLP_CHECK_MSG(h.cols() <= kMaxFeature,
                "feature size " << h.cols() << " exceeds " << kMaxFeature);
  return dev.upload<float>(h.flat(), TLP_SITE("feat_upload"));
}

tensor::Tensor download_features(sim::Device& dev, sim::DevPtr<float> p,
                                 std::int64_t rows, std::int64_t cols) {
  TLP_CHECK(p.count == rows * cols);
  tensor::Tensor t(rows, cols);
  const std::vector<float> host = dev.download(p);
  std::copy(host.begin(), host.end(), t.flat().begin());
  return t;
}

}  // namespace tlp::kernels
