// TLPGNN's core kernel: warp-per-vertex (first-level parallelism, §4.2),
// feature-per-lane (second-level parallelism, §4.3), atomic-free pull
// aggregation with register caching of the index boundary and the
// intermediate reduction result (§6, Figure 7).
//
// One kernel instance covers GCN, GIN and GraphSage — they differ only in
// the per-edge weight and the epilogue. `register_cache = false` reproduces
// the Figure 7(b) variant for the register-caching ablation: index bounds
// are re-read from global memory every iteration and the accumulator lives
// in the output array instead of registers.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

class GatherPullKernel final : public sim::WarpKernel {
 public:
  /// `edge_w` optionally supplies Eq. 1's per-edge scalar feature (a weight
  /// multiplied into every message); null = unweighted.
  GatherPullKernel(DeviceGraph g, sim::DevPtr<float> feat,
                   sim::DevPtr<float> out, std::int64_t feature_size,
                   SimpleConv conv, bool register_cache = true,
                   sim::DevPtr<float> edge_w = {})
      : g_(g), feat_(feat), out_(out), f_(feature_size), conv_(conv),
        register_cache_(register_cache), edge_w_(edge_w) {
    TLP_CHECK(feature_size >= 1 && feature_size <= kMaxFeature);
    if (!edge_w.is_null()) TLP_CHECK(edge_w.count >= g.m);
  }

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override;

  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  void run_cached(sim::WarpCtx& warp, std::int64_t v);
  void run_uncached(sim::WarpCtx& warp, std::int64_t v);

  DeviceGraph g_;
  sim::DevPtr<float> feat_;
  sim::DevPtr<float> out_;
  std::int64_t f_;
  SimpleConv conv_;
  bool register_cache_;
  sim::DevPtr<float> edge_w_;
};

}  // namespace tlp::kernels
