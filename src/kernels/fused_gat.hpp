// TLPGNN's one-kernel GAT (§6, Table 3 "One-Kernel"): edge softmax and
// weighted aggregation fused into a single launch over the per-vertex
// attention halves sh = a_src·h, dh = a_dst·h (dense-phase by-products, see
// models::gat_halves). No per-edge logit, alpha, or message is ever
// materialized: logits are recomputed per pass from scalars that stay hot in
// L1, trading cheap recompute for the DRAM round-trips the multi-kernel
// pipelines pay.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

class FusedGatKernel final : public sim::WarpKernel {
 public:
  /// Multi-head: `sh`/`dh` are head-interleaved (vertex*heads + head) and
  /// head k aggregates feature slice [k*f/heads, (k+1)*f/heads).
  FusedGatKernel(DeviceGraph g, sim::DevPtr<float> feat,
                 sim::DevPtr<float> sh, sim::DevPtr<float> dh,
                 sim::DevPtr<float> out, std::int64_t f, float slope,
                 int heads = 1)
      : g_(g), feat_(feat), sh_(sh), dh_(dh), out_(out), f_(f), slope_(slope),
        heads_(heads) {
    TLP_CHECK(f >= 1 && f <= kMaxFeature);
    TLP_CHECK_MSG(heads >= 1 && f % heads == 0, "heads must divide F");
  }

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "fused_gat"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  DeviceGraph g_;
  sim::DevPtr<float> feat_, sh_, dh_, out_;
  std::int64_t f_;
  float slope_;
  int heads_;
};

/// Stage 1 of the three-kernel GAT pipelines (FeatGraph-like, and TLPGNN's
/// "-Fusion" ablation): per-vertex edge softmax over the attention halves,
/// materializing normalized alpha[e] for every edge.
class GatSoftmaxKernel final : public sim::WarpKernel {
 public:
  GatSoftmaxKernel(DeviceGraph g, sim::DevPtr<float> sh, sim::DevPtr<float> dh,
                   sim::DevPtr<float> alpha, float slope)
      : g_(g), sh_(sh), dh_(dh), alpha_(alpha), slope_(slope) {}

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "gat_softmax"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  DeviceGraph g_;
  sim::DevPtr<float> sh_, dh_, alpha_;
  float slope_;
};

}  // namespace tlp::kernels
