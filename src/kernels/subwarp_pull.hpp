// Pull-style aggregation with a configurable number of lanes per vertex —
// the §3.2 coalescing study (Table 2). `lanes_per_vertex == 1` is the
// "one thread per vertex" implementation whose lanes fetch the same feature
// index of 32 *different* vertices (uncoalesced, Figure 3a);
// `lanes_per_vertex == 16` is the "half warp" implementation whose lanes
// fetch 16 *consecutive* feature elements (coalesced, Figure 3b); 32 is
// exactly TLPGNN's warp-per-vertex mapping.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

class SubwarpPullKernel final : public sim::WarpKernel {
 public:
  /// `lanes_per_vertex` must be a power of two in [1, 32].
  SubwarpPullKernel(DeviceGraph g, sim::DevPtr<float> feat,
                    sim::DevPtr<float> out, std::int64_t feature_size,
                    SimpleConv conv, int lanes_per_vertex);

  [[nodiscard]] std::int64_t num_items() const override {
    return (g_.n + vpw_ - 1) / vpw_;
  }
  [[nodiscard]] std::string name() const override;

  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceGraph g_;
  sim::DevPtr<float> feat_;
  sim::DevPtr<float> out_;
  std::int64_t f_;
  SimpleConv conv_;
  int lpv_;  ///< lanes per vertex
  int vpw_;  ///< vertices per warp = 32 / lpv
};

}  // namespace tlp::kernels
