#include "kernels/spmm.hpp"

#include <array>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

float SpmmKernel::edge_weight(WarpCtx& warp, std::int64_t e, std::int64_t row,
                              float norm_v) {
  switch (weighting_) {
    case Weighting::kGcnNormPair: {
      const float w = warp.load_scalar_f32(g_.norm, row) * norm_v;
      warp.charge_alu(1);
      return w;
    }
    case Weighting::kEdgeArray:
      return warp.load_scalar_f32(edge_w_, e);
    default:
      return 1.0f;
  }
}

void SpmmKernel::run_item(WarpCtx& warp, std::int64_t v) {
  if (register_cache_) {
    run_cached(warp, v);
  } else {
    run_uncached(warp, v);
  }
}

void SpmmKernel::run_cached(WarpCtx& warp, std::int64_t v) {
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  const int chunks = num_chunks(f_);
  std::array<WVec<float>, kMaxChunks> acc{};

  const float norm_v = weighting_ == Weighting::kGcnNormPair
                           ? warp.load_scalar_f32(g_.norm, v)
                           : 0.0f;

  for (std::int64_t e = start; e < end; ++e) {
    std::int64_t row = e;  // kMessages: X is indexed by edge id
    if (weighting_ != Weighting::kMessages)
      row = warp.load_scalar_i32(g_.indices, e);
    // Host cache-warming hint only (no model effect): overlap the next
    // row's scattered gather with this edge's model work.
    if (e + 1 < end) {
      const std::int64_t next =
          weighting_ == Weighting::kMessages
              ? e + 1
              : static_cast<std::int64_t>(warp.peek(g_.indices, e + 1));
      warp.prefetch(x_, next * f_, f_);
    }
    const float w = edge_weight(warp, e, row, norm_v);
    for (int c = 0; c < chunks; ++c) {
      const WVec<float> x =
          warp.load_f32_seq(x_, chunk_start(row, f_, c), chunk_len(f_, c));
      auto& a = acc[static_cast<std::size_t>(c)];
      sim::lane_axpy(a, w, x);
      warp.charge_alu(1);
    }
    warp.charge_alu(1);
  }

  const std::int64_t deg = end - start;
  for (int c = 0; c < chunks; ++c) {
    auto& a = acc[static_cast<std::size_t>(c)];
    if (weighting_ == Weighting::kMean && deg > 0) {
      const float inv = 1.0f / static_cast<float>(deg);
      sim::lane_scale(a, inv);
      warp.charge_alu(1);
    }
    warp.store_f32_seq(out_, chunk_start(v, f_, c), a, chunk_len(f_, c));
  }
}

void SpmmKernel::run_uncached(WarpCtx& warp, std::int64_t v) {
  // No register caching: bounds re-read per iteration, accumulator in global
  // memory (cf. Figure 7b).
  const int chunks = num_chunks(f_);
  for (int c = 0; c < chunks; ++c)
    warp.store_f32_seq(out_, chunk_start(v, f_, c), WVec<float>{},
                       chunk_len(f_, c));

  const float norm_v = weighting_ == Weighting::kGcnNormPair
                           ? warp.load_scalar_f32(g_.norm, v)
                           : 0.0f;

  std::int64_t e = warp.load_scalar_i64(g_.indptr, v);
  while (true) {
    const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
    if (e >= end) break;
    std::int64_t row = e;
    if (weighting_ != Weighting::kMessages)
      row = warp.load_scalar_i32(g_.indices, e);
    const float w = edge_weight(warp, e, row, norm_v);
    for (int c = 0; c < chunks; ++c) {
      const int n = chunk_len(f_, c);
      const WVec<float> x = warp.load_f32_seq(x_, chunk_start(row, f_, c), n);
      WVec<float> cur = warp.load_f32_seq(out_, chunk_start(v, f_, c), n);
      sim::lane_axpy(cur, w, x);
      warp.charge_alu(1);
      warp.store_f32_seq(out_, chunk_start(v, f_, c), cur, n);
    }
    warp.charge_alu(1);
    ++e;
  }

  if (weighting_ == Weighting::kMean) {
    const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
    const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
    const std::int64_t deg = end - start;
    if (deg > 0) {
      const float inv = 1.0f / static_cast<float>(deg);
      for (int c = 0; c < chunks; ++c) {
        const int n = chunk_len(f_, c);
        WVec<float> cur = warp.load_f32_seq(out_, chunk_start(v, f_, c), n);
        sim::lane_scale(cur, inv);
        warp.charge_alu(1);
        warp.store_f32_seq(out_, chunk_start(v, f_, c), cur, n);
      }
    }
  }
}

}  // namespace tlp::kernels
