#include "kernels/push_atomic.hpp"

#include <array>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using models::ModelKind;
using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

PushKernel::PushKernel(DeviceGraph out_graph, sim::DevPtr<float> feat,
                       sim::DevPtr<float> out, std::int64_t feature_size,
                       SimpleConv conv)
    : g_(out_graph), feat_(feat), out_(out), f_(feature_size), conv_(conv) {
  TLP_CHECK(feature_size >= 1 && feature_size <= kMaxFeature);
  TLP_CHECK_MSG(conv.kind != ModelKind::kGat,
                "GAT is not expressible as a simple push");
}

std::string PushKernel::name() const {
  return "push_" + std::string(models::model_name(conv_.kind));
}

void PushKernel::run_item(WarpCtx& warp, std::int64_t v) {
  warp.site(TLP_SITE("push_indptr"));
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  const int chunks = num_chunks(f_);
  const bool is_gcn = conv_.kind == ModelKind::kGcn;
  const float norm_v = is_gcn ? warp.load_scalar_f32(g_.norm, v) : 0.0f;

  // Own feature cached in registers: loaded once, pushed along every edge.
  warp.site(TLP_SITE("push_self_feat"));
  std::array<WVec<float>, kMaxChunks> self{};
  for (int c = 0; c < chunks; ++c) {
    self[static_cast<std::size_t>(c)] =
        warp.load_f32_seq(feat_, chunk_start(v, f_, c), chunk_len(f_, c));
  }
  // Self-loop contribution: v also owns its own row's self term. Other warps
  // may be adding to the same row concurrently, so this is atomic too.
  const float self_scale = is_gcn ? norm_v * norm_v
                           : conv_.kind == ModelKind::kGin
                               ? 1.0f + conv_.gin_eps
                               : 0.0f;
  if (self_scale != 0.0f) {
    for (int c = 0; c < chunks; ++c) {
      WVec<float> msg =
          sim::lane_scaled(self[static_cast<std::size_t>(c)], self_scale);
      warp.charge_alu(1);
      warp.site(TLP_SITE("push_self_scatter"));
      warp.atomic_add_f32_seq(out_, chunk_start(v, f_, c), msg,
                              chunk_len(f_, c));
    }
  }

  for (std::int64_t e = start; e < end; ++e) {
    warp.site(TLP_SITE("push_edge_walk"));
    const std::int32_t u = warp.load_scalar_i32(g_.indices, e);
    // Host cache-warming hint only (no model effect): the next destination
    // row is a scattered read-modify-write; start pulling it now.
    if (e + 1 < end) {
      const auto un =
          static_cast<std::int64_t>(warp.peek(g_.indices, e + 1));
      warp.prefetch(out_, un * f_, f_);
    }
    float w = 1.0f;
    if (is_gcn) {
      w = warp.load_scalar_f32(g_.norm, u) * norm_v;
      warp.charge_alu(1);
    }
    for (int c = 0; c < chunks; ++c) {
      WVec<float> msg =
          sim::lane_scaled(self[static_cast<std::size_t>(c)], w);
      warp.charge_alu(1);
      // The destination row is shared with every other in-neighbor of u:
      // atomic write per edge (the Observation I traffic). Deliberately NOT
      // suppressed: TLP-ATOM-004 firing here is the paper's Observation I,
      // and the baseline file is where that known warning lives.
      warp.site(TLP_SITE("push_edge_scatter"));
      warp.atomic_add_f32_seq(out_, chunk_start(u, f_, c), msg,
                              chunk_len(f_, c));
    }
    warp.charge_alu(1);
  }
}

}  // namespace tlp::kernels
