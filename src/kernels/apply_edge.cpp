#include "kernels/apply_edge.hpp"

#include <cmath>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

namespace {

/// Loads the 32 (src, dst) pairs of an edge-parallel item.
struct EdgeBatch {
  Mask m = 0;
  int n = 0;
  WVec<std::int32_t> src{};
  WVec<std::int32_t> dst{};
  std::int64_t base = 0;
};

EdgeBatch load_batch(WarpCtx& warp, const DeviceCoo& coo, std::int64_t item,
                     bool need_src, bool need_dst) {
  EdgeBatch b;
  b.base = item * sim::kWarpSize;
  b.n = static_cast<int>(
      std::min<std::int64_t>(sim::kWarpSize, coo.m - b.base));
  b.m = sim::lanes_below(b.n);
  if (need_src) b.src = warp.load_i32_seq(coo.src, b.base, b.n);
  if (need_dst) b.dst = warp.load_i32_seq(coo.dst, b.base, b.n);
  return b;
}

WVec<std::int64_t> widen(const WVec<std::int32_t>& v) {
  return sim::lane_widen(v);
}

}  // namespace

void EdgeLogitKernel::run_item(WarpCtx& warp, std::int64_t item) {
  const EdgeBatch b = load_batch(warp, coo_, item, true, true);
  const WVec<float> s = warp.load_f32(sh_, widen(b.src), b.m);
  const WVec<float> d = warp.load_f32(dh_, widen(b.dst), b.m);
  WVec<float> logit{};
  for (int l = 0; l < sim::kWarpSize; ++l) {
    const float x =
        s[static_cast<std::size_t>(l)] + d[static_cast<std::size_t>(l)];
    logit[static_cast<std::size_t>(l)] = x >= 0.0f ? x : slope_ * x;
  }
  warp.charge_alu(3);  // add, compare, select
  warp.store_f32_seq(logit_, b.base, logit, b.n);
}

std::string EdgeMapKernel::name() const {
  switch (mode_) {
    case Mode::kSubDst:
      return "edge_sub_dst";
    case Mode::kExp:
      return "edge_exp";
    case Mode::kDivDst:
      return "edge_div_dst";
    case Mode::kCopy:
      return "edge_copy";
    case Mode::kAtomicMaxDst:
      return "edge_atomic_max_dst";
    case Mode::kAtomicAddDst:
      return "edge_atomic_add_dst";
  }
  return "edge_map";
}

void EdgeMapKernel::run_item(WarpCtx& warp, std::int64_t item) {
  const bool need_dst = mode_ != Mode::kExp && mode_ != Mode::kCopy;
  const EdgeBatch b = load_batch(warp, coo_, item, false, need_dst);
  WVec<float> a = warp.load_f32_seq(a_, b.base, b.n);
  switch (mode_) {
    case Mode::kSubDst: {
      const WVec<float> bv = warp.load_f32(b_, widen(b.dst), b.m);
      for (int l = 0; l < sim::kWarpSize; ++l)
        a[static_cast<std::size_t>(l)] -= bv[static_cast<std::size_t>(l)];
      warp.charge_alu(1);
      warp.store_f32_seq(a_, b.base, a, b.n);
      break;
    }
    case Mode::kExp: {
      for (int l = 0; l < sim::kWarpSize; ++l) {
        if (sim::lane_active(b.m, l))
          a[static_cast<std::size_t>(l)] =
              std::exp(a[static_cast<std::size_t>(l)]);
      }
      warp.charge_alu(4);  // exp is a multi-instruction SFU sequence
      warp.store_f32_seq(a_, b.base, a, b.n);
      break;
    }
    case Mode::kDivDst: {
      const WVec<float> bv = warp.load_f32(b_, widen(b.dst), b.m);
      for (int l = 0; l < sim::kWarpSize; ++l) {
        if (sim::lane_active(b.m, l))
          a[static_cast<std::size_t>(l)] /= bv[static_cast<std::size_t>(l)];
      }
      warp.charge_alu(2);
      warp.store_f32_seq(a_, b.base, a, b.n);
      break;
    }
    case Mode::kCopy:
      warp.store_f32_seq(out_, b.base, a, b.n);
      break;
    case Mode::kAtomicMaxDst:
      warp.atomic_max_f32(b_, widen(b.dst), a, b.m);
      break;
    case Mode::kAtomicAddDst:
      warp.atomic_add_f32(b_, widen(b.dst), a, b.m);
      break;
  }
}

void EdgeWeightedAggKernel::run_item(WarpCtx& warp, std::int64_t item) {
  warp.site(TLP_SITE("eagg_edge_batch"));
  const EdgeBatch b = load_batch(warp, coo_, item, true, true);
  const WVec<float> w = warp.load_f32_seq(w_, b.base, b.n);
  // Same column-major walk as EdgeCentricAggKernel: 32 unrelated rows per
  // request in both the gather and the scatter — expected for the paper's
  // edge-parallel baselines, so reported but non-gating.
  const sim::AccessSite* gather_site = TLP_SITE_SUPPRESS(
      "eagg_feat_gather", "TLP-COAL-002",
      "column-major feature walk of 32 unrelated source rows is inherent to "
      "edge parallelism; kept as the paper's baseline behavior");
  const sim::AccessSite* scatter_site = TLP_SITE_SUPPRESS(
      "eagg_out_scatter", "TLP-COAL-002",
      "atomic scatter to 32 unrelated destination rows is inherent to edge "
      "parallelism; kept as the paper's baseline behavior");
  for (std::int64_t dim = 0; dim < f_; ++dim) {
    WVec<std::int64_t> fidx{}, oidx{};
    for (int l = 0; l < sim::kWarpSize; ++l) {
      if (!sim::lane_active(b.m, l)) continue;
      fidx[static_cast<std::size_t>(l)] =
          static_cast<std::int64_t>(b.src[static_cast<std::size_t>(l)]) * f_ + dim;
      oidx[static_cast<std::size_t>(l)] =
          static_cast<std::int64_t>(b.dst[static_cast<std::size_t>(l)]) * f_ + dim;
    }
    warp.site(gather_site);
    WVec<float> x = warp.load_f32(feat_, fidx, b.m);
    sim::lane_mul(x, w);
    warp.charge_alu(1);
    warp.site(scatter_site);
    warp.atomic_add_f32(out_, oidx, x, b.m);
  }
  warp.site(nullptr);
}

void UMulEMaterializeKernel::run_item(WarpCtx& warp, std::int64_t e) {
  const std::int32_t src = warp.load_scalar_i32(coo_.src, e);
  const float w = w_.is_null() ? 1.0f : warp.load_scalar_f32(w_, e);
  for (int c = 0; c < num_chunks(f_); ++c) {
    const int n = chunk_len(f_, c);
    WVec<float> x = warp.load_f32_seq(feat_, chunk_start(src, f_, c), n);
    sim::lane_scale(x, w);
    warp.charge_alu(1);
    warp.store_f32_seq(msg_, chunk_start(e, f_, c), x, n);
  }
}

}  // namespace tlp::kernels
