// Push-updating-policy kernel (§3.1, Table 1 "Push"): each warp walks one
// vertex's *out-going* edges and atomically adds its (weighted) feature to
// every out-neighbor's accumulator. Race conditions between warps writing
// the same destination make the atomics mandatory — the overhead TLPGNN's
// pull design eliminates.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

class PushKernel final : public sim::WarpKernel {
 public:
  /// `out_graph` is the push-direction CSR: row v lists v's out-neighbors.
  /// The output buffer must be pre-zeroed (see FillRowsKernel) — with the
  /// push policy no single warp owns a destination row.
  /// Supports GCN/GIN sums; Sage's mean needs a separate rescale pass.
  PushKernel(DeviceGraph out_graph, sim::DevPtr<float> feat,
             sim::DevPtr<float> out, std::int64_t feature_size,
             SimpleConv conv);

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override;

  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  DeviceGraph g_;  ///< out-direction CSR
  sim::DevPtr<float> feat_;
  sim::DevPtr<float> out_;
  std::int64_t f_;
  SimpleConv conv_;
};

}  // namespace tlp::kernels
