#include "kernels/apply_vertex.hpp"

#include <limits>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

void FillRowsKernel::run_item(WarpCtx& warp, std::int64_t v) {
  const WVec<float> val = sim::lane_splat(value_);
  for (int c = 0; c < num_chunks(f_); ++c) {
    warp.store_f32_seq(out_, chunk_start(v, f_, c), val, chunk_len(f_, c));
  }
}

void CopyRowsKernel::run_item(WarpCtx& warp, std::int64_t v) {
  for (int c = 0; c < num_chunks(f_); ++c) {
    const int n = chunk_len(f_, c);
    const WVec<float> x = warp.load_f32_seq(in_, chunk_start(v, f_, c), n);
    warp.store_f32_seq(out_, chunk_start(v, f_, c), x, n);
  }
}

void RowScaleKernel::run_item(WarpCtx& warp, std::int64_t v) {
  float s = constant_;
  switch (mode_) {
    case Mode::kByVec:
      s = warp.load_scalar_f32(vec_, v);
      break;
    case Mode::kByInvDegree: {
      const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
      const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
      const std::int64_t deg = end - start;
      s = deg > 0 ? 1.0f / static_cast<float>(deg) : 1.0f;
      warp.charge_alu(2);
      break;
    }
    case Mode::kByConst:
      break;
  }
  for (int c = 0; c < num_chunks(f_); ++c) {
    const int n = chunk_len(f_, c);
    WVec<float> x = warp.load_f32_seq(in_, chunk_start(v, f_, c), n);
    sim::lane_scale(x, s);
    warp.charge_alu(1);
    warp.store_f32_seq(out_, chunk_start(v, f_, c), x, n);
  }
}

void AddScaledSelfKernel::run_item(WarpCtx& warp, std::int64_t v) {
  float s = constant_;
  if (mode_ == Mode::kNormSquared) {
    const float n = warp.load_scalar_f32(g_.norm, v);
    s = n * n;
    warp.charge_alu(1);
  }
  for (int c = 0; c < num_chunks(f_); ++c) {
    const int n = chunk_len(f_, c);
    const WVec<float> x = warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
    WVec<float> cur = warp.load_f32_seq(out_, chunk_start(v, f_, c), n);
    sim::lane_axpy(cur, s, x);
    warp.charge_alu(1);
    warp.store_f32_seq(out_, chunk_start(v, f_, c), cur, n);
  }
}

void ScaleRowsByVecKernel::run_item(WarpCtx& warp, std::int64_t r) {
  const float s = warp.load_scalar_f32(vec_, r);
  for (int c = 0; c < num_chunks(f_); ++c) {
    const int n = chunk_len(f_, c);
    WVec<float> x = warp.load_f32_seq(in_, chunk_start(r, f_, c), n);
    sim::lane_scale(x, s);
    warp.charge_alu(1);
    warp.store_f32_seq(out_, chunk_start(r, f_, c), x, n);
  }
}

void VertexDotKernel::run_item(WarpCtx& warp, std::int64_t v) {
  float dot = 0.0f;
  for (int c = 0; c < num_chunks(f_); ++c) {
    const Mask m = chunk_mask(f_, c);
    const int n = chunk_len(f_, c);
    const WVec<float> x = warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
    const WVec<float> w = warp.load_f32_seq(weight_, chunk_start(0, f_, c), n);
    WVec<float> prod = x;
    sim::lane_mul(prod, w);
    warp.charge_alu(1);
    dot += warp.reduce_sum(prod, m);
  }
  warp.store_scalar_f32(out_, v, dot);
}

void GatHalvesKernel::run_item(WarpCtx& warp, std::int64_t v) {
  float s = 0.0f, d = 0.0f;
  for (int c = 0; c < num_chunks(f_); ++c) {
    const Mask m = chunk_mask(f_, c);
    const int n = chunk_len(f_, c);
    const WVec<float> x = warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
    const WVec<float> ws = warp.load_f32_seq(a_src_, chunk_start(0, f_, c), n);
    const WVec<float> wd = warp.load_f32_seq(a_dst_, chunk_start(0, f_, c), n);
    WVec<float> ps = x, pd = x;
    sim::lane_mul(ps, ws);
    sim::lane_mul(pd, wd);
    warp.charge_alu(2);
    s += warp.reduce_sum(ps, m);
    d += warp.reduce_sum(pd, m);
  }
  warp.store_scalar_f32(sh_, v, s);
  warp.store_scalar_f32(dh_, v, d);
}

void SegmentReduceKernel::run_item(WarpCtx& warp, std::int64_t v) {
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  float acc = op_ == Op::kMax ? -std::numeric_limits<float>::infinity() : 0.0f;
  // The edge-value segment is contiguous: 32 coalesced lanes per request.
  for (std::int64_t e = start; e < end; e += sim::kWarpSize) {
    const int n = static_cast<int>(std::min<std::int64_t>(sim::kWarpSize, end - e));
    const Mask m = sim::lanes_below(n);
    const WVec<float> x = warp.load_f32_seq(edge_vals_, e, n);
    const float part = op_ == Op::kMax ? warp.reduce_max(x, m)
                                       : warp.reduce_sum(x, m);
    acc = op_ == Op::kMax ? std::max(acc, part) : acc + part;
    warp.charge_alu(1);
  }
  warp.store_scalar_f32(out_, v, acc);
}

}  // namespace tlp::kernels
