#include "kernels/gather_pull.hpp"

#include <array>

#include "sim/lanes.hpp"

namespace tlp::kernels {

using models::ModelKind;
using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

std::string GatherPullKernel::name() const {
  std::string n = "gather_pull_";
  n += models::model_name(conv_.kind);
  if (!register_cache_) n += "_nocache";
  return n;
}

void GatherPullKernel::run_item(WarpCtx& warp, std::int64_t v) {
  if (register_cache_) {
    run_cached(warp, v);
  } else {
    run_uncached(warp, v);
  }
}

void GatherPullKernel::run_cached(WarpCtx& warp, std::int64_t v) {
  // Index boundary cached in registers (Figure 7a): two loads total.
  warp.site(TLP_SITE("pull_indptr"));
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  const int chunks = num_chunks(f_);
  std::array<WVec<float>, kMaxChunks> acc{};  // registers

  const bool is_gcn = conv_.kind == ModelKind::kGcn;
  const float norm_v = is_gcn ? warp.load_scalar_f32(g_.norm, v) : 0.0f;

  for (std::int64_t e = start; e < end; ++e) {
    warp.site(TLP_SITE_SUPPRESS(
        "pull_edge_walk", "TLP-BAL-008",
        "warp-per-vertex assignment: per-warp request count equals vertex "
        "in-degree, so power-law skew is inherent. The paper's balance "
        "claim (FA + dynamic TM) is about eliminating idle warps, not "
        "equalizing per-warp edge counts"));
    const std::int32_t u = warp.load_scalar_i32(g_.indices, e);
    // Host-side hint only (no model effect): start pulling a later
    // neighbor's scattered feature row into the host caches while this
    // edge's model work runs. Distance 4 gives the host memory system a
    // few edges of latency to hide; the first rows of a segment are
    // covered by the prefetch issued while the previous vertex ran.
    if (e + 4 < end) {
      const auto un =
          static_cast<std::int64_t>(warp.peek(g_.indices, e + 4));
      warp.prefetch(feat_, un * f_, f_);
    }
    float w = 1.0f;
    if (is_gcn) {
      w = warp.load_scalar_f32(g_.norm, u) * norm_v;
      warp.charge_alu(1);
    }
    if (!edge_w_.is_null()) {
      w *= warp.load_scalar_f32(edge_w_, e);
      warp.charge_alu(1);
    }
    warp.site(TLP_SITE("pull_nbr_gather"));
    for (int c = 0; c < chunks; ++c) {
      const WVec<float> x =
          warp.load_f32_seq(feat_, chunk_start(u, f_, c), chunk_len(f_, c));
      auto& a = acc[static_cast<std::size_t>(c)];
      sim::lane_axpy(a, w, x);
      warp.charge_alu(1);  // fused multiply-add
    }
    warp.charge_alu(1);  // loop bookkeeping / branch
  }

  // Epilogue: self term (GCN/GIN), mean division (Sage), then one store per
  // chunk — the register-cached reduction writes global memory exactly once.
  warp.site(TLP_SITE("pull_epilogue"));
  const std::int64_t deg = end - start;
  for (int c = 0; c < chunks; ++c) {
    const int n = chunk_len(f_, c);
    auto& a = acc[static_cast<std::size_t>(c)];
    switch (conv_.kind) {
      case ModelKind::kGcn: {
        const WVec<float> self =
            warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
        sim::lane_axpy(a, norm_v * norm_v, self);
        warp.charge_alu(2);
        break;
      }
      case ModelKind::kGin: {
        const WVec<float> self =
            warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
        sim::lane_axpy(a, 1.0f + conv_.gin_eps, self);
        warp.charge_alu(2);
        break;
      }
      case ModelKind::kSage: {
        if (deg > 0) {
          const float inv = 1.0f / static_cast<float>(deg);
          sim::lane_scale(a, inv);
        }
        warp.charge_alu(1);
        break;
      }
      case ModelKind::kGat:
        TLP_CHECK_MSG(false, "GAT uses FusedGatKernel");
    }
    warp.store_f32_seq(out_, chunk_start(v, f_, c), a, n);
  }
}

void GatherPullKernel::run_uncached(WarpCtx& warp, std::int64_t v) {
  // Figure 7(b): no register caching. The loop bound is re-read from
  // indptr every iteration and the partial reduction lives in the output
  // array in global memory (read-modify-write per edge). The redundant
  // fetches are the whole point of this ablation variant, so the site
  // declares TLP-RED-005 as expected — tlpsan reports the refetch volume
  // without failing the gate.
  const sim::AccessSite* refetch_site = TLP_SITE_SUPPRESS(
      "pull_nocache_refetch", "TLP-RED-005",
      "ablation of the paper's register-caching optimization (Figure 7b): "
      "boundary and norm refetches per edge are the measured cost");
  const int chunks = num_chunks(f_);
  const bool is_gcn = conv_.kind == ModelKind::kGcn;

  // Zero the accumulator rows in global memory first.
  warp.site(TLP_SITE("pull_nocache_zero"));
  for (int c = 0; c < chunks; ++c)
    warp.store_f32_seq(out_, chunk_start(v, f_, c), WVec<float>{},
                       chunk_len(f_, c));

  warp.site(refetch_site);
  std::int64_t e = warp.load_scalar_i64(g_.indptr, v);
  while (true) {
    warp.site(refetch_site);
    // `i < indptr[v+1]` check: re-loads the boundary every iteration.
    const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
    if (e >= end) break;
    const std::int32_t u = warp.load_scalar_i32(g_.indices, e);
    if (e + 1 < end) {
      const auto un =
          static_cast<std::int64_t>(warp.peek(g_.indices, e + 1));
      warp.prefetch(feat_, un * f_, f_);
    }
    float w = 1.0f;
    if (is_gcn) {
      const float norm_v = warp.load_scalar_f32(g_.norm, v);
      w = warp.load_scalar_f32(g_.norm, u) * norm_v;
      warp.charge_alu(1);
    }
    if (!edge_w_.is_null()) {
      w *= warp.load_scalar_f32(edge_w_, e);
      warp.charge_alu(1);
    }
    warp.site(TLP_SITE("pull_nocache_rmw"));
    for (int c = 0; c < chunks; ++c) {
      const int n = chunk_len(f_, c);
      const WVec<float> x =
          warp.load_f32_seq(feat_, chunk_start(u, f_, c), n);
      WVec<float> cur = warp.load_f32_seq(out_, chunk_start(v, f_, c), n);
      sim::lane_axpy(cur, w, x);
      warp.charge_alu(1);
      warp.store_f32_seq(out_, chunk_start(v, f_, c), cur, n);
    }
    warp.charge_alu(1);
    ++e;
  }

  // Epilogue through global memory as well.
  warp.site(refetch_site);
  const std::int64_t start = warp.load_scalar_i64(g_.indptr, v);
  const std::int64_t end = warp.load_scalar_i64(g_.indptr, v + 1);
  const std::int64_t deg = end - start;
  for (int c = 0; c < chunks; ++c) {
    const int n = chunk_len(f_, c);
    WVec<float> cur = warp.load_f32_seq(out_, chunk_start(v, f_, c), n);
    switch (conv_.kind) {
      case ModelKind::kGcn: {
        const float norm_v = warp.load_scalar_f32(g_.norm, v);
        const WVec<float> self =
            warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
        sim::lane_axpy(cur, norm_v * norm_v, self);
        warp.charge_alu(2);
        break;
      }
      case ModelKind::kGin: {
        const WVec<float> self =
            warp.load_f32_seq(feat_, chunk_start(v, f_, c), n);
        sim::lane_axpy(cur, 1.0f + conv_.gin_eps, self);
        warp.charge_alu(2);
        break;
      }
      case ModelKind::kSage: {
        if (deg > 0) {
          const float inv = 1.0f / static_cast<float>(deg);
          sim::lane_scale(cur, inv);
        }
        warp.charge_alu(1);
        break;
      }
      case ModelKind::kGat:
        TLP_CHECK_MSG(false, "GAT uses FusedGatKernel");
    }
    warp.store_f32_seq(out_, chunk_start(v, f_, c), cur, n);
  }
}

}  // namespace tlp::kernels
