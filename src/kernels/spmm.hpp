// CSR SpMM — the cuSPARSE-style workhorse behind the DGL-like and
// FeatGraph-like pipelines: out[v] = Σ_{e ∈ row v} w(e) · X[col(e)].
// Vertex-parallel, feature-per-lane, atomic-free (rows are independent),
// but unlike the fused TLPGNN kernel it reads its weights from materialized
// edge/vertex arrays and is launched as one stage of a pipeline.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

class SpmmKernel final : public sim::WarpKernel {
 public:
  enum class Weighting {
    kSum,          ///< w(e) = 1
    kMean,         ///< w(e) = 1/deg(v)
    kGcnNormPair,  ///< w(e) = norm[src] * norm[dst]
    kEdgeArray,    ///< w(e) = edge_w[e]
    kMessages,     ///< out[v] = Σ msg[e] (X indexed by edge id, not src)
  };

  /// `register_cache = false` reproduces the no-register-caching variant for
  /// the Figure 10 ablation: loop bounds re-read per edge, accumulator kept
  /// in global memory (read-modify-write per edge).
  SpmmKernel(DeviceGraph g, sim::DevPtr<float> x, sim::DevPtr<float> out,
             std::int64_t f, Weighting weighting,
             sim::DevPtr<float> edge_w = {}, bool register_cache = true)
      : g_(g), x_(x), out_(out), f_(f), weighting_(weighting), edge_w_(edge_w),
        register_cache_(register_cache) {
    TLP_CHECK(f >= 1 && f <= kMaxFeature);
    if (weighting == Weighting::kEdgeArray)
      TLP_CHECK_MSG(edge_w_.count >= g.m, "edge weights required");
  }

  [[nodiscard]] std::int64_t num_items() const override { return g_.n; }
  [[nodiscard]] std::string name() const override { return "spmm"; }
  void run_item(sim::WarpCtx& warp, std::int64_t v) override;

 private:
  void run_cached(sim::WarpCtx& warp, std::int64_t v);
  void run_uncached(sim::WarpCtx& warp, std::int64_t v);
  /// Weight of edge e into row `row`; shared by both variants.
  float edge_weight(sim::WarpCtx& warp, std::int64_t e, std::int64_t row,
                    float norm_v);

  DeviceGraph g_;
  sim::DevPtr<float> x_, out_;
  std::int64_t f_;
  Weighting weighting_;
  sim::DevPtr<float> edge_w_;
  bool register_cache_;
};

}  // namespace tlp::kernels
