#include "kernels/edge_centric.hpp"

#include "sim/lanes.hpp"

namespace tlp::kernels {

using models::ModelKind;
using sim::Mask;
using sim::WarpCtx;
using sim::WVec;

EdgeCentricAggKernel::EdgeCentricAggKernel(DeviceCoo coo,
                                           sim::DevPtr<float> norm,
                                           sim::DevPtr<float> feat,
                                           sim::DevPtr<float> out,
                                           std::int64_t feature_size,
                                           SimpleConv conv)
    : coo_(coo), norm_(norm), feat_(feat), out_(out), f_(feature_size),
      conv_(conv) {
  TLP_CHECK(feature_size >= 1 && feature_size <= kMaxFeature);
  TLP_CHECK_MSG(conv.kind != ModelKind::kGat,
                "edge-centric GAT is a multi-kernel pipeline (see systems)");
}

std::string EdgeCentricAggKernel::name() const {
  return "edge_centric_" + std::string(models::model_name(conv_.kind));
}

void EdgeCentricAggKernel::run_item(WarpCtx& warp, std::int64_t item) {
  const std::int64_t base = item * sim::kWarpSize;
  const int nlanes = static_cast<int>(
      std::min<std::int64_t>(sim::kWarpSize, coo_.m - base));
  const Mask m = sim::lanes_below(nlanes);

  // Coalesced loads of the edge endpoints.
  warp.site(TLP_SITE("edge_endpoints"));
  const WVec<std::int32_t> src = warp.load_i32_seq(coo_.src, base, nlanes);
  const WVec<std::int32_t> dst = warp.load_i32_seq(coo_.dst, base, nlanes);

  WVec<float> w = sim::lane_splat(1.0f);
  if (conv_.kind == ModelKind::kGcn) {
    warp.site(TLP_SITE_SUPPRESS(
        "edge_norm_gather", "TLP-COAL-002",
        "edge parallelism gathers norms of 32 unrelated endpoints per "
        "request; the paper's edge-centric baseline accepts this (Table 5)"));
    const WVec<std::int64_t> sidx = sim::lane_widen(src);
    const WVec<std::int64_t> didx = sim::lane_widen(dst);
    const WVec<float> ns = warp.load_f32(norm_, sidx, m);
    const WVec<float> nd = warp.load_f32(norm_, didx, m);
    w = ns;
    sim::lane_mul(w, nd);
    warp.charge_alu(1);
  }

  // Lane l walks all feature dimensions of its edge: both the gather and the
  // atomic scatter hit 32 different rows per request — uncoalesced. tlpsan
  // still reports the finding (as a note), but it never gates: the column-
  // major walk is inherent to the edge-parallel layout the paper compares
  // against, not a fixable defect in this replica.
  const sim::AccessSite* gather_site = TLP_SITE_SUPPRESS(
      "edge_feat_gather", "TLP-COAL-002",
      "column-major feature walk of 32 unrelated source rows is inherent to "
      "edge parallelism; kept as the paper's Table 5 baseline behavior");
  const sim::AccessSite* scatter_site = TLP_SITE_SUPPRESS(
      "edge_out_scatter", "TLP-COAL-002",
      "atomic scatter to 32 unrelated destination rows is inherent to edge "
      "parallelism; kept as the paper's Table 5 baseline behavior");
  for (std::int64_t dim = 0; dim < f_; ++dim) {
    WVec<std::int64_t> fidx{}, oidx{};
    for (int l = 0; l < sim::kWarpSize; ++l) {
      if (!sim::lane_active(m, l)) continue;
      fidx[static_cast<std::size_t>(l)] =
          static_cast<std::int64_t>(src[static_cast<std::size_t>(l)]) * f_ + dim;
      oidx[static_cast<std::size_t>(l)] =
          static_cast<std::int64_t>(dst[static_cast<std::size_t>(l)]) * f_ + dim;
    }
    warp.site(gather_site);
    WVec<float> x = warp.load_f32(feat_, fidx, m);
    sim::lane_mul(x, w);
    warp.charge_alu(1);
    warp.site(scatter_site);
    warp.atomic_add_f32(out_, oidx, x, m);
  }
  warp.site(nullptr);
}

}  // namespace tlp::kernels
