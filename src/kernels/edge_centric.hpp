// Edge-centric (X-Stream-style) aggregation: one thread per edge, atomic
// writes to the destination row (§3.1, Table 1 "Edge"). Perfectly balanced
// across edges but pays Observation I's atomic cost and Observation II's
// uncoalesced gathers — this is the baseline of the Figure 10 ablation.
#pragma once

#include "kernels/conv_common.hpp"
#include "sim/kernel.hpp"

namespace tlp::kernels {

/// Sum/weighted-sum aggregation over a COO edge list. Each warp item covers
/// 32 consecutive edges; lane l walks every feature dimension of its edge
/// sequentially and atomically adds into out[dst]. The output must be
/// pre-zeroed; GCN's self term and Sage's mean need separate vertex passes.
class EdgeCentricAggKernel final : public sim::WarpKernel {
 public:
  EdgeCentricAggKernel(DeviceCoo coo, sim::DevPtr<float> norm,
                       sim::DevPtr<float> feat, sim::DevPtr<float> out,
                       std::int64_t feature_size, SimpleConv conv);

  [[nodiscard]] std::int64_t num_items() const override {
    return (coo_.m + sim::kWarpSize - 1) / sim::kWarpSize;
  }
  [[nodiscard]] std::string name() const override;

  void run_item(sim::WarpCtx& warp, std::int64_t item) override;

 private:
  DeviceCoo coo_;
  sim::DevPtr<float> norm_;
  sim::DevPtr<float> feat_;
  sim::DevPtr<float> out_;
  std::int64_t f_;
  SimpleConv conv_;
};

}  // namespace tlp::kernels
