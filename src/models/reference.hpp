// CPU reference ("gold") implementation of every model's graph convolution.
// Slow and obviously correct; all simulator kernels are tested against it.
#pragma once

#include "graph/csr.hpp"
#include "models/model.hpp"
#include "tensor/tensor.hpp"

namespace tlp::models {

/// Computes the convolution defined in model.hpp for the given model.
/// `h` is (num_vertices x F); the result has the same shape.
tensor::Tensor reference_conv(const graph::Csr& g, const tensor::Tensor& h,
                              const ConvSpec& spec);

/// Per-edge GAT attention logits e(u,v) in CSR edge order (before softmax),
/// head-interleaved (edge*heads + k); size E for a single head. Exposed so
/// multi-kernel pipelines can be tested stage by stage.
std::vector<float> reference_gat_logits(const graph::Csr& g,
                                        const tensor::Tensor& h,
                                        const GatParams& gat);

}  // namespace tlp::models
