#include "models/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace tlp::models {

using graph::Csr;
using graph::VertexId;
using tensor::Tensor;

namespace {

/// Per-edge multiplier from the spec's optional edge weights (Eq. 1's e_vu).
float edge_w(const ConvSpec& spec, graph::EdgeOffset e) {
  return spec.has_edge_weights()
             ? spec.edge_weights[static_cast<std::size_t>(e)]
             : 1.0f;
}

Tensor gcn_ref(const Csr& g, const Tensor& h, const ConvSpec& spec) {
  const std::vector<float> norm = gcn_norm(g);
  Tensor out(h.rows(), h.cols());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto dst = out.row(v);
    const float nv = norm[static_cast<std::size_t>(v)];
    // Self loop.
    const auto self = h.row(v);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += self[j] * nv * nv;
    const auto base = g.indptr()[static_cast<std::size_t>(v)];
    const auto ns = g.neighbors(v);
    for (std::size_t e = 0; e < ns.size(); ++e) {
      const VertexId u = ns[e];
      const float w = norm[static_cast<std::size_t>(u)] * nv *
                      edge_w(spec, base + static_cast<graph::EdgeOffset>(e));
      const auto src = h.row(u);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j] * w;
    }
  }
  return out;
}

Tensor gin_ref(const Csr& g, const Tensor& h, const ConvSpec& spec) {
  Tensor out(h.rows(), h.cols());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto dst = out.row(v);
    const auto self = h.row(v);
    for (std::size_t j = 0; j < dst.size(); ++j)
      dst[j] = (1.0f + spec.gin_eps) * self[j];
    const auto base = g.indptr()[static_cast<std::size_t>(v)];
    const auto ns = g.neighbors(v);
    for (std::size_t e = 0; e < ns.size(); ++e) {
      const float w = edge_w(spec, base + static_cast<graph::EdgeOffset>(e));
      const auto src = h.row(ns[e]);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += w * src[j];
    }
  }
  return out;
}

Tensor sage_ref(const Csr& g, const Tensor& h, const ConvSpec& spec) {
  Tensor out(h.rows(), h.cols());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto deg = g.degree(v);
    if (deg == 0) continue;
    auto dst = out.row(v);
    const auto base = g.indptr()[static_cast<std::size_t>(v)];
    const auto ns = g.neighbors(v);
    for (std::size_t e = 0; e < ns.size(); ++e) {
      const float w = edge_w(spec, base + static_cast<graph::EdgeOffset>(e));
      const auto src = h.row(ns[e]);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += w * src[j];
    }
    const float inv = 1.0f / static_cast<float>(deg);
    for (auto& x : dst) x *= inv;
  }
  return out;
}

Tensor gat_ref(const Csr& g, const Tensor& h, const GatParams& gat) {
  const std::vector<float> logits = reference_gat_logits(g, h, gat);
  const int heads = gat.heads;
  const std::int64_t hd = gat.head_dim();
  Tensor out(h.rows(), h.cols());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto deg = g.degree(v);
    if (deg == 0) continue;
    const auto base = g.indptr()[static_cast<std::size_t>(v)];
    auto dst = out.row(v);
    const auto ns = g.neighbors(v);
    for (int k = 0; k < heads; ++k) {
      // Numerically stable edge softmax over the in-edges of v, per head.
      auto logit_of = [&](graph::EdgeOffset e) {
        return logits[static_cast<std::size_t>((base + e) * heads + k)];
      };
      float mx = -std::numeric_limits<float>::infinity();
      for (graph::EdgeOffset e = 0; e < deg; ++e)
        mx = std::max(mx, logit_of(e));
      float denom = 0.0f;
      for (graph::EdgeOffset e = 0; e < deg; ++e)
        denom += std::exp(logit_of(e) - mx);
      for (graph::EdgeOffset e = 0; e < deg; ++e) {
        const float alpha = std::exp(logit_of(e) - mx) / denom;
        const auto src = h.row(ns[static_cast<std::size_t>(e)]);
        for (std::int64_t j = k * hd; j < (k + 1) * hd; ++j)
          dst[static_cast<std::size_t>(j)] +=
              alpha * src[static_cast<std::size_t>(j)];
      }
    }
  }
  return out;
}

}  // namespace

std::vector<float> reference_gat_logits(const Csr& g, const Tensor& h,
                                        const GatParams& gat) {
  // Per-vertex halves of the additive attention, then combine per edge.
  const GatHalves halves = gat_halves(h, gat);
  const int heads = gat.heads;
  std::vector<float> logits(
      static_cast<std::size_t>(g.num_edges() * heads));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto base = g.indptr()[static_cast<std::size_t>(v)];
    const auto ns = g.neighbors(v);
    for (std::size_t e = 0; e < ns.size(); ++e) {
      for (int k = 0; k < heads; ++k) {
        const float x =
            halves.src[static_cast<std::size_t>(ns[e] * heads + k)] +
            halves.dst[static_cast<std::size_t>(v * heads + k)];
        logits[(static_cast<std::size_t>(base) + e) * heads +
               static_cast<std::size_t>(k)] =
            x >= 0.0f ? x : gat.leaky_slope * x;
      }
    }
  }
  return logits;
}

Tensor reference_conv(const Csr& g, const Tensor& h, const ConvSpec& spec) {
  TLP_CHECK(h.rows() == g.num_vertices());
  if (spec.has_edge_weights()) {
    TLP_CHECK_MSG(static_cast<std::int64_t>(spec.edge_weights.size()) ==
                      g.num_edges(),
                  "edge_weights must have one entry per edge");
    TLP_CHECK_MSG(spec.kind != ModelKind::kGat,
                  "edge weights are not defined for GAT (attention already "
                  "weights the edges)");
  }
  switch (spec.kind) {
    case ModelKind::kGcn:
      return gcn_ref(g, h, spec);
    case ModelKind::kGin:
      return gin_ref(g, h, spec);
    case ModelKind::kSage:
      return sage_ref(g, h, spec);
    case ModelKind::kGat:
      return gat_ref(g, h, spec.gat);
  }
  TLP_CHECK(false);
  __builtin_unreachable();
}

}  // namespace tlp::models
