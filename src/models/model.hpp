// GNN model zoo: the four models the paper evaluates (§7.1) and the exact
// semantics of their graph-convolution phase. Every kernel strategy in
// src/kernels and every framework replica in src/systems implements these
// same semantics, and models::reference_conv is the gold standard they are
// all tested against.
//
// Convolution semantics (h = input features, N(v) = in-neighbors of v):
//   GCN : out[v] = Σ_{u ∈ N(v) ∪ {v}} h[u] · norm(u) · norm(v)
//         with norm(x) = 1/sqrt(deg_in(x) + 1)  (self-loop added)
//   GIN : out[v] = (1 + eps) · h[v] + Σ_{u ∈ N(v)} h[u]
//   Sage: out[v] = mean_{u ∈ N(v)} h[u]          (0 when N(v) is empty)
//   GAT : e(u,v) = LeakyReLU(a_src·h[u] + a_dst·h[v])
//         out[v] = Σ_u softmax_{u ∈ N(v)}(e(u,v)) · h[u]
//         With H > 1 heads the feature axis splits into H contiguous slices
//         of F/H dims; head k attends with its own (a_src^k, a_dst^k) over
//         slice k and writes slice k of the output (concat semantics, the
//         input having been projected per-head by the dense phase).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace tlp::models {

enum class ModelKind { kGcn, kGin, kSage, kGat };

inline constexpr ModelKind kAllModels[] = {ModelKind::kGcn, ModelKind::kGin,
                                           ModelKind::kSage, ModelKind::kGat};

const char* model_name(ModelKind kind);

/// Learned attention parameters for GAT.
struct GatParams {
  /// Attention vectors, length F total: head k owns the contiguous slice
  /// [k*F/heads, (k+1)*F/heads).
  std::vector<float> attn_src;
  std::vector<float> attn_dst;
  int heads = 1;
  float leaky_slope = 0.2f;

  [[nodiscard]] std::int64_t head_dim() const {
    return static_cast<std::int64_t>(attn_src.size()) / heads;
  }
};

/// Full description of one graph-convolution operation.
struct ConvSpec {
  ModelKind kind = ModelKind::kGcn;
  float gin_eps = 0.1f;
  GatParams gat;  ///< populated only when kind == kGat
  /// Optional per-edge feature weights in CSR edge order (Eq. 1's edge
  /// feature e_vu, here a scalar multiplier in the message function ψ).
  /// Empty = unweighted. Supported for GCN/GIN/Sage by the reference and
  /// the TLPGNN system.
  std::vector<float> edge_weights;

  [[nodiscard]] bool has_edge_weights() const { return !edge_weights.empty(); }

  /// Randomly initialized spec for a model at feature size F (the paper
  /// initializes weights to random floats). For GAT, `heads` must divide F.
  static ConvSpec make(ModelKind kind, std::int64_t feature_size, Rng& rng,
                       int heads = 1);
};

/// GCN normalization vector: norm[v] = 1/sqrt(deg_in(v) + 1). Part of the
/// graph structure, shared by every system (see DESIGN.md).
std::vector<float> gcn_norm(const graph::Csr& g);

/// Per-vertex GAT attention halves: sh[v,k] = a_src^k·h[v]|slice k,
/// dh[v,k] = a_dst^k·h[v]|slice k, stored head-interleaved (v*heads + k).
/// In a real GAT layer these are outputs of the *dense* phase (a^T (W h) is
/// a matmul by-product), so systems that fuse the convolution consume them
/// as inputs; frameworks like DGL recompute them with dedicated kernels.
struct GatHalves {
  std::vector<float> src;  ///< sh, size V*heads
  std::vector<float> dst;  ///< dh, size V*heads
};
GatHalves gat_halves(const tensor::Tensor& h, const GatParams& gat);

}  // namespace tlp::models
