#include "models/model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tlp::models {

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcn:
      return "GCN";
    case ModelKind::kGin:
      return "GIN";
    case ModelKind::kSage:
      return "Sage";
    case ModelKind::kGat:
      return "GAT";
  }
  return "?";
}

ConvSpec ConvSpec::make(ModelKind kind, std::int64_t feature_size, Rng& rng,
                        int heads) {
  ConvSpec spec;
  spec.kind = kind;
  if (kind == ModelKind::kGat) {
    TLP_CHECK_MSG(heads >= 1 && feature_size % heads == 0,
                  "heads (" << heads << ") must divide F (" << feature_size
                            << ")");
    spec.gat.heads = heads;
    spec.gat.attn_src.resize(static_cast<std::size_t>(feature_size));
    spec.gat.attn_dst.resize(static_cast<std::size_t>(feature_size));
    // Small magnitudes keep the edge softmax well-conditioned in fp32.
    for (auto& v : spec.gat.attn_src) v = (rng.next_float() * 2.0f - 1.0f) * 0.1f;
    for (auto& v : spec.gat.attn_dst) v = (rng.next_float() * 2.0f - 1.0f) * 0.1f;
  }
  return spec;
}

GatHalves gat_halves(const tensor::Tensor& h, const GatParams& gat) {
  TLP_CHECK(static_cast<std::int64_t>(gat.attn_src.size()) == h.cols());
  TLP_CHECK(static_cast<std::int64_t>(gat.attn_dst.size()) == h.cols());
  TLP_CHECK(gat.heads >= 1 && h.cols() % gat.heads == 0);
  const std::int64_t hd = gat.head_dim();
  GatHalves out;
  out.src.resize(static_cast<std::size_t>(h.rows() * gat.heads));
  out.dst.resize(static_cast<std::size_t>(h.rows() * gat.heads));
  for (std::int64_t v = 0; v < h.rows(); ++v) {
    const auto row = h.row(v);
    for (int k = 0; k < gat.heads; ++k) {
      float s = 0.0f, d = 0.0f;
      for (std::int64_t j = k * hd; j < (k + 1) * hd; ++j) {
        s += row[static_cast<std::size_t>(j)] *
             gat.attn_src[static_cast<std::size_t>(j)];
        d += row[static_cast<std::size_t>(j)] *
             gat.attn_dst[static_cast<std::size_t>(j)];
      }
      out.src[static_cast<std::size_t>(v * gat.heads + k)] = s;
      out.dst[static_cast<std::size_t>(v * gat.heads + k)] = d;
    }
  }
  return out;
}

std::vector<float> gcn_norm(const graph::Csr& g) {
  std::vector<float> norm(static_cast<std::size_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    norm[static_cast<std::size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(g.degree(v)) + 1.0f);
  }
  return norm;
}

}  // namespace tlp::models
