// Dense neural-network operations for the phases before and after graph
// convolution (§2.1: Dropout/Matmul before, activation/normalization after).
// These run on the host — the paper's contribution and all of our
// measurements concern the convolution phase only.
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace tlp::tensor {

/// C = A(BxK) * W(KxN); blocked for cache friendliness.
Tensor matmul(const Tensor& a, const Tensor& w);

/// y = x + bias (bias broadcast over rows; bias.rows()==1).
Tensor add_bias(const Tensor& x, const Tensor& bias);

Tensor relu(const Tensor& x);
Tensor leaky_relu(const Tensor& x, float slope = 0.2f);

/// Row-wise numerically stable softmax.
Tensor softmax_rows(const Tensor& x);

/// Inverted dropout: zeroes each element with probability p, scales the rest
/// by 1/(1-p). Training-mode semantics.
Tensor dropout(const Tensor& x, double p, Rng& rng);

/// Row-wise L2 normalization (used by GraphSage post-aggregation).
Tensor l2_normalize_rows(const Tensor& x, float eps = 1e-12f);

}  // namespace tlp::tensor
