#include "tensor/dense_ops.hpp"

#include <algorithm>
#include <cmath>

namespace tlp::tensor {

Tensor matmul(const Tensor& a, const Tensor& w) {
  TLP_CHECK_MSG(a.cols() == w.rows(),
                "matmul shape mismatch: " << a.cols() << " vs " << w.rows());
  const std::int64_t m = a.rows(), k = a.cols(), n = w.cols();
  Tensor c(m, n);
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      for (std::int64_t i = i0; i < std::min(m, i0 + kBlock); ++i) {
        for (std::int64_t kk = k0; kk < std::min(k, k0 + kBlock); ++kk) {
          const float av = a.at(i, kk);
          if (av == 0.0f) continue;
          const auto wrow = w.row(kk);
          const auto crow = c.row(i);
          for (std::int64_t j = 0; j < n; ++j)
            crow[static_cast<std::size_t>(j)] += av * wrow[static_cast<std::size_t>(j)];
        }
      }
    }
  }
  return c;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  TLP_CHECK(bias.rows() == 1 && bias.cols() == x.cols());
  Tensor y = x;
  for (std::int64_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    const auto b = bias.row(0);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += b[j];
  }
  return y;
}

Tensor relu(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.flat()) v = std::max(v, 0.0f);
  return y;
}

Tensor leaky_relu(const Tensor& x, float slope) {
  Tensor y = x;
  for (auto& v : y.flat()) v = v >= 0.0f ? v : slope * v;
  return y;
}

Tensor softmax_rows(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  for (std::int64_t r = 0; r < x.rows(); ++r) {
    const auto in = x.row(r);
    auto out = y.row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (const float v : in) mx = std::max(mx, v);
    float sum = 0.0f;
    for (std::size_t j = 0; j < in.size(); ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    for (auto& v : out) v /= sum;
  }
  return y;
}

Tensor dropout(const Tensor& x, double p, Rng& rng) {
  TLP_CHECK(p >= 0.0 && p < 1.0);
  Tensor y = x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  for (auto& v : y.flat()) v = rng.next_bool(p) ? 0.0f : v * keep_scale;
  return y;
}

Tensor l2_normalize_rows(const Tensor& x, float eps) {
  Tensor y = x;
  for (std::int64_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    float norm = 0.0f;
    for (const float v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < eps) continue;
    for (auto& v : row) v /= norm;
  }
  return y;
}

}  // namespace tlp::tensor
