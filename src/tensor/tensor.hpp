// Minimal dense row-major float tensor used for vertex/edge feature matrices
// and the dense (non-convolution) phases of each GNN layer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tlp::tensor {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0f) {
    TLP_CHECK(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t size() const { return rows_ * cols_; }

  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) {
    TLP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const {
    TLP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  [[nodiscard]] std::span<float> row(std::int64_t r) {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const float> row(std::int64_t r) const {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] std::span<float> flat() { return data_; }
  [[nodiscard]] std::span<const float> flat() const { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Uniform [-scale, scale) initialization (the paper initializes features
  /// and weights to random 32-bit floats).
  static Tensor random(std::int64_t rows, std::int64_t cols, Rng& rng,
                       float scale = 1.0f);

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

/// Max absolute elementwise difference; tensors must have equal shape.
double max_abs_diff(const Tensor& a, const Tensor& b);

/// True if shapes match and elements agree within atol + rtol*|ref|.
bool allclose(const Tensor& a, const Tensor& ref, double rtol = 1e-4,
              double atol = 1e-5);

}  // namespace tlp::tensor
