#include "tensor/tensor.hpp"

#include <cmath>

namespace tlp::tensor {

Tensor Tensor::random(std::int64_t rows, std::int64_t cols, Rng& rng,
                      float scale) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = (rng.next_float() * 2.0f - 1.0f) * scale;
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  TLP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(fa[i]) - fb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& ref, double rtol, double atol) {
  if (a.rows() != ref.rows() || a.cols() != ref.cols()) return false;
  const auto fa = a.flat();
  const auto fr = ref.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double diff = std::abs(static_cast<double>(fa[i]) - fr[i]);
    if (diff > atol + rtol * std::abs(static_cast<double>(fr[i]))) return false;
  }
  return true;
}

}  // namespace tlp::tensor
