#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tlp::serve {

namespace {

using graph::VertexId;

/// Cumulative Zipf distribution over ranks 0..n-1: P(r) ∝ 1/(r+1)^alpha.
std::vector<double> zipf_cdf(std::int64_t n, double alpha) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0;
  for (std::int64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf[static_cast<std::size_t>(r)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

/// Seeded Fisher–Yates permutation of 0..n-1 — maps popularity rank to a
/// vertex id, so the hot set is a random subset rather than the low ids
/// (which generators tend to make hubs already).
std::vector<VertexId> rank_to_vertex(VertexId n, Rng& rng) {
  std::vector<VertexId> perm(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  for (VertexId i = n - 1; i > 0; --i) {
    const auto j = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace

QueryStream::QueryStream(VertexId num_vertices, double zipf_alpha, Rng& rng) {
  // An empty vertex set is a valid (if degenerate) stream: construction
  // consumes zero rng draws and num_vertices() reports 0, so callers like
  // FeatureCache can build the stream unconditionally and gate the drawing
  // loop instead. Only draw() itself requires a non-empty set.
  TLP_CHECK_GE(num_vertices, 0);
  TLP_CHECK_GE(zipf_alpha, 0);
  rank_to_vertex_ = rank_to_vertex(num_vertices, rng);
  if (zipf_alpha > 0 && num_vertices > 0) {
    cdf_ = zipf_cdf(num_vertices, zipf_alpha);
  }
}

VertexId QueryStream::draw(Rng& rng) const {
  const auto n = static_cast<std::int64_t>(rank_to_vertex_.size());
  // Rng::next_below(0) is an empty range (documented UB); fail loudly in
  // every build mode rather than depending on the caller's checks.
  TLP_CHECK_MSG(n > 0, "QueryStream::draw on an empty vertex set");
  std::int64_t rank;
  if (cdf_.empty()) {
    rank = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
  } else {
    const double u = rng.next_double();
    rank = std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
    rank = std::min<std::int64_t>(rank, n - 1);
  }
  return rank_to_vertex_[static_cast<std::size_t>(rank)];
}

tensor::Tensor gather_rows(const tensor::Tensor& feat,
                           const std::vector<VertexId>& ids) {
  tensor::Tensor out(static_cast<VertexId>(ids.size()), feat.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto src = feat.row(ids[i]);
    std::copy(src.begin(), src.end(),
              out.row(static_cast<VertexId>(i)).begin());
  }
  return out;
}

graph::LocalGraph ego_subgraph(const graph::Csr& g, VertexId query, int hops,
                               std::int64_t max_vertices) {
  TLP_CHECK_MSG(query >= 0 && query < g.num_vertices(),
                "ego query vertex " << query << " out of range (|V|="
                                    << g.num_vertices() << ")");
  TLP_CHECK_GE(hops, 0);
  TLP_CHECK_GE(max_vertices, 1);

  std::vector<bool> keep(static_cast<std::size_t>(g.num_vertices()), false);
  keep[static_cast<std::size_t>(query)] = true;
  std::int64_t kept = 1;
  std::vector<VertexId> frontier{query};
  for (int h = 0; h < hops && !frontier.empty() && kept < max_vertices; ++h) {
    std::vector<VertexId> next;
    for (const VertexId v : frontier) {
      for (const VertexId u : g.neighbors(v)) {
        if (kept >= max_vertices) break;
        if (!keep[static_cast<std::size_t>(u)]) {
          keep[static_cast<std::size_t>(u)] = true;
          ++kept;
          next.push_back(u);
        }
      }
      if (kept >= max_vertices) break;
    }
    frontier = std::move(next);
  }
  return graph::induced_subgraph(g, keep);
}

std::vector<Request> generate_traffic(const graph::Csr& g,
                                      const tensor::Tensor& feat,
                                      const TrafficOptions& opts) {
  TLP_CHECK_MSG(g.num_vertices() > 0, "traffic needs a non-empty graph");
  TLP_CHECK_EQ(feat.rows(), g.num_vertices());
  TLP_CHECK_GE(opts.num_requests, 0);
  TLP_CHECK_GT(opts.mean_interarrival_ms, 0);
  TLP_CHECK_GE(opts.zipf_alpha, 0);
  TLP_CHECK_GT(opts.burst_len, 0);
  TLP_CHECK_GT(opts.burst_speedup, 0);

  Rng rng(opts.seed);
  const QueryStream queries(g.num_vertices(), opts.zipf_alpha, rng);

  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(opts.num_requests));
  double clock = 0;
  for (std::int64_t i = 0; i < opts.num_requests; ++i) {
    // Arrival.
    if (opts.arrival == ArrivalProcess::kPoisson) {
      clock += -std::log(1.0 - rng.next_double()) * opts.mean_interarrival_ms;
    } else {
      if (i > 0 && i % opts.burst_len == 0) clock += opts.gap_ms;
      clock += -std::log(1.0 - rng.next_double()) *
               (opts.mean_interarrival_ms / opts.burst_speedup);
    }

    // Popularity-weighted query vertex.
    const VertexId query = queries.draw(rng);

    Request req;
    req.id = i;
    req.arrival_ms = clock;
    req.deadline_ms = opts.deadline_ms > 0 ? clock + opts.deadline_ms : 0;
    req.query = query;
    req.ego = ego_subgraph(g, query, opts.hops, opts.max_ego_vertices);

    // Local id of the query: its position among the kept, id-ordered set.
    const auto it = std::lower_bound(req.ego.to_global.begin(),
                                     req.ego.to_global.end(), query);
    TLP_CHECK(it != req.ego.to_global.end() && *it == query);
    req.query_local = static_cast<VertexId>(it - req.ego.to_global.begin());

    req.feat = gather_rows(feat, req.ego.to_global);
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace tlp::serve
