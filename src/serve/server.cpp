#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <string>

#include "common/check.hpp"
#include "serve/feature_cache.hpp"
#include "systems/partitioned.hpp"

namespace tlp::serve {

namespace {

using graph::EdgeOffset;
using graph::VertexId;

/// Block-diagonal disjoint union of the batch members' ego subgraphs. Each
/// block keeps its internal edge order and its in-degrees, so GCN norms and
/// per-vertex float accumulation are exactly the single-request values —
/// the served rows do not depend on batch composition.
struct MergedBatch {
  graph::Csr csr;
  tensor::Tensor feat;
  std::vector<VertexId> base;  ///< first merged vertex id of each member
};

MergedBatch merge_batch(const std::vector<const Request*>& reqs,
                        const std::vector<const tensor::Tensor*>& feats) {
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  const std::int64_t cols = feats.front()->cols();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    TLP_CHECK_EQ(feats[i]->cols(), cols);
    vertices += reqs[i]->ego.csr.num_vertices();
    edges += reqs[i]->ego.csr.num_edges();
  }

  MergedBatch m;
  m.feat = tensor::Tensor(vertices, cols);
  m.base.reserve(reqs.size());
  std::vector<EdgeOffset> indptr;
  indptr.reserve(static_cast<std::size_t>(vertices) + 1);
  indptr.push_back(0);
  std::vector<VertexId> indices;
  indices.reserve(static_cast<std::size_t>(edges));

  VertexId base = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    m.base.push_back(base);
    const graph::Csr& g = reqs[i]->ego.csr;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const VertexId u : g.neighbors(v)) {
        indices.push_back(u + base);
      }
      indptr.push_back(static_cast<EdgeOffset>(indices.size()));
      const auto src = feats[i]->row(v);
      auto dst = m.feat.row(base + v);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    base += g.num_vertices();
  }
  m.csr = graph::Csr(std::move(indptr), std::move(indices));
  return m;
}

void fill_served(Response& out, const Request& req, Outcome outcome,
                 std::span<const float> row, double t_start, double now) {
  out.outcome = outcome;
  out.output.assign(row.begin(), row.end());
  out.queue_ms = t_start - req.arrival_ms;
  out.latency_ms = now - req.arrival_ms;
  out.deadline_missed = req.deadline_ms > 0 && now > req.deadline_ms;
}

}  // namespace

Server::Server(const ServerOptions& opts, FeatureCache* cache)
    : opts_(opts),
      engine_([&opts] {
        EngineOptions eo = opts.engine;
        eo.degrade.enabled = false;  // the server owns the ladder
        return eo;
      }()),
      fallback_system_(opts.engine.tlpgnn),
      cache_(cache) {
  TLP_CHECK_GT(opts_.queue_capacity, 0);
  TLP_CHECK_GT(opts_.max_batch, 0);
  TLP_CHECK_GE(opts_.queue_capacity, opts_.max_batch);
  TLP_CHECK_GE(opts_.batch_window_ms, 0);
  TLP_CHECK_GE(opts_.failed_attempt_floor_ms, 0);
  TLP_CHECK_GE(opts_.retry.max_retries, 0);
  TLP_CHECK_GE(opts_.retry.base_delay_ms, 0);
  TLP_CHECK_GE(opts_.retry.multiplier, 1.0);
  TLP_CHECK_GE(opts_.fallback.initial_partitions, 1);
  TLP_CHECK_GE(opts_.fallback.max_attempts, 1);
  TLP_CHECK_GT(opts_.breaker.failure_threshold, 0);
  TLP_CHECK_GE(opts_.breaker.cooldown_ms, 0);
  for (std::size_t s = 1; s < opts_.storms.size(); ++s) {
    TLP_CHECK_MSG(opts_.storms[s - 1].at_request <= opts_.storms[s].at_request,
                  "StormEvents must be sorted by at_request");
  }
}

ServeResult Server::run(const std::vector<Request>& traffic,
                        const models::ConvSpec& spec) {
  TLP_CHECK_MSG(!spec.has_edge_weights(),
                "serving does not support edge-weighted specs (weights are "
                "bound to global edge order)");
  const auto n = static_cast<std::int64_t>(traffic.size());
  for (std::int64_t i = 0; i < n; ++i) {
    TLP_CHECK_MSG(traffic[i].id == i, "traffic ids must be 0..n-1 in order");
    TLP_CHECK_MSG(i == 0 || traffic[i - 1].arrival_ms <= traffic[i].arrival_ms,
                  "traffic must be sorted by arrival time");
  }

  ServeResult result;
  result.responses.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    result.responses[static_cast<std::size_t>(i)].id = i;
    result.responses[static_cast<std::size_t>(i)].arrival_ms =
        traffic[static_cast<std::size_t>(i)].arrival_ms;
  }

  sim::Device& dev = engine_.device();
  Rng jitter(opts_.jitter_seed);
  CircuitBreaker breaker(opts_.breaker);
  std::deque<std::int64_t> queue;
  std::int64_t next_arrival = 0;
  std::size_t next_storm = 0;
  double clock = 0;

  // An attempt that died before producing kernel time still occupies the
  // device: charge the partial gpu time it did accumulate, floored at the
  // configured minimum. Deterministic — gpu_time_ms is simulated.
  const auto failed_charge = [&]() {
    return std::max(opts_.failed_attempt_floor_ms, dev.gpu_time_ms());
  };

  const auto admit_until = [&](double t) {
    while (next_arrival < n &&
           traffic[static_cast<std::size_t>(next_arrival)].arrival_ms <= t) {
      const Request& r = traffic[static_cast<std::size_t>(next_arrival)];
      if (static_cast<std::int64_t>(queue.size()) >= opts_.queue_capacity) {
        Response& out = result.responses[static_cast<std::size_t>(r.id)];
        out.outcome = Outcome::kRejected;
        out.error = "queue full (capacity " +
                    std::to_string(opts_.queue_capacity) + ")";
      } else {
        queue.push_back(r.id);
      }
      ++next_arrival;
    }
  };

  // Serves one request through the retry/degrade ladder after the batched
  // direct attempt failed (or was skipped by an open breaker). `feat` is the
  // request's staged feature block — the cache-gathered copy when a cache is
  // attached (staged once per batch; retries reuse it), Request::feat
  // otherwise.
  const auto serve_one = [&](const Request& req, const tensor::Tensor& feat,
                             Response& out, double t_start) {
    const graph::Csr& g = req.ego.csr;

    // Direct retries with exponential backoff + jitter, breaker-gated.
    while (out.direct_attempts < 1 + opts_.retry.max_retries) {
      if (!breaker.allow(clock)) break;
      if (out.direct_attempts > 0) {
        clock += opts_.retry.delay_ms(out.direct_attempts - 1, jitter);
      }
      dev.set_fault_context("req " + std::to_string(req.id) +
                            " direct attempt " +
                            std::to_string(out.direct_attempts + 1));
      try {
        const systems::RunResult r = engine_.conv(g, feat, spec);
        clock += r.runtime_ms;
        breaker.record_success();
        ++out.direct_attempts;
        fill_served(out, req,
                    out.direct_attempts == 1 ? Outcome::kOk : Outcome::kRetried,
                    r.output.row(req.query_local), t_start, clock);
        return;
      } catch (const DeviceError& e) {
        ++out.direct_attempts;
        clock += failed_charge();
        breaker.record_failure(clock);
        out.error = e.what();
      }
    }

    // Partitioned fallback: bit-identical output, doubling part count. A
    // graph of < 2 vertices cannot be split; such a request can only fail.
    if (opts_.fallback.enabled && g.num_vertices() >= 2) {
      int k = std::max(2, opts_.fallback.initial_partitions);
      for (int a = 0; a < opts_.fallback.max_attempts; ++a) {
        k = std::min<int>(k, g.num_vertices());
        ++out.fallback_attempts;
        dev.set_fault_context("req " + std::to_string(req.id) +
                              " fallback attempt " + std::to_string(a + 1) +
                              " (k=" + std::to_string(k) + ")");
        try {
          const systems::RunResult r = systems::run_partitioned(
              fallback_system_, dev, g, feat, spec, k);
          clock += r.runtime_ms;
          out.partitions = k;
          fill_served(out, req, Outcome::kDegraded,
                      r.output.row(req.query_local), t_start, clock);
          return;
        } catch (const DeviceError& e) {
          clock += failed_charge();
          out.error = e.what();
          if (k >= g.num_vertices()) break;  // cannot split further
          k *= 2;
        }
      }
    }

    out.outcome = Outcome::kFailed;
    // An open breaker can skip every rung of the ladder; a Failed response
    // must still explain itself.
    if (out.error.empty()) {
      out.error = "circuit breaker open: direct path skipped and no fallback "
                  "attempt was possible";
    }
    out.queue_ms = t_start - req.arrival_ms;
    out.latency_ms = clock - req.arrival_ms;
    out.deadline_missed = req.deadline_ms > 0 && clock > req.deadline_ms;
  };

  while (next_arrival < n || !queue.empty()) {
    if (queue.empty()) {
      clock = std::max(
          clock, traffic[static_cast<std::size_t>(next_arrival)].arrival_ms);
    }
    admit_until(clock);
    if (queue.empty()) continue;

    // Hold an under-full batch open for the batching window.
    const double window_end = clock + opts_.batch_window_ms;
    while (static_cast<int>(queue.size()) < opts_.max_batch &&
           next_arrival < n &&
           traffic[static_cast<std::size_t>(next_arrival)].arrival_ms <=
               window_end) {
      clock = std::max(
          clock, traffic[static_cast<std::size_t>(next_arrival)].arrival_ms);
      admit_until(clock);
    }
    if (static_cast<int>(queue.size()) < opts_.max_batch && next_arrival < n) {
      clock = window_end;  // the window timer fired
    }

    std::vector<std::int64_t> batch;
    while (!queue.empty() &&
           static_cast<int>(batch.size()) < opts_.max_batch) {
      batch.push_back(queue.front());
      queue.pop_front();
    }

    // Requests whose deadline expired while queued are shed, not executed.
    const double t_start = clock;
    std::vector<const Request*> live;
    live.reserve(batch.size());
    for (const std::int64_t id : batch) {
      const Request& r = traffic[static_cast<std::size_t>(id)];
      Response& out = result.responses[static_cast<std::size_t>(id)];
      if (r.deadline_ms > 0 && t_start > r.deadline_ms) {
        out.outcome = Outcome::kRejected;
        out.deadline_missed = true;
        out.error = "deadline expired in queue";
      } else {
        live.push_back(&r);
      }
    }
    if (live.empty()) continue;

    // Stage the batch's feature blocks. With a cache attached every live
    // request re-gathers through it exactly once (hits from the pinned
    // region, misses from the global matrix — same bytes as Request::feat),
    // and the simulated gather charge joins the clock before execution.
    // Without a cache the pre-gathered Request::feat is used for free — the
    // legacy path, byte-for-byte.
    std::vector<tensor::Tensor> staged;
    std::vector<const tensor::Tensor*> feats(live.size());
    if (cache_ != nullptr) {
      staged.resize(live.size());
      double gather_ms = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        gather_ms += cache_->gather(live[i]->ego.to_global, staged[i]);
        feats[i] = &staged[i];
      }
      clock += gather_ms;
    } else {
      for (std::size_t i = 0; i < live.size(); ++i) {
        feats[i] = &live[i]->feat;
      }
    }

    // Arm any storm scheduled at or before this batch's first request. Batch
    // front ids are monotonic, so each event fires exactly once.
    while (next_storm < opts_.storms.size() &&
           live.front()->id >= opts_.storms[next_storm].at_request) {
      dev.arm_faults(opts_.storms[next_storm].plan);
      ++next_storm;
    }

    // Direct batched attempt over the disjoint union.
    bool batch_served = false;
    if (breaker.allow(clock)) {
      dev.set_fault_context("batch @ req " + std::to_string(live.front()->id) +
                            " (" + std::to_string(live.size()) + " reqs)");
      try {
        const MergedBatch mb = merge_batch(live, feats);
        const systems::RunResult r = engine_.conv(mb.csr, mb.feat, spec);
        clock += r.runtime_ms;
        breaker.record_success();
        for (std::size_t i = 0; i < live.size(); ++i) {
          const Request& req = *live[i];
          Response& out = result.responses[static_cast<std::size_t>(req.id)];
          ++out.direct_attempts;
          fill_served(out, req, Outcome::kOk,
                      r.output.row(mb.base[i] + req.query_local), t_start,
                      clock);
        }
        batch_served = true;
      } catch (const DeviceError& e) {
        clock += failed_charge();
        breaker.record_failure(clock);
        for (const Request* req : live) {
          Response& out = result.responses[static_cast<std::size_t>(req->id)];
          ++out.direct_attempts;
          out.error = e.what();
        }
      }
    }

    if (!batch_served) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        serve_one(*live[i], *feats[i],
                  result.responses[static_cast<std::size_t>(live[i]->id)],
                  t_start);
      }
    }

    admit_until(clock);  // arrivals that landed during execution
  }

  dev.set_fault_context("");
  result.report = summarize(result.responses);
  result.report.breaker_opens = breaker.opens();
  if (cache_ != nullptr) {
    const CacheStats& cs = cache_->stats();
    result.report.cache_policy = cache_policy_name(cache_->options().policy);
    result.report.cache_pinned_rows = cs.pinned_rows;
    result.report.cache_hit_rows = cs.hit_rows;
    result.report.cache_miss_rows = cs.miss_rows;
    result.report.cache_hit_ratio = cs.hit_ratio();
    result.report.cache_gather_ms = cs.gather_ms;
  }
  return result;
}

SloReport summarize(const std::vector<Response>& responses) {
  SloReport rep;
  rep.total = static_cast<std::int64_t>(responses.size());

  std::vector<double> latencies;
  double makespan = 0;
  double latency_sum = 0;
  std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto fnv = [&digest](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      digest ^= p[i];
      digest *= 1099511628211ULL;
    }
  };

  for (const Response& r : responses) {
    switch (r.outcome) {
      case Outcome::kOk: ++rep.ok; break;
      case Outcome::kRetried: ++rep.retried; break;
      case Outcome::kDegraded: ++rep.degraded; break;
      case Outcome::kRejected: ++rep.rejected; break;
      case Outcome::kFailed: ++rep.failed; break;
    }
    rep.direct_attempts += r.direct_attempts;
    rep.fallback_attempts += r.fallback_attempts;
    if (r.deadline_missed) ++rep.deadline_misses;
    if (r.outcome != Outcome::kRejected) {
      makespan = std::max(makespan, r.arrival_ms + r.latency_ms);
    }
    if (r.served()) {
      latencies.push_back(r.latency_ms);
      latency_sum += r.latency_ms;
      fnv(&r.id, sizeof(r.id));
      fnv(r.output.data(), r.output.size() * sizeof(float));
    }
  }
  rep.unaccounted =
      rep.total - (rep.ok + rep.retried + rep.degraded + rep.rejected +
                   rep.failed);
  rep.output_digest = digest;

  const auto served = static_cast<std::int64_t>(latencies.size());
  if (served > 0) {
    std::sort(latencies.begin(), latencies.end());
    const auto nearest_rank = [&](double q) {
      const auto idx = static_cast<std::int64_t>(
          std::ceil(q * static_cast<double>(served))) - 1;
      return latencies[static_cast<std::size_t>(
          std::clamp<std::int64_t>(idx, 0, served - 1))];
    };
    rep.p50_ms = nearest_rank(0.50);
    rep.p99_ms = nearest_rank(0.99);
    rep.mean_ms = latency_sum / static_cast<double>(served);
    rep.max_ms = latencies.back();
  }
  rep.makespan_ms = makespan;
  if (makespan > 0) {
    rep.throughput_rps = static_cast<double>(served) / makespan * 1000.0;
  }
  if (rep.total > 0) {
    rep.error_rate = static_cast<double>(rep.failed) / rep.total;
    rep.degradation_rate = static_cast<double>(rep.degraded) / rep.total;
    rep.rejection_rate = static_cast<double>(rep.rejected) / rep.total;
  }
  return rep;
}

report::Json SloReport::to_json() const {
  report::Json j = report::Json::object();
  j.set("total", total);
  j.set("ok", ok);
  j.set("retried", retried);
  j.set("degraded", degraded);
  j.set("rejected", rejected);
  j.set("failed", failed);
  j.set("unaccounted", unaccounted);
  j.set("p50_ms", p50_ms);
  j.set("p99_ms", p99_ms);
  j.set("mean_ms", mean_ms);
  j.set("max_ms", max_ms);
  j.set("makespan_ms", makespan_ms);
  j.set("throughput_rps", throughput_rps);
  j.set("error_rate", error_rate);
  j.set("degradation_rate", degradation_rate);
  j.set("rejection_rate", rejection_rate);
  j.set("deadline_misses", deadline_misses);
  j.set("direct_attempts", direct_attempts);
  j.set("fallback_attempts", fallback_attempts);
  j.set("breaker_opens", breaker_opens);
  j.set("cache_policy", cache_policy);
  j.set("cache_pinned_rows", cache_pinned_rows);
  j.set("cache_hit_rows", cache_hit_rows);
  j.set("cache_miss_rows", cache_miss_rows);
  j.set("cache_hit_ratio", cache_hit_ratio);
  j.set("cache_gather_ms", cache_gather_ms);
  j.set("output_digest", std::to_string(output_digest));
  return j;
}

}  // namespace tlp::serve
