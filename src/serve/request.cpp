#include "serve/request.hpp"

namespace tlp::serve {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kRetried:
      return "retried";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace tlp::serve
