// FGNN-style pre-sampling feature cache for the serving tier (DESIGN.md §12,
// ROADMAP item 3).
//
// The GNN inference bottleneck is the irregular per-request feature gather:
// every ego subgraph pulls a few hundred scattered rows out of the global
// feature matrix. Under Zipf query popularity those rows are heavily skewed,
// so a small pinned cache of the hot rows removes most of the traffic. The
// cache estimates hotness the way FGNN does — not from degree alone, but by
// *pre-sampling*: it replays K seeded warm-up rounds of the exact query
// popularity law the live traffic uses (serve/traffic.hpp's QueryStream +
// k-hop ego sampler), counts how often each vertex's row is gathered, and
// pins the top-C rows in a dedicated device-memory region.
//
// Bit-identity: the pinned region is uploaded from the same global feature
// matrix the uncached gather reads, and gather() copies whole rows from one
// source or the other. Served rows are therefore byte-identical to the
// uncached path — only the *accounting* (hit/miss split, simulated gather
// time) changes. The storm bit-identity tests assert exactly this.
//
// Accounting: a server without a cache treats the gather as free (it
// happened at traffic-generation time). Attaching a cache makes the gather
// cost visible: miss rows are charged at the slow scattered host-transfer
// bandwidth, hit rows at the fast coalesced device bandwidth, and the byte
// split lands in CacheStats / sim::Metrics (bytes_cache_hit/miss). The
// `none` policy is a cache with zero pinned rows — it pays the full miss
// cost, making it the comparable baseline of the serve_cache bench sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "serve/traffic.hpp"
#include "sim/counters.hpp"
#include "sim/device.hpp"
#include "tensor/tensor.hpp"

namespace tlp::serve {

/// Row-pinning policy of the cache.
enum class CachePolicy {
  kNone,       ///< pin nothing: every gather row pays the miss path
  kDegree,     ///< pin the top-C vertices by in-degree (static heuristic)
  kPresample,  ///< pin the top-C by sampled gather frequency (FGNN-style)
};

[[nodiscard]] const char* cache_policy_name(CachePolicy policy);
/// Parses "none" / "degree" / "presample"; TLP_CHECK-fails on anything else.
[[nodiscard]] CachePolicy cache_policy_from_name(const std::string& name);

struct FeatureCacheOptions {
  CachePolicy policy = CachePolicy::kPresample;
  /// Fraction of |V| whose rows are pinned (the C of top-C), clamped to
  /// [0, 1]. The presample policy pins at most the vertices its warm-up
  /// actually touched.
  double cache_ratio = 0.10;
  /// Warm-up rounds (the K of K-round pre-sampling) and queries drawn per
  /// round. Each query replays the live popularity law and expands the same
  /// k-hop ego the live request would, so sampled frequency estimates true
  /// gather frequency.
  int warmup_rounds = 3;
  std::int64_t warmup_queries_per_round = 256;
  /// Seed of the warm-up draw stream. Independent of the traffic seed (which
  /// fixes the popularity permutation itself), so warm-up samples the law
  /// without replaying the literal request sequence.
  std::uint64_t warmup_seed = 0x5eedCac4eULL;
  /// Simulated bandwidth of a missed row: scattered single-row pulls over
  /// the host link (PCIe 3.0 x16 is ~12 GB/s streaming; random 64–512 B
  /// rows derate it heavily). Unit: GB/s.
  double miss_gb_per_s = 8.0;
  /// Simulated bandwidth of a hit row: coalesced reads of the pinned region
  /// in device memory (V100 HBM2 ~900 GB/s). Unit: GB/s.
  double hit_gb_per_s = 900.0;
};

/// Running totals over every gather() since construction / reset_stats().
/// All counts are simulated-deterministic: same seed, same totals.
struct CacheStats {
  /// Rows pinned at warm-up. CUDA analogue: the cache region's
  /// `cudaMalloc` extent / row size. Unit: rows.
  std::int64_t pinned_rows = 0;
  /// Bytes of the pinned device region. Unit: bytes.
  std::int64_t pinned_bytes = 0;
  /// Gathered rows served from the pinned region. Nsight Compute analogue:
  /// device-local reads (`dram__bytes_read.sum` on the cache region).
  /// Unit: rows.
  std::int64_t hit_rows = 0;
  /// Gathered rows that fell through to the global matrix. Nsight Systems
  /// analogue: H2D memcpy rows on the PCIe timeline. Unit: rows.
  std::int64_t miss_rows = 0;
  /// Byte split of the same traffic. Unit: bytes.
  std::int64_t bytes_hit = 0;
  std::int64_t bytes_miss = 0;
  /// Simulated time spent gathering (hit + miss charges). Unit: ms.
  double gather_ms = 0;

  /// hit_rows / (hit_rows + miss_rows); 0 when nothing was gathered.
  [[nodiscard]] double hit_ratio() const {
    const std::int64_t total = hit_rows + miss_rows;
    return total > 0 ? static_cast<double>(hit_rows) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// The cache itself. Owns a dedicated sim::Device for the pinned region —
/// engine devices are reset at every system run, so the region must live
/// elsewhere (exactly as a real deployment pins cache rows outside the
/// per-batch workspace). The region is allocated under the TLP_SITE label
/// "serve_feature_cache", so an AccessTrace attached to device() feeds the
/// tlpsan whole-trace passes (TLP-LIFE-007 lifetimes, TLP-REUSE-009 reuse).
class FeatureCache {
 public:
  /// Builds the cache: runs warm-up (presample policy), ranks vertices,
  /// uploads the top-C rows of `feat` into the pinned region. `traffic`
  /// supplies the popularity law (seed, zipf_alpha) and the ego shape
  /// (hops, max_ego_vertices) the warm-up replays; `feat` must outlive the
  /// cache (misses gather from it). `trace` (optional, not owned) is
  /// attached to the cache device *before* the region is allocated, so an
  /// interested tlpsan session sees the allocation event too — attaching to
  /// device() after construction would leave the region's provenance
  /// untracked and the whole-trace passes would skip it.
  FeatureCache(const graph::Csr& g, const tensor::Tensor& feat,
               const TrafficOptions& traffic, const FeatureCacheOptions& opts,
               sim::AccessTrace* trace = nullptr);

  /// Gathers the feature rows of `ids` (global vertex ids) into `out`, one
  /// row per id in order — byte-identical to gather_rows(feat, ids). Splits
  /// rows into pinned-region hits and global-matrix misses, updates stats(),
  /// and returns the simulated gather charge in ms.
  double gather(const std::vector<graph::VertexId>& ids, tensor::Tensor& out);

  [[nodiscard]] bool is_pinned(graph::VertexId v) const {
    return slot_of_[static_cast<std::size_t>(v)] >= 0;
  }
  /// Pinned vertex ids in pin order (hottest first). Deterministic for a
  /// fixed (graph, traffic, options) triple — the warm-up determinism tests
  /// compare this set across rebuilds.
  [[nodiscard]] const std::vector<graph::VertexId>& pinned_vertices() const {
    return pinned_;
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; stats_restore_pins(); }

  /// Aggregate metrics of the cache device, with the hit/miss byte split
  /// folded into the bytes_cache_* fields — what the serve_cache bench
  /// records next to the SLO numbers.
  [[nodiscard]] sim::Metrics metrics() const;

  /// The dedicated device holding the pinned region; attach an AccessTrace
  /// here to make the region visible to tlpsan whole-trace passes.
  [[nodiscard]] sim::Device& device() { return dev_; }

  [[nodiscard]] const FeatureCacheOptions& options() const { return opts_; }

 private:
  void stats_restore_pins();

  const tensor::Tensor* feat_;  ///< global matrix, not owned
  FeatureCacheOptions opts_;
  sim::Device dev_;
  sim::DevPtr<float> region_{};        ///< pinned rows, slot-major
  std::vector<std::int32_t> slot_of_;  ///< vertex -> pinned slot, -1 = miss
  std::vector<graph::VertexId> pinned_;
  CacheStats stats_;
};

}  // namespace tlp::serve
