// Seed-deterministic traffic synthesis for the serving runtime.
//
// Models the request stream of a production GNN deployment (ROADMAP item 3):
// arrivals follow a Poisson process or an on/off bursty process, query
// vertices follow a power-law (Zipf) popularity over a seeded permutation of
// the vertex set (hot vertices are *random* vertices, not low ids), and each
// request carries the k-hop ego subgraph + gathered features it needs. Every
// draw comes from one seeded common/rng stream, so a (graph, options) pair
// always produces a byte-identical request sequence — the property the
// serving-determinism fuzz oracle and the fault-storm bit-identity checks
// are built on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "serve/request.hpp"
#include "tensor/tensor.hpp"

namespace tlp::serve {

enum class ArrivalProcess { kPoisson, kBursty };

struct TrafficOptions {
  std::int64_t num_requests = 256;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Mean inter-arrival gap of the Poisson process (and of the in-burst
  /// phase of the bursty process, divided by burst_speedup).
  double mean_interarrival_ms = 1.0;
  /// Bursty process: `burst_len` requests arrive back-to-back at
  /// mean/burst_speedup spacing, then the source idles for gap_ms.
  std::int64_t burst_len = 32;
  double burst_speedup = 8.0;
  double gap_ms = 20.0;
  /// Zipf popularity exponent over the permuted vertex set; 0 = uniform.
  double zipf_alpha = 0.8;
  /// Ego-subgraph radius in in-edge hops.
  int hops = 2;
  /// Cap on ego-subgraph vertices: BFS stops admitting new frontier vertices
  /// beyond this (closer hops win; within a hop, row order wins). Bounds the
  /// per-request device footprint on hub queries.
  std::int64_t max_ego_vertices = 512;
  /// Relative deadline applied to every request; <= 0 disables deadlines.
  double deadline_ms = 0;
  std::uint64_t seed = 42;
};

/// Ego subgraph around one query vertex: the <= `hops`-step in-neighborhood
/// (capped at `max_vertices`, closer vertices first), induced and relabeled
/// in global id order. Exposed for tests and direct single-request use.
graph::LocalGraph ego_subgraph(const graph::Csr& g, graph::VertexId query,
                               int hops, std::int64_t max_vertices);

/// The query-popularity law of the traffic stream, factored out of
/// generate_traffic so the pre-sampling feature cache (feature_cache.hpp)
/// can replay the *same* law during its warm-up rounds. Holds the seeded
/// rank-to-vertex permutation plus the Zipf CDF; drawing is stateless over a
/// caller-supplied Rng. Construction consumes exactly one Fisher–Yates pass
/// from `rng` and draw() exactly one variate, so generate_traffic's draw
/// sequence — and therefore every checked-in traffic seed — is unchanged by
/// the refactor.
class QueryStream {
 public:
  /// Draws the rank->vertex permutation from `rng`; `zipf_alpha == 0` makes
  /// draws uniform over the vertex set. `num_vertices` may be 0 (an empty
  /// stream: zero rng draws consumed, only draw() is then invalid) or 1
  /// (every draw returns vertex 0 after consuming its one variate, so seeded
  /// draw sequences stay aligned with larger graphs).
  QueryStream(graph::VertexId num_vertices, double zipf_alpha, Rng& rng);

  /// One popularity-weighted query vertex (consumes one variate of `rng`).
  /// Fails a check on an empty stream — never an empty-range rng draw.
  [[nodiscard]] graph::VertexId draw(Rng& rng) const;

  [[nodiscard]] graph::VertexId num_vertices() const {
    return static_cast<graph::VertexId>(rank_to_vertex_.size());
  }

 private:
  std::vector<graph::VertexId> rank_to_vertex_;
  std::vector<double> cdf_;  ///< cumulative P(rank); empty = uniform
};

/// Dense gather of the feature rows of `ids` (global vertex ids, one output
/// row per id, in order) — the uncached per-request gather path. The cached
/// path (FeatureCache::gather) must produce byte-identical output.
tensor::Tensor gather_rows(const tensor::Tensor& feat,
                           const std::vector<graph::VertexId>& ids);

/// Generates the full request sequence. `feat` is the global feature matrix
/// (one row per vertex of `g`); each request gathers its ego rows from it.
std::vector<Request> generate_traffic(const graph::Csr& g,
                                      const tensor::Tensor& feat,
                                      const TrafficOptions& opts);

}  // namespace tlp::serve
