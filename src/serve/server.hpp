// Resilient serving runtime (DESIGN.md §11): request-driven inference over
// the Engine/System stack with dynamic batching, bounded-queue admission
// control, deadline accounting, and a fault-tolerance ladder — all in
// simulated time, so a (traffic, options) pair replays byte-identically.
//
// The loop, per batch:
//   1. admission — arrivals join a bounded FIFO queue; a full queue sheds the
//      request (Outcome::kRejected) at its arrival instant.
//   2. batching  — the server waits up to batch_window_ms (or until max_batch
//      requests are queued) and merges the batch's ego subgraphs into one
//      block-diagonal disjoint union. Disjoint blocks keep every per-vertex
//      accumulation order and every GCN norm equal to the single-request run,
//      so a request's served row is bit-identical no matter which batch it
//      landed in — the property the storm/fault-free comparison tests assert.
//   3. execution — direct batched attempt; on DeviceError the batch unrolls
//      into the per-request ladder: direct retries with exponential backoff +
//      seeded jitter (gated by a circuit breaker), then the bit-identical
//      partitioned fallback (doubling part count), then Outcome::kFailed.
//   4. accounting — every response carries latency/queue time/attempt counts;
//      the SloReport totals are checked to cover 100% of traffic.
//
// Fault storms are armed deterministically: StormEvent re-arms the device's
// FaultPlan (Device::arm_faults) right before the batch containing the named
// request executes, so the same storm schedule always hits the same work.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "report/json.hpp"
#include "serve/policy.hpp"
#include "serve/request.hpp"
#include "serve/traffic.hpp"

namespace tlp::serve {

class FeatureCache;

/// Re-arms the device fault plan just before the batch whose first request id
/// is >= `at_request` executes. An empty FaultPlan ends the storm.
struct StormEvent {
  std::int64_t at_request = 0;
  sim::FaultPlan plan;
};

struct ServerOptions {
  /// Admission queue bound; arrivals beyond it are shed as kRejected.
  std::int64_t queue_capacity = 64;
  /// Requests merged into one device batch.
  int max_batch = 8;
  /// How long the server holds an under-full batch open for more arrivals.
  double batch_window_ms = 2.0;
  RetryPolicy retry;
  FallbackPolicy fallback;
  BreakerPolicy breaker;
  /// Device + TLPGNN configuration. The server owns the retry/degrade ladder,
  /// so Engine's internal DegradePolicy is forced off.
  EngineOptions engine;
  /// Simulated charge for an attempt that dies before producing kernel time.
  double failed_attempt_floor_ms = 0.05;
  /// Seed of the backoff-jitter stream (independent of the traffic seed).
  std::uint64_t jitter_seed = 7;
  /// Deterministic fault-storm schedule, sorted by at_request.
  std::vector<StormEvent> storms;
};

/// Aggregated SLO metrics over one run. All times are simulated, so the JSON
/// form is byte-identical across replays of the same configuration.
struct SloReport {
  std::int64_t total = 0;
  std::int64_t ok = 0;
  std::int64_t retried = 0;
  std::int64_t degraded = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  /// total - (ok+retried+degraded+rejected+failed); asserted zero.
  std::int64_t unaccounted = 0;

  double p50_ms = 0;   ///< served-request latency percentiles (nearest rank)
  double p99_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
  double makespan_ms = 0;       ///< first arrival -> last completion
  double throughput_rps = 0;    ///< served requests per simulated second

  double error_rate = 0;        ///< failed / total
  double degradation_rate = 0;  ///< degraded / total
  double rejection_rate = 0;    ///< rejected / total
  std::int64_t deadline_misses = 0;

  std::int64_t direct_attempts = 0;
  std::int64_t fallback_attempts = 0;
  std::int64_t breaker_opens = 0;

  // --- feature cache (DESIGN.md §12) ---------------------------------------
  // All zeros with policy "off" when the server has no FeatureCache
  // attached; otherwise Server::run folds the cache's CacheStats in after
  // summarize() (which only sees responses).
  std::string cache_policy = "off";
  std::int64_t cache_pinned_rows = 0;
  std::int64_t cache_hit_rows = 0;   ///< gather rows served from the region
  std::int64_t cache_miss_rows = 0;  ///< gather rows from the global matrix
  double cache_hit_ratio = 0;        ///< hit / (hit + miss); 0 when empty
  double cache_gather_ms = 0;        ///< simulated total gather charge

  /// FNV-1a over (id, served output bytes) in id order — one number that
  /// changes iff any served embedding changes bitwise.
  std::uint64_t output_digest = 0;

  [[nodiscard]] report::Json to_json() const;
};

struct ServeResult {
  std::vector<Response> responses;  ///< one per request, id order
  SloReport report;
};

class Server {
 public:
  /// `cache` (optional, not owned, must outlive the server) activates the
  /// pre-sampling feature cache: every executed request's rows are
  /// re-gathered through it — hits from the pinned region, misses from the
  /// global matrix — and the simulated gather charge joins the clock. The
  /// gathered bytes are identical to Request::feat, so served rows stay
  /// bit-identical to a cacheless server; only latencies and the cache
  /// accounting in SloReport change. No cache = the legacy free-gather
  /// behavior, byte-for-byte.
  explicit Server(const ServerOptions& opts, FeatureCache* cache = nullptr);

  /// Serves the full traffic sequence (must be arrival-ordered, ids 0..n-1 as
  /// generate_traffic produces) and returns per-request responses + the SLO
  /// report. `spec` must not carry edge weights (they are defined in global
  /// edge order, which a per-request subgraph does not preserve).
  ServeResult run(const std::vector<Request>& traffic,
                  const models::ConvSpec& spec);

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] FeatureCache* cache() { return cache_; }
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  ServerOptions opts_;
  Engine engine_;
  /// Fallback path system — run_partitioned needs direct system access.
  systems::TlpgnnSystem fallback_system_;
  FeatureCache* cache_ = nullptr;  ///< optional, not owned
};

/// Builds the SLO aggregate from a finished response set. Exposed for tests.
SloReport summarize(const std::vector<Response>& responses);

}  // namespace tlp::serve
