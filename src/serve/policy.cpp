#include "serve/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tlp::serve {

double RetryPolicy::delay_ms(int retry, Rng& rng) const {
  TLP_CHECK_GE(retry, 0);
  const double nominal =
      base_delay_ms * std::pow(multiplier, static_cast<double>(retry));
  const double jitter = std::clamp(jitter_frac, 0.0, 1.0);
  // One rng draw regardless of jitter so the stream stays aligned across
  // configurations.
  const double u = rng.next_double();
  return nominal * (1.0 - jitter + 2.0 * jitter * u);
}

bool CircuitBreaker::allow(double now_ms) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now_ms - opened_at_ms_ >= policy_.cooldown_ms) {
        state_ = State::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  state_ = State::kClosed;
}

void CircuitBreaker::record_failure(double now_ms) {
  if (state_ == State::kHalfOpen) {
    // The trial failed: straight back to open, fresh cooldown.
    state_ = State::kOpen;
    opened_at_ms_ = now_ms;
    ++opens_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ms_ = now_ms;
    ++opens_;
  }
}

}  // namespace tlp::serve
