// Serving-request model: one inference request, its subgraph payload, and
// the per-request outcome taxonomy (DESIGN.md §11).
//
// A request asks for the embedding of one *query vertex* and carries the
// k-hop ego subgraph that influences it — the data a sampled-mini-batch
// serving tier ships to the device. Every request ends in exactly one of
// five outcomes, so an SLO report always accounts for 100% of traffic:
//
//   Ok        served by the direct path on the first attempt
//   Retried   served by the direct path after >= 1 failed attempt
//   Degraded  served by the partitioned fallback path (bit-identical output)
//   Rejected  never executed: shed at admission (queue full) or expired in
//             the queue before execution started
//   Failed    executed but every direct retry and fallback attempt failed
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/subgraph.hpp"
#include "tensor/tensor.hpp"

namespace tlp::serve {

enum class Outcome { kOk, kRetried, kDegraded, kRejected, kFailed };

inline constexpr Outcome kAllOutcomes[] = {
    Outcome::kOk, Outcome::kRetried, Outcome::kDegraded, Outcome::kRejected,
    Outcome::kFailed};

const char* outcome_name(Outcome o);

/// One inference request, fully materialized by the traffic generator.
struct Request {
  std::int64_t id = 0;     ///< dense 0..n-1, arrival order (trace-span id)
  double arrival_ms = 0;   ///< simulated arrival time
  double deadline_ms = 0;  ///< absolute simulated deadline; <= 0 = none
  graph::VertexId query = 0;        ///< global id of the query vertex
  graph::VertexId query_local = 0;  ///< query's row in the ego subgraph
  /// k-hop ego subgraph around `query` (in-edge direction). Local vertex
  /// order is the global id order of the kept set, so a given (graph, query,
  /// hops, cap) always produces the identical subgraph.
  graph::LocalGraph ego;
  /// Gathered feature rows, ego-local order. With a FeatureCache attached
  /// the server re-gathers these bytes through the cache at serve time (the
  /// accounted path); this copy is the free pre-gathered legacy payload.
  tensor::Tensor feat;
};

/// What happened to one request. `output` is the served embedding of the
/// query vertex — empty unless the outcome is Ok/Retried/Degraded.
struct Response {
  std::int64_t id = 0;
  Outcome outcome = Outcome::kFailed;
  double arrival_ms = 0;  ///< copied from the request (for SLO accounting)
  double latency_ms = 0;  ///< completion - arrival; 0 for Rejected
  double queue_ms = 0;    ///< arrival -> execution start; 0 for Rejected
  int direct_attempts = 0;    ///< batched + per-request direct executions
  int fallback_attempts = 0;  ///< partitioned-ladder executions
  int partitions = 0;  ///< parts a Degraded success ran over
  bool deadline_missed = false;
  std::string error;  ///< last failure (Failed) or rejection reason
  std::vector<float> output;

  [[nodiscard]] bool served() const {
    return outcome == Outcome::kOk || outcome == Outcome::kRetried ||
           outcome == Outcome::kDegraded;
  }
};

}  // namespace tlp::serve
