#include "serve/feature_cache.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/check.hpp"
#include "sim/trace.hpp"

namespace tlp::serve {

namespace {

using graph::VertexId;

/// ms to move `bytes` at `gb_per_s` (1 GB/s == 1e6 bytes/ms).
double transfer_ms(std::int64_t bytes, double gb_per_s) {
  return static_cast<double>(bytes) / (gb_per_s * 1e6);
}

/// Vertex ids ordered by (score desc, id asc) — the deterministic ranking
/// both policies pin from.
std::vector<VertexId> rank_by_score(const std::vector<std::int64_t>& score) {
  std::vector<VertexId> order(score.size());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&score](VertexId a, VertexId b) {
                     return score[static_cast<std::size_t>(a)] >
                            score[static_cast<std::size_t>(b)];
                   });
  return order;
}

}  // namespace

const char* cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone: return "none";
    case CachePolicy::kDegree: return "degree";
    case CachePolicy::kPresample: return "presample";
  }
  return "?";
}

CachePolicy cache_policy_from_name(const std::string& name) {
  if (name == "none") return CachePolicy::kNone;
  if (name == "degree") return CachePolicy::kDegree;
  if (name == "presample") return CachePolicy::kPresample;
  TLP_CHECK_MSG(false, "unknown cache policy '"
                           << name << "' (want presample|degree|none)");
  return CachePolicy::kNone;
}

FeatureCache::FeatureCache(const graph::Csr& g, const tensor::Tensor& feat,
                           const TrafficOptions& traffic,
                           const FeatureCacheOptions& opts,
                           sim::AccessTrace* trace)
    : feat_(&feat), opts_(opts) {
  if (trace != nullptr) dev_.attach_trace(trace);
  TLP_CHECK_EQ(feat.rows(), g.num_vertices());
  TLP_CHECK_MSG(opts.cache_ratio >= 0 && opts.cache_ratio <= 1,
                "cache_ratio must be in [0, 1], got " << opts.cache_ratio);
  TLP_CHECK_GE(opts.warmup_rounds, 0);
  TLP_CHECK_GE(opts.warmup_queries_per_round, 0);
  TLP_CHECK_GT(opts.miss_gb_per_s, 0);
  TLP_CHECK_GT(opts.hit_gb_per_s, 0);

  const VertexId n = g.num_vertices();
  slot_of_.assign(static_cast<std::size_t>(n), -1);
  const auto budget = static_cast<std::int64_t>(
      opts.cache_ratio * static_cast<double>(n) + 0.5);

  // Score every vertex under the chosen policy, then pin the top `budget`.
  std::vector<std::int64_t> score(static_cast<std::size_t>(n), 0);
  bool drop_zero_scores = false;
  switch (opts_.policy) {
    case CachePolicy::kNone:
      break;  // all scores zero, nothing pinned
    case CachePolicy::kDegree:
      // Static heuristic: how often a vertex appears in neighbor lists —
      // exactly the count of egos one expansion step can pull it into.
      for (VertexId v = 0; v < n; ++v) {
        for (const VertexId u : g.neighbors(v)) {
          ++score[static_cast<std::size_t>(u)];
        }
      }
      break;
    case CachePolicy::kPresample: {
      // K warm-up rounds over the live popularity law: same permutation as
      // the traffic seed (QueryStream construction), independent draw
      // stream (warmup_seed), same ego shape — sampled frequency is an
      // unbiased estimate of true per-row gather frequency.
      Rng perm_rng(traffic.seed);
      const QueryStream stream(n, traffic.zipf_alpha, perm_rng);
      Rng warm(opts.warmup_seed);
      // n == 0 leaves the stream empty (draw() would fail loudly) and
      // warmup_rounds == 0 (`--cache-rounds 0`) is a valid configuration:
      // both leave every score zero, so drop_zero_scores pins nothing and
      // the cache degrades to the uncached gather path.
      for (int round = 0; n > 0 && round < opts.warmup_rounds; ++round) {
        for (std::int64_t q = 0; q < opts.warmup_queries_per_round; ++q) {
          const VertexId query = stream.draw(warm);
          const graph::LocalGraph ego = ego_subgraph(
              g, query, traffic.hops, traffic.max_ego_vertices);
          for (const VertexId u : ego.to_global) {
            ++score[static_cast<std::size_t>(u)];
          }
        }
      }
      // A row warm-up never touched has estimated frequency zero; pinning
      // it would waste region bytes on rows the law says are cold.
      drop_zero_scores = true;
      break;
    }
  }

  if (opts_.policy != CachePolicy::kNone && budget > 0) {
    const std::vector<VertexId> order = rank_by_score(score);
    pinned_.reserve(static_cast<std::size_t>(budget));
    for (const VertexId v : order) {
      if (static_cast<std::int64_t>(pinned_.size()) >= budget) break;
      if (drop_zero_scores && score[static_cast<std::size_t>(v)] == 0) break;
      pinned_.push_back(v);
    }
  }

  if (!pinned_.empty()) {
    // Pin order is slot order (hottest row first): one contiguous upload,
    // labeled so tlpsan whole-trace passes can name the region.
    const std::int64_t cols = feat.cols();
    std::vector<float> rows(pinned_.size() * static_cast<std::size_t>(cols));
    for (std::size_t s = 0; s < pinned_.size(); ++s) {
      slot_of_[static_cast<std::size_t>(pinned_[s])] =
          static_cast<std::int32_t>(s);
      const auto src = feat.row(pinned_[s]);
      std::copy(src.begin(), src.end(),
                rows.begin() + static_cast<std::ptrdiff_t>(
                                   s * static_cast<std::size_t>(cols)));
    }
    region_ = dev_.upload<float>(std::span<const float>(rows),
                                 TLP_SITE("serve_feature_cache"));
  }
  stats_restore_pins();
}

void FeatureCache::stats_restore_pins() {
  stats_.pinned_rows = static_cast<std::int64_t>(pinned_.size());
  stats_.pinned_bytes = stats_.pinned_rows * feat_->cols() *
                        static_cast<std::int64_t>(sizeof(float));
}

double FeatureCache::gather(const std::vector<VertexId>& ids,
                            tensor::Tensor& out) {
  const std::int64_t cols = feat_->cols();
  out = tensor::Tensor(static_cast<VertexId>(ids.size()), cols);

  std::int64_t hits = 0;
  // One const view per gather: the trace (when attached) records a host
  // read of the region — the D2H touch the reuse/lifetime passes consume.
  sim::ArenaView<const float> pinned;
  if (!region_.is_null()) {
    const sim::DeviceMemory& mem = dev_.mem();
    pinned = mem.view(region_);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int32_t slot = slot_of_[static_cast<std::size_t>(ids[i])];
    auto dst = out.row(static_cast<VertexId>(i));
    if (slot >= 0) {
      ++hits;
      const float* src =
          pinned.data() + static_cast<std::ptrdiff_t>(slot) * cols;
      std::copy(src, src + cols, dst.begin());
    } else {
      const auto src = feat_->row(ids[i]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }

  const auto misses = static_cast<std::int64_t>(ids.size()) - hits;
  const std::int64_t row_bytes = cols * static_cast<std::int64_t>(sizeof(float));
  const std::int64_t bytes_hit = hits * row_bytes;
  const std::int64_t bytes_miss = misses * row_bytes;
  const double charge_ms = transfer_ms(bytes_hit, opts_.hit_gb_per_s) +
                           transfer_ms(bytes_miss, opts_.miss_gb_per_s);

  stats_.hit_rows += hits;
  stats_.miss_rows += misses;
  stats_.bytes_hit += bytes_hit;
  stats_.bytes_miss += bytes_miss;
  stats_.gather_ms += charge_ms;
  return charge_ms;
}

sim::Metrics FeatureCache::metrics() const {
  sim::Metrics m = dev_.metrics();
  m.bytes_cache_hit = static_cast<double>(stats_.bytes_hit);
  m.bytes_cache_miss = static_cast<double>(stats_.bytes_miss);
  return m;
}

}  // namespace tlp::serve
