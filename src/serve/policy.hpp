// Fault-tolerance policies of the serving runtime (DESIGN.md §11).
//
// Three cooperating pieces, all operating in *simulated* time so every run
// is deterministic:
//  - RetryPolicy: exponential backoff with seeded jitter between direct
//    re-attempts of a failed request.
//  - FallbackPolicy: when the direct ladder is exhausted, degrade to the
//    bit-identical partitioned path (systems/partitioned.*), doubling the
//    part count per attempt.
//  - CircuitBreaker: counts consecutive direct-path failures; after the
//    threshold it *opens* and the server routes requests straight to the
//    fallback (no doomed direct attempts) until a cooldown elapses, then a
//    half-open trial decides whether to close again. Classic
//    closed -> open -> half-open -> {closed | open} state machine.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace tlp::serve {

struct RetryPolicy {
  /// Direct re-attempts after the first failure (total direct attempts is
  /// 1 + max_retries).
  int max_retries = 2;
  double base_delay_ms = 0.5;  ///< backoff before the first retry
  double multiplier = 2.0;     ///< per-retry exponential growth
  /// Uniform jitter as a fraction of the nominal delay: the actual delay is
  /// nominal * (1 - jitter + 2 * jitter * u), u ~ U[0,1) from a seeded rng.
  double jitter_frac = 0.2;

  /// Simulated backoff before retry number `retry` (0-based).
  [[nodiscard]] double delay_ms(int retry, Rng& rng) const;
};

struct FallbackPolicy {
  bool enabled = true;
  int initial_partitions = 2;
  /// Partitioned attempts (part count doubles per attempt).
  int max_attempts = 2;
};

struct BreakerPolicy {
  /// Consecutive direct-path failures that open the circuit.
  int failure_threshold = 4;
  /// Simulated time the circuit stays open before a half-open trial.
  double cooldown_ms = 50.0;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerPolicy& policy) : policy_(policy) {}

  /// Whether a direct attempt may run at simulated time `now_ms`. An open
  /// circuit whose cooldown has elapsed transitions to half-open (and
  /// permits exactly the caller's trial).
  [[nodiscard]] bool allow(double now_ms);

  void record_success();
  void record_failure(double now_ms);

  [[nodiscard]] State state() const { return state_; }
  /// Times the breaker transitioned closed/half-open -> open.
  [[nodiscard]] std::int64_t opens() const { return opens_; }

 private:
  BreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  double opened_at_ms_ = 0;
  std::int64_t opens_ = 0;
};

}  // namespace tlp::serve
