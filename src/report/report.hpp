// tlpbench result model: the versioned JSON schema every benchmark binary
// serializes into (DESIGN.md §9).
//
// One *record* is a single measured configuration — (section, dataset,
// variant) — holding a flat map of named metric values. One *BenchResult* is
// all records one bench binary produced plus its effective config. A *Report*
// merges the per-bench results of one suite run with schema + provenance.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "report/json.hpp"

namespace tlp::report {

/// Schema identifier written into every document; bump when the layout of
/// records or the meaning of a metric changes (see DESIGN.md §9 for the
/// update protocol).
inline constexpr const char* kSchema = "tlpbench-v1";

/// One measured configuration. `section` groups records within a bench (the
/// model name for multi-model benches, the sweep name for ablation benches;
/// empty when the bench has a single table). `variant` is the column under
/// comparison — a system name ("pull"), a stage ("+cache"), or a swept
/// parameter value ("blocks=8").
struct Record {
  std::string section;
  std::string dataset;
  std::string variant;
  /// Insertion-ordered metric name -> value pairs.
  std::vector<std::pair<std::string, double>> values;

  Record& value(const std::string& name, double v);
  [[nodiscard]] std::optional<double> get(const std::string& name) const;

  [[nodiscard]] Json to_json() const;
  static Record from_json(const Json& j);
};

/// All records one bench binary emitted, with the config that produced them.
struct BenchResult {
  std::string name;   ///< short bench id: "table1", "fig9", "tuning", ...
  std::string title;  ///< one-line human description
  Json config = Json::object();  ///< effective max_edges/feature/seed/full
  std::vector<Record> records;

  [[nodiscard]] Json to_json() const;
  static BenchResult from_json(const Json& j);
};

/// A full suite run: per-bench results plus provenance. The `git` field holds
/// the commit the results were generated at ("unknown" outside a checkout);
/// no wall-clock timestamp is stored so that reruns are byte-identical.
struct Report {
  std::string schema = kSchema;
  std::uint64_t seed = 42;
  std::string git = "unknown";
  std::vector<BenchResult> benches;

  [[nodiscard]] const BenchResult* find_bench(const std::string& name) const;

  /// Records of `bench` matching the given selector fields; empty strings
  /// match everything.
  [[nodiscard]] std::vector<const Record*> select(
      const std::string& bench, const std::string& section,
      const std::string& dataset, const std::string& variant) const;

  /// The single value at (bench, section, dataset, variant, metric), if any.
  [[nodiscard]] std::optional<double> value(const std::string& bench,
                                            const std::string& section,
                                            const std::string& dataset,
                                            const std::string& variant,
                                            const std::string& metric) const;

  [[nodiscard]] Json to_json() const;
  /// Parses and validates the schema tag; throws JsonError on mismatch.
  static Report from_json(const Json& j);
};

}  // namespace tlp::report
