// Renders EXPERIMENTS.md from a tlpbench Report (DESIGN.md §9).
//
// The document is *derived*: paper-side numbers and deviation commentary are
// fixed text owned by this generator, every measured number is interpolated
// from the report, and a provenance footer records where the data came from.
// `tlpbench --render-md` writes it; CI fails when the committed file drifts
// from the generator output.
#pragma once

#include <string>
#include <vector>

#include "report/report.hpp"
#include "report/shapes.hpp"

namespace tlp::report {

/// Full EXPERIMENTS.md content for `report`, with the shape-assertion
/// outcomes summarized up front. Deterministic: same report + outcomes,
/// same bytes.
std::string render_experiments_md(const Report& report,
                                  const std::vector<ShapeOutcome>& shapes);

}  // namespace tlp::report
