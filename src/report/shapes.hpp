// Shape assertions: the regression language `bench/baseline.json` is written
// in (DESIGN.md §9).
//
// The reproduction target is the *shape* of each paper result — who wins, by
// roughly what factor, through which mechanism — not absolute milliseconds.
// Assertions therefore express orderings, tolerance bands and monotone
// trends over the records of a Report, and are expected to hold at any
// replica scale (the CI smoke suite runs them scaled down).
#pragma once

#include <string>
#include <vector>

#include "report/json.hpp"
#include "report/report.hpp"

namespace tlp::report {

/// Selects records within one bench. Empty (or "*") section/dataset/variant
/// fields are wildcards; wildcard section/dataset expand into a for-all over
/// every combination present in the bench's records.
struct Selector {
  std::string section;
  std::string dataset;
  std::string variant;
  std::string metric;  ///< falls back to the assertion-level metric

  static Selector from_json(const Json& j);
};

/// One checkable claim about a Report. `kind` is one of:
///   "less"       value(a) < value(b) * (1 + tol), for all expansions
///   "ratio_band" lo <= value(a) / value(b) <= hi
///   "band"       lo <= value(a) <= hi
///   "zero"       value(a) == 0 exactly
///   "increasing" values over `series` variants rise (v[i+1] >= v[i]*(1-tol))
///   "decreasing" values over `series` variants fall (v[i+1] <= v[i]*(1+tol))
struct ShapeAssertion {
  std::string id;      ///< stable name, reported on failure
  std::string bench;   ///< bench the records come from
  std::string kind;
  std::string metric;  ///< default metric for both selectors
  Selector a;
  Selector b;                        ///< comparison side (less / ratio_band)
  double lo = 0, hi = 0, tol = 0;
  std::vector<std::string> series;   ///< variant order (increasing/decreasing)
  std::string note;                  ///< the paper claim this encodes
  /// Optional timing-tier gate. "" (default) = always evaluated. "analytical"
  /// marks cross-tier validation assertions referencing `<variant>@analytical`
  /// twin records; they are evaluated only when the report actually contains
  /// such records for the bench (i.e. the suite ran with
  /// `--timing-tier analytical`), so mech-only runs skip rather than fail
  /// them — see applicable_assertions().
  std::string tier;

  static ShapeAssertion from_json(const Json& j);
};

struct ShapeOutcome {
  std::string id;
  bool passed = false;
  int comparisons = 0;  ///< expansions evaluated (0 itself is a failure)
  std::string detail;   ///< first failure, or a pass summary
  std::string note;
};

/// Parses the "assertions" array of a baseline document.
std::vector<ShapeAssertion> assertions_from_json(const Json& baseline);

/// Drops assertions whose tier gate is closed for this report: a
/// tier=="analytical" assertion is kept only when the named bench has at
/// least one record whose variant carries the "@analytical" suffix. All
/// other assertions pass through unchanged (a missing bench still fails
/// loudly in evaluate(), signalling schema drift).
std::vector<ShapeAssertion> applicable_assertions(
    const std::vector<ShapeAssertion>& assertions, const Report& report);

/// Evaluates one assertion against a report. Unknown kinds, empty
/// expansions, and missing metrics all fail (they signal schema drift).
ShapeOutcome evaluate(const ShapeAssertion& assertion, const Report& report);

/// Evaluates all assertions; order preserved.
std::vector<ShapeOutcome> evaluate_all(
    const std::vector<ShapeAssertion>& assertions, const Report& report);

}  // namespace tlp::report
