#include "report/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace tlp::report {

namespace {

bool is_wild(const std::string& s) { return s.empty() || s == "*"; }

std::string fmt(double v) { return json_number(v); }

/// Key describing one expansion of a wildcard selector.
struct Combo {
  std::string section;
  std::string dataset;

  bool operator<(const Combo& o) const {
    return section != o.section ? section < o.section : dataset < o.dataset;
  }
  [[nodiscard]] std::string label() const {
    if (section.empty() && dataset.empty()) return "(all)";
    if (section.empty()) return dataset;
    if (dataset.empty()) return section;
    return section + "/" + dataset;
  }
};

/// All (section, dataset) combinations the selector's wildcards expand into,
/// taken from the records that match its fixed fields.
std::vector<Combo> expand(const Report& rep, const std::string& bench,
                          const Selector& sel) {
  std::set<Combo> combos;
  for (const Record* r :
       rep.select(bench, is_wild(sel.section) ? "" : sel.section,
                  is_wild(sel.dataset) ? "" : sel.dataset,
                  is_wild(sel.variant) ? "" : sel.variant)) {
    combos.insert({is_wild(sel.section) ? r->section : sel.section,
                   is_wild(sel.dataset) ? r->dataset : sel.dataset});
  }
  return {combos.begin(), combos.end()};
}

/// Value of `sel`'s metric at one expansion point. The variant must be fixed
/// by now (either in the selector or substituted from a series).
std::optional<double> value_at(const Report& rep, const ShapeAssertion& as,
                               const Selector& sel, const Combo& combo,
                               const std::string& variant) {
  const std::string metric = sel.metric.empty() ? as.metric : sel.metric;
  return rep.value(as.bench, combo.section, combo.dataset, variant, metric);
}

ShapeOutcome outcome_fail(const ShapeAssertion& as, std::string detail) {
  return {as.id, false, 0, std::move(detail), as.note};
}

}  // namespace

Selector Selector::from_json(const Json& j) {
  Selector s;
  s.section = j.string_or("section", "");
  s.dataset = j.string_or("dataset", "");
  s.variant = j.string_or("variant", "");
  s.metric = j.string_or("metric", "");
  return s;
}

ShapeAssertion ShapeAssertion::from_json(const Json& j) {
  ShapeAssertion a;
  a.id = j.at("id").as_string();
  a.bench = j.at("bench").as_string();
  a.kind = j.at("kind").as_string();
  a.metric = j.string_or("metric", "");
  if (const Json* sa = j.find("a")) a.a = Selector::from_json(*sa);
  if (const Json* sb = j.find("b")) a.b = Selector::from_json(*sb);
  a.lo = j.number_or("lo", 0);
  a.hi = j.number_or("hi", 0);
  a.tol = j.number_or("tol", 0);
  if (const Json* s = j.find("series")) {
    for (const Json& v : s->items()) a.series.push_back(v.as_string());
  }
  a.note = j.string_or("note", "");
  a.tier = j.string_or("tier", "");
  return a;
}

std::vector<ShapeAssertion> assertions_from_json(const Json& baseline) {
  std::vector<ShapeAssertion> out;
  for (const Json& j : baseline.at("assertions").items()) {
    out.push_back(ShapeAssertion::from_json(j));
  }
  return out;
}

std::vector<ShapeAssertion> applicable_assertions(
    const std::vector<ShapeAssertion>& assertions, const Report& report) {
  const auto bench_has_analytical = [&](const std::string& bench) {
    const BenchResult* b = report.find_bench(bench);
    if (b == nullptr) return false;
    return std::any_of(b->records.begin(), b->records.end(),
                       [](const Record& r) {
                         return r.variant.find("@analytical") !=
                                std::string::npos;
                       });
  };
  std::vector<ShapeAssertion> out;
  out.reserve(assertions.size());
  for (const ShapeAssertion& a : assertions) {
    if (a.tier == "analytical" && !bench_has_analytical(a.bench)) continue;
    out.push_back(a);
  }
  return out;
}

ShapeOutcome evaluate(const ShapeAssertion& as, const Report& rep) {
  if (rep.find_bench(as.bench) == nullptr) {
    return outcome_fail(as, "bench \"" + as.bench + "\" missing from report");
  }

  ShapeOutcome out{as.id, true, 0, "", as.note};
  auto fail_point = [&](const Combo& c, const std::string& why) {
    out.passed = false;
    if (!out.detail.empty()) out.detail += "; ";
    out.detail += c.label() + ": " + why;
  };

  const std::vector<Combo> combos = expand(rep, as.bench, as.a);

  if (as.kind == "zero" || as.kind == "band") {
    for (const Combo& c : combos) {
      const auto v = value_at(rep, as, as.a, c, as.a.variant);
      if (!v) continue;
      ++out.comparisons;
      if (as.kind == "zero") {
        if (*v != 0) fail_point(c, "expected 0, got " + fmt(*v));
      } else if (*v < as.lo || *v > as.hi) {
        fail_point(c, fmt(*v) + " outside [" + fmt(as.lo) + ", " +
                          fmt(as.hi) + "]");
      }
    }
  } else if (as.kind == "less" || as.kind == "ratio_band") {
    for (const Combo& c : combos) {
      const auto va = value_at(rep, as, as.a, c, as.a.variant);
      // b inherits the expansion point unless it pins its own fields.
      const Combo cb{is_wild(as.b.section) ? c.section : as.b.section,
                     is_wild(as.b.dataset) ? c.dataset : as.b.dataset};
      const auto vb = value_at(rep, as, as.b, cb, as.b.variant);
      // A missing side mirrors a support-matrix hole (e.g. GNNAdvisor on big
      // graphs); the comparison is skipped, not failed.
      if (!va || !vb) continue;
      ++out.comparisons;
      if (as.kind == "less") {
        if (!(*va < *vb * (1 + as.tol))) {
          fail_point(c, as.a.variant + "=" + fmt(*va) + " !< " + as.b.variant +
                            "=" + fmt(*vb));
        }
      } else {
        if (*vb == 0) {
          fail_point(c, "denominator is 0");
          continue;
        }
        const double ratio = *va / *vb;
        if (ratio < as.lo || ratio > as.hi) {
          fail_point(c, "ratio " + fmt(ratio) + " outside [" + fmt(as.lo) +
                            ", " + fmt(as.hi) + "]");
        }
      }
    }
  } else if (as.kind == "increasing" || as.kind == "decreasing") {
    if (as.series.size() < 2) {
      return outcome_fail(as, "series needs at least 2 variants");
    }
    for (const Combo& c : combos) {
      std::vector<double> vals;
      bool complete = true;
      for (const std::string& variant : as.series) {
        const auto v = value_at(rep, as, as.a, c, variant);
        if (!v) {
          complete = false;
          break;
        }
        vals.push_back(*v);
      }
      if (!complete) continue;
      ++out.comparisons;
      for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
        const bool ok = as.kind == "increasing"
                            ? vals[i + 1] >= vals[i] * (1 - as.tol)
                            : vals[i + 1] <= vals[i] * (1 + as.tol);
        if (!ok) {
          fail_point(c, "not " + as.kind + " at " + as.series[i] + "->" +
                            as.series[i + 1] + " (" + fmt(vals[i]) + " -> " +
                            fmt(vals[i + 1]) + ")");
          break;
        }
      }
    }
  } else {
    return outcome_fail(as, "unknown assertion kind \"" + as.kind + "\"");
  }

  if (out.comparisons == 0) {
    out.passed = false;
    out.detail = "no records matched (schema drift?)";
  } else if (out.passed) {
    out.detail = std::to_string(out.comparisons) + " comparison" +
                 (out.comparisons == 1 ? "" : "s") + " hold";
  }
  return out;
}

std::vector<ShapeOutcome> evaluate_all(
    const std::vector<ShapeAssertion>& assertions, const Report& rep) {
  std::vector<ShapeOutcome> out;
  out.reserve(assertions.size());
  for (const ShapeAssertion& a : assertions) out.push_back(evaluate(a, rep));
  return out;
}

}  // namespace tlp::report
