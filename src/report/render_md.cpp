#include "report/render_md.hpp"

#include <algorithm>
#include <optional>

#include "common/format.hpp"

namespace tlp::report {

namespace {

// --- small lookup / formatting helpers ---------------------------------------

std::optional<double> val(const Report& rep, const std::string& bench,
                          const std::string& section,
                          const std::string& dataset,
                          const std::string& variant,
                          const std::string& metric) {
  return rep.value(bench, section, dataset, variant, metric);
}

/// fixed() of the value, or "-" when the record is absent (support matrix).
std::string cell(const Report& rep, const std::string& bench,
                 const std::string& section, const std::string& dataset,
                 const std::string& variant, const std::string& metric,
                 int digits) {
  const auto v = val(rep, bench, section, dataset, variant, metric);
  return v ? fixed(*v, digits) : std::string("-");
}

std::string ratio_x(double a, double b, int digits) {
  return fixed(a / b, digits) + "x";
}

/// Unique datasets of one bench section, in record (= dataset table) order.
std::vector<std::string> datasets_of(const BenchResult& b,
                                     const std::string& section) {
  std::vector<std::string> out;
  for (const Record& r : b.records) {
    if (r.section != section || r.dataset.empty()) continue;
    if (std::find(out.begin(), out.end(), r.dataset) == out.end())
      out.push_back(r.dataset);
  }
  return out;
}

void md_table(std::string& out, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  auto emit_row = [&out](const std::vector<std::string>& cells) {
    out += "|";
    for (const std::string& c : cells) {
      out += " ";
      out += c;
      out += " |";
    }
    out += "\n";
  };
  emit_row(header);
  std::vector<std::string> rule(header.size(), "---");
  emit_row(rule);
  for (const auto& r : rows) emit_row(r);
  out += "\n";
}

std::string config_line(const BenchResult& b) {
  std::string out = "Config: ";
  out += "max-edges " +
         human_count(b.config.number_or("max_edges", 0)) +
         (b.config.bool_or("full", false) ? " (full scale)" : "") +
         ", F=" + fixed(b.config.number_or("feature", 0), 0) +
         ", seed " + fixed(b.config.number_or("seed", 42), 0) + ".";
  return out;
}

/// Section header + config provenance; returns nullptr when the bench is
/// missing from the report (section is skipped with a note).
const BenchResult* begin_section(std::string& md, const Report& rep,
                                 const std::string& bench,
                                 const std::string& heading,
                                 const std::string& binary) {
  md += "## " + heading + " (`bench/" + binary + "`)\n\n";
  const BenchResult* b = rep.find_bench(bench);
  if (b == nullptr) {
    md += "*Not present in this report (run `tools/tlpbench` without "
          "`--only`, or rerun with this bench included).*\n\n";
    return nullptr;
  }
  md += config_line(*b) + "\n\n";
  return b;
}

// --- per-bench sections ------------------------------------------------------

void render_table1(std::string& md, const Report& rep) {
  const BenchResult* b =
      begin_section(md, rep, "table1", "Table 1 — atomic operations",
                    "table1_atomics");
  if (b == nullptr) return;
  const std::string ds = datasets_of(*b, "").empty()
                             ? std::string("OH")
                             : datasets_of(*b, "").front();
  const std::vector<std::pair<std::string, std::string>> systems{
      {"push", "Push"},
      {"edge", "Edge"},
      {"gnnadvisor", "GnnA."},
      {"pull", "Pull"}};

  std::vector<std::vector<std::string>> rows;
  auto row = [&](const std::string& label, const std::string& metric,
                 auto format) {
    std::vector<std::string> cells{label};
    for (const auto& [variant, title] : systems) {
      const auto v = val(rep, "table1", "", ds, variant, metric);
      cells.push_back(v ? format(*v) : std::string("-"));
    }
    rows.push_back(std::move(cells));
  };
  row("Runtime (ms)", "measured_ms", [](double v) { return fixed(v, 3); });
  row("Mem atomic store traffic", "bytes_atomic",
      [](double v) { return human_bytes(v); });
  row("Stall long scoreboard (cyc/instr)", "scoreboard_stall",
      [](double v) { return fixed(v, 1); });
  row("SM utilization", "sm_utilization", [](double v) { return pct(v); });
  md_table(md, {"Metrics", "Push", "Edge", "GnnA.", "Pull"}, rows);

  const auto pull = val(rep, "table1", "", ds, "pull", "measured_ms");
  const auto push = val(rep, "table1", "", ds, "push", "measured_ms");
  const auto edge = val(rep, "table1", "", ds, "edge", "measured_ms");
  const auto gnna = val(rep, "table1", "", ds, "gnnadvisor", "measured_ms");
  if (pull && push && edge && gnna) {
    md += "Measured pull speedup: " + ratio_x(*push, *pull, 2) + " over push, " +
          ratio_x(*edge, *pull, 2) + " over edge, " + ratio_x(*gnna, *pull, 2) +
          " over GNNAdvisor. Paper (V100, full scale): 1.8x / 1.6x / 5.8x.\n\n";
  }
  md += "Shape: pull is atomic-free and fastest; every atomic strategy pays "
        "traffic + stalls. Deviation: in our model edge-centric (32-lane "
        "scattered atomics) is the worst and GNNAdvisor "
        "(register-accumulated groups, one atomic merge per group) the "
        "mildest atomic strategy, whereas the paper measures GNNAdvisor "
        "worst — its released implementation carries overheads beyond the "
        "atomic mechanism that we do not replicate.\n\n";
}

void render_table2(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(
      md, rep, "table2", "Table 2 — coalesced access", "table2_coalescing");
  if (b == nullptr) return;
  const std::string ds = "PD";

  std::vector<std::vector<std::string>> rows;
  auto row = [&](const std::string& label, const std::string& metric,
                 auto format) {
    std::vector<std::string> cells{label};
    for (const std::string variant : {"one-thread", "half-warp"}) {
      const auto v = val(rep, "table2", "", ds, variant, metric);
      cells.push_back(v ? format(*v) : std::string("-"));
    }
    rows.push_back(std::move(cells));
  };
  row("Runtime (ms)", "runtime_ms", [](double v) { return fixed(v, 3); });
  row("Sector per request", "sectors_per_request",
      [](double v) { return fixed(v, 1); });
  row("L1 cache hit", "l1_hit_rate", [](double v) { return pct(v); });
  row("Long scoreboard (cyc/instr)", "scoreboard_stall",
      [](double v) { return fixed(v, 1); });
  md_table(md, {"Metrics", "One Thread", "Half Warp"}, rows);

  const auto one = val(rep, "table2", "", ds, "one-thread", "runtime_ms");
  const auto half = val(rep, "table2", "", ds, "half-warp", "runtime_ms");
  if (one && half) {
    md += "Measured half-warp speedup over one-thread: " +
          ratio_x(*one, *half, 1) +
          " (paper: 27.3x, sectors 9.2 vs 2.1).\n\n";
  }

  md += "Lanes-per-vertex sweep (extension ablation):\n\n";
  std::vector<std::vector<std::string>> sweep;
  for (const int lpv : {1, 2, 4, 8, 16, 32}) {
    const std::string variant = "lpv=" + std::to_string(lpv);
    sweep.push_back({std::to_string(lpv),
                     cell(rep, "table2", "", ds, variant, "runtime_ms", 3),
                     cell(rep, "table2", "", ds, variant,
                          "sectors_per_request", 1)});
  }
  md_table(md, {"lanes/vertex", "runtime (ms)", "sectors/req"}, sweep);

  md += "Shape: the one-thread mapping multiplies sectors/request and "
        "loses; the sweep improves monotonically from 1 to 32 lanes. "
        "Deviation: the magnitude is compressed because the simulator's L1 "
        "absorbs more of the scattered-access penalty than the V100 did.\n\n";
}

void render_table3(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "table3",
                                       "Table 3 — kernel launches",
                                       "table3_fusion");
  if (b == nullptr) return;
  const std::string ds = "RD";
  const std::vector<std::pair<std::string, std::string>> systems{
      {"dgl", "DGL"},
      {"three-kernel", "Three-Kernel"},
      {"one-kernel", "One-Kernel"}};

  std::vector<std::vector<std::string>> rows;
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& [variant, title] : systems)
      cells.push_back(getter(variant));
    rows.push_back(std::move(cells));
  };
  auto metric_cell = [&](const std::string& variant, const std::string& metric,
                         auto format) -> std::string {
    const auto v = val(rep, "table3", "", ds, variant, metric);
    return v ? format(*v) : std::string("-");
  };
  row("GPU Kernel launch", [&](const std::string& v) {
    return metric_cell(v, "kernel_launches",
                       [](double x) { return fixed(x, 0); });
  });
  row("Runtime (ms)", [&](const std::string& v) {
    return metric_cell(v, "runtime_ms", [](double x) { return fixed(x, 2); });
  });
  row("GPU time (ms)", [&](const std::string& v) {
    return metric_cell(v, "gpu_time_ms", [](double x) { return fixed(x, 2); });
  });
  row("Runtime - GPU time (ms)", [&](const std::string& v) {
    const auto rt = val(rep, "table3", "", ds, v, "runtime_ms");
    const auto gt = val(rep, "table3", "", ds, v, "gpu_time_ms");
    return rt && gt ? fixed(*rt - *gt, 2) : std::string("-");
  });
  row("Global mem usage", [&](const std::string& v) {
    return metric_cell(v, "peak_device_bytes",
                       [](double x) { return human_bytes(x); });
  });
  row("Global mem traffic", [&](const std::string& v) {
    const auto ld = val(rep, "table3", "", ds, v, "bytes_load");
    const auto st = val(rep, "table3", "", ds, v, "bytes_store");
    const auto at = val(rep, "table3", "", ds, v, "bytes_atomic");
    return ld && st && at ? human_bytes(*ld + *st + *at) : std::string("-");
  });
  row("Stall long scoreboard (cyc/instr)", [&](const std::string& v) {
    return metric_cell(v, "scoreboard_stall",
                       [](double x) { return fixed(x, 1); });
  });
  row("Average SM utilization", [&](const std::string& v) {
    return metric_cell(v, "sm_utilization", [](double x) { return pct(x); });
  });
  md_table(md, {"Metrics", "DGL", "Three-Kernel", "One-Kernel"}, rows);

  const auto dgl = val(rep, "table3", "", ds, "dgl", "runtime_ms");
  const auto three = val(rep, "table3", "", ds, "three-kernel", "runtime_ms");
  const auto one = val(rep, "table3", "", ds, "one-kernel", "runtime_ms");
  if (dgl && three && one) {
    md += "Measured one-kernel speedup: " + ratio_x(*dgl, *one, 1) +
          " over DGL, " + ratio_x(*three, *one, 1) +
          " over three-kernel (paper: 7.5x / 4.6x).\n\n";
  }
  md += "Shape: fusion removes launches, framework overhead, the "
        "materialized E×F messages (memory usage + traffic), and wins; the "
        "fused kernel has by far the highest SM utilization. Our fused "
        "kernel's advantage overshoots (≈2x) because the replica pipelines "
        "are leaner than production DGL.\n\n";
}

void render_table5(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "table5",
                                       "Table 5 — main comparison",
                                       "table5_main");
  if (b == nullptr) return;
  md += "'-' mirrors the paper's support matrix (GNNAdvisor: GCN/GIN only, "
        "crashes on the four largest graphs).\n\n";

  for (const std::string model : {"GCN", "GIN", "Sage", "GAT"}) {
    const std::vector<std::string> datasets = datasets_of(*b, model);
    if (datasets.empty()) continue;
    md += "**" + model + "**\n\n";
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets) {
      std::vector<std::string> cells{ds};
      std::optional<double> best;
      for (const std::string sys : {"dgl", "gnnadvisor", "featgraph"}) {
        const auto v = val(rep, "table5", model, ds, sys, "measured_ms");
        if (v && (!best || *v < *best)) best = *v;
        cells.push_back(v ? fixed(*v, 3) : std::string("-"));
      }
      const auto tlpgnn = val(rep, "table5", model, ds, "tlpgnn",
                              "measured_ms");
      cells.push_back(tlpgnn ? fixed(*tlpgnn, 3) : std::string("-"));
      cells.push_back(tlpgnn && best ? ratio_x(*best, *tlpgnn, 1)
                                     : std::string("-"));
      rows.push_back(std::move(cells));
    }
    md_table(md, {"Data", "DGL", "GNNA.", "FeatG.", "TLPGNN", "Speedup"},
             rows);
  }

  md += "Average TLPGNN speedup (geomean over all runs):\n\n";
  std::vector<std::vector<std::string>> avg;
  const std::vector<std::pair<std::string, std::string>> baselines{
      {"dgl", "5.6x"}, {"gnnadvisor", "7.7x"}, {"featgraph", "3.3x"}};
  for (const auto& [sys, paper] : baselines) {
    avg.push_back({"vs " + sys, paper,
                   cell(rep, "table5", "summary", "", sys, "geomean_speedup",
                        2) + "x"});
  }
  md_table(md, {"", "paper (arithmetic)", "measured (geomean)"}, avg);

  md += "Shape: TLPGNN wins on average against all three; DGL is uniformly "
        "slow on small graphs (launch + framework overhead); FeatGraph is "
        "the closest competitor, exactly as in the paper (it also beat DGL "
        "in most of the paper's cells). Honest deviations: (a) FeatGraph's "
        "margin to TLPGNN is narrower than the paper's — its TVM penalty "
        "(1-warp blocks + 8-lane tiles) costs less in our machine model "
        "than on silicon; (b) on the near-regular molecular graphs (DD, OH) "
        "and a few Sage cells FeatGraph's 4-vertices-per-warp mapping "
        "genuinely wins, where the paper still has TLPGNN ahead ~1.5x; the "
        "paper's OA row, where DGL beats TLPGNN, reproduces in spirit as "
        "our weakest GCN/GIN rows.\n\n";
}

void render_fig8(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(
      md, rep, "fig8", "Figure 8 — GNNAdvisor atomic writes",
      "fig8_atomic_traffic");
  if (b == nullptr) return;
  std::vector<std::vector<std::string>> rows;
  for (const std::string& ds : datasets_of(*b, "")) {
    auto bytes = [&](const std::string& variant) -> std::string {
      const auto v = val(rep, "fig8", "", ds, variant, "bytes_atomic");
      return v ? human_bytes(*v) : std::string("-");
    };
    rows.push_back({ds, bytes("gnnadvisor-gcn"), bytes("gnnadvisor-gin"),
                    bytes("tlpgnn")});
  }
  md_table(md, {"Data", "GCN atomic", "GIN atomic", "TLPGNN atomic"}, rows);
  md += "Shape: atomic-write traffic grows with edge count across the seven "
        "supported datasets (paper: MBs to 100s of MBs at full scale); "
        "TLPGNN's column is exactly zero.\n\n";
}

void render_fig9(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "fig9",
                                       "Figure 9 — achieved occupancy",
                                       "fig9_occupancy");
  if (b == nullptr) return;
  std::vector<std::vector<std::string>> rows;
  for (const std::string& ds : datasets_of(*b, "")) {
    auto occ = [&](const std::string& variant) -> std::string {
      const auto v = val(rep, "fig9", "", ds, variant, "achieved_occupancy");
      return v ? pct(*v) : std::string("-");
    };
    rows.push_back({ds, occ("featgraph"), occ("tlpgnn")});
  }
  {
    auto avg = [&](const std::string& variant) -> std::string {
      const auto v = val(rep, "fig9", "summary", "", variant,
                         "mean_achieved_occupancy");
      return v ? pct(*v) : std::string("-");
    };
    rows.push_back({"**Average**", avg("featgraph"), avg("tlpgnn")});
  }
  md_table(md, {"Data", "FeatGraph", "TLPGNN"}, rows);
  md += "Paper averages: FeatGraph 41.2%, TLPGNN 68.2%.\n\n";
  md += "Shape: TLPGNN above FeatGraph on every dataset (mechanism: "
        "FeatGraph's 1-warp blocks cap resident warps at the 32-block SM "
        "slot limit). Absolute values are lower because small replicas "
        "cannot fill 5120 warp slots and the slot model idles during "
        "dispatch.\n\n";
}

void render_fig10(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "fig10",
                                       "Figure 10 — technique ablation",
                                       "fig10_ablation");
  if (b == nullptr) return;
  md += "Speedup over the edge-centric baseline; each column adds one "
        "technique.\n\n";
  for (const std::string model : {"GCN", "GIN", "Sage", "GAT"}) {
    const std::vector<std::string> datasets = datasets_of(*b, model);
    if (datasets.empty()) continue;
    const bool is_gat = model == "GAT";
    std::vector<std::string> stages{"tlp", "+hybrid", "+cache"};
    if (is_gat) stages.push_back("+fusion");
    md += "**" + model + "**\n\n";
    std::vector<std::string> header{"Data", "TLP", "+Hybrid", "+Cache"};
    if (is_gat) header.push_back("+Fusion");
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets) {
      std::vector<std::string> cells{ds};
      for (const std::string& st : stages) {
        const auto v = val(rep, "fig10", model, ds, st, "speedup");
        cells.push_back(v ? fixed(*v, 2) + "x" : std::string("-"));
      }
      rows.push_back(std::move(cells));
    }
    std::vector<std::string> avg{"**geomean**"};
    for (const std::string& st : stages) {
      const auto v = val(rep, "fig10", model, "", st, "geomean_speedup");
      avg.push_back(v ? fixed(*v, 2) + "x" : std::string("-"));
    }
    rows.push_back(std::move(avg));
    md_table(md, header, rows);
  }
  md += "Paper cumulative averages: GCN 12.9x, GIN 12.1x, Sage 11.3x, GAT "
        "8.6x over the edge-centric baseline.\n\n";
  md += "Shape: every stage contributes; register caching helps most on "
        "high-degree graphs, matching the paper's observation; fusion is "
        "the dominant GAT technique. Honest deviation: the +Hybrid stage is "
        "nearly flat here, because at replica scale the static baseline "
        "already degenerates to ~1 vertex per warp (V ≈ number of warps), "
        "leaving no imbalance for dynamic assignment to fix; at larger "
        "`--max-edges` the stage turns positive but stays far from the "
        "paper's ~2x.\n\n";
}

void render_fig11(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "fig11",
                                       "Figure 11 — thread-count scaling",
                                       "fig11_thread_scaling");
  if (b == nullptr) return;
  md += "Speedup over a single block (512 threads/block), four largest "
        "replicas (strong-scaling replicas keep a 50K-vertex population; "
        "see DESIGN.md).\n\n";
  const std::vector<int> blocks{1, 2, 4, 8, 16, 32, 64, 128};
  for (const std::string model : {"GCN", "GIN", "Sage", "GAT"}) {
    const std::vector<std::string> datasets = datasets_of(*b, model);
    if (datasets.empty()) continue;
    md += "**" + model + "**\n\n";
    std::vector<std::string> header{"Data"};
    for (const int n : blocks) header.push_back(std::to_string(n));
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets) {
      std::vector<std::string> cells{ds};
      for (const int n : blocks) {
        const auto v = val(rep, "fig11", model, ds,
                           "blocks=" + std::to_string(n), "speedup");
        cells.push_back(v ? fixed(*v, 1) + "x" : std::string("-"));
      }
      rows.push_back(std::move(cells));
    }
    md_table(md, header, rows);
  }
  md += "Paper averages at 128 blocks: GCN 67.5x, GIN 62.5x, Sage 67.2x, "
        "GAT 45.3x.\n\n";
  md += "Shape: near-linear scaling at low block counts that saturates "
        "toward 128 blocks; GAT scales slightly worse than the others, as "
        "in the paper. The ceiling is lower because the replicas carry ~25x "
        "fewer vertices than the real graphs, so the tail wave and "
        "bandwidth floor arrive earlier.\n\n";
}

void render_fig12(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "fig12",
                                       "Figure 12 — feature-size scaling",
                                       "fig12_feature_scaling");
  if (b == nullptr) return;
  md += "Runtime normalized to feature size 16, four largest replicas.\n\n";
  const std::vector<int> sizes{16, 32, 64, 128, 256, 512};
  for (const std::string model : {"GCN", "GIN", "Sage", "GAT"}) {
    const std::vector<std::string> datasets = datasets_of(*b, model);
    if (datasets.empty()) continue;
    md += "**" + model + "**\n\n";
    std::vector<std::string> header{"Data"};
    for (const int f : sizes) header.push_back(std::to_string(f));
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets) {
      std::vector<std::string> cells{ds};
      for (const int f : sizes) {
        const auto v = val(rep, "fig12", model, ds, "f=" + std::to_string(f),
                           "normalized_runtime");
        cells.push_back(v ? fixed(*v, 1) + "x" : std::string("-"));
      }
      rows.push_back(std::move(cells));
    }
    md_table(md, header, rows);
  }
  md += "Paper at F=512 (32x the data of F=16): GCN 41.6x, GIN 40.4x, Sage "
        "36.7x, GAT 27.3x slower — i.e. roughly linear; F=16 runs ~1.4x "
        "faster than F=32 despite half the warp being idle.\n\n";
  md += "Shape: runtime grows sub-linearly at small F (the paper's \"half "
        "the warp idle yet barely slower\" observation) and roughly "
        "linearly beyond F=64. Deviation: the densest replicas stay flatter "
        "because at replica scale their per-edge scalar bookkeeping, which "
        "is F-independent, still dominates at small F.\n\n";
}

void render_tuning(std::string& md, const Report& rep) {
  const BenchResult* b = begin_section(md, rep, "tuning",
                                       "Extension — tuning ablations",
                                       "ablation_tuning");
  if (b == nullptr) return;
  md += "Design-choice sweeps beyond the paper's figures (times in ms).\n\n";

  md += "**(a) warps per block** — the §5 balance-vs-dispatch knob:\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets_of(*b, "warps_per_block")) {
      std::vector<std::string> cells{ds};
      for (const int wpb : {1, 2, 4, 8, 16, 32}) {
        cells.push_back(cell(rep, "tuning", "warps_per_block", ds,
                             "wpb=" + std::to_string(wpb), "gpu_time_ms", 3));
      }
      rows.push_back(std::move(cells));
    }
    md_table(md, {"Data", "1", "2", "4", "8", "16", "32"}, rows);
  }

  md += "**(b) software-pool grab size** (Algorithm 1's `step`):\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets_of(*b, "pool_step")) {
      std::vector<std::string> cells{ds};
      for (const int step : {1, 4, 16, 64, 256}) {
        cells.push_back(cell(rep, "tuning", "pool_step", ds,
                             "step=" + std::to_string(step), "gpu_time_ms",
                             3));
      }
      rows.push_back(std::move(cells));
    }
    md_table(md, {"Data", "1", "4", "16", "64", "256"}, rows);
  }

  md += "**(c) machine sweep** — the same TLPGNN kernel across GPU specs "
        "(F=256 to reach the bandwidth-bound regime):\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& ds : datasets_of(*b, "machine")) {
      rows.push_back(
          {ds,
           cell(rep, "tuning", "machine", ds, "v100", "gpu_time_ms", 3),
           cell(rep, "tuning", "machine", ds, "half-bandwidth", "gpu_time_ms",
                3),
           cell(rep, "tuning", "machine", ds, "a100-like", "gpu_time_ms",
                3)});
    }
    md_table(md, {"Data", "V100", "half-bandwidth", "A100-like"}, rows);
  }
  md += "Shape: large 32-warp blocks pay an imbalance penalty on the sparse "
        "replicas (the paper's \"more warps per block, more imbalance\" "
        "claim); fine pool grabs win on dense replicas, coarse grabs on "
        "sparse ones; the F=256 runs are bandwidth-bound on OA "
        "(half-bandwidth hurts, A100-like helps) and latency-bound "
        "(machine-insensitive) on the small dense replicas.\n\n";
}

}  // namespace

std::string render_experiments_md(const Report& rep,
                                  const std::vector<ShapeOutcome>& shapes) {
  std::string md;
  md += "# EXPERIMENTS — paper vs. measured\n\n";
  md += "> **Generated file — do not edit.** Produced by "
        "`tools/tlpbench --render-md` from the results snapshot in "
        "`bench/baseline.json`; CI fails when this file drifts from the "
        "generator output. To refresh after a model change: "
        "`./build/tools/tlpbench --update-baseline && "
        "./build/tools/tlpbench --render-md EXPERIMENTS.md` "
        "(see DESIGN.md §9).\n\n";
  md += "Reproduction target: the *shape* of each result — which system "
        "wins, by roughly what factor, and which mechanism the profile "
        "attributes it to — not absolute milliseconds (the substrate is a "
        "calibrated simulator, not the authors' V100; see DESIGN.md §1/§4). "
        "Default runs use scaled-down dataset replicas on a proportionally "
        "scaled-down GPU; every number below regenerates with "
        "`tools/tlpbench` or the named binary (`--full` switches to "
        "paper-scale replicas).\n\n";

  // --- shape-assertion summary ----------------------------------------------
  md += "## Shape summary\n\n";
  if (shapes.empty()) {
    md += "*No baseline assertions evaluated.*\n\n";
  } else {
    int passed = 0;
    std::vector<std::vector<std::string>> rows;
    for (const ShapeOutcome& s : shapes) {
      passed += s.passed ? 1 : 0;
      rows.push_back({s.passed ? "✓" : "**✗**", "`" + s.id + "`",
                      s.note.empty() ? s.detail : s.note});
    }
    md_table(md, {"", "assertion", "claim"}, rows);
    md += fixed(passed, 0) + "/" + fixed(shapes.size(), 0) +
          " shape assertions hold (see `bench/baseline.json` for the "
          "machine-readable form; `tools/tlpbench` re-evaluates them on "
          "every run).\n\n";
  }

  render_table1(md, rep);
  render_table2(md, rep);
  render_table3(md, rep);
  render_table5(md, rep);
  render_fig8(md, rep);
  render_fig9(md, rep);
  render_fig10(md, rep);
  render_fig11(md, rep);
  render_fig12(md, rep);

  md += "## §3 micro mechanisms (`bench/micro_sim`)\n\n";
  md += "google-benchmark suite over the simulator substrate itself: "
        "coalesced vs scattered loads (4 vs ~30 sectors/request), atomic "
        "conflict serialization cost vs lane spread, cache hit/thrash "
        "regimes, end-to-end simulated-kernel throughput, generator and "
        "CSR-reverse throughput. Not part of the tlpbench suite — it "
        "measures host wall-clock, which is machine-dependent; use "
        "`--benchmark_format=json` for machine-readable output.\n\n";

  render_tuning(md, rep);

  md += "---\n\n";
  md += "*Provenance: schema `" + rep.schema + "` · seed " +
        fixed(static_cast<double>(rep.seed), 0) + " · results generated at "
        "git `" + rep.git + "` · rendered by `tools/tlpbench --render-md`.*\n";
  return md;
}

}  // namespace tlp::report
