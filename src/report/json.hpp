// Minimal JSON value type used by the tlpbench reporting pipeline.
//
// Design constraints (DESIGN.md §9):
//   - objects preserve insertion order, so serialization is deterministic and
//     `tlpbench --render-md` / baseline diffs are byte-stable;
//   - numbers round-trip exactly (shortest form via std::to_chars), so
//     serialize -> parse -> serialize is the identity on tlpbench output;
//   - no external dependency — the container ships no JSON library.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tlp::report {

/// A parse or type error raised by the JSON layer. Carries a byte offset for
/// parse errors (-1 for type errors).
struct JsonError {
  std::string message;
  std::int64_t offset = -1;
};

class Json;
using JsonMember = std::pair<std::string, Json>;

/// JSON value: null, bool, number (double), string, array, or object.
/// Objects keep members in insertion order; `set` replaces in place.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT(google-explicit-constructor)
  Json(double d) : kind_(Kind::kNumber), num_(d) {}        // NOLINT(google-explicit-constructor)
  Json(int i) : kind_(Kind::kNumber), num_(i) {}           // NOLINT(google-explicit-constructor)
  Json(std::int64_t i)                                     // NOLINT(google-explicit-constructor)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Json(std::string s)                                      // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}   // NOLINT(google-explicit-constructor)

  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }

  // Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<JsonMember>& members() const;

  // --- array ---------------------------------------------------------------
  Json& push_back(Json v);

  // --- object --------------------------------------------------------------
  /// Sets (or replaces) a member, preserving first-insertion order.
  Json& set(const std::string& key, Json v);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Member lookup with required presence; throws JsonError when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// `find`, falling back to `def` for absent members.
  [[nodiscard]] double number_or(const std::string& key, double def) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& def) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool def) const;

  /// Pretty-prints with 2-space indentation and a trailing newline at the top
  /// level; deterministic for a given value.
  [[nodiscard]] std::string dump() const;

  /// Parses a complete JSON document; throws JsonError with a byte offset on
  /// malformed input or trailing garbage.
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<JsonMember> obj_;
};

/// Shortest round-trip decimal form of `d` ("1.5", "42", "0.1").
std::string json_number(double d);

}  // namespace tlp::report
