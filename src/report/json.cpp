#include "report/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tlp::report {

namespace {

[[noreturn]] void fail(const std::string& msg, std::int64_t offset = -1) {
  throw JsonError{msg, offset};
}

}  // namespace

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) fail("expected bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) fail("expected number");
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) fail("expected string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) fail("expected array");
  return arr_;
}

const std::vector<JsonMember>& Json::members() const {
  if (kind_ != Kind::kObject) fail("expected object");
  return obj_;
}

Json& Json::push_back(Json v) {
  if (kind_ != Kind::kArray) fail("push_back on non-array");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (kind_ != Kind::kObject) fail("set on non-object");
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) fail("missing member \"" + key + "\"");
  return *v;
}

double Json::number_or(const std::string& key, double def) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}

std::string Json::string_or(const std::string& key,
                            const std::string& def) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : def;
}

bool Json::bool_or(const std::string& key, bool def) const {
  const Json* v = find(key);
  return v != nullptr && v->kind() == Kind::kBool ? v->as_bool() : def;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber: return num_ == other.num_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return arr_ == other.arr_;
    case Kind::kObject: return obj_ == other.obj_;
  }
  return false;
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) return "0";
  std::string s(buf, ptr);
  // to_chars may emit "1e+20"-style exponents, which are valid JSON; keep.
  return s;
}

namespace {

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void indent_to(std::string& out, int indent) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += json_number(num_); return;
    case Kind::kString: escape_to(str_, out); return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        indent_to(out, indent + 1);
        arr_[i].dump_to(out, indent + 1);
        if (i + 1 < arr_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent_to(out, indent);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        indent_to(out, indent + 1);
        escape_to(obj_[i].first, out);
        out += ": ";
        obj_[i].second.dump_to(out, indent + 1);
        if (i + 1 < obj_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent_to(out, indent);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

// --- parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) err("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void err(const std::string& msg) {
    fail(msg, static_cast<std::int64_t>(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) err("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) err(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) err("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) err("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) err("bad literal");
      return Json();
    }
    return parse_number();
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) err("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') err("malformed number '" + tok + "'");
    return Json(d);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) err("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) err("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
          // ASCII-only escapes are enough for tlpbench documents; encode the
          // rest as UTF-8 without surrogate-pair handling.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: err("unknown escape");
      }
    }
    return out;
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      err("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace tlp::report
