#include "report/report.hpp"

namespace tlp::report {

Record& Record::value(const std::string& name, double v) {
  for (auto& [k, old] : values) {
    if (k == name) {
      old = v;
      return *this;
    }
  }
  values.emplace_back(name, v);
  return *this;
}

std::optional<double> Record::get(const std::string& name) const {
  for (const auto& [k, v] : values) {
    if (k == name) return v;
  }
  return std::nullopt;
}

Json Record::to_json() const {
  Json j = Json::object();
  if (!section.empty()) j.set("section", section);
  if (!dataset.empty()) j.set("dataset", dataset);
  j.set("variant", variant);
  Json vals = Json::object();
  for (const auto& [k, v] : values) vals.set(k, v);
  j.set("values", std::move(vals));
  return j;
}

Record Record::from_json(const Json& j) {
  Record r;
  r.section = j.string_or("section", "");
  r.dataset = j.string_or("dataset", "");
  r.variant = j.at("variant").as_string();
  for (const auto& [k, v] : j.at("values").members()) {
    r.values.emplace_back(k, v.as_number());
  }
  return r;
}

Json BenchResult::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("title", title);
  j.set("config", config);
  Json recs = Json::array();
  for (const Record& r : records) recs.push_back(r.to_json());
  j.set("records", std::move(recs));
  return j;
}

BenchResult BenchResult::from_json(const Json& j) {
  BenchResult b;
  b.name = j.at("name").as_string();
  b.title = j.string_or("title", "");
  if (const Json* cfg = j.find("config")) b.config = *cfg;
  for (const Json& r : j.at("records").items()) {
    b.records.push_back(Record::from_json(r));
  }
  return b;
}

const BenchResult* Report::find_bench(const std::string& name) const {
  for (const BenchResult& b : benches) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::vector<const Record*> Report::select(const std::string& bench,
                                          const std::string& section,
                                          const std::string& dataset,
                                          const std::string& variant) const {
  std::vector<const Record*> out;
  const BenchResult* b = find_bench(bench);
  if (b == nullptr) return out;
  for (const Record& r : b->records) {
    if (!section.empty() && r.section != section) continue;
    if (!dataset.empty() && r.dataset != dataset) continue;
    if (!variant.empty() && r.variant != variant) continue;
    out.push_back(&r);
  }
  return out;
}

std::optional<double> Report::value(const std::string& bench,
                                    const std::string& section,
                                    const std::string& dataset,
                                    const std::string& variant,
                                    const std::string& metric) const {
  for (const Record* r : select(bench, section, dataset, variant)) {
    if (auto v = r->get(metric)) return v;
  }
  return std::nullopt;
}

Json Report::to_json() const {
  Json j = Json::object();
  j.set("schema", schema);
  j.set("seed", static_cast<std::int64_t>(seed));
  j.set("git", git);
  Json bs = Json::array();
  for (const BenchResult& b : benches) bs.push_back(b.to_json());
  j.set("benches", std::move(bs));
  return j;
}

Report Report::from_json(const Json& j) {
  Report r;
  r.schema = j.at("schema").as_string();
  if (r.schema != kSchema) {
    throw JsonError{"unsupported schema \"" + r.schema + "\" (expected \"" +
                    kSchema + "\")"};
  }
  r.seed = static_cast<std::uint64_t>(j.number_or("seed", 42));
  r.git = j.string_or("git", "unknown");
  for (const Json& b : j.at("benches").items()) {
    r.benches.push_back(BenchResult::from_json(b));
  }
  return r;
}

}  // namespace tlp::report
