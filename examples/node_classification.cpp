// Node classification with a two-layer GCN — the workload the paper's
// introduction motivates. Shows the full three-phase layer pattern (§2.1):
// dense transform, graph convolution (simulated + measured), activation —
// ending in a per-class softmax, with the convolution cost of every layer
// reported.
//
//   build/examples/node_classification [--dataset PD] [--classes 8]
#include <cstdio>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "tensor/dense_ops.hpp"

int main(int argc, char** argv) {
  using namespace tlp;
  const Args args(argc, argv);
  const std::string abbr = args.get("dataset", "PD");
  const std::int64_t classes = args.get_int("classes", 8);
  const std::int64_t hidden = args.get_int("hidden", 16);
  const std::int64_t in_features = args.get_int("feature", 64);

  const auto& ds = graph::dataset_by_abbr(abbr);
  const graph::Csr g =
      graph::make_dataset(ds, {.max_edges = args.get_int("max-edges", 200'000)});
  std::printf("dataset %s (%s): %s\n", ds.name, ds.abbr, g.summary().c_str());

  Rng rng(11);
  tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), in_features, rng);
  const tensor::Tensor w1 =
      tensor::Tensor::random(in_features, hidden, rng, 0.2f);
  const tensor::Tensor w2 = tensor::Tensor::random(hidden, classes, rng, 0.2f);

  Engine engine;
  models::ConvSpec spec;
  spec.kind = models::ModelKind::kGcn;

  // Layer 1: dropout -> linear -> convolution -> ReLU.
  x = tensor::dropout(x, 0.1, rng);
  const tensor::Tensor h1 = engine.layer(g, x, w1, spec, /*relu=*/true);
  std::printf("layer 1 convolution: %s ms simulated GPU time (%d kernel)\n",
              fixed(engine.last_run().gpu_time_ms, 3).c_str(),
              engine.last_run().kernel_launches);

  // Layer 2: linear -> convolution -> softmax readout.
  const tensor::Tensor logits = engine.layer(g, h1, w2, spec, /*relu=*/false);
  std::printf("layer 2 convolution: %s ms simulated GPU time\n",
              fixed(engine.last_run().gpu_time_ms, 3).c_str());
  const tensor::Tensor probs = tensor::softmax_rows(logits);

  // "Classify" a few vertices: argmax over class probabilities.
  std::printf("\npredictions (first 5 vertices):\n");
  for (graph::VertexId v = 0; v < std::min<graph::VertexId>(5, g.num_vertices());
       ++v) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c)
      if (probs.at(v, c) > probs.at(v, best)) best = c;
    std::printf("  vertex %d -> class %lld (p=%s)\n", v,
                static_cast<long long>(best),
                fixed(probs.at(v, best), 3).c_str());
  }
  return 0;
}
