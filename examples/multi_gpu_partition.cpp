// Multi-GPU sketch (the paper's §1 future-work direction): partition the
// graph with the METIS-style greedy partitioner, run each part's convolution
// on its own simulated device, and account the halo features that would
// cross device boundaries. Demonstrates graph::partition_greedy as the
// enabling substrate.
//
//   build/examples/multi_gpu_partition [--gpus 4] [--dataset CL]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/partition.hpp"
#include "models/reference.hpp"
#include "systems/tlpgnn_system.hpp"

int main(int argc, char** argv) {
  using namespace tlp;
  const Args args(argc, argv);
  const int gpus = static_cast<int>(args.get_int("gpus", 4));
  const auto& ds = graph::dataset_by_abbr(args.get("dataset", "CL"));
  const graph::Csr g =
      graph::make_dataset(ds, {.max_edges = args.get_int("max-edges", 200'000)});
  const std::int64_t f = args.get_int("feature", 32);
  std::printf("dataset %s: %s, %d simulated GPUs\n", ds.name,
              g.summary().c_str(), gpus);

  const graph::PartitionResult part = graph::partition_greedy(g, gpus);
  std::printf("partition: %s edge balance, %s cut edges (%s of total)\n\n",
              fixed(graph::edge_balance(part), 3).c_str(),
              human_count(static_cast<double>(part.cut_edges)).c_str(),
              pct(static_cast<double>(part.cut_edges) /
                  static_cast<double>(g.num_edges()))
                  .c_str());

  Rng rng(9);
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  models::ConvSpec spec;
  spec.kind = models::ModelKind::kGcn;

  // Each device owns the in-edges of its vertices; source features that live
  // on another device form the halo it must receive before the convolution.
  TextTable t({"gpu", "vertices", "edges", "halo feats", "GPU ms"});
  double makespan_ms = 0.0;
  for (int p = 0; p < gpus; ++p) {
    std::vector<graph::Edge> local_edges;
    std::vector<bool> halo(static_cast<std::size_t>(g.num_vertices()), false);
    std::int64_t owned = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (part.part[static_cast<std::size_t>(v)] != p) continue;
      ++owned;
      for (const graph::VertexId u : g.neighbors(v)) {
        local_edges.push_back({u, v});
        if (part.part[static_cast<std::size_t>(u)] != p)
          halo[static_cast<std::size_t>(u)] = true;
      }
    }
    std::int64_t halo_count = 0;
    for (const bool h : halo) halo_count += h ? 1 : 0;

    // Build the local graph over the global id space (features are
    // replicated where needed; a real deployment would relabel).
    const graph::Csr local =
        graph::build_csr(g.num_vertices(), local_edges, {.dedup = false});
    systems::TlpgnnSystem sys;
    sim::Device dev;
    const systems::RunResult r = sys.run(dev, local, feat, spec);
    makespan_ms = std::max(makespan_ms, r.gpu_time_ms);
    t.add_row({std::to_string(p), human_count(static_cast<double>(owned)),
               human_count(static_cast<double>(local.num_edges())),
               human_count(static_cast<double>(halo_count)),
               fixed(r.gpu_time_ms, 3)});
  }
  t.print();

  // Single-device time for comparison.
  systems::TlpgnnSystem sys;
  sim::Device dev;
  const systems::RunResult single = sys.run(dev, g, feat, spec);
  std::printf("\nsingle GPU: %s ms; %d-GPU convolution makespan: %s ms "
              "(%sx, excluding halo exchange)\n",
              fixed(single.gpu_time_ms, 3).c_str(), gpus,
              fixed(makespan_ms, 3).c_str(),
              fixed(single.gpu_time_ms / makespan_ms, 2).c_str());
  std::printf("note: the GCN norm of a partitioned run uses local degrees; "
              "this sketch measures kernel scaling, not exact equivalence.\n");
  return 0;
}
