// Compare every GNN computation system in the repo on one dataset — a
// miniature Table 5 for interactive exploration, including the micro
// baselines the paper profiles in §3.
//
//   build/examples/system_comparison [--dataset OA] [--model GCN]
#include <cstdio>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "systems/system.hpp"

int main(int argc, char** argv) {
  using namespace tlp;
  const Args args(argc, argv);
  const auto& ds = graph::dataset_by_abbr(args.get("dataset", "OA"));
  const std::string model_name = args.get("model", "GCN");
  models::ModelKind kind = models::ModelKind::kGcn;
  for (const auto k : models::kAllModels)
    if (model_name == models::model_name(k)) kind = k;

  const graph::Csr g =
      graph::make_dataset(ds, {.max_edges = args.get_int("max-edges", 200'000)});
  const std::int64_t f = args.get_int("feature", 32);
  std::printf("dataset %s: %s, model %s, F=%lld\n\n", ds.name,
              g.summary().c_str(), models::model_name(kind),
              static_cast<long long>(f));

  Rng rng(5);
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  const models::ConvSpec spec = models::ConvSpec::make(kind, f, rng);
  const tensor::Tensor ref = models::reference_conv(g, feat, spec);

  TextTable t({"system", "kernels", "time ms", "traffic", "atomic", "occup.",
               "correct"});
  for (const char* name : {"tlpgnn", "featgraph", "dgl", "gnnadvisor", "pull",
                           "push", "edge"}) {
    auto sys = systems::make_system(name);
    if (!sys->supports(kind, ds.big4)) {
      t.add_row({name, "-", "-", "-", "-", "-", "-"});
      continue;
    }
    sim::Device dev;
    const systems::RunResult r = sys->run(dev, g, feat, spec);
    t.add_row({name, std::to_string(r.kernel_launches),
               fixed(r.measured_ms, 3),
               human_bytes(r.metrics.bytes_load + r.metrics.bytes_store +
                           r.metrics.bytes_atomic),
               human_bytes(r.metrics.bytes_atomic),
               pct(r.metrics.achieved_occupancy),
               tensor::allclose(r.output, ref, 1e-3, 1e-4) ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nall systems compute the same convolution; they differ only "
              "in how the GPU executes it.\n");
  return 0;
}
