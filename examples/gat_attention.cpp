// Graph attention (GAT) with the fused one-kernel design, contrasted with
// the unfused three-kernel pipeline — the §6 kernel-fusion story as a
// runnable program. Also demonstrates swapping systems behind the common
// GnnSystem interface.
//
//   build/examples/gat_attention [--dataset PI] [--feature 32]
#include <cstdio>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "graph/datasets.hpp"
#include "models/reference.hpp"
#include "systems/tlpgnn_system.hpp"

int main(int argc, char** argv) {
  using namespace tlp;
  const Args args(argc, argv);
  const auto& ds = graph::dataset_by_abbr(args.get("dataset", "PI"));
  const graph::Csr g =
      graph::make_dataset(ds, {.max_edges = args.get_int("max-edges", 200'000)});
  const std::int64_t f = args.get_int("feature", 32);
  std::printf("dataset %s: %s, GAT single head, F=%lld\n", ds.name,
              g.summary().c_str(), static_cast<long long>(f));

  Rng rng(3);
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  const models::ConvSpec spec =
      models::ConvSpec::make(models::ModelKind::kGat, f, rng);

  auto report = [&](const char* label, const systems::RunResult& r) {
    std::printf(
        "%-12s %d kernels, %s ms GPU, peak device mem %s, traffic %s\n", label,
        r.kernel_launches, fixed(r.gpu_time_ms, 3).c_str(),
        human_bytes(static_cast<double>(r.peak_device_bytes)).c_str(),
        human_bytes(r.metrics.bytes_load + r.metrics.bytes_store +
                    r.metrics.bytes_atomic)
            .c_str());
  };

  // Fused: one kernel, no materialized per-edge state.
  systems::TlpgnnSystem fused;
  sim::Device dev;
  const systems::RunResult rf = fused.run(dev, g, feat, spec);
  report("fused", rf);

  // Unfused: attention/softmax, u_mul_e message materialization, sum.
  systems::TlpgnnOptions opts;
  opts.fused_gat = false;
  systems::TlpgnnSystem unfused(opts);
  const systems::RunResult ru = unfused.run(dev, g, feat, spec);
  report("three-kernel", ru);

  std::printf("fusion speedup: %sx, memory saved: %s\n",
              fixed(ru.gpu_time_ms / rf.gpu_time_ms, 2).c_str(),
              human_bytes(static_cast<double>(ru.peak_device_bytes -
                                              rf.peak_device_bytes))
                  .c_str());

  const tensor::Tensor ref = models::reference_conv(g, feat, spec);
  std::printf("both match the CPU reference: %s\n",
              tensor::allclose(rf.output, ref, 1e-3, 1e-4) &&
                      tensor::allclose(ru.output, ref, 1e-3, 1e-4)
                  ? "yes"
                  : "NO");

  // Peek at learned attention: strongest in-neighbor of the highest-degree
  // vertex under the softmax weights.
  graph::VertexId hub = 0;
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  const auto logits = models::reference_gat_logits(g, feat, spec.gat);
  const auto base = g.indptr()[static_cast<std::size_t>(hub)];
  const auto ns = g.neighbors(hub);
  std::size_t best = 0;
  for (std::size_t e = 1; e < ns.size(); ++e)
    if (logits[static_cast<std::size_t>(base) + e] >
        logits[static_cast<std::size_t>(base) + best])
      best = e;
  std::printf("hub vertex %d (deg %lld) attends most to neighbor %d\n", hub,
              static_cast<long long>(g.degree(hub)), ns[best]);
  return 0;
}
