// Quickstart: run one TLPGNN graph convolution on a synthetic graph and
// inspect the simulator's profile — the 60-second tour of the public API.
//
//   build/examples/quickstart [--vertices N] [--edges M] [--feature F]
#include <cstdio>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "models/reference.hpp"

int main(int argc, char** argv) {
  using namespace tlp;
  const Args args(argc, argv);
  const auto n = static_cast<graph::VertexId>(args.get_int("vertices", 10'000));
  const auto m = args.get_int("edges", 80'000);
  const std::int64_t f = args.get_int("feature", 32);

  // 1. Build a graph. Real applications would load their own edge list and
  //    call graph::build_csr; here we synthesize a power-law graph.
  Rng rng(7);
  const graph::Csr g = graph::power_law(n, m, 2.3, rng);
  std::printf("graph: %s\n", g.summary().c_str());

  // 2. Make input features and a model spec (GCN here).
  const tensor::Tensor feat = tensor::Tensor::random(g.num_vertices(), f, rng);
  models::ConvSpec spec;
  spec.kind = models::ModelKind::kGcn;

  // 3. Run the convolution with TLPGNN on the simulated V100.
  Engine engine;
  const systems::RunResult result = engine.conv(g, feat, spec);

  std::printf("output: %lld x %lld features\n",
              static_cast<long long>(result.output.rows()),
              static_cast<long long>(result.output.cols()));
  std::printf("kernels launched:   %d (fused — one per convolution)\n",
              result.kernel_launches);
  std::printf("simulated GPU time: %s ms\n",
              fixed(result.gpu_time_ms, 3).c_str());
  std::printf("global mem traffic: %s load, %s store, %s atomic\n",
              human_bytes(result.metrics.bytes_load).c_str(),
              human_bytes(result.metrics.bytes_store).c_str(),
              human_bytes(result.metrics.bytes_atomic).c_str());
  std::printf("achieved occupancy: %s, SM utilization: %s\n",
              pct(result.metrics.achieved_occupancy).c_str(),
              pct(result.metrics.sm_utilization).c_str());

  // 4. Check the result against the CPU reference (always true — the
  //    simulator computes, it does not approximate).
  const tensor::Tensor ref = models::reference_conv(g, feat, spec);
  std::printf("matches CPU reference: %s\n",
              tensor::allclose(result.output, ref, 1e-3, 1e-4) ? "yes" : "NO");
  return 0;
}
