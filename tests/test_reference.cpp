// Hand-computed checks of the CPU reference convolutions — everything else
// in the repo is validated against these, so they get their own scrutiny.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/builder.hpp"
#include "models/reference.hpp"

namespace tlp::models {
namespace {

using graph::build_csr;
using graph::Csr;
using tensor::Tensor;

// 1 -> 0, 2 -> 0 (vertex 0 aggregates from 1 and 2).
Csr fan_in() { return build_csr(3, {{1, 0}, {2, 0}}); }

Tensor unit_features() {
  Tensor h(3, 2);
  h.at(0, 0) = 1.0f;
  h.at(1, 0) = 2.0f;
  h.at(2, 0) = 4.0f;
  h.at(0, 1) = -1.0f;
  h.at(1, 1) = 0.5f;
  h.at(2, 1) = 0.25f;
  return h;
}

TEST(Reference, GcnHandComputed) {
  const Csr g = fan_in();
  const Tensor h = unit_features();
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  const Tensor out = reference_conv(g, h, spec);
  // norm(0) = 1/sqrt(3), norm(1) = norm(2) = 1 (degree 0 + 1).
  const float n0 = 1.0f / std::sqrt(3.0f);
  // out[0] = h0*n0^2 + h1*1*n0 + h2*1*n0
  EXPECT_NEAR(out.at(0, 0), 1.0f * n0 * n0 + (2.0f + 4.0f) * n0, 1e-5);
  EXPECT_NEAR(out.at(0, 1), -1.0f * n0 * n0 + 0.75f * n0, 1e-5);
  // Vertices 1 and 2 have no in-edges: only the self term.
  EXPECT_NEAR(out.at(1, 0), 2.0f, 1e-5);
  EXPECT_NEAR(out.at(2, 1), 0.25f, 1e-5);
}

TEST(Reference, GinHandComputed) {
  const Csr g = fan_in();
  const Tensor h = unit_features();
  ConvSpec spec;
  spec.kind = ModelKind::kGin;
  spec.gin_eps = 0.5f;
  const Tensor out = reference_conv(g, h, spec);
  EXPECT_NEAR(out.at(0, 0), 1.5f * 1.0f + 2.0f + 4.0f, 1e-5);
  EXPECT_NEAR(out.at(1, 0), 1.5f * 2.0f, 1e-5);
}

TEST(Reference, SageMeanHandComputed) {
  const Csr g = fan_in();
  const Tensor h = unit_features();
  ConvSpec spec;
  spec.kind = ModelKind::kSage;
  const Tensor out = reference_conv(g, h, spec);
  EXPECT_NEAR(out.at(0, 0), 3.0f, 1e-5);   // mean(2, 4)
  EXPECT_NEAR(out.at(0, 1), 0.375f, 1e-5); // mean(0.5, 0.25)
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);     // no in-neighbors
}

TEST(Reference, GatSingleNeighborIsIdentity) {
  // With exactly one in-neighbor softmax weight is 1: out = h[neighbor].
  const Csr g = build_csr(2, {{0, 1}});
  Rng rng(1);
  const Tensor h = Tensor::random(2, 8, rng);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 8, rng);
  const Tensor out = reference_conv(g, h, spec);
  for (std::int64_t j = 0; j < 8; ++j)
    EXPECT_NEAR(out.at(1, j), h.at(0, j), 1e-5);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);  // vertex 0 has no in-edges
}

TEST(Reference, GatWeightsSumToOne) {
  // out[v] is a convex combination of neighbor features: with all-ones
  // features the output must be exactly ones.
  Rng rng(2);
  const Csr g = build_csr(4, {{0, 3}, {1, 3}, {2, 3}});
  Tensor h(4, 4);
  h.fill(1.0f);
  const ConvSpec spec = ConvSpec::make(ModelKind::kGat, 4, rng);
  const Tensor out = reference_conv(g, h, spec);
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_NEAR(out.at(3, j), 1.0f, 1e-5);
}

TEST(Reference, GatLogitsMatchManual) {
  const Csr g = build_csr(2, {{0, 1}});
  Tensor h(2, 2);
  h.at(0, 0) = 1.0f;
  h.at(0, 1) = 2.0f;
  h.at(1, 0) = 3.0f;
  h.at(1, 1) = 4.0f;
  GatParams gat;
  gat.attn_src = {0.5f, 0.5f};
  gat.attn_dst = {1.0f, -1.0f};
  gat.leaky_slope = 0.2f;
  const auto logits = reference_gat_logits(g, h, gat);
  ASSERT_EQ(logits.size(), 1u);
  // src half = 0.5*1 + 0.5*2 = 1.5; dst half = 3 - 4 = -1; sum = 0.5 (>= 0).
  EXPECT_NEAR(logits[0], 0.5f, 1e-6);
}

TEST(Reference, GatLogitsLeakyOnNegative) {
  const Csr g = build_csr(2, {{0, 1}});
  Tensor h(2, 1);
  h.at(0, 0) = -10.0f;
  h.at(1, 0) = 0.0f;
  GatParams gat;
  gat.attn_src = {1.0f};
  gat.attn_dst = {1.0f};
  gat.leaky_slope = 0.25f;
  const auto logits = reference_gat_logits(g, h, gat);
  EXPECT_NEAR(logits[0], -2.5f, 1e-6);  // leaky(-10) = -2.5
}

TEST(Reference, GcnNormValues) {
  const auto norm = gcn_norm(fan_in());
  EXPECT_NEAR(norm[0], 1.0f / std::sqrt(3.0f), 1e-6);
  EXPECT_NEAR(norm[1], 1.0f, 1e-6);
}

TEST(Reference, RejectsShapeMismatch) {
  const Csr g = fan_in();
  ConvSpec spec;
  EXPECT_THROW(reference_conv(g, Tensor(2, 4), spec), tlp::CheckError);
}

TEST(Reference, EmptyGraphAllModels) {
  const Csr g = build_csr(4, {});
  Rng rng(3);
  const Tensor h = Tensor::random(4, 4, rng);
  for (const ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGin, ModelKind::kSage, ModelKind::kGat}) {
    const ConvSpec spec = ConvSpec::make(kind, 4, rng);
    const Tensor out = reference_conv(g, h, spec);
    EXPECT_EQ(out.rows(), 4);
    // Sage/GAT: zero rows. GCN/GIN: self term only.
    if (kind == ModelKind::kSage || kind == ModelKind::kGat) {
      for (const float v : out.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
    }
  }
}

}  // namespace
}  // namespace tlp::models
