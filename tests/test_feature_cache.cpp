// Tests for the pre-sampling feature cache (src/serve/feature_cache.hpp,
// DESIGN.md §12): warm-up determinism, policy ranking, hit/miss accounting
// closure, and the bit-identity contract — cached gathers and cached serving
// (including the fault-storm fallback path) produce byte-identical rows to
// the uncached path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"

namespace tlp::serve {
namespace {

using graph::Csr;
using tensor::Tensor;

struct World {
  Csr g;
  Tensor feat;
  models::ConvSpec spec;
};

World make_world(std::uint64_t seed = 7, graph::VertexId n = 400,
                 std::int64_t m = 2400, std::int64_t f = 8) {
  Rng rng(seed);
  World w;
  w.g = graph::power_law(n, m, 2.3, rng);
  w.feat = Tensor::random(w.g.num_vertices(), f, rng);
  w.spec = models::ConvSpec::make(models::ModelKind::kGcn, f, rng);
  return w;
}

TrafficOptions small_traffic(std::int64_t n = 24) {
  TrafficOptions t;
  t.num_requests = n;
  t.mean_interarrival_ms = 0.5;
  t.hops = 1;
  t.max_ego_vertices = 64;
  t.seed = 99;
  return t;
}

ServerOptions small_server() {
  ServerOptions s;
  s.queue_capacity = 16;
  s.max_batch = 4;
  s.batch_window_ms = 1.0;
  return s;
}

FeatureCacheOptions presample(double ratio = 0.10) {
  FeatureCacheOptions c;
  c.policy = CachePolicy::kPresample;
  c.cache_ratio = ratio;
  return c;
}

bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// --- policy parsing --------------------------------------------------------

TEST(CachePolicyName, RoundTripsAndRejectsUnknown) {
  for (const CachePolicy p : {CachePolicy::kNone, CachePolicy::kDegree,
                              CachePolicy::kPresample}) {
    EXPECT_EQ(cache_policy_from_name(cache_policy_name(p)), p);
  }
  EXPECT_THROW((void)cache_policy_from_name("lru"), CheckError);
}

// --- warm-up / pinning -----------------------------------------------------

TEST(FeatureCache, WarmupIsDeterministicForFixedSeeds) {
  const World w = make_world();
  const TrafficOptions t = small_traffic();
  FeatureCache a(w.g, w.feat, t, presample());
  FeatureCache b(w.g, w.feat, t, presample());
  EXPECT_EQ(a.pinned_vertices(), b.pinned_vertices());

  // A different popularity permutation (traffic seed) pins a different set.
  TrafficOptions other = t;
  other.seed = 1234;
  FeatureCache c(w.g, w.feat, other, presample());
  EXPECT_NE(a.pinned_vertices(), c.pinned_vertices());
}

TEST(FeatureCache, RespectsBudgetAndPolicy) {
  const World w = make_world();
  const TrafficOptions t = small_traffic();
  const auto budget = static_cast<std::int64_t>(
      0.10 * static_cast<double>(w.g.num_vertices()) + 0.5);

  FeatureCacheOptions none;
  none.policy = CachePolicy::kNone;
  FeatureCache off(w.g, w.feat, t, none);
  EXPECT_EQ(off.stats().pinned_rows, 0);

  FeatureCacheOptions deg;
  deg.policy = CachePolicy::kDegree;
  deg.cache_ratio = 0.10;
  FeatureCache by_degree(w.g, w.feat, t, deg);
  EXPECT_EQ(by_degree.stats().pinned_rows, budget);

  FeatureCache by_freq(w.g, w.feat, t, presample(0.10));
  EXPECT_GT(by_freq.stats().pinned_rows, 0);
  EXPECT_LE(by_freq.stats().pinned_rows, budget);  // zero-score rows dropped
  for (const graph::VertexId v : by_freq.pinned_vertices()) {
    EXPECT_TRUE(by_freq.is_pinned(v));
  }
}

// Regression (ISSUE 10): `--cache-rounds 0` is a valid configuration — zero
// warm-up rounds leave every presample score at zero, so drop_zero_scores
// pins nothing and the cache degrades to the uncached gather path (still
// byte-identical) instead of dividing by an empty sample or pinning
// arbitrary rows.
TEST(FeatureCache, ZeroWarmupRoundsPinsNothingAndGathersBitIdentically) {
  const World w = make_world();
  const TrafficOptions t = small_traffic();
  FeatureCacheOptions c = presample(0.25);
  c.warmup_rounds = 0;
  FeatureCache cache(w.g, w.feat, t, c);
  EXPECT_EQ(cache.stats().pinned_rows, 0);
  EXPECT_TRUE(cache.pinned_vertices().empty());

  const auto traffic = generate_traffic(w.g, w.feat, t);
  for (const Request& r : traffic) {
    Tensor cached;
    cache.gather(r.ego.to_global, cached);
    EXPECT_EQ(cached, gather_rows(w.feat, r.ego.to_global)) << "req " << r.id;
  }
  EXPECT_EQ(cache.stats().hit_rows, 0);  // nothing pinned, nothing hits
}

// --- gather: bit-identity + accounting -------------------------------------

TEST(FeatureCache, GatherIsBitIdenticalToUncachedPath) {
  const World w = make_world();
  const TrafficOptions t = small_traffic();
  const auto traffic = generate_traffic(w.g, w.feat, t);
  FeatureCache cache(w.g, w.feat, t, presample(0.25));

  bool any_hit = false;
  for (const Request& r : traffic) {
    Tensor cached;
    cache.gather(r.ego.to_global, cached);
    const Tensor direct = gather_rows(w.feat, r.ego.to_global);
    EXPECT_EQ(cached, direct) << "req " << r.id;
    for (const graph::VertexId v : r.ego.to_global) {
      any_hit |= cache.is_pinned(v);
    }
  }
  EXPECT_TRUE(any_hit) << "sweep never touched the pinned set";
  EXPECT_GT(cache.stats().hit_rows, 0);
}

TEST(FeatureCache, HitMissAccountingSumsToTotalGatherRows) {
  const World w = make_world();
  const TrafficOptions t = small_traffic(32);
  const auto traffic = generate_traffic(w.g, w.feat, t);
  FeatureCache cache(w.g, w.feat, t, presample(0.15));

  std::int64_t total_rows = 0;
  double charge = 0;
  for (const Request& r : traffic) {
    Tensor out;
    charge += cache.gather(r.ego.to_global, out);
    total_rows += static_cast<std::int64_t>(r.ego.to_global.size());
  }
  const CacheStats& cs = cache.stats();
  EXPECT_EQ(cs.hit_rows + cs.miss_rows, total_rows);
  const std::int64_t row_bytes =
      w.feat.cols() * static_cast<std::int64_t>(sizeof(float));
  EXPECT_EQ(cs.bytes_hit, cs.hit_rows * row_bytes);
  EXPECT_EQ(cs.bytes_miss, cs.miss_rows * row_bytes);
  EXPECT_DOUBLE_EQ(cs.gather_ms, charge);
  EXPECT_GE(cs.hit_ratio(), 0.0);
  EXPECT_LE(cs.hit_ratio(), 1.0);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().hit_rows, 0);
  EXPECT_EQ(cache.stats().pinned_rows, cs.pinned_rows);  // pins survive
}

TEST(FeatureCache, MetricsExposeCacheTrafficSplit) {
  const World w = make_world();
  const TrafficOptions t = small_traffic();
  const auto traffic = generate_traffic(w.g, w.feat, t);
  FeatureCache cache(w.g, w.feat, t, presample(0.25));
  Tensor out;
  cache.gather(traffic.front().ego.to_global, out);

  const sim::Metrics m = cache.metrics();
  EXPECT_EQ(m.bytes_cache_hit, static_cast<double>(cache.stats().bytes_hit));
  EXPECT_EQ(m.bytes_cache_miss,
            static_cast<double>(cache.stats().bytes_miss));
  EXPECT_GE(m.peak_device_bytes, cache.stats().pinned_bytes);
}

// --- served-output bit-identity --------------------------------------------

TEST(ServerCache, CachedServingIsBitIdenticalFaultFree) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic());

  Server plain(small_server());
  const ServeResult base = plain.run(traffic, w.spec);

  FeatureCache cache(w.g, w.feat, small_traffic(), presample(0.20));
  Server cached(small_server(), &cache);
  const ServeResult res = cached.run(traffic, w.spec);

  ASSERT_EQ(res.responses.size(), base.responses.size());
  for (std::size_t i = 0; i < res.responses.size(); ++i) {
    EXPECT_EQ(res.responses[i].served(), base.responses[i].served());
    if (res.responses[i].served()) {
      EXPECT_TRUE(
          same_bits(res.responses[i].output, base.responses[i].output))
          << "req " << i;
    }
  }
  // The digest collapses the same claim to one number.
  EXPECT_EQ(res.report.output_digest, base.report.output_digest);

  // Cache accounting reaches the SLO report; executed == all requests here,
  // so the hit/miss split must cover every gathered ego row.
  std::int64_t total_rows = 0;
  for (const Request& r : traffic) {
    total_rows += static_cast<std::int64_t>(r.ego.to_global.size());
  }
  EXPECT_EQ(res.report.cache_policy, "presample");
  EXPECT_EQ(res.report.cache_hit_rows + res.report.cache_miss_rows,
            total_rows);
  EXPECT_GT(res.report.cache_hit_ratio, 0.0);
  EXPECT_GT(res.report.cache_gather_ms, 0.0);
  // The uncached twin reports the cache as absent.
  EXPECT_EQ(base.report.cache_policy, "off");
  EXPECT_EQ(base.report.cache_hit_rows, 0);
}

TEST(ServerCache, StormBitIdentityIncludesFallbackPath) {
  const World w = make_world();
  const auto traffic = generate_traffic(w.g, w.feat, small_traffic(32));

  // Fault-free uncached reference: serves everything on the direct path, so
  // every served cached response has a comparison partner.
  Server plain(small_server());
  const ServeResult base = plain.run(traffic, w.spec);
  ASSERT_EQ(base.report.ok, base.report.total);

  // Storm deep enough to exhaust direct retries and force the partitioned
  // fallback on some requests (mirrors test_serve's degrade storm).
  ServerOptions storm_opts = small_server();
  StormEvent storm;
  storm.at_request = 8;
  storm.plan.oom_every = 60;
  storm.plan.oom_burst_len = 4;
  storm_opts.storms = {storm};

  FeatureCache cache(w.g, w.feat, small_traffic(32), presample(0.20));
  Server cached(storm_opts, &cache);
  const ServeResult res = cached.run(traffic, w.spec);

  EXPECT_GT(res.report.degraded, 0) << "storm never forced the fallback";
  std::int64_t compared = 0;
  for (std::size_t i = 0; i < res.responses.size(); ++i) {
    if (!res.responses[i].served()) continue;
    ++compared;
    EXPECT_TRUE(same_bits(res.responses[i].output, base.responses[i].output))
        << "req " << i << " (" << outcome_name(res.responses[i].outcome)
        << ")";
  }
  EXPECT_GT(compared, 0);
}

}  // namespace
}  // namespace tlp::serve
