// Tests for the discrete-event kernel scheduler: every assignment policy
// processes each item exactly once, and the timing model responds to
// imbalance, occupancy, and throughput floors the way the paper's machine
// does.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace tlp::sim {
namespace {

/// Marks processed items in device memory and charges a per-item cost.
class CountingKernel final : public WarpKernel {
 public:
  CountingKernel(MemorySystem& sys, std::int64_t n,
                 std::vector<double> costs = {})
      : n_(n), costs_(std::move(costs)) {
    marks_ = sys.mem.alloc<std::uint32_t>(n);
    auto v = sys.mem.view(marks_);
    std::fill(v.begin(), v.end(), 0u);
    sys_ = &sys;
  }

  [[nodiscard]] std::int64_t num_items() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "counting"; }

  void run_item(WarpCtx& warp, std::int64_t item) override {
    (void)warp.atomic_add_u32(marks_, item, 1);
    const double cost =
        costs_.empty() ? 10.0 : costs_[static_cast<std::size_t>(item)];
    warp.charge_alu(static_cast<int>(cost));
  }

  [[nodiscard]] std::vector<std::uint32_t> marks() const {
    auto v = sys_->mem.view(marks_);
    return {v.begin(), v.end()};
  }

 private:
  std::int64_t n_;
  std::vector<double> costs_;
  DevPtr<std::uint32_t> marks_;
  MemorySystem* sys_ = nullptr;
};

class SchedulerTest : public ::testing::TestWithParam<Assignment> {};

TEST_P(SchedulerTest, EveryItemProcessedExactlyOnce) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 10'000);
  LaunchConfig cfg;
  cfg.assignment = GetParam();
  KernelRecord rec;
  run_kernel(sys, k, cfg, rec);
  for (const auto m : k.marks()) EXPECT_EQ(m, 1u);
  EXPECT_GT(rec.elapsed_cycles, 0.0);
  EXPECT_GT(rec.warps, 0);
}

TEST_P(SchedulerTest, EmptyKernelOnlyLaunchOverhead) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 0);
  LaunchConfig cfg;
  cfg.assignment = GetParam();
  KernelRecord rec;
  run_kernel(sys, k, cfg, rec);
  EXPECT_EQ(rec.elapsed_cycles, 0.0);
  EXPECT_GT(rec.launch_overhead_us, 0.0);
}

TEST_P(SchedulerTest, OccupancyWithinBounds) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 50'000);
  LaunchConfig cfg;
  cfg.assignment = GetParam();
  KernelRecord rec;
  run_kernel(sys, k, cfg, rec);
  const auto& spec = sys.spec;
  const double occupancy = rec.resident_warp_integral /
                           (rec.elapsed_cycles * spec.num_sms * spec.warps_per_sm);
  EXPECT_GT(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllAssignments, SchedulerTest,
                         ::testing::Values(Assignment::kHardwareDynamic,
                                           Assignment::kStaticChunk,
                                           Assignment::kSoftwarePool),
                         [](const auto& suite_info) {
                           switch (suite_info.param) {
                             case Assignment::kHardwareDynamic:
                               return "hardware";
                             case Assignment::kStaticChunk:
                               return "static";
                             case Assignment::kSoftwarePool:
                               return "software";
                           }
                           return "?";
                         });

TEST(Scheduler, ImbalanceStretchesStaticButNotPool) {
  // A contiguous region of 1000x-heavier items lands entirely inside a few
  // static chunks, while the pool spreads it across every free warp.
  const std::int64_t n = 20'000;
  std::vector<double> costs(static_cast<std::size_t>(n), 4.0);
  for (std::size_t i = 0; i < 400; ++i) costs[i] = 4000.0;

  auto run = [&](Assignment a, int pool_step) {
    MemorySystem sys(GpuSpec::v100());
    CountingKernel k(sys, n, costs);
    LaunchConfig cfg;
    cfg.assignment = a;
    cfg.pool_step = pool_step;
    cfg.grid_blocks = 10;  // constrain the warp budget so balance matters
    KernelRecord rec;
    run_kernel(sys, k, cfg, rec);
    return rec.elapsed_cycles;
  };

  const double pool = run(Assignment::kSoftwarePool, 4);
  const double stat = run(Assignment::kStaticChunk, 4);
  EXPECT_LT(pool, stat);
}

TEST(Scheduler, MoreWarpsPerBlockMeansFewerBlocks) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 1000);
  LaunchConfig cfg;
  cfg.warps_per_block = 4;
  KernelRecord rec4;
  run_kernel(sys, k, cfg, rec4);
  EXPECT_EQ(rec4.blocks, 250);

  CountingKernel k2(sys, 1000);
  cfg.warps_per_block = 16;
  KernelRecord rec16;
  run_kernel(sys, k2, cfg, rec16);
  EXPECT_EQ(rec16.blocks, 63);
}

TEST(Scheduler, ResidentBlocksHonorsThreadSlotLimit) {
  // Regression test: the thread-slot bound divides by warp_size *
  // warps_per_block (threads per block), not by warps_per_block alone. A
  // spec with 1024 thread slots and 8-warp blocks (256 threads each) fits
  // exactly 4 blocks — the warp bound (64/8 = 8) and the hardware slot
  // bound (32) must both lose to it.
  GpuSpec spec = GpuSpec::v100();
  spec.max_threads_per_sm = 1024;
  EXPECT_EQ(resident_blocks_per_sm(spec, 8), 4);
  // With the full 2048 thread slots the warp bound binds instead.
  EXPECT_EQ(resident_blocks_per_sm(GpuSpec::v100(), 8), 8);
  // Degenerate: blocks bigger than every limit still get one slot.
  spec.max_threads_per_sm = 64;
  EXPECT_EQ(resident_blocks_per_sm(spec, 32), 1);
}

TEST(Scheduler, DispatchOverheadGrowsWithBlockCount) {
  // Same tiny work split into 1-warp blocks vs 16-warp blocks: the 1-warp
  // variant dispatches 16x the blocks and pays for it.
  auto run = [&](int wpb) {
    MemorySystem sys(GpuSpec::v100());
    CountingKernel k(sys, 100'000);
    LaunchConfig cfg;
    cfg.warps_per_block = wpb;
    KernelRecord rec;
    run_kernel(sys, k, cfg, rec);
    return rec.elapsed_cycles;
  };
  EXPECT_GT(run(1), run(16));
}

TEST(Scheduler, SoftwarePoolGridOverrideLimitsWarps) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 5'000);
  LaunchConfig cfg;
  cfg.assignment = Assignment::kSoftwarePool;
  cfg.grid_blocks = 2;
  cfg.warps_per_block = 16;
  KernelRecord rec;
  run_kernel(sys, k, cfg, rec);
  EXPECT_EQ(rec.warps, 32);
  for (const auto m : k.marks()) EXPECT_EQ(m, 1u);
}

TEST(Scheduler, ThreadScalingReducesElapsed) {
  // Figure 11's premise: more blocks -> faster, roughly linearly at first.
  auto run = [&](int blocks) {
    MemorySystem sys(GpuSpec::v100());
    CountingKernel k(sys, 200'000);
    LaunchConfig cfg;
    cfg.assignment = Assignment::kSoftwarePool;
    cfg.grid_blocks = blocks;
    KernelRecord rec;
    run_kernel(sys, k, cfg, rec);
    return rec.elapsed_cycles;
  };
  const double t1 = run(1);
  const double t8 = run(8);
  const double t64 = run(64);
  EXPECT_GT(t1, 4.0 * t8);
  EXPECT_GT(t8, 2.0 * t64);
}

TEST(Scheduler, RecordRestoredAfterRun) {
  MemorySystem sys(GpuSpec::v100());
  EXPECT_EQ(sys.rec, nullptr);
  CountingKernel k(sys, 10);
  KernelRecord rec;
  run_kernel(sys, k, {}, rec);
  EXPECT_EQ(sys.rec, nullptr);
}

TEST(Scheduler, RejectsOversizedBlocks) {
  MemorySystem sys(GpuSpec::v100());
  CountingKernel k(sys, 10);
  LaunchConfig cfg;
  cfg.warps_per_block = 64;  // 2048 threads > 1024 max
  KernelRecord rec;
  EXPECT_THROW(run_kernel(sys, k, cfg, rec), tlp::CheckError);
}

}  // namespace
}  // namespace tlp::sim
