// Tests for the synthetic graph generators, including the degree-skew
// properties the dataset replicas rely on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace tlp::graph {
namespace {

TEST(ErdosRenyi, SizeAndNoSelfLoops) {
  Rng rng(1);
  const Csr g = erdos_renyi(100, 500, rng);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_EQ(g.num_edges(), 500);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(ErdosRenyi, Deterministic) {
  Rng a(9), b(9);
  const Csr g1 = erdos_renyi(50, 200, a);
  const Csr g2 = erdos_renyi(50, 200, b);
  EXPECT_EQ(std::vector(g1.indices().begin(), g1.indices().end()),
            std::vector(g2.indices().begin(), g2.indices().end()));
}

TEST(PowerLaw, SizeAndSkew) {
  Rng rng(2);
  const Csr g = power_law(2000, 20000, 2.1, rng);
  EXPECT_EQ(g.num_edges(), 20000);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg, 10.0, 0.01);
  // Heavy-tailed: max degree far above average, high skew.
  EXPECT_GT(s.max, 20 * static_cast<EdgeOffset>(s.avg));
  EXPECT_GT(s.gini, 0.4);
}

TEST(PowerLaw, SteeperExponentIsLessSkewed) {
  Rng r1(3), r2(3);
  const double g_heavy = degree_stats(power_law(2000, 20000, 2.05, r1)).gini;
  const double g_mild = degree_stats(power_law(2000, 20000, 3.5, r2)).gini;
  EXPECT_GT(g_heavy, g_mild);
}

TEST(Rmat, RoundsToPowerOfTwoAndSkewed) {
  Rng rng(4);
  const Csr g = rmat(1000, 8000, rng);
  EXPECT_EQ(g.num_vertices(), 1024);
  EXPECT_EQ(g.num_edges(), 8000);
  EXPECT_GT(degree_stats(g).gini, 0.3);
}

TEST(RegularRing, ExactDegrees) {
  const Csr g = regular_ring(10, 3);
  EXPECT_EQ(g.num_edges(), 30);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(Star, MaxImbalance) {
  const Csr g = star(100);
  EXPECT_EQ(g.degree(0), 99);
  for (VertexId v = 1; v < 100; ++v) EXPECT_EQ(g.degree(v), 0);
}

TEST(Path, Chain) {
  const Csr g = path(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.neighbors(3)[0], 2);
}

TEST(Grid2d, DegreesAndSymmetry) {
  const Csr g = grid2d(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  // 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
  EXPECT_EQ(g.num_edges(), 2 * (3 * 3 + 4 * 2));
  // Corner has 2 in-edges, interior has 4.
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(5), 4);
}

TEST(Complete, AllPairs) {
  const Csr g = complete(5);
  EXPECT_EQ(g.num_edges(), 20);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
}

// Golden structure hashes. These pin the exact bit-level output of each
// seeded generator: any change to an Rng consumption order or a tie-break
// silently invalidates every recorded fuzz repro and dataset replica, so it
// must show up here as a hard failure, not as a flaky benchmark.
TEST(GoldenHash, SeededGeneratorsAreBitStable) {
  Rng er(42), pl(42), rm(42);
  EXPECT_EQ(fingerprint(erdos_renyi(100, 500, er)), 0xa86e7bb1c6f675ebull);
  EXPECT_EQ(fingerprint(power_law(500, 3000, 2.2, pl)),
            0xbd07bee6c74d521full);
  EXPECT_EQ(fingerprint(rmat(256, 2000, rm)), 0xf3a64740bd926c79ull);
}

TEST(GoldenHash, DeterministicGeneratorsAreBitStable) {
  EXPECT_EQ(fingerprint(regular_ring(64, 4)), 0x3aa13f5dd336f60aull);
  EXPECT_EQ(fingerprint(star(50)), 0x41c05652f2f44976ull);
  EXPECT_EQ(fingerprint(path(50)), 0xbb90e24a28f3f146ull);
  EXPECT_EQ(fingerprint(grid2d(5, 7)), 0x3ef9afb5911735d2ull);
  EXPECT_EQ(fingerprint(complete(9)), 0xa1c6ecdc5c1fc8a4ull);
}

TEST(GoldenHash, FingerprintSeesStructure) {
  // Sanity for the digest itself: sensitive to edges, vertex count, and
  // direction; insensitive to nothing we care about.
  EXPECT_NE(fingerprint(star(50)), fingerprint(star(51)));
  EXPECT_NE(fingerprint(path(50)), fingerprint(star(50)));
  EXPECT_EQ(fingerprint(path(50)), fingerprint(path(50)));
}

TEST(DegreeHistogram, BucketsSumToVertices) {
  Rng rng(5);
  const Csr g = power_law(500, 3000, 2.3, rng);
  const auto hist = degree_histogram(g);
  std::int64_t total = 0;
  for (const auto c : hist) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

}  // namespace
}  // namespace tlp::graph
