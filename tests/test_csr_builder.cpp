// Unit tests for the CSR container and the edge-list builder.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"

namespace tlp::graph {
namespace {

Csr diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (pull CSR: row v = in-neighbors)
  return build_csr(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(Csr, BasicShape) {
  const Csr g = diamond();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 1.0);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_EQ(g.degree(3), 2);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Csr, NeighborsAreSources) {
  const Csr g = diamond();
  const auto n3 = g.neighbors(3);
  ASSERT_EQ(n3.size(), 2u);
  EXPECT_EQ(n3[0], 1);
  EXPECT_EQ(n3[1], 2);
}

TEST(Csr, RowsSortedAfterBuild) {
  const Csr g = diamond();
  EXPECT_TRUE(g.rows_sorted());
}

TEST(Csr, ReversedFlipsDirections) {
  const Csr g = diamond();
  const Csr r = g.reversed();
  EXPECT_EQ(r.num_edges(), g.num_edges());
  // In the reverse graph, row 0 holds 0's out-neighbors: 1 and 2.
  const auto n0 = r.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1);
  EXPECT_EQ(n0[1], 2);
  EXPECT_TRUE(r.rows_sorted());
}

TEST(Csr, DoubleReverseIsIdentity) {
  const Csr g = diamond();
  const Csr rr = g.reversed().reversed();
  EXPECT_EQ(std::vector(g.indptr().begin(), g.indptr().end()),
            std::vector(rr.indptr().begin(), rr.indptr().end()));
  EXPECT_EQ(std::vector(g.indices().begin(), g.indices().end()),
            std::vector(rr.indices().begin(), rr.indices().end()));
}

TEST(Csr, ValidateRejectsBadIndptr) {
  EXPECT_THROW(Csr({0, 2, 1}, {0, 0}), CheckError);       // non-monotone
  EXPECT_THROW(Csr({0, 1}, {5}), CheckError);             // index out of range
  EXPECT_THROW(Csr({0, 2}, {0}), CheckError);             // length mismatch
}

TEST(Csr, EmptyGraph) {
  const Csr g = build_csr(3, {});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Builder, RejectsOutOfRangeEdges) {
  EXPECT_THROW(build_csr(2, {{0, 5}}), CheckError);
  EXPECT_THROW(build_csr(2, {{-1, 0}}), CheckError);
}

TEST(Builder, Dedup) {
  const Csr g = build_csr(2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  const Csr multi = build_csr(2, {{0, 1}, {0, 1}}, {.dedup = false});
  EXPECT_EQ(multi.num_edges(), 2);
}

TEST(Builder, SelfLoopOptions) {
  const Csr dropped = build_csr(2, {{0, 0}, {0, 1}}, {.drop_self_loops = true});
  EXPECT_EQ(dropped.num_edges(), 1);
  const Csr added = build_csr(2, {{0, 1}}, {.add_self_loops = true});
  EXPECT_EQ(added.num_edges(), 3);
  EXPECT_EQ(added.degree(0), 1);  // just (0,0)
  EXPECT_EQ(added.degree(1), 2);  // (0,1) and (1,1)
}

TEST(Builder, Symmetrize) {
  const Csr g = build_csr(3, {{0, 1}, {1, 2}}, {.symmetrize = true});
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Builder, EdgeListRoundTrip) {
  const Csr g = diamond();
  const auto edges = to_edge_list(g);
  const Csr g2 = build_csr(4, edges);
  EXPECT_EQ(std::vector(g.indices().begin(), g.indices().end()),
            std::vector(g2.indices().begin(), g2.indices().end()));
}

TEST(Csr, SummaryMentionsCounts) {
  const std::string s = diamond().summary();
  EXPECT_NE(s.find("|V|=4"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
}

}  // namespace
}  // namespace tlp::graph
