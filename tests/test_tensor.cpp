// Tests for the dense tensor substrate and the host-side neural ops.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/tensor.hpp"

namespace tlp::tensor {
namespace {

TEST(Tensor, ShapeAndAccess) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  t.at(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(2, 3), 5.0f);
  EXPECT_FLOAT_EQ(t.row(2)[3], 5.0f);
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng a(1), b(1);
  EXPECT_EQ(Tensor::random(4, 4, a), Tensor::random(4, 4, b));
}

TEST(Tensor, MaxAbsDiffAndAllclose) {
  Tensor a(2, 2), b(2, 2);
  a.at(0, 0) = 1.0f;
  b.at(0, 0) = 1.0001f;
  EXPECT_NEAR(max_abs_diff(a, b), 1e-4, 1e-6);
  EXPECT_TRUE(allclose(a, b, 1e-3, 1e-5));
  EXPECT_FALSE(allclose(a, b, 1e-6, 1e-7));
  EXPECT_FALSE(allclose(a, Tensor(2, 3)));
}

TEST(DenseOps, MatmulAgainstHandComputed) {
  Tensor a(2, 3), w(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float wv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.flat().begin());
  std::copy(wv, wv + 6, w.flat().begin());
  const Tensor c = matmul(a, w);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(DenseOps, MatmulBlockedMatchesNaive) {
  Rng rng(2);
  const Tensor a = Tensor::random(70, 130, rng);
  const Tensor w = Tensor::random(130, 33, rng);
  const Tensor c = matmul(a, w);
  // Naive reference.
  Tensor ref(70, 33);
  for (std::int64_t i = 0; i < 70; ++i)
    for (std::int64_t k = 0; k < 130; ++k)
      for (std::int64_t j = 0; j < 33; ++j)
        ref.at(i, j) += a.at(i, k) * w.at(k, j);
  EXPECT_TRUE(allclose(c, ref, 1e-4, 1e-4));
}

TEST(DenseOps, MatmulRejectsShapeMismatch) {
  EXPECT_THROW(matmul(Tensor(2, 3), Tensor(4, 2)), tlp::CheckError);
}

TEST(DenseOps, Bias) {
  Tensor x(2, 2), b(1, 2);
  b.at(0, 0) = 1.0f;
  b.at(0, 1) = -1.0f;
  const Tensor y = add_bias(x, b);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), -1.0f);
}

TEST(DenseOps, ReluAndLeaky) {
  Tensor x(1, 2);
  x.at(0, 0) = -2.0f;
  x.at(0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(relu(x).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu(x).at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(leaky_relu(x, 0.1f).at(0, 0), -0.2f);
}

TEST(DenseOps, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor x = Tensor::random(5, 7, rng, 10.0f);
  const Tensor y = softmax_rows(x);
  for (std::int64_t r = 0; r < 5; ++r) {
    float sum = 0;
    for (const float v : y.row(r)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(DenseOps, SoftmaxNumericallyStable) {
  Tensor x(1, 2);
  x.at(0, 0) = 1000.0f;
  x.at(0, 1) = 1001.0f;
  const Tensor y = softmax_rows(x);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1), 1.0f, 1e-5);
}

TEST(DenseOps, DropoutRateAndScale) {
  Rng rng(4);
  Tensor x(100, 100);
  x.fill(1.0f);
  const Tensor y = dropout(x, 0.3, rng);
  std::int64_t zeros = 0;
  for (const float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
}

TEST(DenseOps, L2Normalize) {
  Tensor x(1, 2);
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 4.0f;
  const Tensor y = l2_normalize_rows(x);
  EXPECT_NEAR(y.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(y.at(0, 1), 0.8f, 1e-6);
  // Zero rows stay zero (no NaN).
  Tensor z(1, 2);
  EXPECT_FLOAT_EQ(l2_normalize_rows(z).at(0, 0), 0.0f);
}

}  // namespace
}  // namespace tlp::tensor
