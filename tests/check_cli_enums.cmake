# CLI regression check (ISSUE 10): enum-valued flags must reject unknown
# values with exit code 2 and a diagnostic that names the valid set, across
# every tool that parses one — never fall through to a default or die with a
# generic CheckError (exit 1). Invoked by ctest as
#   cmake -DTLPBENCH=... -DTLPGNN_CLI=... -DTLPSERVE=... -DBASELINE=...
#         -P check_cli_enums.cmake

# Case 1: tlpbench --timing-tier with a value that is not a tier.
execute_process(
  COMMAND "${TLPBENCH}" run --only table1 --max-edges 5000
          --timing-tier warp
          --out "${CMAKE_CURRENT_BINARY_DIR}/cli_enums_unused.json"
          --baseline "${BASELINE}"
  RESULT_VARIABLE rc1
  ERROR_VARIABLE err1
  OUTPUT_QUIET)
if(NOT rc1 EQUAL 2)
  message(FATAL_ERROR "tlpbench bad --timing-tier: expected exit 2, got ${rc1}")
endif()
if(NOT err1 MATCHES "timing-tier" OR NOT err1 MATCHES "valid:.*analytical")
  message(FATAL_ERROR
          "tlpbench bad --timing-tier: diagnostic must name the flag and the "
          "valid set, got: ${err1}")
endif()
# The rejected run must not have left a report behind.
if(EXISTS "${CMAKE_CURRENT_BINARY_DIR}/cli_enums_unused.json")
  message(FATAL_ERROR "rejected tlpbench run wrote a report; it must not")
endif()

# Case 2: tlpgnn_cli --timing-tier, same contract on the other front end.
execute_process(
  COMMAND "${TLPGNN_CLI}" run --max-edges 2000 --timing-tier bogus
  RESULT_VARIABLE rc2
  ERROR_VARIABLE err2
  OUTPUT_QUIET)
if(NOT rc2 EQUAL 2)
  message(FATAL_ERROR
          "tlpgnn_cli bad --timing-tier: expected exit 2, got ${rc2}")
endif()
if(NOT err2 MATCHES "timing-tier" OR NOT err2 MATCHES "valid:.*mech")
  message(FATAL_ERROR
          "tlpgnn_cli bad --timing-tier: diagnostic must name the flag and "
          "the valid set, got: ${err2}")
endif()

# Case 3: tlpserve --cache-policy, the pre-existing enum flag swept into the
# same checked-getter path.
execute_process(
  COMMAND "${TLPSERVE}" --max-edges 2000 --requests 4
          --cache-policy lru
  RESULT_VARIABLE rc3
  ERROR_VARIABLE err3
  OUTPUT_QUIET)
if(NOT rc3 EQUAL 2)
  message(FATAL_ERROR "tlpserve bad --cache-policy: expected exit 2, got ${rc3}")
endif()
if(NOT err3 MATCHES "cache-policy" OR NOT err3 MATCHES "valid:.*presample")
  message(FATAL_ERROR
          "tlpserve bad --cache-policy: diagnostic must name the flag and "
          "the valid set, got: ${err3}")
endif()

# Case 4: valid aliases still parse — "mechanistic" is an accepted spelling
# of the default tier, so the checked getter must not be stricter than the
# documented set.
execute_process(
  COMMAND "${TLPGNN_CLI}" run --max-edges 2000 --timing-tier mechanistic
  RESULT_VARIABLE rc4
  ERROR_VARIABLE err4
  OUTPUT_QUIET)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR
          "tlpgnn_cli --timing-tier mechanistic: expected exit 0, got ${rc4} "
          "(${err4})")
endif()
