// Property tests on simulator invariants — randomized sweeps asserting the
// relationships the cost model must preserve regardless of workload
// (DESIGN.md §5).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "kernels/conv_common.hpp"
#include "kernels/gather_pull.hpp"
#include "models/model.hpp"
#include "systems/system.hpp"
#include "systems/tlpgnn_system.hpp"

namespace tlp {
namespace {

using kernels::DeviceGraph;
using models::ModelKind;

struct Workload {
  sim::Device dev;
  graph::Csr g;
  tensor::Tensor h;
  DeviceGraph dg;
  sim::DevPtr<float> dfeat, dout;
  std::int64_t f;

  Workload(std::uint64_t seed, std::int64_t feature) : f(feature) {
    Rng rng(seed);
    g = graph::power_law(400, 3000, 2.0 + rng.next_double(), rng);
    h = tensor::Tensor::random(g.num_vertices(), f, rng);
    dg = kernels::upload_graph(dev, g);
    dfeat = kernels::upload_features(dev, h);
    dout = dev.alloc_zeroed<float>(dg.n * f);
  }

  sim::Metrics run(sim::Assignment a = sim::Assignment::kHardwareDynamic) {
    kernels::GatherPullKernel k(dg, dfeat, dout, f, {ModelKind::kGin, 0.1f});
    sim::LaunchConfig cfg;
    cfg.assignment = a;
    dev.launch(k, cfg);
    return dev.metrics();
  }
};

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, MetricsWithinPhysicalBounds) {
  Workload w(GetParam(), 32);
  const sim::Metrics m = w.run();
  EXPECT_GE(m.sectors_per_request, 1.0);
  EXPECT_LE(m.sectors_per_request, 32.0);
  EXPECT_GE(m.l1_hit_rate, 0.0);
  EXPECT_LE(m.l1_hit_rate, 1.0);
  EXPECT_GT(m.achieved_occupancy, 0.0);
  EXPECT_LE(m.achieved_occupancy, 1.0);
  EXPECT_GT(m.sm_utilization, 0.0);
  EXPECT_LE(m.sm_utilization, 1.0);
  EXPECT_GE(m.scoreboard_stall, 0.0);
}

TEST_P(InvariantSweep, TrafficAtLeastCompulsory) {
  Workload w(GetParam(), 32);
  const sim::Metrics m = w.run();
  // Every edge gathers one 128 B feature row at least once; the output is
  // stored exactly once. Loads can be lower than E*f*4 only through caching,
  // never lower than one cold pass over the feature matrix.
  const double feature_bytes = static_cast<double>(w.g.num_vertices()) * w.f * 4;
  EXPECT_GE(m.bytes_load + 1.0, feature_bytes * 0.5);
  const double store_bytes = static_cast<double>(w.g.num_vertices()) * w.f * 4;
  EXPECT_GE(m.bytes_store, store_bytes);
  // DRAM traffic never exceeds L2-side traffic.
  EXPECT_LE(m.bytes_dram, m.bytes_load + m.bytes_store + m.bytes_atomic + 1.0);
}

TEST_P(InvariantSweep, GpuTimeRespectsBandwidthFloor) {
  Workload w(GetParam(), 64);
  const sim::Metrics m = w.run();
  const auto& spec = w.dev.spec();
  const double dram_floor_ms =
      m.bytes_dram / spec.dram_bytes_per_cycle / (spec.clock_ghz * 1e6);
  EXPECT_GE(m.gpu_time_ms * 1.0001, dram_floor_ms);
}

TEST_P(InvariantSweep, AssignmentChoiceDoesNotChangeTrafficMuch) {
  // Scheduling policy affects *time*, not the compulsory work. Cache hit
  // rates shift slightly with execution order, so allow 25% slack.
  Workload w1(GetParam(), 32), w2(GetParam(), 32);
  const sim::Metrics hw = w1.run(sim::Assignment::kHardwareDynamic);
  const sim::Metrics sw = w2.run(sim::Assignment::kSoftwarePool);
  EXPECT_NEAR(sw.bytes_store, hw.bytes_store, hw.bytes_store * 0.01);
  EXPECT_NEAR(sw.bytes_load, hw.bytes_load, hw.bytes_load * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Invariants, MoreWorkMoreTime) {
  // Elapsed time is monotone in feature size on the same graph.
  double prev = 0.0;
  for (const std::int64_t f : {16, 64, 256}) {
    Workload w(99, f);
    const sim::Metrics m = w.run();
    EXPECT_GT(m.gpu_time_ms, prev);
    prev = m.gpu_time_ms;
  }
}

TEST(Invariants, BiggerGraphMoreTime) {
  auto time_for = [](graph::EdgeOffset edges) {
    Rng rng(5);
    sim::Device dev;
    const graph::Csr g = graph::power_law(500, edges, 2.2, rng);
    const tensor::Tensor h = tensor::Tensor::random(g.num_vertices(), 32, rng);
    const DeviceGraph dg = kernels::upload_graph(dev, g);
    const auto dfeat = kernels::upload_features(dev, h);
    auto dout = dev.alloc_zeroed<float>(dg.n * 32);
    kernels::GatherPullKernel k(dg, dfeat, dout, 32, {ModelKind::kGin, 0.1f});
    dev.launch(k, {});
    return dev.gpu_time_ms();
  };
  EXPECT_GT(time_for(20'000), time_for(2'000));
}

TEST(Invariants, RegisterCachingNeverSlower) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    Workload cached(seed, 32), uncached(seed, 32);
    kernels::GatherPullKernel kc(cached.dg, cached.dfeat, cached.dout, 32,
                                 {ModelKind::kGin, 0.1f}, true);
    cached.dev.launch(kc, {});
    kernels::GatherPullKernel ku(uncached.dg, uncached.dfeat, uncached.dout,
                                 32, {ModelKind::kGin, 0.1f}, false);
    uncached.dev.launch(ku, {});
    EXPECT_LT(cached.dev.gpu_time_ms(), uncached.dev.gpu_time_ms());
    // The uncached variant generates strictly more store traffic (one RMW
    // per edge instead of one store per vertex).
    EXPECT_GT(uncached.dev.metrics().bytes_store,
              cached.dev.metrics().bytes_store);
  }
}

TEST(Invariants, LaunchCountMatchesProfile) {
  Workload w(21, 16);
  (void)w.run();
  (void)w.run();
  EXPECT_EQ(w.dev.metrics().kernel_launches, 2);
  w.dev.reset_profile();
  EXPECT_EQ(w.dev.metrics().kernel_launches, 0);
}

TEST(Invariants, SkewedGraphBenefitsFromDynamicAssignment) {
  // On a highly skewed graph with a constrained grid, the software pool must
  // beat static chunking (the §5 motivation). Degree-sorting the vertex ids
  // clusters the hubs into a few static chunks — the worst case static
  // assignment cannot adapt to.
  Rng rng(33);
  sim::Device dev_static, dev_pool;
  const graph::Csr skewed = graph::power_law(3000, 60'000, 2.05, rng);
  const graph::Csr g =
      graph::apply_permutation(skewed, graph::degree_desc_order(skewed));
  const tensor::Tensor h = tensor::Tensor::random(g.num_vertices(), 32, rng);

  auto run = [&](sim::Device& dev, sim::Assignment a) {
    const DeviceGraph dg = kernels::upload_graph(dev, g);
    const auto dfeat = kernels::upload_features(dev, h);
    auto dout = dev.alloc_zeroed<float>(dg.n * 32);
    kernels::GatherPullKernel k(dg, dfeat, dout, 32, {ModelKind::kGin, 0.1f});
    sim::LaunchConfig cfg;
    cfg.assignment = a;
    cfg.grid_blocks = 20;
    cfg.pool_step = 8;
    dev.launch(k, cfg);
    return dev.gpu_time_ms();
  };
  EXPECT_LT(run(dev_pool, sim::Assignment::kSoftwarePool),
            run(dev_static, sim::Assignment::kStaticChunk));
}

}  // namespace
}  // namespace tlp
