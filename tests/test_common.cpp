// Unit tests for src/common: rng, stats, formatting, table, CLI, checks.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace tlp {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(TLP_CHECK(1 == 2), CheckError);
  try {
    TLP_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RangeBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = r.next_range(5, 17);
    EXPECT_GE(x, 5);
    EXPECT_LT(x, 17);
  }
}

TEST(Rng, NextBelowUniformish) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(r.next_below(10))]++;
  for (const int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(3);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitIndependentStreams) {
  Rng a(5);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Stats, MeanGeomeanStddev) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt((1 + 4 + 16) / 3.0 - 49.0 / 9.0), 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

// Edge cases of the documented inclusive-interpolation rule (stats.hpp):
// empty and single-sample inputs, exact endpoints, and hand-computed
// interior interpolations — the rule SloReport's p50/p99 inherit.
TEST(Stats, PercentileEdgeCases) {
  // Empty input reports 0 for every q, including the endpoints.
  EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 1.0), 0.0);
  // A single sample is every percentile of itself.
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.37), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 1.0), 7.5);
  // q = 1.0 must return the maximum exactly — position q*(n-1) is the last
  // order statistic with zero fractional part, not an out-of-range read.
  EXPECT_DOUBLE_EQ(percentile({2, 9, 4}, 1.0), 9.0);
  // Interior interpolation, hand-computed: sorted {10, 20, 40}, position
  // 0.25 * 2 = 0.5 -> halfway between 10 and 20.
  EXPECT_DOUBLE_EQ(percentile({40, 10, 20}, 0.25), 15.0);
  // p99 over 1..100: position 0.99 * 99 = 98.01 -> 99 + 0.01 * (100 - 99).
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = static_cast<double>(i + 1);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 99.01);
  // Out-of-range q is a caller bug, not a clamp.
  EXPECT_THROW(percentile({1.0}, -0.1), CheckError);
  EXPECT_THROW(percentile({1.0}, 1.1), CheckError);
}

TEST(Stats, GiniUniformZeroSkewedHigh) {
  EXPECT_NEAR(gini({1, 1, 1, 1}), 0.0, 1e-12);
  EXPECT_GT(gini({0, 0, 0, 100}), 0.7);
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(1500), "1.5K");
  EXPECT_EQ(human_count(2400000), "2.4M");
  EXPECT_EQ(human_count(1.2e9), "1.2B");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512B");
  EXPECT_EQ(human_bytes(2048), "2.00KB");
  EXPECT_EQ(human_bytes(3.5 * 1024 * 1024), "3.50MB");
}

TEST(Format, FixedAndPct) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.411), "41.1%");
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Cli, ParsesNamedAndPositional) {
  // Note: a bare boolean flag must not be directly followed by a positional
  // argument (the parser would read it as the flag's value).
  const char* argv[] = {"prog", "pos1", "--alpha", "2.5", "--name=x",
                        "--flag"};
  Args args(6, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 2.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

}  // namespace
}  // namespace tlp
