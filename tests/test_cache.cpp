// Tests for the set-associative tag cache model.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "common/check.hpp"
#include "sim/cache.hpp"

namespace tlp::sim {
namespace {

/// Naive reference LRU model: per set, an ordered map from line to the tick
/// of its last use. Deliberately written with none of the production model's
/// optimizations (no flat arrays, no shift/mask indexing, no MRU filter) so
/// the differential test below exercises the rewrite against an obviously
/// correct implementation, including the victim tie-break on equal ages
/// (never happens with a global tick, but the structure keeps it explicit).
class ReferenceLru {
 public:
  ReferenceLru(std::int64_t capacity_bytes, int line_bytes, int ways)
      : line_bytes_(line_bytes),
        ways_(ways),
        sets_(static_cast<std::size_t>(capacity_bytes / line_bytes / ways)) {}

  bool access(std::uint64_t byte_addr) {
    const std::uint64_t line =
        byte_addr / static_cast<std::uint64_t>(line_bytes_);
    auto& set = sets_[static_cast<std::size_t>(
        line % static_cast<std::uint64_t>(sets_.size()))];
    ++tick_;
    auto it = set.find(line);
    if (it != set.end()) {
      it->second = tick_;
      return true;
    }
    if (static_cast<int>(set.size()) == ways_) {
      auto victim = set.begin();
      for (auto i = set.begin(); i != set.end(); ++i)
        if (i->second < victim->second) victim = i;
      set.erase(victim);
    }
    set.emplace(line, tick_);
    return false;
  }

 private:
  int line_bytes_;
  int ways_;
  std::vector<std::map<std::uint64_t, std::uint64_t>> sets_;
  std::uint64_t tick_ = 0;
};

// Differential stress test guarding the flat tag-array rewrite: random
// address streams (mixes of uniform-random lines, hot working sets, and
// sequential sweeps) must produce the exact hit/miss sequence of the naive
// ordered-map reference across power-of-two and non-power-of-two set counts
// and associativities.
TEST(Cache, DifferentialVsReferenceLru) {
  struct Geometry {
    std::int64_t capacity;
    int line_bytes;
    int ways;
  };
  const Geometry geoms[] = {
      {1024, 128, 1},      // 8 sets, direct-mapped
      {1024, 128, 2},      // 4 sets
      {2048, 128, 4},      // 4 sets
      {6144, 128, 4},      // 12 sets (non-power-of-two, like the V100 L2)
      {768, 128, 6},       // 1 set, fully associative
      {96, 32, 3},         // non-power-of-two line count per set
      {4096, 64, 8},       // 8 sets x 8 ways, 64 B lines
  };
  std::mt19937_64 rng(0xF00Du);
  for (const auto& g : geoms) {
    SetAssocCache model(g.capacity, g.line_bytes, g.ways);
    ReferenceLru ref(g.capacity, g.line_bytes, g.ways);
    const std::uint64_t lines =
        static_cast<std::uint64_t>(g.capacity / g.line_bytes);
    std::uniform_int_distribution<std::uint64_t> wide(0, 4 * lines);
    std::uniform_int_distribution<std::uint64_t> hot(0, lines / 2 + 1);
    std::uint64_t seq = 0;
    for (int i = 0; i < 20000; ++i) {
      std::uint64_t line;
      switch (i % 4) {
        case 0: line = wide(rng); break;
        case 1: case 2: line = hot(rng); break;
        default: line = seq++ % (2 * lines); break;
      }
      const std::uint64_t a =
          line * static_cast<std::uint64_t>(g.line_bytes) +
          (rng() % static_cast<std::uint64_t>(g.line_bytes));
      ASSERT_EQ(model.access(a), ref.access(a))
          << "geometry " << g.capacity << "/" << g.line_bytes << "/"
          << g.ways << " diverged at access " << i;
    }
  }
}

// The old implementation marked empty ways with an all-ones tag sentinel; a
// line whose index is actually ~0 (the very top of the address space) would
// have produced a bogus cold hit. The rewrite tracks emptiness via the
// last-use tick instead, so the first access to such a line must miss.
TEST(Cache, AllOnesLineIsNotASentinel) {
  SetAssocCache c(1024, 1, 4);  // 1-byte lines: line index == byte address
  EXPECT_FALSE(c.access(~std::uint64_t{0}));  // cold: must miss
  EXPECT_TRUE(c.access(~std::uint64_t{0}));
  c.reset();
  EXPECT_FALSE(c.access(~std::uint64_t{0}));  // reset: cold again
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same 128 B line
  EXPECT_EQ(c.accesses(), 3);
  EXPECT_EQ(c.hits(), 2);
}

TEST(Cache, DistinctLinesMiss) {
  SetAssocCache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(Cache, LruEviction) {
  // 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
  SetAssocCache c(512, 128, 2);
  ASSERT_EQ(c.num_sets(), 2);
  EXPECT_FALSE(c.access(0 * 128));
  EXPECT_FALSE(c.access(2 * 128));
  EXPECT_TRUE(c.access(0 * 128));   // refresh line 0
  EXPECT_FALSE(c.access(4 * 128));  // evicts line 2 (LRU)
  EXPECT_TRUE(c.access(0 * 128));   // line 0 survived
  EXPECT_FALSE(c.access(2 * 128));  // line 2 was evicted
}

TEST(Cache, ContainsDoesNotTouch) {
  SetAssocCache c(512, 128, 2);
  EXPECT_FALSE(c.contains(0));
  c.access(0);
  EXPECT_TRUE(c.contains(0));
  EXPECT_EQ(c.accesses(), 1);  // contains() did not count
}

TEST(Cache, CapacityWorkingSet) {
  // 8 KB cache: 64 lines. A 32-line working set must fit entirely.
  SetAssocCache c(8192, 128, 4);
  for (int rep = 0; rep < 3; ++rep) {
    for (int line = 0; line < 32; ++line)
      c.access(static_cast<std::uint64_t>(line) * 128);
  }
  // First sweep misses, the remaining two hit fully.
  EXPECT_EQ(c.hits(), 64);
}

TEST(Cache, ThrashingWorkingSet) {
  // Working set 4x the capacity with a sequential sweep: ~zero hits.
  SetAssocCache c(1024, 128, 2);  // 8 lines
  for (int rep = 0; rep < 3; ++rep) {
    for (int line = 0; line < 32; ++line)
      c.access(static_cast<std::uint64_t>(line) * 128);
  }
  EXPECT_LT(c.hit_rate(), 0.05);
}

TEST(Cache, ResetClearsState) {
  SetAssocCache c(1024, 128, 2);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0);
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(100, 128, 3), tlp::CheckError);
}

}  // namespace
}  // namespace tlp::sim
