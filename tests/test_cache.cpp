// Tests for the set-associative tag cache model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/cache.hpp"

namespace tlp::sim {
namespace {

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same 128 B line
  EXPECT_EQ(c.accesses(), 3);
  EXPECT_EQ(c.hits(), 2);
}

TEST(Cache, DistinctLinesMiss) {
  SetAssocCache c(1024, 128, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(Cache, LruEviction) {
  // 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
  SetAssocCache c(512, 128, 2);
  ASSERT_EQ(c.num_sets(), 2);
  EXPECT_FALSE(c.access(0 * 128));
  EXPECT_FALSE(c.access(2 * 128));
  EXPECT_TRUE(c.access(0 * 128));   // refresh line 0
  EXPECT_FALSE(c.access(4 * 128));  // evicts line 2 (LRU)
  EXPECT_TRUE(c.access(0 * 128));   // line 0 survived
  EXPECT_FALSE(c.access(2 * 128));  // line 2 was evicted
}

TEST(Cache, ContainsDoesNotTouch) {
  SetAssocCache c(512, 128, 2);
  EXPECT_FALSE(c.contains(0));
  c.access(0);
  EXPECT_TRUE(c.contains(0));
  EXPECT_EQ(c.accesses(), 1);  // contains() did not count
}

TEST(Cache, CapacityWorkingSet) {
  // 8 KB cache: 64 lines. A 32-line working set must fit entirely.
  SetAssocCache c(8192, 128, 4);
  for (int rep = 0; rep < 3; ++rep) {
    for (int line = 0; line < 32; ++line)
      c.access(static_cast<std::uint64_t>(line) * 128);
  }
  // First sweep misses, the remaining two hit fully.
  EXPECT_EQ(c.hits(), 64);
}

TEST(Cache, ThrashingWorkingSet) {
  // Working set 4x the capacity with a sequential sweep: ~zero hits.
  SetAssocCache c(1024, 128, 2);  // 8 lines
  for (int rep = 0; rep < 3; ++rep) {
    for (int line = 0; line < 32; ++line)
      c.access(static_cast<std::uint64_t>(line) * 128);
  }
  EXPECT_LT(c.hit_rate(), 0.05);
}

TEST(Cache, ResetClearsState) {
  SetAssocCache c(1024, 128, 2);
  c.access(0);
  c.reset();
  EXPECT_EQ(c.accesses(), 0);
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(100, 128, 3), tlp::CheckError);
}

}  // namespace
}  // namespace tlp::sim
