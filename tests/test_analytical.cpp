// Differential suite for the pluggable timing tiers (DESIGN.md §13): every
// kernel strategy x the three analytical_cases.hpp graph shapes, run under
// both tiers.
//
// The mechanistic tier is pinned *exactly*: the formatted counter record of
// each case must match tests/goldens/mech_counters.txt byte for byte — the
// golden file was generated against the pre-refactor build, so any drift in
// the functional layer or the mechanistic backend fails here first.
//
// The analytical tier is validated by *bands*: functional counters (what
// bytes move) must be identical to the mechanistic run, modeled counters
// (what the caches/latency formulas derive) must land inside the declared
// envelope. The envelope mirrors the measured analytical/mechanistic ratio
// range across the full matrix, with headroom; bench/baseline.json carries
// the same style of ratio_band assertions at bench scale.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "analytical_cases.hpp"
#include "sim/timing.hpp"

namespace tlp::testing {
namespace {

// Declared analytical/mechanistic ratio bands for the modeled metrics. The
// wide bytes_load ceiling is the documented uniform-sharing limitation: the
// model assumes distinct lines are compulsory-missed once per active SM, so
// partitioned reuse patterns (the ring shape) overestimate L1 refill
// traffic; see DESIGN.md §13.
struct Band {
  double lo, hi;
};
constexpr Band kBytesLoadBand{0.5, 20.0};
constexpr Band kBytesDramBand{0.9, 6.0};
constexpr Band kMemStallBand{0.4, 8.0};
constexpr Band kElapsedBand{0.5, 5.0};

/// name ("<runner> <graph>") -> full formatted record, parsed from the
/// committed golden file.
std::map<std::string, std::string> load_goldens() {
  const std::string path =
      std::string(TLP_SOURCE_DIR) + "/tests/goldens/mech_counters.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::map<std::string, std::string> out;
  std::string line, key, body;
  while (std::getline(in, line)) {
    if (line.rfind("case ", 0) == 0) {
      if (!key.empty()) out[key] = body;
      key = line.substr(5);
      body = line + "\n";
    } else if (!key.empty()) {
      body += line + "\n";
    }
  }
  if (!key.empty()) out[key] = body;
  return out;
}

CounterSums run_case(const fuzz::KernelRunner& runner, const graph::Csr& g,
                     sim::TimingTier tier) {
  sim::DeviceOptions opts;
  opts.timing_tier = tier;
  sim::Device dev(sim::GpuSpec::v100(), opts);
  const models::ConvSpec spec = analytical_spec(runner.name);
  const tensor::Tensor h = analytical_features(g.num_vertices());
  (void)runner.run(dev, g, h, spec, sim::LaunchConfig{});
  return sum_counters(dev);
}

void expect_in_band(const char* what, double ana, double mech, Band band,
                    const std::string& label) {
  if (mech == 0.0) {
    EXPECT_EQ(ana, 0.0) << label << ": " << what
                        << " is zero mechanistically but not analytically";
    return;
  }
  const double ratio = ana / mech;
  EXPECT_GE(ratio, band.lo) << label << ": " << what << " ratio " << ratio
                            << " below band [" << band.lo << ", " << band.hi
                            << "] (ana " << ana << ", mech " << mech << ")";
  EXPECT_LE(ratio, band.hi) << label << ": " << what << " ratio " << ratio
                            << " above band [" << band.lo << ", " << band.hi
                            << "] (ana " << ana << ", mech " << mech << ")";
}

// The mechanistic tier must stay byte-identical to the pre-refactor goldens:
// every counter of every (strategy, shape) case, doubles round-tripped at
// full precision.
TEST(TimingTiers, MechanisticMatchesPreRefactorGoldens) {
  const auto goldens = load_goldens();
  const auto graphs = analytical_graphs();
  ASSERT_EQ(goldens.size(), fuzz::kernel_runners().size() * graphs.size());
  for (const auto& runner : fuzz::kernel_runners()) {
    for (const auto& gc : graphs) {
      const CounterSums s =
          run_case(runner, gc.g, sim::TimingTier::kMechanistic);
      const std::string key = runner.name + " " + gc.name;
      const auto it = goldens.find(key);
      ASSERT_NE(it, goldens.end()) << "no golden for case " << key;
      EXPECT_EQ(format_case(runner.name, gc.name, s), it->second)
          << "mechanistic counters drifted for case " << key;
    }
  }
}

// The analytical tier shares the functional layer, so everything that
// describes what the kernel *does* — requests, sectors, stored/atomic
// bytes, line probes, atomic serialization, issue work — is identical; only
// the cache-derived metrics are modeled, and those must land in the
// declared bands.
TEST(TimingTiers, AnalyticalWithinDeclaredBandsOfMechanistic) {
  const auto graphs = analytical_graphs();
  for (const auto& runner : fuzz::kernel_runners()) {
    for (const auto& gc : graphs) {
      const std::string label = runner.name + " " + gc.name;
      const CounterSums m =
          run_case(runner, gc.g, sim::TimingTier::kMechanistic);
      const CounterSums a =
          run_case(runner, gc.g, sim::TimingTier::kAnalytical);

      // Functional: identical by construction.
      EXPECT_EQ(a.requests, m.requests) << label;
      EXPECT_EQ(a.sectors, m.sectors) << label;
      EXPECT_EQ(a.bytes_store, m.bytes_store) << label;
      EXPECT_EQ(a.bytes_atomic, m.bytes_atomic) << label;
      EXPECT_EQ(a.atomic_ops, m.atomic_ops) << label;
      EXPECT_EQ(a.l1_accesses, m.l1_accesses) << label;
      EXPECT_DOUBLE_EQ(a.issue_cycles, m.issue_cycles) << label;
      EXPECT_DOUBLE_EQ(a.atomic_stall_cycles, m.atomic_stall_cycles) << label;

      // Modeled: inside the declared envelope.
      expect_in_band("bytes_load", static_cast<double>(a.bytes_load),
                     static_cast<double>(m.bytes_load), kBytesLoadBand, label);
      expect_in_band("bytes_dram", static_cast<double>(a.bytes_dram),
                     static_cast<double>(m.bytes_dram), kBytesDramBand, label);
      expect_in_band("mem_stall_cycles", a.mem_stall_cycles,
                     m.mem_stall_cycles, kMemStallBand, label);
      expect_in_band("elapsed_cycles", a.elapsed_cycles, m.elapsed_cycles,
                     kElapsedBand, label);

      // Internal consistency of the modeled cache hierarchy.
      EXPECT_GE(a.l1_hits, 0) << label;
      EXPECT_LE(a.l1_hits, a.l1_accesses) << label;
      EXPECT_LE(a.l2_hits, a.l2_accesses) << label;
    }
  }
}

// Tier selection is per-device: two devices over the same workload, one per
// tier, never share accounting state, and the tier is reported faithfully.
TEST(TimingTiers, TierNamesRoundTrip) {
  sim::TimingTier t = sim::TimingTier::kMechanistic;
  EXPECT_TRUE(sim::timing_tier_from_name("analytical", t));
  EXPECT_EQ(t, sim::TimingTier::kAnalytical);
  EXPECT_TRUE(sim::timing_tier_from_name("mech", t));
  EXPECT_EQ(t, sim::TimingTier::kMechanistic);
  EXPECT_TRUE(sim::timing_tier_from_name("mechanistic", t));
  EXPECT_EQ(t, sim::TimingTier::kMechanistic);
  t = sim::TimingTier::kAnalytical;
  EXPECT_FALSE(sim::timing_tier_from_name("warp", t));
  EXPECT_EQ(t, sim::TimingTier::kAnalytical);  // unchanged on failure
}

}  // namespace
}  // namespace tlp::testing
