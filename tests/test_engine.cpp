// Tests for the tlp::Engine public facade.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "models/reference.hpp"
#include "tensor/dense_ops.hpp"

namespace tlp {
namespace {

using models::ConvSpec;
using models::ModelKind;
using tensor::Tensor;

TEST(Engine, ConvMatchesReference) {
  Rng rng(1);
  const graph::Csr g = graph::power_law(200, 1200, 2.3, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 32, rng);
  Engine engine;
  for (const ModelKind kind : models::kAllModels) {
    const ConvSpec spec = ConvSpec::make(kind, 32, rng);
    const systems::RunResult r = engine.conv(g, h, spec);
    const Tensor ref = models::reference_conv(g, h, spec);
    EXPECT_TRUE(tensor::allclose(r.output, ref, 1e-3, 1e-4))
        << models::model_name(kind);
  }
}

TEST(Engine, ConvRejectsShapeMismatch) {
  Rng rng(2);
  const graph::Csr g = graph::path(10);
  const Tensor h = Tensor::random(5, 8, rng);
  Engine engine;
  ConvSpec spec;
  EXPECT_THROW(engine.conv(g, h, spec), CheckError);
}

TEST(Engine, LayerAppliesThreePhases) {
  Rng rng(3);
  const graph::Csr g = graph::power_law(100, 600, 2.3, rng);
  const Tensor h = Tensor::random(g.num_vertices(), 16, rng);
  const Tensor w = Tensor::random(16, 8, rng);
  Engine engine;
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  const Tensor out = engine.layer(g, h, w, spec, /*relu=*/true);
  // Reference: matmul -> conv -> relu.
  const Tensor ref = tensor::relu(
      models::reference_conv(g, tensor::matmul(h, w), spec));
  EXPECT_TRUE(tensor::allclose(out, ref, 1e-3, 1e-4));
  // ReLU clamps: no negatives.
  for (const float v : out.flat()) EXPECT_GE(v, 0.0f);
  EXPECT_EQ(out.cols(), 8);
}

TEST(Engine, LastRunExposesMetrics) {
  Rng rng(4);
  const graph::Csr g = graph::path(64);
  const Tensor h = Tensor::random(g.num_vertices(), 8, rng);
  Engine engine;
  ConvSpec spec;
  (void)engine.conv(g, h, spec);
  EXPECT_EQ(engine.last_run().kernel_launches, 1);
  EXPECT_GT(engine.last_run().gpu_time_ms, 0.0);
}

TEST(Engine, CustomGpuSpecPropagates) {
  EngineOptions opts;
  opts.gpu.num_sms = 4;
  Engine engine(opts);
  EXPECT_EQ(engine.device().spec().num_sms, 4);
}

TEST(Engine, TwoLayerPipelineRuns) {
  // A small end-to-end 2-layer GCN forward pass, as in the examples.
  Rng rng(5);
  const graph::Csr g = graph::power_law(150, 800, 2.3, rng);
  const Tensor x = Tensor::random(g.num_vertices(), 32, rng);
  const Tensor w1 = Tensor::random(32, 16, rng, 0.3f);
  const Tensor w2 = Tensor::random(16, 4, rng, 0.3f);
  Engine engine;
  ConvSpec spec;
  spec.kind = ModelKind::kGcn;
  const Tensor h1 = engine.layer(g, x, w1, spec, true);
  const Tensor logits = engine.layer(g, h1, w2, spec, false);
  EXPECT_EQ(logits.rows(), g.num_vertices());
  EXPECT_EQ(logits.cols(), 4);
  const Tensor probs = tensor::softmax_rows(logits);
  for (std::int64_t r = 0; r < probs.rows(); ++r) {
    float sum = 0;
    for (const float v : probs.row(r)) sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
}

}  // namespace
}  // namespace tlp
