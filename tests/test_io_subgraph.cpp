// Tests for graph file I/O and partition-local subgraph extraction.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/subgraph.hpp"

namespace tlp::graph {
namespace {

bool same_structure(const Csr& a, const Csr& b) {
  return std::vector(a.indptr().begin(), a.indptr().end()) ==
             std::vector(b.indptr().begin(), b.indptr().end()) &&
         std::vector(a.indices().begin(), a.indices().end()) ==
             std::vector(b.indices().begin(), b.indices().end());
}

TEST(EdgeListIo, RoundTrip) {
  Rng rng(1);
  const Csr g = power_law(100, 700, 2.3, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Csr g2 = read_edge_list(ss, g.num_vertices());
  EXPECT_TRUE(same_structure(g, g2));
}

TEST(EdgeListIo, CommentsAndVertexCount) {
  std::stringstream ss("# comment\n% also comment\n0 1\n2 0\n");
  const Csr g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.neighbors(0)[0], 2);
}

TEST(EdgeListIo, RejectsMalformed) {
  std::stringstream bad("0 not-a-number\n");
  EXPECT_THROW(read_edge_list(bad), tlp::CheckError);
  std::stringstream neg("-1 0\n");
  EXPECT_THROW(read_edge_list(neg), tlp::CheckError);
  std::stringstream small("0 9\n");
  EXPECT_THROW(read_edge_list(small, 3), tlp::CheckError);
}

TEST(MatrixMarketIo, GeneralPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  const Csr g = read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  // Entry (1,2): row 1 aggregates from column 2 -> edge 1 -> 0 (0-based).
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.degree(2), 1);
}

TEST(MatrixMarketIo, SymmetricMirrors) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const Csr g = read_matrix_market(ss);
  EXPECT_EQ(g.num_edges(), 3);  // (2,1) mirrored, diagonal (3,3) not
}

TEST(MatrixMarketIo, RejectsBadHeader) {
  std::stringstream no_banner("3 3 1\n1 1\n");
  EXPECT_THROW(read_matrix_market(no_banner), tlp::CheckError);
  std::stringstream rect("%%MatrixMarket matrix coordinate pattern general\n"
                         "3 4 1\n1 1\n");
  EXPECT_THROW(read_matrix_market(rect), tlp::CheckError);
}

TEST(BinaryIo, RoundTrip) {
  Rng rng(2);
  const Csr g = power_law(500, 4000, 2.2, rng);
  std::stringstream ss;
  write_binary_csr(ss, g);
  const Csr g2 = read_binary_csr(ss);
  EXPECT_TRUE(same_structure(g, g2));
}

TEST(BinaryIo, RejectsGarbage) {
  std::stringstream ss("this is not a binary CSR stream at all");
  EXPECT_THROW(read_binary_csr(ss), tlp::CheckError);
}

TEST(Subgraph, PartitionCoversAllEdgesOnce) {
  Rng rng(3);
  const Csr g = power_law(400, 3000, 2.3, rng);
  const PartitionResult part = partition_greedy(g, 3);
  std::int64_t edges = 0, owned = 0;
  for (int p = 0; p < 3; ++p) {
    const LocalGraph lg = extract_partition(g, part.part, p);
    edges += lg.csr.num_edges();
    owned += lg.num_owned;
    // Halo rows have no in-edges in the local graph.
    for (graph::VertexId v = lg.num_owned; v < lg.csr.num_vertices(); ++v)
      EXPECT_EQ(lg.csr.degree(v), 0);
  }
  EXPECT_EQ(edges, g.num_edges());
  EXPECT_EQ(owned, g.num_vertices());
}

TEST(Subgraph, PartitionPreservesNeighborhoods) {
  Rng rng(4);
  const Csr g = power_law(200, 1500, 2.3, rng);
  const PartitionResult part = partition_greedy(g, 2);
  const LocalGraph lg = extract_partition(g, part.part, 0);
  for (graph::VertexId lv = 0; lv < lg.num_owned; ++lv) {
    const graph::VertexId gv = lg.to_global[static_cast<std::size_t>(lv)];
    const auto local_n = lg.csr.neighbors(lv);
    const auto global_n = g.neighbors(gv);
    ASSERT_EQ(local_n.size(), global_n.size());
    // Map local neighbors back to global ids; sets must match.
    std::vector<graph::VertexId> mapped;
    for (const auto lu : local_n)
      mapped.push_back(lg.to_global[static_cast<std::size_t>(lu)]);
    std::sort(mapped.begin(), mapped.end());
    std::vector<graph::VertexId> expect(global_n.begin(), global_n.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(mapped, expect);
  }
}

TEST(Subgraph, InducedDropsCrossEdges) {
  // Path 0->1->2->3, keep {0,1,3}: only edge 0->1 survives.
  const Csr g = path(4);
  const LocalGraph lg = induced_subgraph(g, {true, true, false, true});
  EXPECT_EQ(lg.csr.num_vertices(), 3);
  EXPECT_EQ(lg.csr.num_edges(), 1);
  EXPECT_EQ(lg.to_global[2], 3);
  EXPECT_EQ(lg.csr.neighbors(1)[0], 0);
}

TEST(Subgraph, InducedEmptyAndFull) {
  const Csr g = complete(5);
  const LocalGraph none = induced_subgraph(g, std::vector<bool>(5, false));
  EXPECT_EQ(none.csr.num_vertices(), 0);
  const LocalGraph all = induced_subgraph(g, std::vector<bool>(5, true));
  EXPECT_EQ(all.csr.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace tlp::graph
