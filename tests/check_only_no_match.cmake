# CLI regression check: a --only selection that matches nothing must fail
# with exit code 2 and a loud diagnostic, never write an empty report that
# would vacuously pass every shape assertion. Invoked by ctest as
#   cmake -DTLPBENCH=... -DBASELINE=... -P check_only_no_match.cmake

# Case 1: a name that is not a bench.
execute_process(
  COMMAND "${TLPBENCH}" run --only no_such_bench
          --out "${CMAKE_CURRENT_BINARY_DIR}/only_no_match.json"
          --baseline "${BASELINE}"
  RESULT_VARIABLE rc1
  ERROR_VARIABLE err1
  OUTPUT_QUIET)
if(NOT rc1 EQUAL 2)
  message(FATAL_ERROR "unknown --only name: expected exit 2, got ${rc1}")
endif()
if(NOT err1 MATCHES "unknown bench")
  message(FATAL_ERROR "unknown --only name: missing diagnostic, got: ${err1}")
endif()

# Case 2: an empty selection (no names survive CSV parsing).
execute_process(
  COMMAND "${TLPBENCH}" run --only ""
          --out "${CMAKE_CURRENT_BINARY_DIR}/only_no_match.json"
          --baseline "${BASELINE}"
  RESULT_VARIABLE rc2
  ERROR_VARIABLE err2
  OUTPUT_QUIET)
if(NOT rc2 EQUAL 2)
  message(FATAL_ERROR "empty --only selection: expected exit 2, got ${rc2}")
endif()
if(NOT err2 MATCHES "matched no benchmarks")
  message(FATAL_ERROR "empty --only selection: missing diagnostic, got: ${err2}")
endif()

# The failed runs must not have left a report behind.
if(EXISTS "${CMAKE_CURRENT_BINARY_DIR}/only_no_match.json")
  message(FATAL_ERROR "zero-match run wrote a report file; it must not")
endif()
