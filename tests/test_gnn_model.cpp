// Tests for the multi-layer GnnModel runner.
#include <gtest/gtest.h>

#include "core/gnn_model.hpp"
#include "graph/generators.hpp"
#include "tensor/dense_ops.hpp"

namespace tlp {
namespace {

TEST(GnnModel, ShapesFlowThroughLayers) {
  Rng rng(1);
  const graph::Csr g = graph::power_law(100, 600, 2.3, rng);
  const tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), 24, rng);

  GnnModel model(24);
  model.add_layer(models::ModelKind::kGcn, 16)
      .add_layer(models::ModelKind::kSage, 8)
      .add_layer(models::ModelKind::kGin, 4, {.relu = false});
  EXPECT_EQ(model.num_layers(), 3u);
  EXPECT_EQ(model.output_features(), 4);

  Engine engine;
  const tensor::Tensor out = model.forward(engine, g, x);
  EXPECT_EQ(out.rows(), g.num_vertices());
  EXPECT_EQ(out.cols(), 4);
  ASSERT_EQ(model.layer_conv_ms().size(), 3u);
  for (const double ms : model.layer_conv_ms()) EXPECT_GT(ms, 0.0);
  EXPECT_NEAR(model.total_conv_ms(),
              model.layer_conv_ms()[0] + model.layer_conv_ms()[1] +
                  model.layer_conv_ms()[2],
              1e-12);
}

TEST(GnnModel, ReluAppliedPerOptions) {
  Rng rng(2);
  const graph::Csr g = graph::power_law(80, 500, 2.3, rng);
  const tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), 8, rng);
  Engine engine;

  GnnModel with_relu(8);
  with_relu.add_layer(models::ModelKind::kGcn, 8, {.relu = true});
  const tensor::Tensor a = with_relu.forward(engine, g, x);
  for (const float v : a.flat()) EXPECT_GE(v, 0.0f);

  GnnModel no_relu(8);
  no_relu.add_layer(models::ModelKind::kGcn, 8, {.relu = false});
  const tensor::Tensor b = no_relu.forward(engine, g, x);
  bool has_negative = false;
  for (const float v : b.flat()) has_negative |= v < 0.0f;
  EXPECT_TRUE(has_negative);
}

TEST(GnnModel, DeterministicPerSeed) {
  Rng rng(3);
  const graph::Csr g = graph::power_law(60, 300, 2.3, rng);
  const tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), 8, rng);
  Engine e1, e2;
  GnnModel m1(8, 42), m2(8, 42);
  m1.add_layer(models::ModelKind::kGin, 8);
  m2.add_layer(models::ModelKind::kGin, 8);
  EXPECT_EQ(m1.forward(e1, g, x), m2.forward(e2, g, x));
}

TEST(GnnModel, GatLayerWithHeads) {
  Rng rng(4);
  const graph::Csr g = graph::power_law(70, 400, 2.3, rng);
  const tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), 12, rng);
  GnnModel model(12);
  model.add_layer(models::ModelKind::kGat, 16, {.relu = true, .gat_heads = 4});
  Engine engine;
  const tensor::Tensor out = model.forward(engine, g, x);
  EXPECT_EQ(out.cols(), 16);
  EXPECT_EQ(engine.last_run().kernel_launches, 1);
}

TEST(GnnModel, RejectsBadConfigs) {
  GnnModel model(8);
  EXPECT_THROW(model.add_layer(models::ModelKind::kGat, 10, {.gat_heads = 4}),
               CheckError);
  Engine engine;
  Rng rng(5);
  const graph::Csr g = graph::path(4);
  const tensor::Tensor x = tensor::Tensor::random(4, 8, rng);
  GnnModel empty(8);
  EXPECT_THROW(empty.forward(engine, g, x), CheckError);
}

TEST(GnnModel, DropoutChangesActivationsButNotShape) {
  Rng rng(6);
  const graph::Csr g = graph::power_law(50, 250, 2.3, rng);
  const tensor::Tensor x = tensor::Tensor::random(g.num_vertices(), 8, rng);
  Engine engine;
  GnnModel model(8, 7);
  model.add_layer(models::ModelKind::kGcn, 8, {.relu = false, .dropout = 0.5});
  const tensor::Tensor out = model.forward(engine, g, x);
  EXPECT_EQ(out.rows(), g.num_vertices());
  GnnModel no_drop(8, 7);
  no_drop.add_layer(models::ModelKind::kGcn, 8, {.relu = false});
  Engine e2;
  EXPECT_NE(out, no_drop.forward(e2, g, x));
}

}  // namespace
}  // namespace tlp
